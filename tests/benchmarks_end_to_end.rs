//! Each benchmark program flows through the entire pipeline: front end,
//! analysis, dispatch, and (for the lighter ones) distributed execution.
//!
//! The heavyweight parameter sweeps live in the experiment harness
//! (`crates/bench`); these tests assert the structural facts the paper's
//! Table 3 / Table 4 report.

use offload_benchmarks::{all, rawcaudio, rawdaudio};
use offload_runtime::{DeviceModel, Simulator};

#[test]
fn table3_shape() {
    let benchmarks = all();
    assert_eq!(benchmarks.len(), 6);
    for b in &benchmarks {
        // Sources are real programs, not stubs.
        assert!(
            b.source_lines() > 50,
            "{}: {} lines",
            b.name,
            b.source_lines()
        );
        assert!(!b.description.is_empty());
        let checked = offload_lang::frontend(&b.source).expect(b.name);
        assert!(checked.program.functions.len() >= 2, "{}", b.name);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "analyzes a full benchmark; run with --release (exact polyhedral algebra is ~10x slower unoptimized)"
)]
fn rawcaudio_analyzes_and_roundtrips() {
    let b = rawcaudio();
    let a = b.analyze().expect("analysis");
    assert!(!a.tcfg.tasks().is_empty());
    assert!(!a.partition.choices.is_empty());
    // Dispatch works at the default parameters.
    let idx = a.decide(&b.default_params).expect("dispatch").region_id;
    // Execution under the dispatched plan matches the local run.
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    let params = [64i64];
    let input = (b.make_input)(&params);
    let local = sim.run_local(&params, &input).expect("local run");
    assert_eq!(local.outputs.len(), 64);
    let run = sim
        .run_choice(idx, &params, &input)
        .expect("dispatched run");
    assert_eq!(run.outputs, local.outputs);
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "analyzes two full benchmarks; run with --release"
)]
fn adpcm_compress_decompress_roundtrip() {
    // Compressing then decompressing through the two benchmark programs
    // reconstructs a waveform close to the original (ADPCM is lossy).
    let enc = rawcaudio();
    let dec = rawdaudio();
    let enc_a = enc.analyze().expect("encode analysis");
    let dec_a = dec.analyze().expect("decode analysis");
    let enc_sim = Simulator::new(&enc_a, DeviceModel::ipaq_testbed());
    let dec_sim = Simulator::new(&dec_a, DeviceModel::ipaq_testbed());

    let n = 96i64;
    // A smooth ramp keeps ADPCM's tracking error tiny.
    let wave: Vec<i64> = (0..n).map(|i| i * 8).collect();
    let codes = enc_sim.run_local(&[n], &wave).expect("encode").outputs;
    assert_eq!(codes.len(), wave.len());
    let decoded = dec_sim.run_local(&[n], &codes).expect("decode").outputs;
    assert_eq!(decoded.len(), wave.len());
    // Skip the attack phase, then require close tracking.
    for (i, (orig, dec)) in wave.iter().zip(&decoded).enumerate().skip(16) {
        assert!(
            (orig - dec).abs() < 96,
            "sample {i}: {orig} vs {dec} drifted"
        );
    }
}

#[test]
fn benchmark_inputs_sized_correctly() {
    for b in all() {
        let input = (b.make_input)(&b.default_params);
        match b.name {
            "rawcaudio" | "rawdaudio" => {
                assert_eq!(input.len() as i64, b.default_params[0], "{}", b.name)
            }
            "encode" | "decode" => assert_eq!(
                input.len() as i64,
                b.default_params[2] * b.default_params[3],
                "{}",
                b.name
            ),
            "fft" => assert!(input.is_empty(), "fft synthesizes its waveform"),
            "susan" => assert_eq!(
                input.len() as i64,
                b.default_params[3] * b.default_params[4],
                "{}",
                b.name
            ),
            other => panic!("unknown benchmark {other}"),
        }
    }
}
