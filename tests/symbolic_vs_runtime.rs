//! Cross-validation of the §3.3 flow constraints against reality: the
//! symbolic block execution counts, evaluated at concrete parameters,
//! must reproduce the exact number of instructions the interpreter
//! executes — for programs whose counts are fully parameter-expressible.

use offload_core::{Analysis, AnalysisOptions};
use offload_poly::Rational;
use offload_runtime::{DeviceModel, Simulator};
use offload_symbolic::Atom;

/// Sums `block_count(b) * |instructions(b)|` over the whole module at the
/// given parameter values.
fn predicted_instructions(a: &Analysis, params: &[i64]) -> Rational {
    let value = |atom: Atom| -> Rational {
        match atom {
            Atom::Param(i) => Rational::from(params[i as usize]),
            Atom::Dummy(_) => Rational::zero(),
        }
    };
    let mut total = Rational::zero();
    for (fi, f) in a.module.functions.iter().enumerate() {
        let fid = offload_ir::FuncId(fi as u32);
        for (bi, b) in f.blocks.iter().enumerate() {
            let count = a
                .symbolic
                .block_count(fid, offload_ir::BlockId(bi as u32))
                .eval(&a.symbolic.dict, &value);
            total += &(&count * &Rational::from(b.insts.len() as i64));
        }
    }
    total
}

fn check(src: &str, params_list: &[&[i64]], input_for: fn(&[i64]) -> Vec<i64>) {
    let a = Analysis::from_source(src, AnalysisOptions::default()).expect("analysis");
    assert!(
        a.symbolic.annotations_required().is_empty(),
        "this test needs fully analyzable programs"
    );
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    for params in params_list {
        let run = sim.run_local(params, &input_for(params)).expect("run");
        let predicted = predicted_instructions(&a, params);
        assert_eq!(
            predicted,
            Rational::from(run.stats.instructions as i64),
            "params {params:?}: symbolic counts must match executed instructions"
        );
    }
}

#[test]
fn straight_loop() {
    check(
        "void main(int n) { int i; for (i = 0; i < n; i++) { output(i); } }",
        &[&[0], &[1], &[17], &[100]],
        |_| vec![],
    );
}

#[test]
fn nested_loops_and_calls() {
    check(
        "int work(int k) {
             int j; int acc;
             acc = 0;
             for (j = 0; j < k; j++) { acc = acc + j; }
             return acc;
         }
         void main(int n, int k) {
             int i;
             for (i = 0; i < n; i++) { output(work(k)); }
         }",
        &[&[0, 5], &[3, 0], &[4, 7], &[10, 10]],
        |_| vec![],
    );
}

#[test]
fn figure1_counts_exact() {
    check(
        offload_lang::examples_src::FIGURE1,
        &[&[1, 1, 1], &[2, 3, 4], &[3, 8, 2]],
        |p| (0..(p[0] * p[1])).collect(),
    );
}

#[test]
fn while_loop_counts_exact() {
    check(
        "void main(int n) {
             int acc;
             acc = 0;
             while (acc < n) { acc = acc + 2; }
             output(acc);
         }",
        &[&[0], &[10], &[64]],
        |_| vec![],
    );
}

#[test]
fn param_dependent_branches_with_auto_conditions() {
    // The branch depends on a parameter: the auto-annotated condition
    // dummy must evaluate it exactly at dispatch/eval time.
    let src = "void main(int mode, int n) {
                   int i;
                   for (i = 0; i < n; i++) {
                       if (mode == 1) { output(i); } else { output(2 * i); output(i); }
                   }
               }";
    let a = Analysis::from_source(src, AnalysisOptions::default()).expect("analysis");
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    for params in [[1i64, 6], [0, 6], [2, 9]] {
        let run = sim.run_local(&params, &[]).expect("run");
        // Evaluate with auto-dummies resolved through the dispatcher.
        let rparams: Vec<Rational> = params.iter().map(|&p| Rational::from(p)).collect();
        let mut total = Rational::zero();
        for (fi, f) in a.module.functions.iter().enumerate() {
            let fid = offload_ir::FuncId(fi as u32);
            for (bi, b) in f.blocks.iter().enumerate() {
                let expr = a.symbolic.block_count(fid, offload_ir::BlockId(bi as u32));
                let count = a
                    .dispatcher
                    .eval_expr(&expr, &rparams, 0)
                    .expect("auto dummies");
                total += &(&count * &Rational::from(b.insts.len() as i64));
            }
        }
        assert_eq!(
            total,
            Rational::from(run.stats.instructions as i64),
            "params {params:?}"
        );
    }
}
