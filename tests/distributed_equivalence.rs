//! The central soundness invariant of the whole system (the paper's §2
//! semantic requirement): *the distributed program has identical external
//! behaviour to the original program running on the client alone* — for
//! every partitioning choice the analysis emits, and even for arbitrary
//! assignments that respect the I/O pinning.

use offload_core::{Analysis, AnalysisOptions, Partition};
use offload_poly::Region;
use offload_runtime::{DeviceModel, Plan, Runner, Simulator};

fn analysis(src: &str) -> Analysis {
    Analysis::from_source(src, AnalysisOptions::default()).expect("analysis")
}

/// Runs a program under an arbitrary task-side assignment (not
/// necessarily optimal) and checks behavioural equivalence.
fn run_with_assignment(a: &Analysis, server_tasks: Vec<bool>, params: &[i64], input: &[i64]) {
    let tracked: Vec<_> = a.items.items.iter().map(|i| i.loc).collect();
    let device = DeviceModel::ipaq_testbed();
    let fake = Partition {
        server_tasks,
        transfers: vec![Vec::new(); a.tcfg.edges().len()], // rely on lazy pulls
        region: Region::empty(a.network.dims.len()),
        full_region: offload_poly::Polyhedron::universe(a.network.dims.len()),
        cut: vec![false; a.network.net.node_count()],
    };
    let local = Runner {
        module: &a.module,
        tcfg: &a.tcfg,
        pta: &a.pta,
        tracked_order: &tracked,
        device: &device,
        plan: Plan::AllLocal,
        max_steps: 0,
    }
    .run(params, input)
    .expect("local");
    let dist = Runner {
        module: &a.module,
        tcfg: &a.tcfg,
        pta: &a.pta,
        tracked_order: &tracked,
        device: &device,
        plan: Plan::Partitioned(&fake),
        max_steps: 0,
    }
    .run(params, input)
    .expect("distributed");
    assert_eq!(dist.outputs, local.outputs);
}

#[test]
fn all_non_io_assignments_of_small_program() {
    let a = analysis(
        "int square(int v) { return v * v; }
         int cube(int v) { return v * square(v); }
         void main(int n) {
             int i;
             for (i = 0; i < n; i++) { output(square(i) + cube(i)); }
         }",
    );
    let tasks = a.tcfg.tasks().len();
    assert!(tasks <= 12, "enumerable task count, got {tasks}");
    let params = [5i64];
    // Enumerate every assignment that keeps I/O tasks on the client
    // (exhaustive when small, sampled otherwise).
    let io_mask: Vec<bool> = a.tcfg.tasks().iter().map(|t| t.is_io).collect();
    let limit = 1u32 << tasks.min(10);
    for mask in 0..limit {
        let assignment: Vec<bool> = (0..tasks).map(|i| mask & (1 << i.min(31)) != 0).collect();
        if assignment.iter().zip(&io_mask).any(|(&s, &io)| s && io) {
            continue; // would violate the semantic constraint
        }
        run_with_assignment(&a, assignment, &params, &[]);
    }
}

#[test]
fn figure4_lists_survive_offloading() {
    // Dynamically allocated data with pointers inside: the registration
    // and translation machinery must keep both heaps coherent.
    let a = analysis(offload_lang::examples_src::FIGURE4);
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    let local = sim.run_local(&[12], &[]).unwrap();
    assert_eq!(local.outputs, vec![66]); // sum 0..11
    for i in 0..a.partition.choices.len() {
        let r = sim.run_choice(i, &[12], &[]).unwrap();
        assert_eq!(r.outputs, local.outputs, "choice {i}");
    }
    // And under a deliberately adversarial assignment: `build` remote,
    // everything else local (lazy pulls must fetch the list).
    let build = a.module.func_by_name("build").unwrap();
    let assignment: Vec<bool> = a
        .tcfg
        .tasks()
        .iter()
        .map(|t| t.func == build && !t.is_io)
        .collect();
    run_with_assignment(&a, assignment, &[12], &[]);
}

#[test]
fn global_state_machine_consistency() {
    // A program whose tasks communicate through global state in both
    // directions across several calls.
    let src = "
        int acc;
        int scale;
        void step_a(int v) { acc = acc + v * scale; }
        void step_b(int v) { scale = scale + v % 3; acc = acc - v; }
        void main(int n) {
            int i;
            acc = 0;
            scale = 1;
            for (i = 0; i < n; i++) {
                step_a(i);
                step_b(i);
                output(acc);
            }
        }";
    let a = analysis(src);
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    let input: Vec<i64> = vec![];
    let local = sim.run_local(&[9], &input).unwrap();
    for i in 0..a.partition.choices.len() {
        let r = sim.run_choice(i, &[9], &input).unwrap();
        assert_eq!(r.outputs, local.outputs, "choice {i}");
    }
    // Adversarial split: step_a on the server, step_b on the client.
    let fa = a.module.func_by_name("step_a").unwrap();
    let assignment: Vec<bool> = a.tcfg.tasks().iter().map(|t| t.func == fa).collect();
    run_with_assignment(&a, assignment, &[9], &input);
}

#[test]
fn function_pointer_programs_distribute() {
    let src = "
        int inc(int v) { return v + 1; }
        int dbl(int v) { return v * 2; }
        void main(int mode, int n) {
            int i;
            int v;
            fn op;
            if (mode == 1) { op = &inc; } else { op = &dbl; }
            v = 1;
            for (i = 0; i < n; i++) { v = op(v); }
            output(v);
        }";
    let a = analysis(src);
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    for mode in [0i64, 1] {
        let local = sim.run_local(&[mode, 6], &[]).unwrap();
        for i in 0..a.partition.choices.len() {
            let r = sim.run_choice(i, &[mode, 6], &[]).unwrap();
            assert_eq!(r.outputs, local.outputs, "mode {mode} choice {i}");
        }
    }
}
