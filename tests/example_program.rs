//! The paper's running example, end to end.
//!
//! Two levels: (1) the *worked example* of §4.2/Figures 6–7, built as the
//! exact two-task network of Table 1, must reproduce the paper's three
//! optimal partitionings and their parameter regions (the §1.1
//! conditions); (2) the Figure 1 *program* must flow through the whole
//! pipeline and behave identically under every discovered partitioning.

use offload_core::{Analysis, AnalysisOptions};
use offload_flow::{ParamCap, ParamNetwork};
use offload_poly::{Constraint, LinExpr, Polyhedron, Rational, Region};
use offload_runtime::{DeviceModel, Simulator};

fn r(n: i64) -> Rational {
    Rational::from(n)
}

/// Builds the Table 1 network over linearized dimensions
/// `d0 = x, d1 = x·y, d2 = x·y·z`:
///
/// * client computation: `s → M(f)` capacity `2xy`, `s → M(g)` capacity
///   `xyz` (the server is free in the example);
/// * f↔g buffer traffic when split: `12x + 2xy` each way;
/// * f's per-sample I/O traffic when f is remote: `M(f) → t` capacity
///   `14xy`.
fn paper_network() -> (ParamNetwork, Polyhedron) {
    let k = 3;
    let aff = |x: i64, xy: i64, xyz: i64| {
        ParamCap::Affine(
            LinExpr::zero(k)
                .plus_term(0, r(x))
                .plus_term(1, r(xy))
                .plus_term(2, r(xyz)),
        )
    };
    // Nodes: 0 = s, 1 = t, 2 = M(f), 3 = M(g).
    let mut net = ParamNetwork::new(k, 4, 0, 1);
    net.add_arc(0, 2, aff(0, 2, 0)); // ¬M(f) · 2xy
    net.add_arc(0, 3, aff(0, 0, 1)); // ¬M(g) · xyz
    net.add_arc(2, 3, aff(12, 2, 0)); // M(f)=1, M(g)=0 → buffers move
    net.add_arc(3, 2, aff(12, 2, 0)); // M(g)=1, M(f)=0 → buffers move
    net.add_arc(2, 1, aff(0, 14, 0)); // M(f)=1 → 14xy of I/O traffic
                                      // Parameter space: x >= 1, y >= 1 (xy >= x), z >= 1 (xyz >= xy).
    let space = Polyhedron::from_constraints(
        k,
        vec![
            Constraint::ge0(LinExpr::var(k, 0).plus_constant(r(-1))),
            Constraint::ge0(LinExpr::var(k, 1).sub(&LinExpr::var(k, 0))),
            Constraint::ge0(LinExpr::var(k, 2).sub(&LinExpr::var(k, 1))),
        ],
    );
    (net, space)
}

fn figure1_analysis() -> &'static Analysis {
    static CACHE: std::sync::OnceLock<Analysis> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        Analysis::from_source(
            offload_lang::examples_src::FIGURE1,
            AnalysisOptions::default(),
        )
        .expect("analysis succeeds")
    })
}

fn dims_for(x: i64, y: i64, z: i64) -> Vec<Rational> {
    vec![r(x), r(x * y), r(x * y * z)]
}

/// Table 1 costs of the three meaningful partitionings.
fn table1_costs(x: i64, y: i64, z: i64) -> [(&'static str, i64); 3] {
    [
        ("local", x * y * z + 2 * x * y),
        ("offload-g", 12 * x + 4 * x * y),
        ("offload-fg", 14 * x * y),
    ]
}

#[test]
fn worked_example_reproduces_table1_costs() {
    let (net, _) = paper_network();
    for &(x, y, z) in &[(1i64, 6, 3), (1, 6, 6), (1, 1, 18), (2, 3, 20), (5, 2, 2)] {
        let point = dims_for(x, y, z);
        let mf = net.solve_at(&point).unwrap();
        let best = table1_costs(x, y, z).iter().map(|&(_, c)| c).min().unwrap();
        assert_eq!(
            mf.value,
            r(best),
            "min cut = Table 1 minimum at ({x},{y},{z})"
        );
    }
}

#[test]
fn worked_example_regions_match_section_1_conditions() {
    let (net, space) = paper_network();
    // The paper's conditions (§1.1):
    //  offload f,g   iff 12 < z  && 5y < 6   (i.e. y = 1, z > 12)
    //  offload g     iff 12 + 2y < yz        (and not the previous case)
    //  otherwise local.
    // Algorithm 2, by hand: sample, cut, region, subtract.
    let mut x = Region::from(space.clone());
    let mut found: Vec<(Vec<bool>, Polyhedron)> = Vec::new();
    while let Some(p) = x.sample() {
        let mf = net.solve_at(&p).unwrap();
        let region = net.optimality_region(&mf.source_side, &space);
        assert!(region.contains(&p));
        x = x.subtract(&region);
        found.push((mf.source_side, region));
        assert!(found.len() <= 8, "few regions expected");
    }
    // Exactly the three partitionings of the paper appear.
    let classify = |side: &[bool]| -> &'static str {
        match (side[2], side[3]) {
            (false, false) => "local",
            (false, true) => "offload-g",
            (true, true) => "offload-fg",
            (true, false) => "offload-f-only",
        }
    };
    let kinds: std::collections::BTreeSet<&str> = found.iter().map(|(s, _)| classify(s)).collect();
    assert_eq!(
        kinds,
        ["local", "offload-g", "offload-fg"]
            .into_iter()
            .collect::<std::collections::BTreeSet<_>>(),
        "the paper's three partitionings"
    );
    // Check region membership against the paper's closed-form conditions
    // on a grid.
    for x_ in [1i64, 2, 5] {
        for y in [1i64, 2, 6, 10] {
            for z in [1i64, 3, 6, 13, 18, 40] {
                let point = dims_for(x_, y, z);
                let expect = if 12 < z && 5 * y < 6 {
                    "offload-fg"
                } else if 12 + 2 * y < y * z {
                    "offload-g"
                } else {
                    "local"
                };
                // Boundary points may land in either adjacent region;
                // compare by cost when labels differ.
                let holder = found
                    .iter()
                    .find(|(_, region)| region.contains(&point))
                    .map(|(side, _)| classify(side))
                    .expect("point covered");
                if holder != expect {
                    let costs = table1_costs(x_, y, z);
                    let get = |name: &str| costs.iter().find(|(n, _)| *n == name).unwrap().1;
                    assert_eq!(
                        get(holder),
                        get(expect),
                        "({x_},{y},{z}): {holder} vs {expect} must tie"
                    );
                }
            }
        }
    }
}

#[test]
fn figure1_program_full_pipeline() {
    let analysis = figure1_analysis();
    // No user annotations required (everything is parameter-expressible).
    assert!(analysis.missing_annotations().is_empty());
    // At least local + offload-encoder choices.
    assert!(
        analysis.partition.choices.len() >= 2,
        "{}",
        analysis.describe_choices()
    );

    // Distributed behaviour matches local behaviour for every choice.
    let sim = Simulator::new(analysis, DeviceModel::ipaq_testbed());
    let params = [2i64, 4, 6];
    let input: Vec<i64> = (0..8).collect();
    let local = sim.run_local(&params, &input).unwrap();
    for i in 0..analysis.partition.choices.len() {
        let run = sim.run_choice(i, &params, &input).unwrap();
        assert_eq!(run.outputs, local.outputs, "choice {i}");
    }

    // The dispatcher picks the cheapest choice wherever we probe.
    for &(x, y, z) in &[(1i64, 4, 1), (4, 64, 3), (2, 8, 500), (1, 512, 40)] {
        let idx = analysis.decide(&[x, y, z]).unwrap().region_id;
        let point = analysis
            .dispatcher
            .dim_point(&analysis.network, &[r(x), r(y), r(z)])
            .unwrap();
        let chosen =
            offload_core::cut_cost_at(&analysis.network, &analysis.partition.choices[idx], &point)
                .expect("finite");
        for c in &analysis.partition.choices {
            if let Some(v) = offload_core::cut_cost_at(&analysis.network, c, &point) {
                assert!(chosen <= v, "({x},{y},{z})");
            }
        }
    }
}

#[test]
fn figure1_decision_independent_of_x() {
    // The paper: "although all the costs depend on the parameter x, the
    // optimal program partitioning decisions do not depend on x."
    let analysis = figure1_analysis();
    for &(y, z) in &[(4i64, 1), (64, 3), (8, 500), (512, 40), (1, 1000)] {
        let picks: std::collections::BTreeSet<usize> = [1i64, 2, 7, 40]
            .iter()
            .map(|&x| analysis.decide(&[x, y, z]).unwrap().region_id)
            .collect();
        assert_eq!(picks.len(), 1, "same choice for all x at (y={y}, z={z})");
    }
}
