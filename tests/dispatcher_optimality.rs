//! The dispatcher (the Figure 2 transformation) must pick, at every
//! probed parameter value, a partitioning whose *predicted* cost is
//! minimal among all discovered choices — and its picks must agree with
//! measured execution time rankings on clearly-separated cases.

use offload_core::{cut_cost_at, Analysis, AnalysisOptions};
use offload_poly::Rational;
use offload_runtime::{DeviceModel, Simulator};

const PIPELINE: &str = "
    int stage1(int v, int w) {
        int i; int acc;
        acc = v;
        for (i = 0; i < w; i++) { acc = acc + (acc % 7) + 1; }
        return acc;
    }
    int stage2(int v, int w) {
        int i; int acc;
        acc = v;
        for (i = 0; i < w * 2; i++) { acc = acc + (acc % 5) + 2; }
        return acc;
    }
    void main(int n, int w) {
        int i; int v;
        for (i = 0; i < n; i++) {
            v = input();
            v = stage1(v, w);
            v = stage2(v, w);
            output(v);
        }
    }";

fn analysis() -> &'static Analysis {
    static CACHE: std::sync::OnceLock<Analysis> = std::sync::OnceLock::new();
    CACHE.get_or_init(|| {
        Analysis::from_source(PIPELINE, AnalysisOptions::default()).expect("analysis")
    })
}

#[test]
fn dispatcher_minimizes_predicted_cost() {
    let a = analysis();
    for &(n, w) in &[
        (1i64, 1i64),
        (4, 10),
        (2, 1000),
        (16, 100_000),
        (1, 1_000_000),
    ] {
        let idx = a.decide(&[n, w]).unwrap().region_id;
        let point = a
            .dispatcher
            .dim_point(&a.network, &[Rational::from(n), Rational::from(w)])
            .unwrap();
        let chosen =
            cut_cost_at(&a.network, &a.partition.choices[idx], &point).expect("finite cut");
        for (j, c) in a.partition.choices.iter().enumerate() {
            if let Some(v) = cut_cost_at(&a.network, c, &point) {
                assert!(chosen <= v, "(n={n},w={w}): chosen {idx} beaten by {j}");
            }
        }
    }
}

#[test]
fn regions_are_pairwise_disjoint() {
    let a = analysis();
    for &(n, w) in &[(1i64, 1i64), (3, 50), (2, 5000), (8, 400000)] {
        let point = a
            .dispatcher
            .dim_point(&a.network, &[Rational::from(n), Rational::from(w)])
            .unwrap();
        let holders = a
            .partition
            .choices
            .iter()
            .filter(|c| c.region.contains(&point))
            .count();
        assert!(holders <= 1, "(n={n},w={w}) claimed by {holders} regions");
    }
}

#[test]
fn predicted_ranking_matches_measured_ranking_at_extremes() {
    let a = analysis();
    let sim = Simulator::new(a, DeviceModel::ipaq_testbed());
    // Tiny work: local must win. Heavy work: offloading must win.
    let light_params = [2i64, 1];
    let heavy_params = [2i64, 60_000];

    let light_idx = a.decide(&light_params).unwrap().region_id;
    assert!(a.partition.choices[light_idx].is_all_local());

    let heavy_idx = a.decide(&heavy_params).unwrap().region_id;
    assert!(!a.partition.choices[heavy_idx].is_all_local());

    // Measured agreement.
    let input = vec![3, 4];
    let local = sim.run_local(&heavy_params, &input).unwrap();
    let offloaded = sim.run_choice(heavy_idx, &heavy_params, &input).unwrap();
    assert!(offloaded.stats.total_time < local.stats.total_time);
    assert_eq!(offloaded.outputs, local.outputs);
}

#[test]
fn prediction_error_within_reasonable_bounds() {
    // The paper reports prediction errors within 10%; our simulator
    // shares the analytic model's structure but adds cache effects, so
    // the measured/predicted ratio should be near 1 (allow 35% for the
    // coarse per-instruction weights).
    let a = analysis();
    let sim = Simulator::new(a, DeviceModel::ipaq_testbed());
    for &(n, w) in &[(4i64, 2000i64), (2, 20_000)] {
        let idx = a.decide(&[n, w]).unwrap().region_id;
        let point = a
            .dispatcher
            .dim_point(&a.network, &[Rational::from(n), Rational::from(w)])
            .unwrap();
        let predicted = cut_cost_at(&a.network, &a.partition.choices[idx], &point)
            .unwrap()
            .to_f64();
        let input: Vec<i64> = (0..n).collect();
        let measured = sim
            .run_choice(idx, &[n, w], &input)
            .unwrap()
            .stats
            .total_time
            .to_f64();
        let ratio = predicted / measured;
        assert!(
            (0.65..=1.55).contains(&ratio),
            "(n={n},w={w}): predicted/measured = {ratio:.3}"
        );
    }
}
