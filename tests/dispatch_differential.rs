//! Differential test: the point-location DAG versus the linear region
//! scan, on every checked-in program.
//!
//! [`offload_core::Analysis::decide`] walks the hyperplane decision DAG
//! compiled at analysis time; [`offload_core::Analysis::decide_linear`]
//! is the paper's original Figure 2 dispatcher, kept as the executable
//! oracle. The two must agree — same region, same plan shape, matched
//! routes — at every parameter point: representative values, the
//! benchmark's declared bounds, dense boundary neighborhoods, and points
//! outside the declared parameter space (where both must take the
//! fallback route).

use offload_benchmarks::{all, Benchmark};
use offload_core::{Analysis, DispatchRoute};

/// Deterministic xorshift64* generator (proptest is unavailable offline).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A value in `lo..=hi`, inclusive.
    fn in_range(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

fn assert_agree(name: &str, analysis: &Analysis, params: &[i64]) {
    let has_dag = analysis.partition.locator.is_some();
    let dag = analysis.decide(params).expect("decide succeeds");
    let scan = analysis.decide_linear(params).expect("scan succeeds");
    assert_eq!(
        dag.region_id, scan.region_id,
        "{name} {params:?}: DAG chose {} but the linear scan chose {}",
        dag.region_id, scan.region_id
    );
    assert_eq!(
        dag.plan.is_all_local(),
        scan.plan.is_all_local(),
        "{name} {params:?}: same region, different plan shape"
    );
    match scan.route {
        DispatchRoute::LinearScan => assert_eq!(
            dag.route,
            if has_dag {
                DispatchRoute::Dag
            } else {
                DispatchRoute::LinearScan
            },
            "{name} {params:?}: unexpected route for a matched region"
        ),
        DispatchRoute::Fallback => assert_eq!(
            dag.route,
            DispatchRoute::Fallback,
            "{name} {params:?}: scan fell back but the DAG matched a region"
        ),
        DispatchRoute::Dag => unreachable!("decide_linear never routes through the DAG"),
    }
}

/// Sweeps one analyzed benchmark: its default parameters, a seeded
/// random sample of the declared parameter box, the box's corners, and
/// out-of-bounds points on every axis.
fn sweep(bench: &Benchmark, analysis: &Analysis, rounds: usize) {
    let arity = bench.param_names.len();
    // Benchmarks with small hyperplane arrangements must compile a DAG;
    // the rich ones (fft: 29 planes in 11 dims, susan: 30 in 14) are
    // gated out by the arrangement-size guard and keep the linear scan —
    // the sweep then still checks route and decision consistency.
    if DAG_EXPECTED.contains(&bench.name) {
        assert!(
            analysis.partition.locator.is_some(),
            "{}: analysis produced no point locator",
            bench.name
        );
    }
    assert_agree(bench.name, analysis, &bench.default_params);

    let lo = |i: usize| bench.bounds.lower(i).unwrap_or(0);
    let hi = |i: usize| bench.bounds.upper(i).unwrap_or(1 << 20).max(lo(i) + 1);

    let mut rng = Rng::new(0xB1FF_0000 ^ bench.name.len() as u64);
    for _ in 0..rounds {
        let params: Vec<i64> = (0..arity).map(|i| rng.in_range(lo(i), hi(i))).collect();
        assert_agree(bench.name, analysis, &params);
    }

    // Corners of the declared box (capped — susan has 12 parameters and
    // 2^12 corners is more than this needs), then one step past each
    // face: boundary hyperplanes exactly, then the fallback route.
    for mask in 0..(1u32 << arity.min(8)) {
        let corner: Vec<i64> = (0..arity)
            .map(|i| if mask >> i & 1 == 0 { lo(i) } else { hi(i) })
            .collect();
        assert_agree(bench.name, analysis, &corner);
    }
    for i in 0..arity {
        let mut below = bench.default_params.clone();
        below[i] = lo(i) - 1;
        assert_agree(bench.name, analysis, &below);
    }
}

/// The quick, stable benchmarks; everything else rides in the
/// release-gated full sweep below.
const LIGHT: &[&str] = &["rawcaudio", "rawdaudio"];

/// Benchmarks whose decompositions must compile to a DAG (arrangements
/// within the builder's size gate).
const DAG_EXPECTED: &[&str] = &["rawcaudio", "rawdaudio", "encode", "decode"];

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "analyzes full benchmarks; run with --release (exact polyhedral algebra is ~10x slower unoptimized)"
)]
fn light_benchmarks_dag_agrees_with_linear_scan() {
    for bench in all().iter().filter(|b| LIGHT.contains(&b.name)) {
        let analysis = bench.analyze().expect("analysis succeeds");
        sweep(bench, &analysis, 600);
    }
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "analyzes every benchmark; run with --release"
)]
fn every_benchmark_dag_agrees_with_linear_scan() {
    for bench in all() {
        let analysis = bench.analyze().expect("analysis succeeds");
        let rounds = if bench.param_names.len() > 4 {
            150
        } else {
            400
        };
        sweep(&bench, &analysis, rounds);
    }
}
