#!/usr/bin/env bash
# Solve-time benchmark: sequential (threads=1) vs parallel region
# exploration across the light benchmark set.
#
#   scripts/bench.sh [benchmark names...]
#
# Emits BENCH_solve.json in the repository root (override the path with
# SOLVEBENCH_OUT, the worker count with SOLVEBENCH_THREADS). Runs fully
# offline on a release build.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release -p offload-bench --offline

echo "== solvebench =="
./target/release/solvebench "$@"
