#!/usr/bin/env bash
# Solve-time benchmark: sequential (threads=1) vs parallel region
# exploration across the light benchmark set.
#
#   scripts/bench.sh [benchmark names...]
#
# Emits BENCH_solve.json (the same JSON goes to stdout via --json, so
# callers never scrape tables) and a Chrome trace at BENCH_trace.json in
# the repository root (override the report path with SOLVEBENCH_OUT, the
# worker count with SOLVEBENCH_THREADS). Each benchmark row carries a
# speedup_vs_baseline field computed against the checked-in
# BENCH_baseline.json (override with SOLVEBENCH_BASELINE), so the perf
# trajectory is tracked across PRs. Runs fully offline on a release
# build.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) ==" >&2
cargo build --release -p offload-bench --offline

echo "== solvebench ==" >&2
./target/release/solvebench --json --trace BENCH_trace.json "$@"
