#!/usr/bin/env bash
# Serving-path benchmark: N concurrent loopback dispatch clients against
# one offload server for a few seconds.
#
#   scripts/netbench.sh [clients] [duration-seconds]
#
# Emits BENCH_net.json in the repository root (override the path with
# NETBENCH_OUT): sustained QPS, client-observed p50/p90/p99 dispatch
# latency, and the server's plan-cache / point-location / batching
# statistics. Runs fully offline on a release build.

set -euo pipefail
cd "$(dirname "$0")/.."

CLIENTS="${1:-1000}"
DURATION="${2:-5}"
OUT="${NETBENCH_OUT:-BENCH_net.json}"

echo "== build (release) ==" >&2
cargo build --release -p offload-bench --offline

echo "== netbench load (${CLIENTS} clients, ${DURATION}s) ==" >&2
./target/release/netbench --clients "$CLIENTS" --duration "$DURATION" --out "$OUT"
