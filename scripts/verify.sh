#!/usr/bin/env bash
# Tier-1 verification: everything a reviewer needs to trust a change.
#
#   scripts/verify.sh
#
# Runs fully offline: release build, the whole test suite, and (when the
# component is installed) clippy with warnings denied.

set -euo pipefail
cd "$(dirname "$0")/.."

echo "== build (release) =="
cargo build --release --workspace --offline

echo "== test =="
cargo test -q --workspace --offline

echo "== clippy =="
if cargo clippy --version >/dev/null 2>&1; then
    cargo clippy --workspace --all-targets --offline -- -D warnings
else
    echo "clippy not installed; skipping (build + tests above are the gate)"
fi

echo "== verify OK =="
