//! Symbolic expressions over run-time parameters.
//!
//! Costs in the paper are functions of the parameter vector `h`. Products
//! of parameters (the `xyz` of Table 1) are handled by §5.1's
//! linearization: every **monomial** (a multiset of atoms, e.g. `x·y·z`)
//! becomes an independent dimension of the polyhedral parameter space, so
//! every cost is *linear over monomials*. Values that cannot be expressed
//! from the parameters become **dummy parameters** (§3.4); the dummies
//! that survive into the final partitioning solution are exactly the ones
//! that need user annotations.

use offload_poly::{LinExpr, Rational};
use std::collections::BTreeMap;
use std::fmt;

/// An atomic symbol: a program parameter or a dummy parameter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Atom {
    /// The `i`-th parameter of `main`.
    Param(u32),
    /// A dummy parameter introduced for an unanalyzable quantity (§3.4).
    Dummy(u32),
}

impl fmt::Display for Atom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Atom::Param(i) => write!(f, "p{i}"),
            Atom::Dummy(i) => write!(f, "d{i}"),
        }
    }
}

/// Dense id of an interned monomial.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MonomialId(pub u32);

impl MonomialId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Why a dummy parameter exists, and how (if at all) the runtime can
/// evaluate it without user help.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DummyOrigin {
    /// Frequency of a conditional branch whose condition is a comparison
    /// of two parameter-expressible quantities: the runtime evaluates it
    /// to exactly 0 or 1 (auto-annotated).
    AutoCond {
        /// Comparison operator.
        op: offload_ir::IrBinOp,
        /// Left-hand side, as a function of parameters.
        lhs: SymExpr,
        /// Right-hand side, as a function of parameters.
        rhs: SymExpr,
        /// Human-readable description of where the branch is.
        site: String,
    },
    /// Frequency of a branch the analysis could not express — requires a
    /// user annotation (a function of the parameters in `[0, 1]`).
    BranchFreq {
        /// Human-readable description of where the branch is.
        site: String,
    },
    /// Trip count of a loop the analysis could not express — requires a
    /// user annotation (a non-negative function of the parameters).
    TripCount {
        /// Human-readable description of where the loop is.
        site: String,
    },
    /// A dynamic allocation size the analysis could not express.
    AllocSize {
        /// Human-readable description of the allocation site.
        site: String,
    },
    /// Invocation count of a function in a call-graph cycle.
    Recursion {
        /// Function name.
        site: String,
    },
}

impl DummyOrigin {
    /// Returns `true` if the runtime can evaluate this dummy from the
    /// parameter values without a user annotation.
    pub fn is_auto(&self) -> bool {
        matches!(self, DummyOrigin::AutoCond { .. })
    }

    /// Human-readable description of the site that created the dummy.
    pub fn site(&self) -> &str {
        match self {
            DummyOrigin::AutoCond { site, .. }
            | DummyOrigin::BranchFreq { site }
            | DummyOrigin::TripCount { site }
            | DummyOrigin::AllocSize { site }
            | DummyOrigin::Recursion { site } => site,
        }
    }
}

/// Interning table for atoms and monomials.
///
/// Every distinct monomial that appears in a cost expression occupies one
/// dimension of the polyhedral parameter space (the §5.1 linearization).
#[derive(Debug, Clone, Default)]
pub struct ParamDict {
    /// Names of `main`'s parameters, in order.
    param_names: Vec<String>,
    /// Dummy parameter origins, indexed by dummy id.
    dummies: Vec<DummyOrigin>,
    /// Interned monomials: sorted atom multisets.
    monomials: Vec<Vec<Atom>>,
    index: BTreeMap<Vec<Atom>, MonomialId>,
}

impl ParamDict {
    /// Creates a dictionary for the given parameter names.
    pub fn new(param_names: Vec<String>) -> Self {
        ParamDict {
            param_names,
            ..Default::default()
        }
    }

    /// Number of program parameters.
    pub fn param_count(&self) -> usize {
        self.param_names.len()
    }

    /// Name of parameter `i`.
    pub fn param_name(&self, i: u32) -> &str {
        &self.param_names[i as usize]
    }

    /// All dummy origins (indexed by dummy id).
    pub fn dummies(&self) -> &[DummyOrigin] {
        &self.dummies
    }

    /// Registers a new dummy parameter and returns its atom.
    pub fn fresh_dummy(&mut self, origin: DummyOrigin) -> Atom {
        let id = self.dummies.len() as u32;
        self.dummies.push(origin);
        Atom::Dummy(id)
    }

    /// Interns a monomial (a multiset of atoms; empty = the constant 1 is
    /// *not* interned — constants live in [`SymExpr::constant`]).
    ///
    /// # Panics
    ///
    /// Panics if `atoms` is empty.
    pub fn intern(&mut self, mut atoms: Vec<Atom>) -> MonomialId {
        assert!(!atoms.is_empty(), "the empty monomial is the constant term");
        atoms.sort();
        if let Some(&id) = self.index.get(&atoms) {
            return id;
        }
        let id = MonomialId(self.monomials.len() as u32);
        self.monomials.push(atoms.clone());
        self.index.insert(atoms, id);
        id
    }

    /// The atoms of a monomial.
    pub fn atoms(&self, id: MonomialId) -> &[Atom] {
        &self.monomials[id.index()]
    }

    /// Number of interned monomials.
    pub fn monomial_count(&self) -> usize {
        self.monomials.len()
    }

    /// Degree-1 monomial for a single atom.
    pub fn atom_monomial(&mut self, a: Atom) -> MonomialId {
        self.intern(vec![a])
    }

    /// Product of two monomials.
    pub fn product(&mut self, a: MonomialId, b: MonomialId) -> MonomialId {
        let mut atoms = self.monomials[a.index()].clone();
        atoms.extend_from_slice(&self.monomials[b.index()]);
        self.intern(atoms)
    }

    /// Evaluates a monomial given values for every atom.
    pub fn eval_monomial(&self, id: MonomialId, atom_value: &dyn Fn(Atom) -> Rational) -> Rational {
        let mut acc = Rational::one();
        for &a in self.atoms(id) {
            acc *= &atom_value(a);
        }
        acc
    }

    /// Renders a monomial like `x*y*z`.
    pub fn monomial_name(&self, id: MonomialId) -> String {
        self.atoms(id)
            .iter()
            .map(|a| match a {
                Atom::Param(i) => self.param_names[*i as usize].clone(),
                Atom::Dummy(i) => format!("d{i}"),
            })
            .collect::<Vec<_>>()
            .join("*")
    }
}

/// A symbolic value: a linear combination of monomials plus a constant.
///
/// Closed under addition, subtraction, multiplication (degrees add) and
/// division by constants — everything the flow-constraint propagation of
/// §3.3 needs.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SymExpr {
    /// Non-zero coefficients per monomial.
    terms: BTreeMap<MonomialId, Rational>,
    /// Constant term.
    constant: Rational,
}

impl SymExpr {
    /// The zero expression.
    pub fn zero() -> Self {
        SymExpr::default()
    }

    /// A constant expression.
    pub fn constant(c: Rational) -> Self {
        SymExpr {
            terms: BTreeMap::new(),
            constant: c,
        }
    }

    /// A constant integer expression.
    pub fn int(c: i64) -> Self {
        Self::constant(Rational::from(c))
    }

    /// The expression consisting of one atom (interned as a monomial).
    pub fn atom(dict: &mut ParamDict, a: Atom) -> Self {
        let m = dict.atom_monomial(a);
        let mut terms = BTreeMap::new();
        terms.insert(m, Rational::one());
        SymExpr {
            terms,
            constant: Rational::zero(),
        }
    }

    /// The constant term.
    pub fn constant_term(&self) -> &Rational {
        &self.constant
    }

    /// The monomial coefficients.
    pub fn terms(&self) -> impl Iterator<Item = (MonomialId, &Rational)> {
        self.terms.iter().map(|(m, c)| (*m, c))
    }

    /// Returns `true` if the expression is a constant.
    pub fn is_constant(&self) -> bool {
        self.terms.is_empty()
    }

    /// Returns `Some(c)` if the expression is the constant `c`.
    pub fn as_constant(&self) -> Option<&Rational> {
        if self.is_constant() {
            Some(&self.constant)
        } else {
            None
        }
    }

    /// Returns `true` if the expression is identically zero.
    pub fn is_zero(&self) -> bool {
        self.terms.is_empty() && self.constant.is_zero()
    }

    /// `self + other`.
    pub fn add(&self, other: &SymExpr) -> SymExpr {
        let mut out = self.clone();
        for (m, c) in &other.terms {
            let entry = out.terms.entry(*m).or_default();
            *entry = &*entry + c;
            if entry.is_zero() {
                out.terms.remove(m);
            }
        }
        out.constant = &out.constant + &other.constant;
        out
    }

    /// `self - other`.
    pub fn sub(&self, other: &SymExpr) -> SymExpr {
        self.add(&other.scale(&Rational::from(-1)))
    }

    /// `k * self`.
    pub fn scale(&self, k: &Rational) -> SymExpr {
        if k.is_zero() {
            return SymExpr::zero();
        }
        SymExpr {
            terms: self.terms.iter().map(|(m, c)| (*m, c * k)).collect(),
            constant: &self.constant * k,
        }
    }

    /// `self * other` (polynomial product; needs the dictionary to intern
    /// product monomials).
    pub fn mul(&self, other: &SymExpr, dict: &mut ParamDict) -> SymExpr {
        let mut out = SymExpr::constant(&self.constant * &other.constant);
        for (m, c) in &self.terms {
            // m * other.constant
            if !other.constant.is_zero() {
                let entry = out.terms.entry(*m).or_default();
                *entry = &*entry + &(c * &other.constant);
            }
            for (m2, c2) in &other.terms {
                let prod = dict.product(*m, *m2);
                let entry = out.terms.entry(prod).or_default();
                *entry = &*entry + &(c * c2);
            }
        }
        for (m2, c2) in &other.terms {
            if !self.constant.is_zero() {
                let entry = out.terms.entry(*m2).or_default();
                *entry = &*entry + &(c2 * &self.constant);
            }
        }
        out.terms.retain(|_, c| !c.is_zero());
        out
    }

    /// Division by a non-zero constant.
    ///
    /// # Panics
    ///
    /// Panics if `k` is zero.
    pub fn div_const(&self, k: &Rational) -> SymExpr {
        self.scale(&k.recip())
    }

    /// Evaluates given values for every atom.
    pub fn eval(&self, dict: &ParamDict, atom_value: &dyn Fn(Atom) -> Rational) -> Rational {
        let mut acc = self.constant.clone();
        for (m, c) in &self.terms {
            acc += &(c * &dict.eval_monomial(*m, atom_value));
        }
        acc
    }

    /// Converts to a [`LinExpr`] over a dense variable space where
    /// `var_of(monomial)` supplies the dimension of each monomial.
    pub fn to_linexpr(&self, nvars: usize, var_of: &dyn Fn(MonomialId) -> usize) -> LinExpr {
        let mut e = LinExpr::constant(nvars, self.constant.clone());
        for (m, c) in &self.terms {
            e = e.plus_term(var_of(*m), c.clone());
        }
        e
    }

    /// Returns `true` if any monomial of the expression contains `atom`.
    pub fn mentions_atom(&self, dict: &ParamDict, atom: Atom) -> bool {
        self.terms.keys().any(|m| dict.atoms(*m).contains(&atom))
    }

    /// Substitutes a polynomial for every occurrence of `atom` (each
    /// occurrence in a monomial multiplies by one copy of `value`). Used
    /// to apply §3.4 user annotations *before* partitioning, which removes
    /// the dummy's dimension from the polyhedral space entirely.
    pub fn substitute_atom(&self, dict: &mut ParamDict, atom: Atom, value: &SymExpr) -> SymExpr {
        let mut out = SymExpr::constant(self.constant.clone());
        for (m, coeff) in self.terms.clone() {
            let atoms = dict.atoms(m).to_vec();
            let occurrences = atoms.iter().filter(|a| **a == atom).count();
            if occurrences == 0 {
                let e = out.terms.entry(m).or_default();
                *e = &*e + &coeff;
                continue;
            }
            let rest: Vec<Atom> = atoms.into_iter().filter(|a| *a != atom).collect();
            let mut term = if rest.is_empty() {
                SymExpr::constant(coeff)
            } else {
                let rest_m = dict.intern(rest);
                let mut t = SymExpr::zero();
                t.terms.insert(rest_m, coeff);
                t
            };
            for _ in 0..occurrences {
                term = term.mul(value, dict);
            }
            out = out.add(&term);
        }
        out.terms.retain(|_, c| !c.is_zero());
        out
    }

    /// Returns `true` if the expression is exactly `1 * atom` (no other
    /// terms, no constant).
    pub fn is_single_atom(&self, dict: &ParamDict, atom: Atom) -> bool {
        if !self.constant.is_zero() || self.terms.len() != 1 {
            return false;
        }
        let (m, c) = self.terms.iter().next().expect("one term");
        c == &Rational::one() && dict.atoms(*m) == [atom]
    }

    /// Renders with monomial names from the dictionary.
    pub fn display(&self, dict: &ParamDict) -> String {
        if self.terms.is_empty() {
            return self.constant.to_string();
        }
        let mut parts = Vec::new();
        for (m, c) in &self.terms {
            let name = dict.monomial_name(*m);
            if c == &Rational::one() {
                parts.push(name);
            } else {
                parts.push(format!("{c}*{name}"));
            }
        }
        if !self.constant.is_zero() {
            parts.push(self.constant.to_string());
        }
        parts.join(" + ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dict() -> ParamDict {
        ParamDict::new(vec!["x".into(), "y".into(), "z".into()])
    }

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn atoms_and_constants() {
        let mut d = dict();
        let x = SymExpr::atom(&mut d, Atom::Param(0));
        let e = x.add(&SymExpr::int(3));
        assert!(!e.is_constant());
        assert_eq!(e.constant_term(), &r(3));
        assert_eq!(e.display(&d), "x + 3");
    }

    #[test]
    fn products_intern_monomials() {
        let mut d = dict();
        let x = SymExpr::atom(&mut d, Atom::Param(0));
        let y = SymExpr::atom(&mut d, Atom::Param(1));
        let xy = x.mul(&y, &mut d);
        let yx = y.mul(&x, &mut d);
        assert_eq!(xy, yx, "commutative: same interned monomial");
        assert_eq!(xy.display(&d), "x*y");
        // (x + 1)(y + 2) = xy + 2x + y + 2
        let e = x
            .add(&SymExpr::int(1))
            .mul(&y.add(&SymExpr::int(2)), &mut d);
        let vals = |a: Atom| match a {
            Atom::Param(0) => r(3),
            Atom::Param(1) => r(5),
            _ => r(0),
        };
        assert_eq!(e.eval(&d, &vals), r((3 + 1) * (5 + 2)));
    }

    #[test]
    fn add_cancels() {
        let mut d = dict();
        let x = SymExpr::atom(&mut d, Atom::Param(0));
        let zero = x.sub(&x);
        assert!(zero.is_zero());
    }

    #[test]
    fn eval_table1_costs() {
        // Reproduces the running example's cost expressions: with
        // x frames, buffer size y, work z, offloading g costs 12x + 4xy.
        let mut d = dict();
        let x = SymExpr::atom(&mut d, Atom::Param(0));
        let y = SymExpr::atom(&mut d, Atom::Param(1));
        let xy = x.mul(&y, &mut d);
        let cost = x.scale(&r(12)).add(&xy.scale(&r(4)));
        let at = |xv: i64, yv: i64| {
            let vals = move |a: Atom| match a {
                Atom::Param(0) => r(xv),
                Atom::Param(1) => r(yv),
                _ => r(0),
            };
            cost.eval(&d, &vals)
        };
        assert_eq!(at(1, 6), r(12 + 24));
        assert_eq!(at(2, 3), r(24 + 24));
    }

    #[test]
    fn to_linexpr_roundtrip() {
        let mut d = dict();
        let x = SymExpr::atom(&mut d, Atom::Param(0));
        let y = SymExpr::atom(&mut d, Atom::Param(1));
        let xy = x.mul(&y, &mut d);
        let e = xy.scale(&r(2)).add(&x).add(&SymExpr::int(7));
        // Dense space: one var per monomial id.
        let n = d.monomial_count();
        let le = e.to_linexpr(n, &|m| m.index());
        assert_eq!(le.constant_term(), &r(7));
        // x is monomial 0 (first interned), xy is monomial 2 or so —
        // verify via evaluation instead of hardcoding:
        let point: Vec<Rational> = (0..n)
            .map(|i| {
                let vals = |a: Atom| match a {
                    Atom::Param(0) => r(3),
                    Atom::Param(1) => r(4),
                    _ => r(0),
                };
                d.eval_monomial(MonomialId(i as u32), &vals)
            })
            .collect();
        let vals = |a: Atom| match a {
            Atom::Param(0) => r(3),
            Atom::Param(1) => r(4),
            _ => r(0),
        };
        assert_eq!(le.eval(&point), e.eval(&d, &vals));
    }

    #[test]
    fn dummies_tracked() {
        let mut d = dict();
        let dum = d.fresh_dummy(DummyOrigin::TripCount {
            site: "f:bb3".into(),
        });
        assert_eq!(d.dummies().len(), 1);
        assert!(!d.dummies()[0].is_auto());
        let e = SymExpr::atom(&mut d, dum);
        assert_eq!(e.display(&d), "d0");
    }

    #[test]
    fn scale_and_div() {
        let mut d = dict();
        let x = SymExpr::atom(&mut d, Atom::Param(0));
        let e = x.scale(&r(6)).div_const(&r(3));
        let vals = |_: Atom| r(5);
        assert_eq!(e.eval(&d, &vals), r(10));
    }
}
