//! # offload-symbolic
//!
//! Parametric cost-expression machinery for the offloading compiler: the
//! paper's §3.3 flow constraints and §3.4 dummy-parameter/annotation
//! mechanism, over the §5.1 monomial linearization.
//!
//! The central entry point is [`Symbolic::analyze`], which expresses block
//! and edge execution counts, function invocation counts and dynamic
//! allocation sizes as polynomials ([`SymExpr`]) in `main`'s parameters.
//! Each distinct monomial (`x`, `x·y`, `x·y·z`, …) later becomes one
//! dimension of the polyhedral parameter space used by the parametric
//! min-cut.
//!
//! ```
//! use offload_lang::frontend;
//! use offload_ir::lower;
//! use offload_symbolic::Symbolic;
//!
//! // main(n): a loop that executes n times.
//! let checked = frontend(
//!     "void main(int n) { int i; for (i = 0; i < n; i++) { output(i); } }",
//! )?;
//! let module = lower(&checked);
//! let sym = Symbolic::analyze(&module, &Default::default());
//! let main = module.main;
//! // Some block of main executes exactly `n` times.
//! let f = &sym.funcs[main.index()];
//! let has_n_count = f.block_counts.values().any(|c| {
//!     c.display(&sym.dict) == "n"
//! });
//! assert!(has_n_count);
//! # Ok::<(), offload_lang::LangError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod analysis;
mod expr;

pub use analysis::{AllocSymbolic, FuncSymbolic, SymVal, Symbolic};
pub use expr::{Atom, DummyOrigin, MonomialId, ParamDict, SymExpr};
