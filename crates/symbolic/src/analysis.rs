//! Demand-driven symbolic analysis and flow-constraint propagation
//! (§3.3–3.4 of the paper).
//!
//! The analysis expresses, as functions of `main`'s parameters:
//!
//! * the **execution count** of every basic block and CFG edge (via loop
//!   trip counts and branch frequencies — the paper's flow constraints);
//! * the **size** of dynamically allocated data per allocation site
//!   (`s = r · S(h)`);
//! * the **invocation count** of every function.
//!
//! Quantities the analysis cannot express become *dummy parameters*
//! (§3.4). A dummy carries its origin: branch conditions comparing two
//! parameter-expressible values are *auto-annotated* (the runtime
//! evaluates them exactly); everything else requires a user annotation.
//!
//! Symbolic values are rational polynomials; integer division in trip
//! counts is approximated by exact rational division (the error is at
//! most one iteration, far below the ±10% prediction-error budget the
//! paper reports).

use crate::expr::{Atom, DummyOrigin, ParamDict, SymExpr};
use offload_ir::{
    natural_loops, BlockId, Callee, Dominators, FuncDef, FuncId, Inst, IrBinOp, LocalId, Module,
    NaturalLoop, Operand, Preds, Terminator,
};
use offload_poly::Rational;
use offload_tcfg::IndirectTargets;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};

/// A symbolic register value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SymVal {
    /// A polynomial in the parameters (and dummies).
    Expr(SymExpr),
    /// The 0/1 result of a comparison of two polynomials.
    Cmp(IrBinOp, SymExpr, SymExpr),
    /// Not expressible.
    Unknown,
}

impl SymVal {
    fn merge(&self, other: &SymVal) -> SymVal {
        if self == other {
            self.clone()
        } else {
            SymVal::Unknown
        }
    }

    /// The polynomial, if this is an [`SymVal::Expr`].
    pub fn as_expr(&self) -> Option<&SymExpr> {
        match self {
            SymVal::Expr(e) => Some(e),
            _ => None,
        }
    }
}

/// Per-function symbolic results.
#[derive(Debug, Clone, Default)]
pub struct FuncSymbolic {
    /// Execution count of each block.
    pub block_counts: HashMap<BlockId, SymExpr>,
    /// Execution count of each intra-function CFG edge.
    pub edge_counts: HashMap<(BlockId, BlockId), SymExpr>,
    /// How many times the function is invoked.
    pub invocations: SymExpr,
    /// Trip count of each natural loop, keyed by header.
    pub trip_counts: HashMap<BlockId, SymExpr>,
}

/// Symbolic information about one allocation site.
#[derive(Debug, Clone)]
pub struct AllocSymbolic {
    /// Function containing the `alloc`.
    pub func: FuncId,
    /// Block containing the `alloc`.
    pub block: BlockId,
    /// Slots allocated per execution (`S(h) · elem_slots`).
    pub per_exec_slots: SymExpr,
    /// Total slots over the whole run (`r · S(h) · elem_slots`).
    pub total_slots: SymExpr,
    /// Execution count of the allocation statement (`r`).
    pub count: SymExpr,
}

/// Whole-module symbolic analysis results.
#[derive(Debug)]
pub struct Symbolic {
    /// The interning dictionary (parameters, dummies, monomials).
    pub dict: ParamDict,
    /// Per-function results, indexed by function id.
    pub funcs: Vec<FuncSymbolic>,
    /// Per-allocation-site results, indexed by allocation-site id.
    pub allocs: Vec<AllocSymbolic>,
}

impl Symbolic {
    /// Runs the analysis over a module.
    ///
    /// `indirect` resolves indirect call targets (pass the points-to
    /// result; the conservative default over-counts).
    pub fn analyze(module: &Module, indirect: &IndirectTargets) -> Symbolic {
        Analyzer::new(module, indirect).run()
    }

    /// Execution count of a block.
    pub fn block_count(&self, func: FuncId, block: BlockId) -> SymExpr {
        self.funcs[func.index()]
            .block_counts
            .get(&block)
            .cloned()
            .unwrap_or_else(SymExpr::zero)
    }

    /// Execution count of a CFG edge.
    pub fn edge_count(&self, func: FuncId, from: BlockId, to: BlockId) -> SymExpr {
        self.funcs[func.index()]
            .edge_counts
            .get(&(from, to))
            .cloned()
            .unwrap_or_else(SymExpr::zero)
    }

    /// Substitutes a polynomial (over parameters and other dummies) for a
    /// dummy parameter throughout every stored count and size — applying
    /// a §3.4 user annotation before partitioning, so the dummy never
    /// becomes a polyhedral dimension.
    pub fn substitute_dummy(&mut self, dummy: u32, value: &SymExpr) {
        let atom = Atom::Dummy(dummy);
        let dict = &mut self.dict;
        for f in &mut self.funcs {
            for e in f.block_counts.values_mut() {
                *e = e.substitute_atom(dict, atom, value);
            }
            for e in f.edge_counts.values_mut() {
                *e = e.substitute_atom(dict, atom, value);
            }
            for e in f.trip_counts.values_mut() {
                *e = e.substitute_atom(dict, atom, value);
            }
            f.invocations = f.invocations.substitute_atom(dict, atom, value);
        }
        for a in &mut self.allocs {
            a.per_exec_slots = a.per_exec_slots.substitute_atom(dict, atom, value);
            a.total_slots = a.total_slots.substitute_atom(dict, atom, value);
            a.count = a.count.substitute_atom(dict, atom, value);
        }
    }

    /// Dummy parameters that require a user annotation (non-auto).
    pub fn annotations_required(&self) -> Vec<(u32, &DummyOrigin)> {
        self.dict
            .dummies()
            .iter()
            .enumerate()
            .filter(|(_, d)| !d.is_auto())
            .map(|(i, d)| (i as u32, d))
            .collect()
    }
}

type Env = BTreeMap<LocalId, SymVal>;

struct Analyzer<'m> {
    module: &'m Module,
    indirect: &'m IndirectTargets,
    dict: ParamDict,
    /// Dedup cache for branch-frequency dummies, keyed by a rendered
    /// condition (same condition → same dummy dimension).
    cond_dummies: HashMap<String, Atom>,
    /// Probe atoms (temporary dummies for induction discovery) use ids at
    /// and above this base and never escape.
    probe_base: u32,
}

impl<'m> Analyzer<'m> {
    fn new(module: &'m Module, indirect: &'m IndirectTargets) -> Self {
        let main = module.function(module.main);
        let names = main
            .params
            .iter()
            .map(|p| main.local(*p).name.clone())
            .collect();
        Analyzer {
            module,
            indirect,
            dict: ParamDict::new(names),
            cond_dummies: HashMap::new(),
            probe_base: 1_000_000,
        }
    }

    fn run(mut self) -> Symbolic {
        let n = self.module.functions.len();
        let mut funcs: Vec<FuncSymbolic> = vec![FuncSymbolic::default(); n];
        let mut allocs: Vec<Option<AllocSymbolic>> =
            (0..self.module.alloc_sites).map(|_| None).collect();

        let order = self.call_order();
        let mut param_vals: Vec<Option<Vec<SymVal>>> = vec![None; n];
        let mut invocations: Vec<SymExpr> = vec![SymExpr::zero(); n];
        invocations[self.module.main.index()] = SymExpr::int(1);
        let main_params: Vec<SymVal> = (0..self.dict.param_count())
            .map(|i| SymVal::Expr(SymExpr::atom(&mut self.dict, Atom::Param(i as u32))))
            .collect();
        param_vals[self.module.main.index()] = Some(main_params);

        let in_cycle = self.cyclic_functions();

        for &fid in &order {
            let f = self.module.function(fid);
            let mut inv = invocations[fid.index()].clone();
            let mut params = param_vals[fid.index()]
                .clone()
                .unwrap_or_else(|| vec![SymVal::Unknown; f.params.len()]);
            if in_cycle.contains(&fid) {
                let d = self.dict.fresh_dummy(DummyOrigin::Recursion {
                    site: f.name.clone(),
                });
                inv = SymExpr::atom(&mut self.dict, d);
                params = vec![SymVal::Unknown; f.params.len()];
            }

            let result = self.analyze_function(fid, &params, &inv, &mut allocs);

            // Propagate into callees.
            let f = self.module.function(fid);
            for (bid, block) in f.iter_blocks() {
                let mut env = result.entry_envs.get(&bid).cloned().unwrap_or_default();
                for (ii, inst) in block.insts.iter().enumerate() {
                    if let Inst::Call { callee, args, .. } = inst {
                        let targets = self.call_targets(fid, bid, ii, callee);
                        let count = result
                            .counts
                            .block_counts
                            .get(&bid)
                            .cloned()
                            .unwrap_or_else(SymExpr::zero);
                        // An indirect call executes exactly one of its
                        // possible targets per call; share the count
                        // evenly rather than crediting each target with
                        // the full count (which would overstate the total
                        // workload |targets|-fold).
                        let count = if targets.len() > 1 {
                            count.div_const(&Rational::from(targets.len() as i64))
                        } else {
                            count
                        };
                        for t in targets {
                            invocations[t.index()] = invocations[t.index()].add(&count);
                            let callee_def = self.module.function(t);
                            let vals: Vec<SymVal> = callee_def
                                .params
                                .iter()
                                .enumerate()
                                .map(|(k, _)| match args.get(k) {
                                    Some(a) => self.op_val(&env, *a),
                                    None => SymVal::Unknown,
                                })
                                .collect();
                            match &mut param_vals[t.index()] {
                                slot @ None => *slot = Some(vals),
                                Some(old) => {
                                    for (o, v) in old.iter_mut().zip(vals) {
                                        *o = o.merge(&v);
                                    }
                                }
                            }
                        }
                    }
                    self.transfer(&mut env, inst);
                }
            }

            funcs[fid.index()] = result.counts;
        }

        let allocs = allocs
            .into_iter()
            .map(|a| {
                a.unwrap_or(AllocSymbolic {
                    func: FuncId(0),
                    block: BlockId(0),
                    per_exec_slots: SymExpr::zero(),
                    total_slots: SymExpr::zero(),
                    count: SymExpr::zero(),
                })
            })
            .collect();

        Symbolic {
            dict: self.dict,
            funcs,
            allocs,
        }
    }

    fn call_targets(&self, fid: FuncId, bid: BlockId, ii: usize, callee: &Callee) -> Vec<FuncId> {
        match callee {
            Callee::Direct(t) => vec![*t],
            Callee::Indirect(_) => self
                .indirect
                .per_site
                .get(&(fid, bid, ii))
                .cloned()
                .unwrap_or_default(),
        }
    }

    /// Topological order of the call graph (callers first); functions in
    /// cycles are appended afterwards in id order.
    ///
    /// Edge sets are ordered so ties in the topological sort always break
    /// the same way: the visit order decides the numbering of every dummy
    /// parameter, which must not vary from run to run.
    fn call_order(&self) -> Vec<FuncId> {
        let n = self.module.functions.len();
        let mut edges: Vec<BTreeSet<FuncId>> = vec![BTreeSet::new(); n];
        for (fi, f) in self.module.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for (bid, block) in f.iter_blocks() {
                for (ii, inst) in block.insts.iter().enumerate() {
                    if let Inst::Call { callee, .. } = inst {
                        edges[fi].extend(self.call_targets(fid, bid, ii, callee));
                    }
                }
            }
        }
        let mut indeg = vec![0usize; n];
        for targets in &edges {
            for t in targets {
                indeg[t.index()] += 1;
            }
        }
        let mut queue: VecDeque<FuncId> = (0..n)
            .map(|i| FuncId(i as u32))
            .filter(|f| indeg[f.index()] == 0)
            .collect();
        let mut order = Vec::new();
        let mut emitted = vec![false; n];
        while let Some(f) = queue.pop_front() {
            if emitted[f.index()] {
                continue;
            }
            emitted[f.index()] = true;
            order.push(f);
            for &t in &edges[f.index()] {
                indeg[t.index()] -= 1;
                if indeg[t.index()] == 0 {
                    queue.push_back(t);
                }
            }
        }
        for (i, done) in emitted.iter().enumerate() {
            if !done {
                order.push(FuncId(i as u32));
            }
        }
        order
    }

    /// Functions that can reach themselves through calls.
    fn cyclic_functions(&self) -> HashSet<FuncId> {
        let n = self.module.functions.len();
        let mut edges: Vec<HashSet<FuncId>> = vec![HashSet::new(); n];
        for (fi, f) in self.module.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for (bid, block) in f.iter_blocks() {
                for (ii, inst) in block.insts.iter().enumerate() {
                    if let Inst::Call { callee, .. } = inst {
                        edges[fi].extend(self.call_targets(fid, bid, ii, callee));
                    }
                }
            }
        }
        let mut cyclic = HashSet::new();
        for start in 0..n {
            let mut seen = HashSet::new();
            let mut stack: Vec<FuncId> = edges[start].iter().copied().collect();
            while let Some(f) = stack.pop() {
                if f.index() == start {
                    cyclic.insert(FuncId(start as u32));
                    break;
                }
                if seen.insert(f) {
                    stack.extend(edges[f.index()].iter().copied());
                }
            }
        }
        cyclic
    }

    // ---- symbolic environments ----

    fn op_val(&self, env: &Env, op: Operand) -> SymVal {
        match op {
            Operand::Const(c) => SymVal::Expr(SymExpr::int(c)),
            Operand::Local(l) => env.get(&l).cloned().unwrap_or(SymVal::Unknown),
        }
    }

    fn transfer(&mut self, env: &mut Env, inst: &Inst) {
        match inst {
            Inst::Copy { dst, src } => {
                let v = self.op_val(env, *src);
                env.insert(*dst, v);
            }
            Inst::Un { dst, op, src } => {
                let v = self.op_val(env, *src);
                let out = match (op, v) {
                    (offload_lang::UnOp::Neg, SymVal::Expr(e)) => {
                        SymVal::Expr(e.scale(&Rational::from(-1)))
                    }
                    (offload_lang::UnOp::Not, SymVal::Cmp(op, a, b)) => {
                        SymVal::Cmp(negate_cmp(op), a, b)
                    }
                    (offload_lang::UnOp::Not, SymVal::Expr(e)) => match e.as_constant() {
                        Some(c) if c.is_zero() => SymVal::Expr(SymExpr::int(1)),
                        Some(_) => SymVal::Expr(SymExpr::int(0)),
                        None => SymVal::Cmp(IrBinOp::Eq, e, SymExpr::zero()),
                    },
                    _ => SymVal::Unknown,
                };
                env.insert(*dst, out);
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                let a = self.op_val(env, *lhs);
                let b = self.op_val(env, *rhs);
                let out = match (op, &a, &b) {
                    (IrBinOp::Add, SymVal::Expr(x), SymVal::Expr(y)) => SymVal::Expr(x.add(y)),
                    (IrBinOp::Sub, SymVal::Expr(x), SymVal::Expr(y)) => SymVal::Expr(x.sub(y)),
                    (IrBinOp::Mul, SymVal::Expr(x), SymVal::Expr(y)) => {
                        SymVal::Expr(x.mul(y, &mut self.dict))
                    }
                    (IrBinOp::Div, SymVal::Expr(x), SymVal::Expr(y)) => match y.as_constant() {
                        Some(c) if !c.is_zero() => SymVal::Expr(x.div_const(c)),
                        _ => SymVal::Unknown,
                    },
                    (
                        IrBinOp::Eq
                        | IrBinOp::Ne
                        | IrBinOp::Lt
                        | IrBinOp::Le
                        | IrBinOp::Gt
                        | IrBinOp::Ge,
                        SymVal::Expr(x),
                        SymVal::Expr(y),
                    ) => match (x.as_constant(), y.as_constant()) {
                        (Some(cx), Some(cy)) => {
                            SymVal::Expr(SymExpr::int(eval_cmp(*op, cx, cy) as i64))
                        }
                        _ => SymVal::Cmp(*op, x.clone(), y.clone()),
                    },
                    _ => SymVal::Unknown,
                };
                env.insert(*dst, out);
            }
            _ => {
                if let Some(d) = inst.def() {
                    env.insert(d, SymVal::Unknown);
                }
            }
        }
    }

    /// Computes entry environments by fixpoint iteration. When `members`
    /// is given, only those blocks participate and edges back to `entry`
    /// are ignored (used for loop-body probing).
    fn compute_envs(
        &mut self,
        fid: FuncId,
        members: Option<&HashSet<BlockId>>,
        entry: BlockId,
        entry_env: Env,
    ) -> HashMap<BlockId, Env> {
        let f = self.module.function(fid).clone();
        let mut envs: HashMap<BlockId, Env> = HashMap::new();
        envs.insert(entry, entry_env);
        loop {
            let mut changed = false;
            for (bid, block) in f.iter_blocks() {
                if let Some(m) = members {
                    if !m.contains(&bid) {
                        continue;
                    }
                }
                let Some(env_in) = envs.get(&bid).cloned() else {
                    continue;
                };
                let mut env = env_in;
                for inst in &block.insts {
                    self.transfer(&mut env, inst);
                }
                for succ in block.term.successors() {
                    if let Some(m) = members {
                        if !m.contains(&succ) || succ == entry {
                            continue;
                        }
                    }
                    match envs.get_mut(&succ) {
                        None => {
                            envs.insert(succ, env.clone());
                            changed = true;
                        }
                        Some(old) => {
                            for (k, v) in &env {
                                let merged = match old.get(k) {
                                    None => SymVal::Unknown,
                                    Some(o) => o.merge(v),
                                };
                                if old.get(k) != Some(&merged) {
                                    old.insert(*k, merged);
                                    changed = true;
                                }
                            }
                            let missing: Vec<LocalId> = old
                                .keys()
                                .filter(|k| !env.contains_key(k))
                                .copied()
                                .collect();
                            for k in missing {
                                if old.get(&k) != Some(&SymVal::Unknown) {
                                    old.insert(k, SymVal::Unknown);
                                    changed = true;
                                }
                            }
                        }
                    }
                }
            }
            if !changed {
                return envs;
            }
        }
    }

    // ---- per-function analysis ----

    fn analyze_function(
        &mut self,
        fid: FuncId,
        params: &[SymVal],
        invocations: &SymExpr,
        allocs: &mut [Option<AllocSymbolic>],
    ) -> FuncResult {
        let f = self.module.function(fid).clone();
        let preds = Preds::compute(&f);
        let doms = Dominators::compute(&f, &preds);
        let loops = natural_loops(&f, &preds, &doms);

        let entry_env: Env = f
            .params
            .iter()
            .zip(params)
            .map(|(p, v)| (*p, v.clone()))
            .collect();
        let envs = self.compute_envs(fid, None, f.entry, entry_env);

        // Trip counts per loop.
        let mut trips: HashMap<BlockId, SymExpr> = HashMap::new();
        for l in &loops {
            let trip = self.trip_count(fid, &f, l, &envs, &preds);
            trips.insert(l.header, trip);
        }

        // Branch frequencies (probability of the `then` edge) for
        // conditional branches other than loop-header exit tests.
        let loop_headers: HashSet<BlockId> = loops.iter().map(|l| l.header).collect();
        let mut freqs: HashMap<BlockId, SymExpr> = HashMap::new();
        for (bid, block) in f.iter_blocks() {
            if let Terminator::Branch { cond, .. } = &block.term {
                if loop_headers.contains(&bid) {
                    continue;
                }
                let mut env = envs.get(&bid).cloned().unwrap_or_default();
                for inst in &block.insts {
                    self.transfer(&mut env, inst);
                }
                let v = self.op_val(&env, *cond);
                let beta = self.branch_freq(fid, bid, v);
                freqs.insert(bid, beta);
            }
        }

        // Structural count propagation.
        let mut counts = FuncSymbolic::default();
        let all: HashSet<BlockId> = f.iter_blocks().map(|(b, _)| b).collect();
        propagate_counts(
            &mut self.dict,
            &f,
            &loops,
            &trips,
            &freqs,
            None,
            &all,
            f.entry,
            invocations.clone(),
            &mut counts,
        );

        // Allocation sizes.
        for (bid, block) in f.iter_blocks() {
            let mut env = envs.get(&bid).cloned().unwrap_or_default();
            for inst in &block.insts {
                if let Inst::Alloc {
                    elem_slots,
                    count,
                    site,
                    ..
                } = inst
                {
                    let per_exec = match self.op_val(&env, *count) {
                        SymVal::Expr(e) if !self.mentions_probe(&e) => {
                            e.scale(&Rational::from(*elem_slots as i64))
                        }
                        _ => {
                            let d = self.dict.fresh_dummy(DummyOrigin::AllocSize {
                                site: format!("{}:{}", f.name, bid),
                            });
                            SymExpr::atom(&mut self.dict, d)
                        }
                    };
                    let r = counts
                        .block_counts
                        .get(&bid)
                        .cloned()
                        .unwrap_or_else(SymExpr::zero);
                    let total = r.mul(&per_exec, &mut self.dict);
                    allocs[site.index()] = Some(AllocSymbolic {
                        func: fid,
                        block: bid,
                        per_exec_slots: per_exec,
                        total_slots: total,
                        count: r,
                    });
                }
                self.transfer(&mut env, inst);
            }
        }

        counts.invocations = invocations.clone();
        counts.trip_counts = trips;
        FuncResult {
            counts,
            entry_envs: envs,
        }
    }

    fn mentions_probe(&self, e: &SymExpr) -> bool {
        (1_000_000..self.probe_base).any(|i| e.mentions_atom(&self.dict, Atom::Dummy(i)))
    }

    fn branch_freq(&mut self, fid: FuncId, bid: BlockId, cond: SymVal) -> SymExpr {
        let fname = &self.module.function(fid).name;
        let site = format!("{fname}:{bid}");
        let atom = match cond {
            SymVal::Expr(e) if !self.mentions_probe(&e) => match e.as_constant() {
                Some(c) if c.is_zero() => return SymExpr::zero(),
                Some(_) => return SymExpr::int(1),
                None => self.cond_dummy(IrBinOp::Ne, e, SymExpr::zero(), site),
            },
            SymVal::Cmp(op, lhs, rhs)
                if !self.mentions_probe(&lhs) && !self.mentions_probe(&rhs) =>
            {
                self.cond_dummy(op, lhs, rhs, site)
            }
            _ => self.dict.fresh_dummy(DummyOrigin::BranchFreq { site }),
        };
        SymExpr::atom(&mut self.dict, atom)
    }

    /// Interns an auto-annotatable condition dummy (same condition text →
    /// same dummy dimension).
    fn cond_dummy(&mut self, op: IrBinOp, lhs: SymExpr, rhs: SymExpr, site: String) -> Atom {
        let key = format!(
            "{op:?}|{}|{}",
            lhs.display(&self.dict),
            rhs.display(&self.dict)
        );
        if let Some(&a) = self.cond_dummies.get(&key) {
            return a;
        }
        let a = self
            .dict
            .fresh_dummy(DummyOrigin::AutoCond { op, lhs, rhs, site });
        self.cond_dummies.insert(key, a);
        a
    }

    /// Recovers a loop's trip count via an induction-variable probe:
    /// re-run the symbolic transfer over the loop body with every
    /// loop-defined register replaced by a fresh probe atom, then read the
    /// header's exit test and the latch-carried update.
    fn trip_count(
        &mut self,
        fid: FuncId,
        f: &FuncDef,
        l: &NaturalLoop,
        envs: &HashMap<BlockId, Env>,
        preds: &Preds,
    ) -> SymExpr {
        let site = format!("{}:{}", f.name, l.header);
        macro_rules! fallback {
            () => {{
                let d = self.dict.fresh_dummy(DummyOrigin::TripCount { site });
                return SymExpr::atom(&mut self.dict, d);
            }};
        }

        let header_block = f.block(l.header);
        let Terminator::Branch {
            cond,
            then,
            otherwise,
        } = &header_block.term
        else {
            fallback!()
        };
        let negated = if l.contains(*then) && !l.contains(*otherwise) {
            false
        } else if l.contains(*otherwise) && !l.contains(*then) {
            true
        } else {
            fallback!()
        };

        // Entry env: merge over predecessors outside the loop, advanced
        // through their instructions.
        let mut init_env: Option<Env> = None;
        for &p in preds.of(l.header) {
            if l.contains(p) {
                continue;
            }
            let mut env = match envs.get(&p) {
                Some(e) => e.clone(),
                None => continue,
            };
            for inst in &f.block(p).insts {
                self.transfer(&mut env, inst);
            }
            init_env = Some(match init_env {
                None => env,
                Some(old) => merge_envs(&old, &env),
            });
        }
        let Some(init_env) = init_env else {
            fallback!()
        };

        // Probe env: loop-defined registers become fresh probe atoms.
        let defined_in_loop: HashSet<LocalId> = l
            .body
            .iter()
            .flat_map(|b| f.block(*b).insts.iter().filter_map(Inst::def))
            .collect();
        let mut probe_env = init_env.clone();
        let mut probes: HashMap<LocalId, Atom> = HashMap::new();
        for reg in &defined_in_loop {
            let probe = Atom::Dummy(self.probe_base);
            self.probe_base += 1;
            probes.insert(*reg, probe);
            let e = SymExpr::atom(&mut self.dict, probe);
            probe_env.insert(*reg, SymVal::Expr(e));
        }

        let body_envs = self.compute_envs(fid, Some(&l.body), l.header, probe_env.clone());

        // Exit test in the probe env advanced through the header.
        let mut henv = probe_env.clone();
        for inst in &header_block.insts {
            self.transfer(&mut henv, inst);
        }
        let SymVal::Cmp(mut op, lhs, rhs) = self.op_val(&henv, *cond) else {
            fallback!()
        };
        if negated {
            op = negate_cmp(op);
        }

        let mentions_any =
            |me: &Self, e: &SymExpr| probes.values().any(|a| e.mentions_atom(&me.dict, *a));
        let probe_of = |me: &Self, e: &SymExpr| -> Option<LocalId> {
            probes
                .iter()
                .find(|(_, a)| e.is_single_atom(&me.dict, **a))
                .map(|(r, _)| *r)
        };
        let (ivar, bound) = if let Some(r) = probe_of(self, &lhs) {
            if mentions_any(self, &rhs) {
                fallback!()
            }
            (r, rhs)
        } else if let Some(r) = probe_of(self, &rhs) {
            if mentions_any(self, &lhs) {
                fallback!()
            }
            op = flip_cmp(op);
            (r, lhs)
        } else {
            fallback!()
        };

        // Step: probe + c at every latch.
        let probe_atom = probes[&ivar];
        let probe_expr = SymExpr::atom(&mut self.dict, probe_atom);
        let mut step: Option<Rational> = None;
        for &latch in &l.latches {
            let mut env = match body_envs.get(&latch) {
                Some(e) => e.clone(),
                None => fallback!(),
            };
            for inst in &f.block(latch).insts {
                self.transfer(&mut env, inst);
            }
            let Some(SymVal::Expr(v)) = env.get(&ivar).cloned() else {
                fallback!()
            };
            let delta = v.sub(&probe_expr);
            let Some(c) = delta.as_constant().cloned() else {
                fallback!()
            };
            match &step {
                None => step = Some(c),
                Some(s) if *s == c => {}
                _ => fallback!(),
            }
        }
        let Some(step) = step else { fallback!() };
        if step.is_zero() {
            fallback!()
        }

        // Initial value at loop entry.
        let Some(SymVal::Expr(init)) = init_env.get(&ivar).cloned() else {
            fallback!()
        };
        if mentions_any(self, &init) || mentions_any(self, &bound) {
            fallback!()
        }

        let diff = bound.sub(&init);
        match op {
            IrBinOp::Lt | IrBinOp::Ne if step.is_positive() => diff.div_const(&step),
            IrBinOp::Le if step.is_positive() => diff.div_const(&step).add(&SymExpr::int(1)),
            IrBinOp::Gt if step.is_negative() => diff.div_const(&step),
            IrBinOp::Ge if step.is_negative() => diff.div_const(&step).add(&SymExpr::int(1)),
            _ => fallback!(),
        }
    }
}

struct FuncResult {
    counts: FuncSymbolic,
    entry_envs: HashMap<BlockId, Env>,
}

fn merge_envs(a: &Env, b: &Env) -> Env {
    let mut out = Env::new();
    for (k, v) in a {
        match b.get(k) {
            Some(w) => {
                out.insert(*k, v.merge(w));
            }
            None => {
                out.insert(*k, SymVal::Unknown);
            }
        }
    }
    for k in b.keys() {
        if !a.contains_key(k) {
            out.insert(*k, SymVal::Unknown);
        }
    }
    out
}

fn negate_cmp(op: IrBinOp) -> IrBinOp {
    match op {
        IrBinOp::Eq => IrBinOp::Ne,
        IrBinOp::Ne => IrBinOp::Eq,
        IrBinOp::Lt => IrBinOp::Ge,
        IrBinOp::Le => IrBinOp::Gt,
        IrBinOp::Gt => IrBinOp::Le,
        IrBinOp::Ge => IrBinOp::Lt,
        other => other,
    }
}

fn flip_cmp(op: IrBinOp) -> IrBinOp {
    match op {
        IrBinOp::Lt => IrBinOp::Gt,
        IrBinOp::Le => IrBinOp::Ge,
        IrBinOp::Gt => IrBinOp::Lt,
        IrBinOp::Ge => IrBinOp::Le,
        other => other,
    }
}

fn eval_cmp(op: IrBinOp, a: &Rational, b: &Rational) -> bool {
    match op {
        IrBinOp::Eq => a == b,
        IrBinOp::Ne => a != b,
        IrBinOp::Lt => a < b,
        IrBinOp::Le => a <= b,
        IrBinOp::Gt => a > b,
        IrBinOp::Ge => a >= b,
        _ => false,
    }
}

// ---- structural execution-count propagation ----

/// Direct child loops of `region` within the loop forest.
fn child_loops(loops: &[NaturalLoop], region: Option<usize>) -> Vec<usize> {
    let mut children = Vec::new();
    for (i, l) in loops.iter().enumerate() {
        if Some(i) == region {
            continue;
        }
        let mut parent: Option<usize> = None;
        for (j, lj) in loops.iter().enumerate() {
            if j != i && lj.body.is_superset(&l.body) && lj.body.len() > l.body.len() {
                parent = Some(match parent {
                    None => j,
                    Some(p) if loops[p].body.len() > lj.body.len() => j,
                    Some(p) => p,
                });
            }
        }
        if parent == region {
            children.push(i);
        }
    }
    children
}

/// Propagates execution counts through one region (the whole function, or
/// a loop body), recursing into child loops collapsed as supernodes.
#[allow(clippy::too_many_arguments)]
fn propagate_counts(
    dict: &mut ParamDict,
    f: &FuncDef,
    loops: &[NaturalLoop],
    trips: &HashMap<BlockId, SymExpr>,
    freqs: &HashMap<BlockId, SymExpr>,
    region: Option<usize>,
    members: &HashSet<BlockId>,
    entry: BlockId,
    entry_count: SymExpr,
    out: &mut FuncSymbolic,
) {
    let children = child_loops(loops, region);
    let mut owner: HashMap<BlockId, usize> = HashMap::new();
    for &c in &children {
        for &b in &loops[c].body {
            owner.insert(b, c);
        }
    }
    let node_of = |b: BlockId| -> BlockId {
        match owner.get(&b) {
            Some(&c) => loops[c].header,
            None => b,
        }
    };

    // DAG edges between collapsed nodes; back edges to `entry` skipped but
    // still *recorded* with the body flow (they are real TCFG edges).
    let mut succ: HashMap<BlockId, Vec<(BlockId, BlockId, BlockId)>> = HashMap::new();
    let mut indeg: HashMap<BlockId, usize> = HashMap::new();
    for &b in members {
        indeg.entry(node_of(b)).or_insert(0);
    }
    for &b in members {
        let from = node_of(b);
        for s in f.block(b).term.successors() {
            if !members.contains(&s) || s == entry {
                continue;
            }
            let to = node_of(s);
            if to == from {
                continue; // intra-child edge, handled by the recursive call
            }
            succ.entry(from).or_default().push((to, b, s));
            *indeg.entry(to).or_insert(0) += 1;
        }
    }

    let mut inflow: HashMap<BlockId, SymExpr> = HashMap::new();
    inflow.insert(node_of(entry), entry_count);
    let mut queue: VecDeque<BlockId> = indeg
        .iter()
        .filter(|(_, d)| **d == 0)
        .map(|(b, _)| *b)
        .collect();
    let mut order = Vec::new();
    {
        let mut indeg2 = indeg.clone();
        let mut seen = HashSet::new();
        while let Some(nd) = queue.pop_front() {
            if !seen.insert(nd) {
                continue;
            }
            order.push(nd);
            for (t, _, _) in succ.get(&nd).cloned().unwrap_or_default() {
                let d = indeg2.get_mut(&t).expect("node known");
                *d = d.saturating_sub(1);
                if *d == 0 {
                    queue.push_back(t);
                }
            }
        }
        // Any unprocessed nodes (irreducible leftovers) appended for a
        // best-effort pass.
        let mut rest: Vec<BlockId> = indeg
            .keys()
            .filter(|b| !seen.contains(b))
            .copied()
            .collect();
        rest.sort();
        order.extend(rest);
    }

    for nd in order {
        let flow = inflow.get(&nd).cloned().unwrap_or_else(SymExpr::zero);
        if let Some(&child) = owner.get(&nd) {
            // Supernode for a child loop.
            let l = &loops[child];
            let trip = trips.get(&l.header).cloned().unwrap_or_else(SymExpr::zero);
            let body_flow = flow.mul(&trip, dict);
            propagate_counts(
                dict,
                f,
                loops,
                trips,
                freqs,
                Some(child),
                &l.body,
                l.header,
                body_flow,
                out,
            );
            // The header runs once more than the body per entry (the
            // final, failing loop test).
            let h = out
                .block_counts
                .entry(l.header)
                .or_insert_with(SymExpr::zero);
            *h = h.add(&flow);
            // Exit edges: total outflow equals the inflow (each entry
            // leaves once). Attribute it to the primary exit (the
            // header's exit edge when present, else the first exit edge
            // in deterministic order).
            let mut exits: Vec<(BlockId, BlockId)> = Vec::new();
            for &b in &l.body {
                for s in f.block(b).term.successors() {
                    if !l.body.contains(&s) && members.contains(&s) {
                        exits.push((b, s));
                    }
                }
            }
            exits.sort();
            let primary = exits
                .iter()
                .find(|(b, _)| *b == l.header)
                .or_else(|| exits.first())
                .copied();
            if let Some((b, s)) = primary {
                let e = out.edge_counts.entry((b, s)).or_insert_with(SymExpr::zero);
                *e = e.add(&flow);
                let t = node_of(s);
                let fl = inflow.entry(t).or_insert_with(SymExpr::zero);
                *fl = fl.add(&flow);
            }
        } else {
            // Plain block.
            let e = out.block_counts.entry(nd).or_insert_with(SymExpr::zero);
            *e = e.add(&flow);
            // Distribute to successors.
            let term = &f.block(nd).term;
            let all_succs = term.successors();
            let in_region: Vec<BlockId> = all_succs
                .iter()
                .copied()
                .filter(|s| members.contains(s) && *s != entry)
                .collect();
            // Record back edges to the region entry with the full or
            // partial flow (needed for inter-task transfer counts).
            for s in &all_succs {
                if *s == entry && members.contains(s) {
                    let share = match term {
                        Terminator::Branch { then, .. } if in_region.len() == 1 => {
                            // One side stays in region: the back edge gets
                            // the complementary share; approximate by the
                            // full flow when no frequency is known.
                            let _ = then;
                            flow.clone()
                        }
                        _ => flow.clone(),
                    };
                    let e = out
                        .edge_counts
                        .entry((nd, *s))
                        .or_insert_with(SymExpr::zero);
                    *e = e.add(&share);
                }
            }
            match term {
                Terminator::Branch {
                    then, otherwise, ..
                } if in_region.len() == 2 => {
                    let beta = freqs
                        .get(&nd)
                        .cloned()
                        .unwrap_or_else(|| SymExpr::constant(Rational::new(1, 2)));
                    let then_flow = flow.mul(&beta, dict);
                    let else_flow = flow.sub(&then_flow);
                    for (s, fl) in [(*then, then_flow), (*otherwise, else_flow)] {
                        let e = out.edge_counts.entry((nd, s)).or_insert_with(SymExpr::zero);
                        *e = e.add(&fl);
                        let t = node_of(s);
                        let entry_fl = inflow.entry(t).or_insert_with(SymExpr::zero);
                        *entry_fl = entry_fl.add(&fl);
                    }
                }
                _ => {
                    // Goto, Return, or a branch with one in-region target:
                    // the in-region target(s) receive the full flow.
                    for s in in_region {
                        let e = out.edge_counts.entry((nd, s)).or_insert_with(SymExpr::zero);
                        *e = e.add(&flow);
                        let t = node_of(s);
                        let entry_fl = inflow.entry(t).or_insert_with(SymExpr::zero);
                        *entry_fl = entry_fl.add(&flow);
                    }
                }
            }
        }
    }
}
