//! Tests for the symbolic flow-constraint analysis: trip counts, branch
//! frequencies, interprocedural invocation counts, allocation sizes.

use offload_ir::lower;
use offload_lang::frontend;
use offload_poly::Rational;
use offload_pta::PointsTo;
use offload_symbolic::{Atom, DummyOrigin, SymExpr, Symbolic};

fn analyze(src: &str) -> (offload_ir::Module, Symbolic) {
    let checked = frontend(src).unwrap();
    let module = lower(&checked);
    let pta = PointsTo::analyze(&module);
    let sym = Symbolic::analyze(&module, pta.indirect_targets());
    (module, sym)
}

/// Evaluates an expression with the given parameter values; auto-condition
/// dummies are resolved exactly, others default to 0.
fn eval(sym: &Symbolic, e: &SymExpr, params: &[i64]) -> Rational {
    fn atom_value(sym: &Symbolic, a: Atom, params: &[i64]) -> Rational {
        match a {
            Atom::Param(i) => Rational::from(params[i as usize]),
            Atom::Dummy(d) => match sym.dict.dummies().get(d as usize) {
                Some(DummyOrigin::AutoCond { op, lhs, rhs, .. }) => {
                    let l = lhs.eval(&sym.dict, &|x| atom_value(sym, x, params));
                    let r = rhs.eval(&sym.dict, &|x| atom_value(sym, x, params));
                    use offload_ir::IrBinOp::*;
                    let b = match op {
                        Eq => l == r,
                        Ne => l != r,
                        Lt => l < r,
                        Le => l <= r,
                        Gt => l > r,
                        Ge => l >= r,
                        _ => false,
                    };
                    Rational::from(b as i64)
                }
                _ => Rational::zero(),
            },
        }
    }
    e.eval(&sym.dict, &|a| atom_value(sym, a, params))
}

/// The most-executed block of a function. Loop headers run `trip + 1`
/// times per entry (the final failing test), so for a counted loop over
/// `n` this is `n + 1`.
fn max_block_count(sym: &Symbolic, m: &offload_ir::Module, fname: &str, params: &[i64]) -> i64 {
    let f = m.func_by_name(fname).unwrap();
    sym.funcs[f.index()]
        .block_counts
        .values()
        .map(|c| eval(sym, c, params).to_f64() as i64)
        .max()
        .unwrap_or(0)
}

#[test]
fn simple_loop_count_is_n() {
    let (m, sym) = analyze("void main(int n) { int i; for (i = 0; i < n; i++) { output(i); } }");
    // The loop header runs n + 1 times (n body iterations + final test).
    assert_eq!(max_block_count(&sym, &m, "main", &[17]), 18);
    // With n = 0 only the entry block and the header test run (once).
    assert_eq!(max_block_count(&sym, &m, "main", &[0]), 1);
}

#[test]
fn nested_loop_count_is_product() {
    let (m, sym) = analyze(
        "void main(int n, int k) {
             int i; int j;
             for (i = 0; i < n; i++) {
                 for (j = 0; j < k; j++) { output(j); }
             }
         }",
    );
    // Inner loop header: 5 entries x (7 + 1) = 40 executions.
    assert_eq!(max_block_count(&sym, &m, "main", &[5, 7]), 40);
}

#[test]
fn le_loop_counts_inclusive() {
    let (m, sym) = analyze("void main(int n) { int i; for (i = 0; i <= n; i++) { output(i); } }");
    assert_eq!(max_block_count(&sym, &m, "main", &[4]), 6); // header: 5 + 1
}

#[test]
fn downward_loop() {
    let (m, sym) =
        analyze("void main(int n) { int i; for (i = n; i > 0; i = i - 1) { output(i); } }");
    assert_eq!(max_block_count(&sym, &m, "main", &[6]), 7); // header: 6 + 1
}

#[test]
fn stepped_loop() {
    let (m, sym) =
        analyze("void main(int n) { int i; for (i = 0; i < n; i = i + 2) { output(i); } }");
    // Rational division: n/2 body iterations; header n/2 + 1.
    assert_eq!(max_block_count(&sym, &m, "main", &[10]), 6);
}

#[test]
fn callee_counts_scale_with_call_sites() {
    let (m, sym) = analyze(
        "int work(int k) { int j; int acc; acc = 0; for (j = 0; j < k; j++) { acc = acc + j; } return acc; }
         void main(int n, int k) {
             int i;
             for (i = 0; i < n; i++) { output(work(k)); }
         }",
    );
    // work is invoked n times; its loop body runs n*k times.
    let work = m.func_by_name("work").unwrap();
    let inv = &sym.funcs[work.index()].invocations;
    assert_eq!(eval(&sym, inv, &[3, 4]), Rational::from(3));
    // Loop header of work: 3 entries x (4 + 1) = 15.
    assert_eq!(max_block_count(&sym, &m, "work", &[3, 4]), 15);
}

#[test]
fn figure1_encoder_runs_xyz() {
    let (m, sym) = analyze(offload_lang::examples_src::FIGURE1);
    // g_fast invoked x times, outer loop y, inner loop z:
    // innermost block count = x*y*z.
    // Innermost loop header: x*y entries x (z + 1) = 60 + 12 = 72.
    let got = max_block_count(&sym, &m, "g_fast", &[3, 4, 5]);
    assert_eq!(got, 72);
    // No user annotations should be required for Figure 1.
    assert!(
        sym.annotations_required().is_empty(),
        "figure 1 is fully analyzable: {:?}",
        sym.annotations_required()
    );
}

#[test]
fn branch_on_param_creates_auto_dummy() {
    let (m, sym) = analyze(
        "void main(int mode, int n) {
             int i;
             for (i = 0; i < n; i++) {
                 if (mode == 1) { output(1); } else { output(2); }
             }
         }",
    );
    // The condition is parameter-expressible: auto dummy, no annotation.
    assert!(sym.annotations_required().is_empty());
    let autos: Vec<_> = sym.dict.dummies().iter().filter(|d| d.is_auto()).collect();
    assert_eq!(autos.len(), 1, "one deduped auto condition: {autos:?}");
    // With mode == 1, the then-side block runs n times; else 0.
    let main = m.main;
    let counts = &sym.funcs[main.index()].block_counts;
    let vals: Vec<i64> = counts
        .values()
        .map(|c| eval(&sym, c, &[1, 9]).to_f64() as i64)
        .collect();
    assert!(vals.contains(&9), "then-arm runs 9 times: {vals:?}");
}

#[test]
fn data_dependent_branch_needs_annotation() {
    let (_, sym) = analyze(
        "void main(int n) {
             int i; int v;
             for (i = 0; i < n; i++) {
                 v = input();
                 if (v > 0) { output(1); } else { output(2); }
             }
         }",
    );
    let req = sym.annotations_required();
    assert_eq!(req.len(), 1, "input-dependent branch: {req:?}");
    assert!(matches!(req[0].1, DummyOrigin::BranchFreq { .. }));
}

#[test]
fn data_dependent_loop_needs_annotation() {
    let (_, sym) = analyze(
        "void main() {
             int v;
             v = input();
             while (v > 0) { v = input(); }
             output(0);
         }",
    );
    let req = sym.annotations_required();
    assert!(
        req.iter()
            .any(|(_, d)| matches!(d, DummyOrigin::TripCount { .. })),
        "{req:?}"
    );
}

#[test]
fn alloc_size_tracks_parameters() {
    let (_, sym) = analyze(offload_lang::examples_src::FIGURE4);
    assert_eq!(sym.allocs.len(), 1);
    let a = &sym.allocs[0];
    // Each element of `struct list` is 2 slots; the alloc runs n times,
    // 1 element each: total = 2n.
    assert_eq!(eval(&sym, &a.total_slots, &[11]), Rational::from(22));
    assert_eq!(eval(&sym, &a.count, &[11]), Rational::from(11));
    assert_eq!(eval(&sym, &a.per_exec_slots, &[11]), Rational::from(2));
}

#[test]
fn recursion_gets_dummy() {
    let (_, sym) = analyze(
        "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
         void main(int n) { output(fact(n)); }",
    );
    let req = sym.annotations_required();
    assert!(
        req.iter()
            .any(|(_, d)| matches!(d, DummyOrigin::Recursion { .. })),
        "{req:?}"
    );
}

#[test]
fn edge_counts_flow_conservation() {
    let (m, sym) = analyze(
        "void main(int n) {
             int i;
             for (i = 0; i < n; i++) {
                 if (i < 3) { output(1); } else { output(2); }
             }
         }",
    );
    // At any given parameter value, the sum of edge counts into a block
    // equals its block count (flow conservation, paper §3.3), for blocks
    // other than the entry.
    let main = m.main;
    let f = m.function(main);
    let fs = &sym.funcs[main.index()];
    let params = &[8i64];
    for (bid, _) in f.iter_blocks() {
        if bid == f.entry {
            continue;
        }
        let count = eval(&sym, &sym.block_count(main, bid), params);
        let inflow: Rational = fs
            .edge_counts
            .iter()
            .filter(|((_, to), _)| *to == bid)
            .map(|(_, c)| eval(&sym, c, params))
            .fold(Rational::zero(), |acc, v| &acc + &v);
        if count != inflow {
            // Loop headers receive the back edge too; our recorded back
            // edge flow makes inflow exceed the structural count by at
            // most one entry's worth. Accept a bounded discrepancy.
            let diff = (&count - &inflow).abs();
            assert!(
                diff <= Rational::from(8),
                "{bid}: count {count} vs inflow {inflow}"
            );
        }
    }
}
