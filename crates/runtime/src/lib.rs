//! # offload-runtime
//!
//! The distributed execution substrate of the reproduction: a
//! deterministic two-host simulator standing in for the paper's iPAQ
//! client + desktop server + WaveLAN testbed.
//!
//! * [`DeviceModel`] — simulated client/server speeds, link costs, cache
//!   behaviour and client power draw, with §3.2-style calibration;
//! * [`Runner`] — executes a lowered program under a partitioning plan
//!   ([`Plan::AllLocal`] or a [`offload_core::Partition`]), simulating
//!   message passing, the registration mechanism for dynamic data, and
//!   per-item validity states;
//! * [`Simulator`] — convenience facade tying a finished
//!   [`offload_core::Analysis`] to a device model.
//!
//! ```
//! use offload_core::{Analysis, AnalysisOptions};
//! use offload_runtime::{DeviceModel, Simulator};
//!
//! let src = "
//!     int work(int k) {
//!         int j; int acc;
//!         acc = 0;
//!         for (j = 0; j < k; j++) { acc = acc + j * j; }
//!         return acc;
//!     }
//!     void main(int n) { output(work(n)); }";
//! let analysis = Analysis::from_source(src, AnalysisOptions::default())?;
//! let sim = Simulator::new(&analysis, DeviceModel::ipaq_testbed());
//! let local = sim.run_local(&[50], &[])?;
//! let (choice, dispatched) = sim.run_dispatched(&[50], &[])?;
//! // Same observable behaviour under any plan:
//! assert_eq!(local.outputs, dispatched.outputs);
//! # let _ = choice;
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod device;
mod exec;
pub mod host;
mod value;

pub use device::DeviceModel;
pub use exec::{Host, Plan, RunResult, RunStats, Runner, RuntimeError};
pub use host::{
    ControlMsg, ExecHost, Frame, HostError, ItemPayload, Ledger, Machine, ObjEntry, Outcome,
    PendingAction,
};
pub use value::{ObjKey, Value};

use offload_core::Analysis;
use offload_pta::AbsLocId;

/// Errors from the [`Simulator`] facade.
#[derive(Debug)]
pub enum SimError {
    /// The run itself failed.
    Runtime(RuntimeError),
    /// Choosing a partition failed (missing annotation, arity).
    Dispatch(offload_core::DispatchError),
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Runtime(e) => write!(f, "{e}"),
            SimError::Dispatch(e) => write!(f, "{e}"),
        }
    }
}
impl std::error::Error for SimError {}

impl From<RuntimeError> for SimError {
    fn from(e: RuntimeError) -> Self {
        SimError::Runtime(e)
    }
}
impl From<offload_core::DispatchError> for SimError {
    fn from(e: offload_core::DispatchError) -> Self {
        SimError::Dispatch(e)
    }
}

/// Ties an [`Analysis`] to a [`DeviceModel`] for convenient experiments.
pub struct Simulator<'a> {
    analysis: &'a Analysis,
    device: DeviceModel,
    tracked: Vec<AbsLocId>,
}

impl<'a> Simulator<'a> {
    /// Creates a simulator for the analyzed program.
    pub fn new(analysis: &'a Analysis, device: DeviceModel) -> Self {
        let tracked = analysis.items.items.iter().map(|i| i.loc).collect();
        Simulator {
            analysis,
            device,
            tracked,
        }
    }

    /// The device model in use.
    pub fn device(&self) -> &DeviceModel {
        &self.device
    }

    fn runner<'b>(&'b self, plan: Plan<'b>) -> Runner<'b> {
        Runner {
            module: &self.analysis.module,
            tcfg: &self.analysis.tcfg,
            pta: &self.analysis.pta,
            tracked_order: &self.tracked,
            device: &self.device,
            plan,
            max_steps: 0,
        }
    }

    /// Runs under any [`Plan`] — the single execution entry point shared
    /// with the TCP engine and the experiment harness. [`Plan::Remote`]
    /// indices are resolved against this simulator's analysis.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    ///
    /// # Panics
    ///
    /// Panics if a [`Plan::Remote`] index is out of range.
    pub fn run(
        &self,
        plan: Plan<'_>,
        params: &[i64],
        input: &[i64],
    ) -> Result<RunResult, SimError> {
        let plan = plan.resolve(&self.analysis.partition);
        Ok(self.runner(plan).run(params, input)?)
    }

    /// Runs everything on the client (the paper's normalization baseline).
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    pub fn run_local(&self, params: &[i64], input: &[i64]) -> Result<RunResult, SimError> {
        self.run(Plan::AllLocal, params, input)
    }

    /// Runs under a specific partitioning choice.
    ///
    /// # Errors
    ///
    /// Propagates [`RuntimeError`].
    ///
    /// # Panics
    ///
    /// Panics if `choice` is out of range.
    pub fn run_choice(
        &self,
        choice: usize,
        params: &[i64],
        input: &[i64],
    ) -> Result<RunResult, SimError> {
        self.run(Plan::Remote(choice), params, input)
    }

    /// Full adaptive execution: dispatch on the parameter values (the
    /// Figure 2 transformation), then run the selected partitioning.
    ///
    /// The dispatch itself goes through [`offload_core::Analysis::decide`],
    /// so it uses the compiled point-location DAG when one is present.
    ///
    /// # Errors
    ///
    /// Propagates dispatch and runtime errors.
    pub fn run_dispatched(
        &self,
        params: &[i64],
        input: &[i64],
    ) -> Result<(usize, RunResult), SimError> {
        let idx = self.analysis.decide(params)?.region_id;
        let result = self.run_choice(idx, params, input)?;
        Ok((idx, result))
    }
}
