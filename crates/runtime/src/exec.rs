//! The two-host distributed executor.
//!
//! Executes a lowered program under a partitioning plan, simulating the
//! paper's client/server runtime (§2): the two hosts take turns (the
//! *active* host computes while the *passive* host blocks), task
//! scheduling and data movement travel as costed messages, and each host
//! keeps its own copy of every memory object with per-item validity
//! states maintained dynamically.
//!
//! Data movement is **plan-guided but self-correcting**: the eager
//! transfers recorded in the partitioning plan are applied when control
//! crosses hosts, and any read of a locally-invalid item triggers a lazy
//! pull (a costed round trip). Output correctness therefore never depends
//! on the quality of the static transfer schedule — only performance
//! does, exactly like a real system.

use crate::device::DeviceModel;
use crate::value::{ObjKey, Value};
use offload_core::{Direction, Partition};
use offload_ir::{
    AllocSiteId, BlockId, Callee, FuncId, Inst, IrBinOp, LocalId, LocalKind, Module, Operand,
    Terminator,
};
use offload_poly::Rational;
use offload_pta::{AbsLoc, AbsLocId, PointsTo};
use offload_tcfg::{EdgeKind, SegmentId, TaskId, Tcfg};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// Which host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Host {
    /// The mobile device (I/O lives here).
    Client,
    /// The remote server.
    Server,
}

impl Host {
    fn index(self) -> usize {
        match self {
            Host::Client => 0,
            Host::Server => 1,
        }
    }

    fn other(self) -> Host {
        match self {
            Host::Client => Host::Server,
            Host::Server => Host::Client,
        }
    }
}

/// A run's measured statistics.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Total elapsed (virtual) time.
    pub total_time: Rational,
    /// Time the client spent computing.
    pub client_compute: Rational,
    /// Time the server spent computing.
    pub server_compute: Rational,
    /// Time spent in messages (scheduling + data).
    pub comm_time: Rational,
    /// Messages exchanged.
    pub messages: u64,
    /// Slots of data moved between hosts.
    pub slots_transferred: u64,
    /// Planned (eager) item transfers applied.
    pub eager_transfers: u64,
    /// Lazy validity-miss pulls.
    pub lazy_pulls: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Dynamic allocations registered.
    pub registrations: u64,
    /// Client energy (active/idle power × time).
    pub energy: Rational,
}

/// A completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Values written by `output(...)`, in order.
    pub outputs: Vec<i64>,
    /// Measured statistics.
    pub stats: RunStats,
}

/// Runtime failures.
#[derive(Debug, Clone)]
pub enum RuntimeError {
    /// Division or remainder by zero.
    DivisionByZero,
    /// `input()` exhausted the supplied input stream.
    InputExhausted,
    /// An indirect call did not reach a function value or had the wrong
    /// arity.
    BadIndirectCall(String),
    /// Out-of-bounds or wild memory access.
    BadAccess(String),
    /// The step budget was exceeded (runaway loop).
    StepLimit(u64),
    /// Recursion (unsupported: locals are statically allocated, matching
    /// the analysis' one-abstract-location-per-local model).
    Recursion(String),
    /// An I/O instruction executed on the server (plan violation).
    ServerIo,
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::InputExhausted => write!(f, "input stream exhausted"),
            RuntimeError::BadIndirectCall(s) => write!(f, "bad indirect call: {s}"),
            RuntimeError::BadAccess(s) => write!(f, "bad memory access: {s}"),
            RuntimeError::StepLimit(n) => write!(f, "exceeded step limit of {n}"),
            RuntimeError::Recursion(s) => write!(f, "recursion into `{s}` is unsupported"),
            RuntimeError::ServerIo => write!(f, "I/O attempted on the server"),
        }
    }
}
impl std::error::Error for RuntimeError {}

/// The partitioning plan to execute under.
#[derive(Debug, Clone, Copy)]
pub enum Plan<'a> {
    /// Everything on the client (the baseline the paper normalizes to).
    AllLocal,
    /// A partitioning choice from the parametric analysis.
    Choice(&'a Partition),
}

/// Configuration of one run.
pub struct Runner<'a> {
    /// The program.
    pub module: &'a Module,
    /// Its task graph.
    pub tcfg: &'a Tcfg,
    /// Points-to (for item identity).
    pub pta: &'a PointsTo,
    /// Items with validity tracking, in the analysis' item-table order
    /// (the plan's transfer lists index into this slice).
    pub tracked_order: &'a [AbsLocId],
    /// Device characteristics.
    pub device: &'a DeviceModel,
    /// The plan.
    pub plan: Plan<'a>,
    /// Execution step budget (0 = default of 500 million).
    pub max_steps: u64,
}

impl<'a> Runner<'a> {
    /// Executes `main(params)` with the given input stream.
    ///
    /// # Errors
    ///
    /// See [`RuntimeError`].
    pub fn run(&self, params: &[i64], input: &[i64]) -> Result<RunResult, RuntimeError> {
        let mut exec = Exec::new(self, params, input)?;
        exec.run()?;
        Ok(RunResult { outputs: std::mem::take(&mut exec.outputs), stats: exec.finish() })
    }
}

struct HostState {
    mem: HashMap<ObjKey, Vec<Value>>,
    regs: HashMap<FuncId, Vec<Value>>,
}

impl HostState {
    fn new() -> Self {
        HostState { mem: HashMap::new(), regs: HashMap::new() }
    }
}

struct Frame {
    func: FuncId,
    block: BlockId,
    inst: usize,
    /// Segment containing the current position.
    segment: SegmentId,
    /// Register receiving the callee's return value.
    ret_dst: Option<LocalId>,
}

struct Exec<'a> {
    r: &'a Runner<'a>,
    tracked: HashSet<AbsLocId>,
    hosts: [HostState; 2],
    /// Validity per tracked item: `[client, server]`.
    valid: HashMap<AbsLocId, [bool; 2]>,
    /// Site of each dynamic object (shared registration knowledge).
    dyn_site: HashMap<ObjKey, AllocSiteId>,
    dyn_count: u64,
    cur: Host,
    clock: Rational,
    client_busy: Rational,
    server_busy: Rational,
    comm: Rational,
    stats: RunStats,
    outputs: Vec<i64>,
    input: &'a [i64],
    input_pos: usize,
    /// Call stack (active function last).
    stack: Vec<Frame>,
    /// Functions currently on the stack (recursion detector).
    active_funcs: HashSet<FuncId>,
    /// `(func, block) -> [(start, end, segment)]`.
    seg_index: HashMap<(FuncId, BlockId), Vec<(usize, usize, SegmentId)>>,
    /// `(from task, to task, kind) -> TCFG edge index`.
    edge_index: HashMap<(TaskId, TaskId, EdgeKind), usize>,
    steps: u64,
    max_steps: u64,
}

impl<'a> Exec<'a> {
    fn new(r: &'a Runner<'a>, params: &[i64], input: &'a [i64]) -> Result<Self, RuntimeError> {
        let mut seg_index: HashMap<(FuncId, BlockId), Vec<(usize, usize, SegmentId)>> =
            HashMap::new();
        for (si, seg) in r.tcfg.segments().iter().enumerate() {
            seg_index
                .entry((seg.func, seg.block))
                .or_default()
                .push((seg.range.0, seg.range.1, SegmentId(si as u32)));
        }
        let mut edge_index = HashMap::new();
        for (ei, e) in r.tcfg.edges().iter().enumerate() {
            edge_index.insert((e.from, e.to, e.kind), ei);
        }
        let mut exec = Exec {
            r,
            tracked: r.tracked_order.iter().copied().collect(),
            hosts: [HostState::new(), HostState::new()],
            valid: HashMap::new(),
            dyn_site: HashMap::new(),
            dyn_count: 0,
            cur: Host::Client,
            clock: Rational::zero(),
            client_busy: Rational::zero(),
            server_busy: Rational::zero(),
            comm: Rational::zero(),
            stats: RunStats::default(),
            outputs: Vec::new(),
            input,
            input_pos: 0,
            stack: Vec::new(),
            active_funcs: HashSet::new(),
            seg_index,
            edge_index,
            steps: 0,
            max_steps: if r.max_steps == 0 { 500_000_000 } else { r.max_steps },
        };
        exec.init_memory(params)?;
        Ok(exec)
    }

    fn init_memory(&mut self, params: &[i64]) -> Result<(), RuntimeError> {
        // Globals: zero-initialized identically on both hosts.
        for (gi, g) in self.r.module.globals.iter().enumerate() {
            for host in [0usize, 1] {
                self.hosts[host]
                    .mem
                    .insert(ObjKey::Global(gi as u32), vec![Value::Int(0); g.slots as usize]);
            }
        }
        // Static locals and register files.
        for (fi, f) in self.r.module.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for host in [0usize, 1] {
                self.hosts[host].regs.insert(fid, vec![Value::Uninit; f.locals.len()]);
                for (li, l) in f.locals.iter().enumerate() {
                    if let LocalKind::Memory { slots } = &l.kind {
                        self.hosts[host].mem.insert(
                            ObjKey::Local(fid, LocalId(li as u32)),
                            vec![Value::Int(0); *slots as usize],
                        );
                    }
                }
            }
        }
        // main's parameters: valid on both hosts (broadcast at startup).
        let main = self.r.module.function(self.r.module.main);
        for (pi, &p) in main.params.iter().enumerate() {
            let v = Value::Int(params.get(pi).copied().unwrap_or(0));
            for host in [0usize, 1] {
                self.hosts[host].regs.get_mut(&self.r.module.main).expect("regs")[p.index()] = v;
            }
        }
        Ok(())
    }

    // ---- cost accounting ----

    fn busy(&mut self, host: Host, t: Rational) {
        self.clock += &t;
        match host {
            Host::Client => self.client_busy += &t,
            Host::Server => self.server_busy += &t,
        }
    }

    fn message(&mut self, t: Rational) {
        self.clock += &t;
        self.comm += &t;
        self.stats.messages += 1;
    }

    fn compute_cost(&mut self, inst: &Inst) {
        let w = self.r.device.cost.inst_weight(inst) as i64;
        let unit = match self.cur {
            Host::Client => self.r.device.cost.client_unit.clone(),
            Host::Server => self.r.device.cost.server_unit.clone(),
        };
        self.busy(self.cur, &Rational::from(w) * &unit);
    }

    /// Extra client time for accesses to over-cache objects (modeled only
    /// in the simulator, not in the analysis — a realistic source of
    /// prediction error).
    fn cache_penalty(&mut self, key: ObjKey) {
        if self.cur != Host::Client {
            return;
        }
        let size =
            self.hosts[0].mem.get(&key).map(|v| v.len()).unwrap_or(0) as u32;
        if size > self.r.device.cache_slots {
            let p = self.r.device.cache_miss_penalty.clone();
            self.busy(Host::Client, p);
        }
    }

    // ---- item identity and validity ----

    fn item_of_obj(&self, key: ObjKey) -> Option<AbsLocId> {
        let loc = match key {
            ObjKey::Global(g) => AbsLoc::Global(offload_ir::GlobalId(g)),
            ObjKey::Local(f, l) => AbsLoc::Local { func: f, local: l },
            ObjKey::Dyn(_) => AbsLoc::Site(*self.dyn_site.get(&key)?),
        };
        self.r.pta.id_of(loc)
    }

    fn item_of_reg(&self, func: FuncId, reg: LocalId) -> Option<AbsLocId> {
        self.r.pta.id_of(AbsLoc::Reg { func, local: reg })
    }

    fn is_tracked(&self, item: AbsLocId) -> bool {
        self.tracked.contains(&item)
    }

    fn validity(&mut self, item: AbsLocId) -> &mut [bool; 2] {
        self.valid.entry(item).or_insert([true, true])
    }

    /// Ensures `item` is valid on the current host, pulling it lazily
    /// from the other host if necessary.
    fn ensure_valid(&mut self, item: AbsLocId) {
        if !self.is_tracked(item) {
            return;
        }
        let cur = self.cur;
        if self.validity(item)[cur.index()] {
            return;
        }
        // Lazy pull: request + response messages.
        self.stats.lazy_pulls += 1;
        let req = match cur {
            Host::Client => self.r.device.cost.send_startup_c2s.clone(),
            Host::Server => self.r.device.cost.send_startup_s2c.clone(),
        };
        self.message(req);
        self.transfer_item(item, cur.other(), cur);
    }

    fn note_write(&mut self, item: AbsLocId) {
        if !self.is_tracked(item) {
            return;
        }
        let cur = self.cur;
        let v = self.validity(item);
        v[cur.index()] = true;
        v[cur.other().index()] = false;
    }

    /// Copies an item's backing storage from one host to the other, with
    /// message cost, and marks both copies valid.
    fn transfer_item(&mut self, item: AbsLocId, from: Host, to: Host) {
        let loc = self.r.pta.loc(item);
        let keys: Vec<ObjKey> = match loc {
            AbsLoc::Global(g) => vec![ObjKey::Global(g.0)],
            AbsLoc::Local { func, local } => vec![ObjKey::Local(func, local)],
            AbsLoc::Reg { .. } => vec![],
            AbsLoc::Site(site) => self
                .dyn_site
                .iter()
                .filter(|(_, s)| **s == site)
                .map(|(k, _)| *k)
                .collect(),
        };
        let mut slots = 0u64;
        match loc {
            AbsLoc::Reg { func, local } => {
                let v = self.hosts[from.index()].regs[&func][local.index()];
                self.hosts[to.index()].regs.get_mut(&func).expect("regs")[local.index()] = v;
                slots = 1;
            }
            _ => {
                for k in keys {
                    let data = self.hosts[from.index()].mem.get(&k).cloned().unwrap_or_default();
                    slots += data.len() as u64;
                    self.hosts[to.index()].mem.insert(k, data);
                }
            }
        }
        let (startup, unit) = match to {
            Host::Server => (
                self.r.device.cost.send_startup_c2s.clone(),
                self.r.device.cost.send_unit_c2s.clone(),
            ),
            Host::Client => (
                self.r.device.cost.send_startup_s2c.clone(),
                self.r.device.cost.send_unit_s2c.clone(),
            ),
        };
        self.message(&startup + &(&Rational::from(slots as i64) * &unit));
        self.stats.slots_transferred += slots;
        let v = self.validity(item);
        v[0] = true;
        v[1] = true;
    }

    // ---- register and memory access ----

    fn cur_func(&self) -> FuncId {
        self.stack.last().expect("active frame").func
    }

    fn read_reg(&mut self, reg: LocalId) -> Value {
        let func = self.cur_func();
        if let Some(item) = self.item_of_reg(func, reg) {
            self.ensure_valid(item);
        }
        self.hosts[self.cur.index()].regs[&func][reg.index()]
    }

    fn write_reg(&mut self, reg: LocalId, v: Value) {
        let func = self.cur_func();
        self.hosts[self.cur.index()].regs.get_mut(&func).expect("regs")[reg.index()] = v;
        if let Some(item) = self.item_of_reg(func, reg) {
            self.note_write(item);
        }
    }

    fn operand(&mut self, op: Operand) -> Value {
        match op {
            Operand::Const(c) => Value::Int(c),
            Operand::Local(l) => self.read_reg(l),
        }
    }

    fn load(&mut self, addr: Value) -> Result<Value, RuntimeError> {
        let Value::Addr(key, off) = addr else {
            return Err(RuntimeError::BadAccess(format!("load through {addr}")));
        };
        if let Some(item) = self.item_of_obj(key) {
            self.ensure_valid(item);
        }
        self.cache_penalty(key);
        let obj = self.hosts[self.cur.index()]
            .mem
            .get(&key)
            .ok_or_else(|| RuntimeError::BadAccess(format!("no object {key}")))?;
        obj.get(off as usize)
            .copied()
            .ok_or_else(|| RuntimeError::BadAccess(format!("{key}+{off} out of bounds")))
    }

    fn store(&mut self, addr: Value, v: Value) -> Result<(), RuntimeError> {
        let Value::Addr(key, off) = addr else {
            return Err(RuntimeError::BadAccess(format!("store through {addr}")));
        };
        if let Some(item) = self.item_of_obj(key) {
            // Partial writes require the destination copy to be valid
            // first (the paper's conservative constraint, dynamically).
            self.ensure_valid(item);
        }
        self.cache_penalty(key);
        let obj = self.hosts[self.cur.index()]
            .mem
            .get_mut(&key)
            .ok_or_else(|| RuntimeError::BadAccess(format!("no object {key}")))?;
        let slot = obj
            .get_mut(off as usize)
            .ok_or_else(|| RuntimeError::BadAccess(format!("{key}+{off} out of bounds")))?;
        *slot = v;
        if let Some(item) = self.item_of_obj(key) {
            self.note_write(item);
        }
        Ok(())
    }

    // ---- plan queries ----

    fn host_of(&self, task: TaskId) -> Host {
        match self.r.plan {
            Plan::AllLocal => Host::Client,
            Plan::Choice(p) => {
                if p.server_tasks[task.index()] {
                    Host::Server
                } else {
                    Host::Client
                }
            }
        }
    }

    fn segment_at(&self, func: FuncId, block: BlockId, inst: usize) -> SegmentId {
        let ranges = &self.seg_index[&(func, block)];
        for (i, &(start, end, sid)) in ranges.iter().enumerate() {
            let last = i + 1 == ranges.len();
            // Instruction positions [start, end) belong to the segment;
            // the block-final segment also owns the terminator position
            // (inst >= end only happens for inst == block length).
            if inst >= start && (inst < end || last) {
                return sid;
            }
        }
        unreachable!("position {func}:{block}:{inst} outside all segments")
    }

    /// Handles a control transfer between segments: host switch messages
    /// and planned eager transfers.
    fn cross(&mut self, from_seg: SegmentId, to_seg: SegmentId, kind: EdgeKind) {
        let from_task = self.r.tcfg.task_of(from_seg);
        let to_task = self.r.tcfg.task_of(to_seg);
        if from_task == to_task {
            return;
        }
        let from_host = self.host_of(from_task);
        let to_host = self.host_of(to_task);
        // Planned eager transfers ride along regardless of host switch
        // (they can also prepay for later tasks).
        if let Plan::Choice(p) = self.r.plan {
            if let Some(&ei) = self.edge_index.get(&(from_task, to_task, kind)) {
                let moves = p.transfers[ei].clone();
                for (item_idx, dir) in moves {
                    let item = self.tracked_item_by_index(item_idx);
                    let (src, dst) = match dir {
                        Direction::ClientToServer => (Host::Client, Host::Server),
                        Direction::ServerToClient => (Host::Server, Host::Client),
                    };
                    if let Some(item) = item {
                        // Only move if the source copy is actually valid
                        // (dynamic state may differ from the static plan).
                        if self.validity(item)[src.index()] && !self.validity(item)[dst.index()]
                        {
                            self.stats.eager_transfers += 1;
                            self.transfer_item(item, src, dst);
                        }
                    }
                }
            }
        }
        if from_host != to_host {
            let sched = match to_host {
                Host::Server => self.r.device.cost.sched_c2s.clone(),
                Host::Client => self.r.device.cost.sched_s2c.clone(),
            };
            self.message(sched);
            self.cur = to_host;
        }
    }

    fn tracked_item_by_index(&self, idx: u32) -> Option<AbsLocId> {
        // The plan's transfer lists index the analysis' item table, whose
        // order matches `tracked` iteration order is NOT guaranteed; the
        // runner passes the table order via `tracked_order`.
        self.r.tracked_order.get(idx as usize).copied()
    }

    // ---- the interpreter loop ----

    fn run(&mut self) -> Result<(), RuntimeError> {
        let main = self.r.module.main;
        let entry = self.r.module.function(main).entry;
        let entry_seg = self.segment_at(main, entry, 0);
        self.stack.push(Frame {
            func: main,
            block: entry,
            inst: 0,
            segment: entry_seg,
            ret_dst: None,
        });
        self.active_funcs.insert(main);
        // Initial host placement.
        let entry_task = self.r.tcfg.task_of(entry_seg);
        if self.host_of(entry_task) == Host::Server {
            let sched = self.r.device.cost.sched_c2s.clone();
            self.message(sched);
            self.cur = Host::Server;
        }

        while !self.stack.is_empty() {
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(RuntimeError::StepLimit(self.max_steps));
            }
            self.step()?;
        }

        // Control returns home to the client.
        if self.cur == Host::Server {
            let sched = self.r.device.cost.sched_s2c.clone();
            self.message(sched);
            self.cur = Host::Client;
        }
        Ok(())
    }

    fn step(&mut self) -> Result<(), RuntimeError> {
        let frame = self.stack.last().expect("active frame");
        let (func, block, inst_idx, seg) = (frame.func, frame.block, frame.inst, frame.segment);
        let f = self.r.module.function(func);
        let b = &f.blocks[block.index()];

        if inst_idx < b.insts.len() {
            let inst = b.insts[inst_idx].clone();
            self.stats.instructions += 1;
            self.compute_cost(&inst);
            if let Inst::Call { .. } = &inst {
                self.exec_call(inst, func, block, inst_idx, seg)?;
            } else {
                self.exec_simple(inst)?;
                let frame = self.stack.last_mut().expect("active frame");
                frame.inst += 1;
                // Advance the segment when stepping past a call boundary
                // is handled in exec_call; simple instructions stay in
                // the same segment.
            }
            return Ok(());
        }

        // Terminator.
        let term = b.term.clone();
        match term {
            Terminator::Goto(t) => self.jump(func, seg, block, t),
            Terminator::Branch { cond, then, otherwise } => {
                let v = self.operand(cond);
                let target = if v.truthy() { then } else { otherwise };
                self.jump(func, seg, block, target);
            }
            Terminator::Return(v) => {
                let value = match v {
                    Some(op) => Some(self.operand(op)),
                    None => None,
                };
                self.exec_return(seg, value)?;
            }
        }
        Ok(())
    }

    fn jump(&mut self, func: FuncId, from_seg: SegmentId, from_block: BlockId, to: BlockId) {
        let to_seg = self.segment_at(func, to, 0);
        self.cross(from_seg, to_seg, EdgeKind::Jump { from: from_block, to });
        let frame = self.stack.last_mut().expect("active frame");
        frame.block = to;
        frame.inst = 0;
        frame.segment = to_seg;
    }

    fn exec_call(
        &mut self,
        inst: Inst,
        func: FuncId,
        block: BlockId,
        inst_idx: usize,
        seg: SegmentId,
    ) -> Result<(), RuntimeError> {
        let Inst::Call { dst, callee, args } = inst else { unreachable!() };
        let target = match callee {
            Callee::Direct(t) => t,
            Callee::Indirect(op) => match self.operand(op) {
                Value::Func(t) => t,
                other => {
                    return Err(RuntimeError::BadIndirectCall(format!(
                        "callee evaluated to {other}"
                    )))
                }
            },
        };
        let callee_def = self.r.module.function(target);
        if callee_def.params.len() != args.len() {
            return Err(RuntimeError::BadIndirectCall(format!(
                "`{}` expects {} args, got {}",
                callee_def.name,
                callee_def.params.len(),
                args.len()
            )));
        }
        if self.active_funcs.contains(&target) {
            return Err(RuntimeError::Recursion(callee_def.name.clone()));
        }
        // Evaluate arguments on the caller's host.
        let arg_vals: Vec<Value> = args.iter().map(|a| self.operand(*a)).collect();

        // Advance the caller past the call before switching.
        let cont_seg = self.segment_at(func, block, inst_idx + 1);
        {
            let frame = self.stack.last_mut().expect("caller frame");
            frame.inst = inst_idx + 1;
            frame.ret_dst = dst;
            frame.segment = cont_seg;
        }

        // Control moves to the callee's entry segment.
        let callee_entry = callee_def.entry;
        let entry_seg = self.segment_at(target, callee_entry, 0);
        self.cross(seg, entry_seg, EdgeKind::Call { site: seg });

        self.stack.push(Frame {
            func: target,
            block: callee_entry,
            inst: 0,
            segment: entry_seg,
            ret_dst: None,
        });
        self.active_funcs.insert(target);

        // Parameters are carried by the scheduling message and written on
        // the callee's host.
        let params = callee_def.params.clone();
        for (p, v) in params.iter().zip(arg_vals) {
            self.write_reg(*p, v);
        }
        Ok(())
    }

    fn exec_return(&mut self, seg: SegmentId, value: Option<Value>) -> Result<(), RuntimeError> {
        let done = self.stack.pop().expect("returning frame");
        self.active_funcs.remove(&done.func);
        let Some(caller) = self.stack.last() else {
            return Ok(()); // main returned
        };
        let cont_seg = caller.segment;
        // The call segment is the one preceding the continuation.
        let call_seg = SegmentId(cont_seg.0 - 1);
        self.cross(seg, cont_seg, EdgeKind::Return { site: call_seg });
        // The return value is carried by the message and written on the
        // continuation's host.
        let caller = self.stack.last().expect("caller frame");
        if let (Some(d), Some(v)) = (caller.ret_dst, value) {
            self.write_reg(d, v);
        }
        Ok(())
    }

    fn exec_simple(&mut self, inst: Inst) -> Result<(), RuntimeError> {
        match inst {
            Inst::Copy { dst, src } => {
                let v = self.operand(src);
                self.write_reg(dst, v);
            }
            Inst::Un { dst, op, src } => {
                let v = self.operand(src);
                let out = match op {
                    offload_lang::UnOp::Neg => Value::Int(
                        v.as_int()
                            .ok_or_else(|| RuntimeError::BadAccess("negating pointer".into()))?
                            .wrapping_neg(),
                    ),
                    offload_lang::UnOp::Not => Value::Int(!v.truthy() as i64),
                };
                self.write_reg(dst, out);
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                let a = self.operand(lhs);
                let b = self.operand(rhs);
                let out = eval_bin(op, a, b)?;
                self.write_reg(dst, out);
            }
            Inst::AddrGlobal { dst, global } => {
                self.write_reg(dst, Value::Addr(ObjKey::Global(global.0), 0));
            }
            Inst::AddrLocal { dst, local } => {
                let func = self.cur_func();
                self.write_reg(dst, Value::Addr(ObjKey::Local(func, local), 0));
            }
            Inst::AddrIndex { dst, base, index, stride } => {
                let b = self.operand(base);
                let i = self.operand(index);
                let Value::Addr(key, off) = b else {
                    return Err(RuntimeError::BadAccess(format!("indexing {b}")));
                };
                let i = i.as_int().ok_or_else(|| {
                    RuntimeError::BadAccess("pointer used as index".into())
                })?;
                let new_off = off as i64 + i * stride as i64;
                if new_off < 0 || new_off > u32::MAX as i64 {
                    return Err(RuntimeError::BadAccess(format!("offset {new_off}")));
                }
                self.write_reg(dst, Value::Addr(key, new_off as u32));
            }
            Inst::AddrField { dst, base, offset } => {
                let b = self.operand(base);
                let Value::Addr(key, off) = b else {
                    return Err(RuntimeError::BadAccess(format!("field of {b}")));
                };
                self.write_reg(dst, Value::Addr(key, off + offset));
            }
            Inst::Load { dst, addr } => {
                let a = self.operand(addr);
                let v = self.load(a)?;
                self.write_reg(dst, v);
            }
            Inst::Store { addr, src } => {
                let a = self.operand(addr);
                let v = self.operand(src);
                self.store(a, v)?;
            }
            Inst::Alloc { dst, elem_slots, count, site } => {
                let c = self
                    .operand(count)
                    .as_int()
                    .ok_or_else(|| RuntimeError::BadAccess("pointer alloc count".into()))?;
                let slots = (elem_slots as i64).saturating_mul(c.max(0)) as usize;
                let key = ObjKey::Dyn(self.dyn_count);
                self.dyn_count += 1;
                self.stats.registrations += 1;
                // Registration: both hosts learn the id ↔ site binding;
                // storage is materialized on both (zeroed), with the
                // registration fee charged once.
                self.dyn_site.insert(key, site);
                for host in [0usize, 1] {
                    self.hosts[host].mem.insert(key, vec![Value::Int(0); slots]);
                }
                let fee = self.r.device.cost.registration.clone();
                let cur = self.cur;
                self.busy(cur, fee);
                self.write_reg(dst, Value::Addr(key, 0));
                // The fresh object is valid where it was allocated.
                if let Some(item) = self.item_of_obj(key) {
                    self.note_write(item);
                }
            }
            Inst::LoadFunc { dst, func } => {
                self.write_reg(dst, Value::Func(func));
            }
            Inst::Input { dst } => {
                if self.cur != Host::Client {
                    return Err(RuntimeError::ServerIo);
                }
                let v = *self
                    .input
                    .get(self.input_pos)
                    .ok_or(RuntimeError::InputExhausted)?;
                self.input_pos += 1;
                self.write_reg(dst, Value::Int(v));
            }
            Inst::Output { src } => {
                if self.cur != Host::Client {
                    return Err(RuntimeError::ServerIo);
                }
                let v = self
                    .operand(src)
                    .as_int()
                    .ok_or_else(|| RuntimeError::BadAccess("output of pointer".into()))?;
                self.outputs.push(v);
            }
            Inst::Call { .. } => unreachable!("calls handled by exec_call"),
        }
        Ok(())
    }

    fn finish(&mut self) -> RunStats {
        let mut stats = std::mem::take(&mut self.stats);
        stats.total_time = self.clock.clone();
        stats.client_compute = self.client_busy.clone();
        stats.server_compute = self.server_busy.clone();
        stats.comm_time = self.comm.clone();
        // Client energy: active while computing or exchanging messages,
        // idle while the server computes.
        let active = &self.client_busy + &self.comm;
        let idle = &self.clock - &active;
        stats.energy = &(&active * &self.r.device.client_active_power)
            + &(&idle * &self.r.device.client_idle_power);
        stats
    }
}

fn eval_bin(op: IrBinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
    // Pointer equality.
    match (op, &a, &b) {
        (IrBinOp::Eq, Value::Addr(..), _) | (IrBinOp::Eq, _, Value::Addr(..))
        | (IrBinOp::Eq, Value::Func(_), _) | (IrBinOp::Eq, _, Value::Func(_)) => {
            let eq = ptr_eq(&a, &b);
            return Ok(Value::Int(eq as i64));
        }
        (IrBinOp::Ne, Value::Addr(..), _) | (IrBinOp::Ne, _, Value::Addr(..))
        | (IrBinOp::Ne, Value::Func(_), _) | (IrBinOp::Ne, _, Value::Func(_)) => {
            let eq = ptr_eq(&a, &b);
            return Ok(Value::Int(!eq as i64));
        }
        _ => {}
    }
    let x = a.as_int().ok_or_else(|| RuntimeError::BadAccess("arith on pointer".into()))?;
    let y = b.as_int().ok_or_else(|| RuntimeError::BadAccess("arith on pointer".into()))?;
    Ok(Value::Int(match op {
        IrBinOp::Add => x.wrapping_add(y),
        IrBinOp::Sub => x.wrapping_sub(y),
        IrBinOp::Mul => x.wrapping_mul(y),
        IrBinOp::Div => {
            if y == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            x.wrapping_div(y)
        }
        IrBinOp::Rem => {
            if y == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            x.wrapping_rem(y)
        }
        IrBinOp::Eq => (x == y) as i64,
        IrBinOp::Ne => (x != y) as i64,
        IrBinOp::Lt => (x < y) as i64,
        IrBinOp::Le => (x <= y) as i64,
        IrBinOp::Gt => (x > y) as i64,
        IrBinOp::Ge => (x >= y) as i64,
    }))
}

fn ptr_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Addr(k1, o1), Value::Addr(k2, o2)) => k1 == k2 && o1 == o2,
        (Value::Func(f1), Value::Func(f2)) => f1 == f2,
        (Value::Addr(..), Value::Int(0)) | (Value::Int(0), Value::Addr(..)) => false,
        (Value::Func(_), Value::Int(0)) | (Value::Int(0), Value::Func(_)) => false,
        (Value::Uninit, Value::Int(0)) | (Value::Int(0), Value::Uninit) => true,
        _ => false,
    }
}
