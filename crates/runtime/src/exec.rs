//! The two-host distributed executor.
//!
//! Executes a lowered program under a partitioning plan, simulating the
//! paper's client/server runtime (§2): the two hosts take turns (the
//! *active* host computes while the *passive* host blocks), task
//! scheduling and data movement travel as costed messages, and each host
//! keeps its own copy of every memory object with per-item validity
//! states maintained dynamically.
//!
//! Data movement is **plan-guided but self-correcting**: the eager
//! transfers recorded in the partitioning plan are applied when control
//! crosses hosts, and any read of a locally-invalid item triggers a lazy
//! pull (a costed round trip). Output correctness therefore never depends
//! on the quality of the static transfer schedule — only performance
//! does, exactly like a real system.
//!
//! The interpreter itself lives in [`crate::host`]: one [`Machine`] per
//! host, talking to its peer through the [`ExecHost`] link. [`Runner`]
//! is the in-process wiring — both machines in one address space, the
//! peer link a direct method call. `offload-net` reuses the identical
//! machines over a TCP link.

use crate::device::DeviceModel;
use crate::host::{ControlMsg, HostError, Machine, Outcome};
use offload_ir::Module;
use offload_poly::Rational;
use offload_pta::{AbsLocId, PointsTo};
use offload_tcfg::Tcfg;
use std::fmt;

pub use offload_core::Plan;

/// Which host.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Host {
    /// The mobile device (I/O lives here).
    Client,
    /// The remote server.
    Server,
}

impl Host {
    /// Index into `[client, server]` state pairs.
    pub fn index(self) -> usize {
        match self {
            Host::Client => 0,
            Host::Server => 1,
        }
    }

    /// The opposite host.
    pub fn other(self) -> Host {
        match self {
            Host::Client => Host::Server,
            Host::Server => Host::Client,
        }
    }
}

/// A run's measured statistics.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunStats {
    /// Total elapsed (virtual) time.
    pub total_time: Rational,
    /// Time the client spent computing.
    pub client_compute: Rational,
    /// Time the server spent computing.
    pub server_compute: Rational,
    /// Time spent in messages (scheduling + data).
    pub comm_time: Rational,
    /// Messages exchanged.
    pub messages: u64,
    /// Slots of data moved between hosts.
    pub slots_transferred: u64,
    /// Planned (eager) item transfers applied.
    pub eager_transfers: u64,
    /// Lazy validity-miss pulls.
    pub lazy_pulls: u64,
    /// Instructions executed.
    pub instructions: u64,
    /// Dynamic allocations registered.
    pub registrations: u64,
    /// Client energy (active/idle power × time).
    pub energy: Rational,
}

/// A completed run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Values written by `output(...)`, in order.
    pub outputs: Vec<i64>,
    /// Measured statistics.
    pub stats: RunStats,
}

/// Runtime failures.
#[derive(Debug, Clone)]
pub enum RuntimeError {
    /// Division or remainder by zero.
    DivisionByZero,
    /// `input()` exhausted the supplied input stream.
    InputExhausted,
    /// An indirect call did not reach a function value or had the wrong
    /// arity.
    BadIndirectCall(String),
    /// Out-of-bounds or wild memory access.
    BadAccess(String),
    /// The step budget was exceeded (runaway loop).
    StepLimit(u64),
    /// Recursion (unsupported: locals are statically allocated, matching
    /// the analysis' one-abstract-location-per-local model).
    Recursion(String),
    /// An I/O instruction executed on the server (plan violation).
    ServerIo,
    /// The peer link failed mid-run (transport fault; only a real
    /// network link can produce it, and the TCP client engine treats it
    /// as the trigger for all-local fallback).
    HostLink(String),
    /// A [`Plan::Remote`] index reached the executor without being
    /// resolved against the analysis' choice table.
    UnresolvedPlan(usize),
}

impl fmt::Display for RuntimeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RuntimeError::DivisionByZero => write!(f, "division by zero"),
            RuntimeError::InputExhausted => write!(f, "input stream exhausted"),
            RuntimeError::BadIndirectCall(s) => write!(f, "bad indirect call: {s}"),
            RuntimeError::BadAccess(s) => write!(f, "bad memory access: {s}"),
            RuntimeError::StepLimit(n) => write!(f, "exceeded step limit of {n}"),
            RuntimeError::Recursion(s) => write!(f, "recursion into `{s}` is unsupported"),
            RuntimeError::ServerIo => write!(f, "I/O attempted on the server"),
            RuntimeError::HostLink(s) => write!(f, "host link failed: {s}"),
            RuntimeError::UnresolvedPlan(i) => {
                write!(f, "Plan::Remote({i}) must be resolved before execution")
            }
        }
    }
}
impl std::error::Error for RuntimeError {}

impl From<HostError> for RuntimeError {
    fn from(e: HostError) -> Self {
        RuntimeError::HostLink(e.0)
    }
}

/// Configuration of one run.
pub struct Runner<'a> {
    /// The program.
    pub module: &'a Module,
    /// Its task graph.
    pub tcfg: &'a Tcfg,
    /// Points-to (for item identity).
    pub pta: &'a PointsTo,
    /// Items with validity tracking, in the analysis' item-table order
    /// (the plan's transfer lists index into this slice).
    pub tracked_order: &'a [AbsLocId],
    /// Device characteristics.
    pub device: &'a DeviceModel,
    /// The plan.
    pub plan: Plan<'a>,
    /// Execution step budget (0 = default of 500 million).
    pub max_steps: u64,
}

impl<'a> Runner<'a> {
    /// Executes `main(params)` with the given input stream: both host
    /// machines in-process, turn-taking over direct control transfers.
    ///
    /// # Errors
    ///
    /// See [`RuntimeError`].
    pub fn run(&self, params: &[i64], input: &[i64]) -> Result<RunResult, RuntimeError> {
        if let Plan::Remote(i) = self.plan {
            return Err(RuntimeError::UnresolvedPlan(i));
        }
        let (plan_kind, tasks_server) = match self.plan {
            Plan::AllLocal => ("all_local", 0usize),
            Plan::Partitioned(p) => ("partitioned", p.server_tasks.iter().filter(|&&s| s).count()),
            Plan::Remote(_) => unreachable!("rejected above"),
        };
        let tasks_total = self.tcfg.tasks().len();
        let mut span = offload_obs::span!(
            "runtime",
            "run",
            plan = plan_kind,
            tasks_server = tasks_server,
            tasks_client = tasks_total - tasks_server,
        );
        if offload_obs::enabled() {
            offload_obs::counter("runtime.runs").inc();
            offload_obs::counter("runtime.tasks_server").add(tasks_server as u64);
            offload_obs::counter("runtime.tasks_client").add((tasks_total - tasks_server) as u64);
        }
        let mut client = Machine::new(self, Host::Client, params, input);
        let mut server = Machine::new(self, Host::Server, params, &[]);
        let mut msg = ControlMsg::start();
        let mut turns = 0u64;
        loop {
            turns += 1;
            let outcome = match msg.to {
                Host::Client => client.run_turn(msg, &mut server)?,
                Host::Server => server.run_turn(msg, &mut client)?,
            };
            match outcome {
                Outcome::Yield(next) => msg = next,
                Outcome::Done => break,
            }
        }
        span.record("turns", turns);
        Ok(client.into_result())
    }
}
