//! The host-agnostic execution core.
//!
//! One [`Machine`] interprets the program on behalf of **one** host,
//! holding only that host's authoritative memory image. The paper's
//! turn-taking runtime (§2.1) maps onto two machines exchanging
//! [`ControlMsg`]s: the active machine computes; at a host-crossing task
//! boundary it packages its interpreter state into a message, charges the
//! scheduling cost, and yields. Data items move separately through the
//! [`ExecHost`] peer link — `fetch_item` for lazy pulls and plan-directed
//! transfers toward the active host, `push_item` for transfers away from
//! it.
//!
//! The same `Machine` runs unchanged under two peer links:
//!
//! * the in-process simulator ([`crate::Runner`]), where the peer is the
//!   other `Machine` directly (every `Machine` implements [`ExecHost`]);
//! * the TCP engine (`offload-net`), where the peer serializes payloads
//!   over a socket to a remote daemon.
//!
//! Shared bookkeeping — validity states, the dynamic-allocation
//! registration table, the global step counter and the cost ledger — rides
//! the control message, so exactly one host owns it at any time. The
//! simulator's observable behaviour (outputs *and* virtual-time stats) is
//! bit-identical to the pre-split single-struct interpreter.

use crate::device::DeviceModel;
use crate::exec::{Host, Plan, RunResult, RunStats, Runner, RuntimeError};
use crate::value::{ObjKey, Value};
use offload_core::Direction;
use offload_ir::{
    AllocSiteId, BlockId, Callee, FuncId, Inst, IrBinOp, LocalId, LocalKind, Operand, Terminator,
};
use offload_poly::Rational;
use offload_pta::{AbsLoc, AbsLocId};
use offload_tcfg::{EdgeKind, SegmentId, TaskId};
use std::collections::{HashMap, HashSet};
use std::fmt;

/// A transport failure on the peer link.
///
/// The in-process simulator never produces one; the TCP link maps socket
/// errors and deadline expiries here, and the client engine treats the
/// resulting [`RuntimeError::HostLink`] as the trigger for all-local
/// fallback.
#[derive(Debug, Clone)]
pub struct HostError(pub String);

impl fmt::Display for HostError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "peer link failure: {}", self.0)
    }
}
impl std::error::Error for HostError {}

/// The peer link: how the active machine reaches the passive host's data.
///
/// Implementors serve the *other* host's memory image. [`Machine`] itself
/// implements the trait (the simulator wires two machines directly); the
/// TCP engine implements it with request/response frames.
pub trait ExecHost {
    /// Collects the peer's copy of a tracked item.
    ///
    /// # Errors
    ///
    /// Transport failures only; the in-process link is infallible.
    fn fetch_item(&mut self, item: AbsLocId) -> Result<ItemPayload, HostError>;

    /// Installs a payload into the peer's copy of a tracked item.
    ///
    /// # Errors
    ///
    /// Transport failures only; the in-process link is infallible.
    fn push_item(&mut self, item: AbsLocId, payload: ItemPayload) -> Result<(), HostError>;
}

/// The wire form of one tracked item's backing storage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ItemPayload {
    /// A register item: a single value.
    Reg {
        /// Owning function.
        func: FuncId,
        /// The register.
        local: LocalId,
        /// Its value.
        value: Value,
    },
    /// A memory item: one or more whole objects.
    Objects(Vec<ObjEntry>),
}

/// One object inside an [`ItemPayload::Objects`] payload.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObjEntry {
    /// The object's identity.
    pub key: ObjKey,
    /// For dynamic objects: the allocation site, so the receiver can
    /// extend its registration table ahead of the next control sync.
    pub site: Option<AllocSiteId>,
    /// The slot contents.
    pub data: Vec<Value>,
}

impl ItemPayload {
    /// Total slots carried (the unit the cost model charges per).
    pub fn slots(&self) -> u64 {
        match self {
            ItemPayload::Reg { .. } => 1,
            ItemPayload::Objects(objs) => objs.iter().map(|o| o.data.len() as u64).sum(),
        }
    }
}

/// The single global cost account, owned by whichever host is active.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Ledger {
    /// Elapsed virtual time.
    pub clock: Rational,
    /// Client compute time.
    pub client_busy: Rational,
    /// Server compute time.
    pub server_busy: Rational,
    /// Message time.
    pub comm: Rational,
    /// Event counters (time/energy fields are filled by [`Ledger::finish`]).
    pub stats: RunStats,
}

impl Ledger {
    fn busy(&mut self, host: Host, t: Rational) {
        self.clock += &t;
        match host {
            Host::Client => self.client_busy += &t,
            Host::Server => self.server_busy += &t,
        }
    }

    fn message(&mut self, t: Rational) {
        self.clock += &t;
        self.comm += &t;
        self.stats.messages += 1;
    }

    /// Closes the account: totals, and client energy from the device's
    /// power draw (active while computing or communicating, idle while
    /// the server computes).
    pub fn finish(mut self, device: &DeviceModel) -> RunStats {
        let mut stats = std::mem::take(&mut self.stats);
        stats.total_time = self.clock.clone();
        stats.client_compute = self.client_busy.clone();
        stats.server_compute = self.server_busy.clone();
        stats.comm_time = self.comm.clone();
        let active = &self.client_busy + &self.comm;
        let idle = &self.clock - &active;
        stats.energy =
            &(&active * &device.client_active_power) + &(&idle * &device.client_idle_power);
        stats
    }
}

/// One call-stack frame, in control-message form.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Frame {
    /// Executing function.
    pub func: FuncId,
    /// Current block.
    pub block: BlockId,
    /// Next instruction index within the block.
    pub inst: usize,
    /// Segment containing the current position.
    pub segment: SegmentId,
    /// Register receiving the callee's return value.
    pub ret_dst: Option<LocalId>,
}

/// What the receiving host must do on arrival, before resuming the
/// interpreter loop. Calls and returns transfer control *mid-operation*:
/// the argument/return values are carried by the scheduling message and
/// written on the receiving host (§2.1), so the receiver finishes the
/// operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PendingAction {
    /// Begin the run: push `main`'s entry frame (client only).
    Start,
    /// Plain resume (jumps, and the post-`Start` handoff).
    Resume,
    /// Finish a call: push the callee frame, then write its parameters.
    PushFrame {
        /// The callee.
        func: FuncId,
        /// Its entry block.
        block: BlockId,
        /// Entry segment.
        segment: SegmentId,
        /// Parameter registers and the argument values to write.
        writes: Vec<(LocalId, Value)>,
    },
    /// Finish a return: write the value into the caller's destination.
    WriteRet {
        /// Destination register in the caller (already on top of stack).
        dst: Option<LocalId>,
        /// The returned value.
        value: Option<Value>,
    },
    /// The run is over; the final ledger rides this message home.
    Finish,
}

/// The turn-taking control transfer: full interpreter state minus the
/// per-host memory images.
#[derive(Debug, Clone, PartialEq)]
pub struct ControlMsg {
    /// Host receiving control.
    pub to: Host,
    /// What to do on arrival.
    pub action: PendingAction,
    /// The call stack (active function last).
    pub stack: Vec<Frame>,
    /// Validity states `[client, server]` per tracked item.
    pub valid: Vec<(AbsLocId, [bool; 2])>,
    /// Registration table: every live dynamic object, its site and size.
    /// The receiver materializes zeroed storage for objects it has not
    /// seen yet — the deferred half of the paper's broadcast-on-allocate
    /// registration.
    pub dyn_table: Vec<(ObjKey, AllocSiteId, u32)>,
    /// Next dynamic object id.
    pub dyn_count: u64,
    /// Global step counter (the budget spans both hosts).
    pub steps: u64,
    /// The cost account.
    pub ledger: Ledger,
}

impl ControlMsg {
    /// The message that boots a run on the client.
    pub fn start() -> ControlMsg {
        ControlMsg {
            to: Host::Client,
            action: PendingAction::Start,
            stack: Vec::new(),
            valid: Vec::new(),
            dyn_table: Vec::new(),
            dyn_count: 0,
            steps: 0,
            ledger: Ledger::default(),
        }
    }
}

/// What a turn produced.
///
/// `Yield` carries the full `ControlMsg` by value (not boxed): outcomes
/// are produced once per control transfer and consumed immediately, so
/// the size imbalance against `Done` never sits in a collection.
#[derive(Debug)]
#[allow(clippy::large_enum_variant)]
pub enum Outcome {
    /// Control moves to the other host.
    Yield(ControlMsg),
    /// The run is complete (terminal only on the client).
    Done,
}

struct HostState {
    mem: HashMap<ObjKey, Vec<Value>>,
    regs: HashMap<FuncId, Vec<Value>>,
}

/// Segment lookup entry: `(range_start, range_end, segment)` for one
/// `(function, block)` pair.
type SegEntry = (usize, usize, SegmentId);

/// The interpreter for one host.
///
/// Created by [`Machine::new`] from the same [`Runner`] configuration on
/// both sides; driven by [`Machine::run_turn`].
pub struct Machine<'a> {
    r: &'a Runner<'a>,
    host: Host,
    state: HostState,
    tracked: HashSet<AbsLocId>,
    // Shared bookkeeping, authoritative only while this host is active.
    valid: HashMap<AbsLocId, [bool; 2]>,
    dyn_site: HashMap<ObjKey, (AllocSiteId, u32)>,
    dyn_count: u64,
    steps: u64,
    ledger: Ledger,
    stack: Vec<Frame>,
    active_funcs: HashSet<FuncId>,
    // Client-only I/O state (the server refuses I/O instructions).
    input: &'a [i64],
    input_pos: usize,
    outputs: Vec<i64>,
    // Derived indexes.
    seg_index: HashMap<(FuncId, BlockId), Vec<SegEntry>>,
    edge_index: HashMap<(TaskId, TaskId, EdgeKind), usize>,
    max_steps: u64,
}

impl<'a> ExecHost for Machine<'a> {
    fn fetch_item(&mut self, item: AbsLocId) -> Result<ItemPayload, HostError> {
        Ok(self.collect_item(item))
    }

    fn push_item(&mut self, item: AbsLocId, payload: ItemPayload) -> Result<(), HostError> {
        let _ = item;
        self.install_item(payload);
        Ok(())
    }
}

impl<'a> Machine<'a> {
    /// Builds the machine for one host: zero-initialized memory image,
    /// with `main`'s parameters broadcast into the register file (both
    /// hosts initialize identically at startup, §2.1).
    pub fn new(r: &'a Runner<'a>, host: Host, params: &[i64], input: &'a [i64]) -> Machine<'a> {
        let mut seg_index: HashMap<(FuncId, BlockId), Vec<SegEntry>> = HashMap::new();
        for (si, seg) in r.tcfg.segments().iter().enumerate() {
            seg_index.entry((seg.func, seg.block)).or_default().push((
                seg.range.0,
                seg.range.1,
                SegmentId(si as u32),
            ));
        }
        let mut edge_index = HashMap::new();
        for (ei, e) in r.tcfg.edges().iter().enumerate() {
            edge_index.insert((e.from, e.to, e.kind), ei);
        }
        let mut state = HostState {
            mem: HashMap::new(),
            regs: HashMap::new(),
        };
        for (gi, g) in r.module.globals.iter().enumerate() {
            state.mem.insert(
                ObjKey::Global(gi as u32),
                vec![Value::Int(0); g.slots as usize],
            );
        }
        for (fi, f) in r.module.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            state.regs.insert(fid, vec![Value::Uninit; f.locals.len()]);
            for (li, l) in f.locals.iter().enumerate() {
                if let LocalKind::Memory { slots } = &l.kind {
                    state.mem.insert(
                        ObjKey::Local(fid, LocalId(li as u32)),
                        vec![Value::Int(0); *slots as usize],
                    );
                }
            }
        }
        let main = r.module.function(r.module.main);
        for (pi, &p) in main.params.iter().enumerate() {
            let v = Value::Int(params.get(pi).copied().unwrap_or(0));
            state.regs.get_mut(&r.module.main).expect("regs")[p.index()] = v;
        }
        Machine {
            r,
            host,
            state,
            tracked: r.tracked_order.iter().copied().collect(),
            valid: HashMap::new(),
            dyn_site: HashMap::new(),
            dyn_count: 0,
            steps: 0,
            ledger: Ledger::default(),
            stack: Vec::new(),
            active_funcs: HashSet::new(),
            input,
            input_pos: 0,
            outputs: Vec::new(),
            seg_index,
            edge_index,
            max_steps: if r.max_steps == 0 {
                500_000_000
            } else {
                r.max_steps
            },
        }
    }

    /// Which host this machine embodies.
    pub fn host(&self) -> Host {
        self.host
    }

    /// Consumes the client machine into a finished [`RunResult`].
    pub fn into_result(self) -> RunResult {
        let stats = self.ledger.finish(self.r.device);
        RunResult {
            outputs: self.outputs,
            stats,
        }
    }

    /// Accepts a control transfer and runs until control leaves this host
    /// again or the program finishes.
    ///
    /// # Errors
    ///
    /// Program faults ([`RuntimeError`]) and peer-link failures
    /// ([`RuntimeError::HostLink`]).
    pub fn run_turn(
        &mut self,
        msg: ControlMsg,
        peer: &mut dyn ExecHost,
    ) -> Result<Outcome, RuntimeError> {
        debug_assert_eq!(msg.to, self.host, "control delivered to the wrong host");
        self.install(&msg);
        match msg.action {
            PendingAction::Finish => return Ok(Outcome::Done),
            PendingAction::Start => {
                let main = self.r.module.main;
                let entry = self.r.module.function(main).entry;
                let entry_seg = self.segment_at(main, entry, 0);
                self.stack.push(Frame {
                    func: main,
                    block: entry,
                    inst: 0,
                    segment: entry_seg,
                    ret_dst: None,
                });
                self.active_funcs.insert(main);
                let entry_task = self.r.tcfg.task_of(entry_seg);
                if self.host_of(entry_task) != self.host {
                    let sched = self.r.device.cost.sched_c2s.clone();
                    self.ledger.message(sched);
                    return Ok(Outcome::Yield(
                        self.package(self.host.other(), PendingAction::Resume),
                    ));
                }
            }
            PendingAction::Resume => {}
            PendingAction::PushFrame {
                func,
                block,
                segment,
                writes,
            } => {
                self.stack.push(Frame {
                    func,
                    block,
                    inst: 0,
                    segment,
                    ret_dst: None,
                });
                self.active_funcs.insert(func);
                for (p, v) in writes {
                    self.write_reg(p, v);
                }
            }
            PendingAction::WriteRet { dst, value } => {
                if let (Some(d), Some(v)) = (dst, value) {
                    self.write_reg(d, v);
                }
            }
        }

        loop {
            if self.stack.is_empty() {
                if self.host == Host::Server {
                    // Control returns home to the client.
                    let sched = self.r.device.cost.sched_s2c.clone();
                    self.ledger.message(sched);
                    return Ok(Outcome::Yield(
                        self.package(Host::Client, PendingAction::Finish),
                    ));
                }
                return Ok(Outcome::Done);
            }
            self.steps += 1;
            if self.steps > self.max_steps {
                return Err(RuntimeError::StepLimit(self.max_steps));
            }
            if let Some(msg) = self.step(peer)? {
                return Ok(Outcome::Yield(msg));
            }
        }
    }

    // ---- control-transfer plumbing ----

    fn install(&mut self, msg: &ControlMsg) {
        self.stack = msg.stack.clone();
        self.active_funcs = self.stack.iter().map(|f| f.func).collect();
        self.valid = msg.valid.iter().copied().collect();
        for &(key, site, slots) in &msg.dyn_table {
            self.dyn_site.insert(key, (site, slots));
            // Deferred registration: materialize zeroed storage for
            // objects allocated on the other host.
            self.state
                .mem
                .entry(key)
                .or_insert_with(|| vec![Value::Int(0); slots as usize]);
        }
        self.dyn_count = msg.dyn_count;
        self.steps = msg.steps;
        self.ledger = msg.ledger.clone();
    }

    fn package(&self, to: Host, action: PendingAction) -> ControlMsg {
        let mut valid: Vec<(AbsLocId, [bool; 2])> =
            self.valid.iter().map(|(k, v)| (*k, *v)).collect();
        valid.sort_by_key(|(k, _)| k.index());
        let mut dyn_table: Vec<(ObjKey, AllocSiteId, u32)> = self
            .dyn_site
            .iter()
            .map(|(k, (s, n))| (*k, *s, *n))
            .collect();
        dyn_table.sort_by_key(|(k, _, _)| *k);
        ControlMsg {
            to,
            action,
            stack: self.stack.clone(),
            valid,
            dyn_table,
            dyn_count: self.dyn_count,
            steps: self.steps,
            ledger: self.ledger.clone(),
        }
    }

    // ---- cost accounting ----

    fn compute_cost(&mut self, inst: &Inst) {
        let w = self.r.device.cost.inst_weight(inst) as i64;
        let unit = match self.host {
            Host::Client => self.r.device.cost.client_unit.clone(),
            Host::Server => self.r.device.cost.server_unit.clone(),
        };
        self.ledger.busy(self.host, &Rational::from(w) * &unit);
    }

    /// Extra client time for accesses to over-cache objects (modeled only
    /// in the simulator, not in the analysis — a realistic source of
    /// prediction error).
    fn cache_penalty(&mut self, key: ObjKey) {
        if self.host != Host::Client {
            return;
        }
        let size = self.state.mem.get(&key).map(|v| v.len()).unwrap_or(0) as u32;
        if size > self.r.device.cache_slots {
            let p = self.r.device.cache_miss_penalty.clone();
            self.ledger.busy(Host::Client, p);
        }
    }

    // ---- item identity and validity ----

    fn item_of_obj(&self, key: ObjKey) -> Option<AbsLocId> {
        let loc = match key {
            ObjKey::Global(g) => AbsLoc::Global(offload_ir::GlobalId(g)),
            ObjKey::Local(f, l) => AbsLoc::Local { func: f, local: l },
            ObjKey::Dyn(_) => AbsLoc::Site(self.dyn_site.get(&key)?.0),
        };
        self.r.pta.id_of(loc)
    }

    fn item_of_reg(&self, func: FuncId, reg: LocalId) -> Option<AbsLocId> {
        self.r.pta.id_of(AbsLoc::Reg { func, local: reg })
    }

    fn is_tracked(&self, item: AbsLocId) -> bool {
        self.tracked.contains(&item)
    }

    fn validity(&mut self, item: AbsLocId) -> &mut [bool; 2] {
        self.valid.entry(item).or_insert([true, true])
    }

    /// Ensures `item` is valid on this host, pulling it lazily from the
    /// peer if necessary.
    fn ensure_valid(
        &mut self,
        item: AbsLocId,
        peer: &mut dyn ExecHost,
    ) -> Result<(), RuntimeError> {
        if !self.is_tracked(item) {
            return Ok(());
        }
        let here = self.host.index();
        if self.validity(item)[here] {
            return Ok(());
        }
        // Lazy pull: request + response messages.
        self.ledger.stats.lazy_pulls += 1;
        let req = match self.host {
            Host::Client => self.r.device.cost.send_startup_c2s.clone(),
            Host::Server => self.r.device.cost.send_startup_s2c.clone(),
        };
        self.ledger.message(req);
        self.transfer_item(item, self.host.other(), self.host, peer)
    }

    fn note_write(&mut self, item: AbsLocId) {
        if !self.is_tracked(item) {
            return;
        }
        let host = self.host;
        let v = self.validity(item);
        v[host.index()] = true;
        v[host.other().index()] = false;
    }

    /// Reads out one tracked item's backing storage on this host.
    fn collect_item(&self, item: AbsLocId) -> ItemPayload {
        match self.r.pta.loc(item) {
            AbsLoc::Reg { func, local } => ItemPayload::Reg {
                func,
                local,
                value: self.state.regs[&func][local.index()],
            },
            AbsLoc::Global(g) => {
                let key = ObjKey::Global(g.0);
                ItemPayload::Objects(vec![ObjEntry {
                    key,
                    site: None,
                    data: self.state.mem.get(&key).cloned().unwrap_or_default(),
                }])
            }
            AbsLoc::Local { func, local } => {
                let key = ObjKey::Local(func, local);
                ItemPayload::Objects(vec![ObjEntry {
                    key,
                    site: None,
                    data: self.state.mem.get(&key).cloned().unwrap_or_default(),
                }])
            }
            AbsLoc::Site(site) => {
                let mut keys: Vec<ObjKey> = self
                    .dyn_site
                    .iter()
                    .filter(|(_, (s, _))| *s == site)
                    .map(|(k, _)| *k)
                    .collect();
                keys.sort();
                ItemPayload::Objects(
                    keys.into_iter()
                        .map(|key| ObjEntry {
                            key,
                            site: Some(site),
                            data: self.state.mem.get(&key).cloned().unwrap_or_default(),
                        })
                        .collect(),
                )
            }
        }
    }

    /// Overwrites this host's copy with a payload.
    fn install_item(&mut self, payload: ItemPayload) {
        match payload {
            ItemPayload::Reg { func, local, value } => {
                self.state.regs.get_mut(&func).expect("regs")[local.index()] = value;
            }
            ItemPayload::Objects(objs) => {
                for obj in objs {
                    if let (ObjKey::Dyn(_), Some(site)) = (obj.key, obj.site) {
                        self.dyn_site.insert(obj.key, (site, obj.data.len() as u32));
                    }
                    self.state.mem.insert(obj.key, obj.data);
                }
            }
        }
    }

    /// Moves an item's backing storage between the hosts through the peer
    /// link, with message cost, and marks both copies valid.
    fn transfer_item(
        &mut self,
        item: AbsLocId,
        from: Host,
        to: Host,
        peer: &mut dyn ExecHost,
    ) -> Result<(), RuntimeError> {
        let slots = if from == self.host {
            let payload = self.collect_item(item);
            let slots = payload.slots();
            peer.push_item(item, payload).map_err(RuntimeError::from)?;
            slots
        } else {
            let payload = peer.fetch_item(item).map_err(RuntimeError::from)?;
            let slots = payload.slots();
            self.install_item(payload);
            slots
        };
        let (startup, unit) = match to {
            Host::Server => (
                self.r.device.cost.send_startup_c2s.clone(),
                self.r.device.cost.send_unit_c2s.clone(),
            ),
            Host::Client => (
                self.r.device.cost.send_startup_s2c.clone(),
                self.r.device.cost.send_unit_s2c.clone(),
            ),
        };
        self.ledger
            .message(&startup + &(&Rational::from(slots as i64) * &unit));
        self.ledger.stats.slots_transferred += slots;
        let v = self.validity(item);
        v[0] = true;
        v[1] = true;
        Ok(())
    }

    // ---- register and memory access ----

    fn cur_func(&self) -> FuncId {
        self.stack.last().expect("active frame").func
    }

    fn read_reg(&mut self, reg: LocalId, peer: &mut dyn ExecHost) -> Result<Value, RuntimeError> {
        let func = self.cur_func();
        if let Some(item) = self.item_of_reg(func, reg) {
            self.ensure_valid(item, peer)?;
        }
        Ok(self.state.regs[&func][reg.index()])
    }

    fn write_reg(&mut self, reg: LocalId, v: Value) {
        let func = self.cur_func();
        self.state.regs.get_mut(&func).expect("regs")[reg.index()] = v;
        if let Some(item) = self.item_of_reg(func, reg) {
            self.note_write(item);
        }
    }

    fn operand(&mut self, op: Operand, peer: &mut dyn ExecHost) -> Result<Value, RuntimeError> {
        match op {
            Operand::Const(c) => Ok(Value::Int(c)),
            Operand::Local(l) => self.read_reg(l, peer),
        }
    }

    fn load(&mut self, addr: Value, peer: &mut dyn ExecHost) -> Result<Value, RuntimeError> {
        let Value::Addr(key, off) = addr else {
            return Err(RuntimeError::BadAccess(format!("load through {addr}")));
        };
        if let Some(item) = self.item_of_obj(key) {
            self.ensure_valid(item, peer)?;
        }
        self.cache_penalty(key);
        let obj = self
            .state
            .mem
            .get(&key)
            .ok_or_else(|| RuntimeError::BadAccess(format!("no object {key}")))?;
        obj.get(off as usize)
            .copied()
            .ok_or_else(|| RuntimeError::BadAccess(format!("{key}+{off} out of bounds")))
    }

    fn store(
        &mut self,
        addr: Value,
        v: Value,
        peer: &mut dyn ExecHost,
    ) -> Result<(), RuntimeError> {
        let Value::Addr(key, off) = addr else {
            return Err(RuntimeError::BadAccess(format!("store through {addr}")));
        };
        if let Some(item) = self.item_of_obj(key) {
            // Partial writes require the destination copy to be valid
            // first (the paper's conservative constraint, dynamically).
            self.ensure_valid(item, peer)?;
        }
        self.cache_penalty(key);
        let obj = self
            .state
            .mem
            .get_mut(&key)
            .ok_or_else(|| RuntimeError::BadAccess(format!("no object {key}")))?;
        let slot = obj
            .get_mut(off as usize)
            .ok_or_else(|| RuntimeError::BadAccess(format!("{key}+{off} out of bounds")))?;
        *slot = v;
        if let Some(item) = self.item_of_obj(key) {
            self.note_write(item);
        }
        Ok(())
    }

    // ---- plan queries ----

    fn host_of(&self, task: TaskId) -> Host {
        match self.r.plan {
            Plan::AllLocal => Host::Client,
            Plan::Partitioned(p) => {
                if p.server_tasks[task.index()] {
                    Host::Server
                } else {
                    Host::Client
                }
            }
            // `Runner::run` rejects unresolved plans before machines exist.
            Plan::Remote(_) => unreachable!("unresolved Plan::Remote in executor"),
        }
    }

    fn segment_at(&self, func: FuncId, block: BlockId, inst: usize) -> SegmentId {
        let ranges = &self.seg_index[&(func, block)];
        for (i, &(start, end, sid)) in ranges.iter().enumerate() {
            let last = i + 1 == ranges.len();
            // Instruction positions [start, end) belong to the segment;
            // the block-final segment also owns the terminator position
            // (inst >= end only happens for inst == block length).
            if inst >= start && (inst < end || last) {
                return sid;
            }
        }
        unreachable!("position {func}:{block}:{inst} outside all segments")
    }

    /// Handles a control transfer between segments: planned eager
    /// transfers, and the host-switch scheduling message. Returns the
    /// destination host when control must leave this machine.
    fn cross(
        &mut self,
        from_seg: SegmentId,
        to_seg: SegmentId,
        kind: EdgeKind,
        peer: &mut dyn ExecHost,
    ) -> Result<Option<Host>, RuntimeError> {
        let from_task = self.r.tcfg.task_of(from_seg);
        let to_task = self.r.tcfg.task_of(to_seg);
        if from_task == to_task {
            return Ok(None);
        }
        let from_host = self.host_of(from_task);
        let to_host = self.host_of(to_task);
        // Planned eager transfers ride along regardless of host switch
        // (they can also prepay for later tasks).
        if let Plan::Partitioned(p) = self.r.plan {
            if let Some(&ei) = self.edge_index.get(&(from_task, to_task, kind)) {
                let moves = p.transfers[ei].clone();
                for (item_idx, dir) in moves {
                    let item = self.tracked_item_by_index(item_idx);
                    let (src, dst) = match dir {
                        Direction::ClientToServer => (Host::Client, Host::Server),
                        Direction::ServerToClient => (Host::Server, Host::Client),
                    };
                    if let Some(item) = item {
                        // Only move if the source copy is actually valid
                        // (dynamic state may differ from the static plan).
                        if self.validity(item)[src.index()] && !self.validity(item)[dst.index()] {
                            self.ledger.stats.eager_transfers += 1;
                            self.transfer_item(item, src, dst, peer)?;
                        }
                    }
                }
            }
        }
        if from_host != to_host {
            let sched = match to_host {
                Host::Server => self.r.device.cost.sched_c2s.clone(),
                Host::Client => self.r.device.cost.sched_s2c.clone(),
            };
            self.ledger.message(sched);
            return Ok(Some(to_host));
        }
        Ok(None)
    }

    fn tracked_item_by_index(&self, idx: u32) -> Option<AbsLocId> {
        // The plan's transfer lists index the analysis' item table, whose
        // order is passed in via `tracked_order`.
        self.r.tracked_order.get(idx as usize).copied()
    }

    // ---- the interpreter loop ----

    fn step(&mut self, peer: &mut dyn ExecHost) -> Result<Option<ControlMsg>, RuntimeError> {
        let frame = self.stack.last().expect("active frame");
        let (func, block, inst_idx, seg) = (frame.func, frame.block, frame.inst, frame.segment);
        let f = self.r.module.function(func);
        let b = &f.blocks[block.index()];

        if inst_idx < b.insts.len() {
            let inst = b.insts[inst_idx].clone();
            self.ledger.stats.instructions += 1;
            self.compute_cost(&inst);
            if let Inst::Call { .. } = &inst {
                return self.exec_call(inst, func, block, inst_idx, seg, peer);
            }
            self.exec_simple(inst, peer)?;
            let frame = self.stack.last_mut().expect("active frame");
            frame.inst += 1;
            return Ok(None);
        }

        // Terminator.
        let term = b.term.clone();
        match term {
            Terminator::Goto(t) => self.jump(func, seg, block, t, peer),
            Terminator::Branch {
                cond,
                then,
                otherwise,
            } => {
                let v = self.operand(cond, peer)?;
                let target = if v.truthy() { then } else { otherwise };
                self.jump(func, seg, block, target, peer)
            }
            Terminator::Return(v) => {
                let value = match v {
                    Some(op) => Some(self.operand(op, peer)?),
                    None => None,
                };
                self.exec_return(seg, value, peer)
            }
        }
    }

    fn jump(
        &mut self,
        func: FuncId,
        from_seg: SegmentId,
        from_block: BlockId,
        to: BlockId,
        peer: &mut dyn ExecHost,
    ) -> Result<Option<ControlMsg>, RuntimeError> {
        let to_seg = self.segment_at(func, to, 0);
        let switch = self.cross(
            from_seg,
            to_seg,
            EdgeKind::Jump {
                from: from_block,
                to,
            },
            peer,
        )?;
        let frame = self.stack.last_mut().expect("active frame");
        frame.block = to;
        frame.inst = 0;
        frame.segment = to_seg;
        Ok(switch.map(|h| self.package(h, PendingAction::Resume)))
    }

    fn exec_call(
        &mut self,
        inst: Inst,
        func: FuncId,
        block: BlockId,
        inst_idx: usize,
        seg: SegmentId,
        peer: &mut dyn ExecHost,
    ) -> Result<Option<ControlMsg>, RuntimeError> {
        let Inst::Call { dst, callee, args } = inst else {
            unreachable!()
        };
        let target = match callee {
            Callee::Direct(t) => t,
            Callee::Indirect(op) => match self.operand(op, peer)? {
                Value::Func(t) => t,
                other => {
                    return Err(RuntimeError::BadIndirectCall(format!(
                        "callee evaluated to {other}"
                    )))
                }
            },
        };
        let callee_def = self.r.module.function(target);
        if callee_def.params.len() != args.len() {
            return Err(RuntimeError::BadIndirectCall(format!(
                "`{}` expects {} args, got {}",
                callee_def.name,
                callee_def.params.len(),
                args.len()
            )));
        }
        if self.active_funcs.contains(&target) {
            return Err(RuntimeError::Recursion(callee_def.name.clone()));
        }
        // Evaluate arguments on the caller's host.
        let mut arg_vals = Vec::with_capacity(args.len());
        for a in &args {
            arg_vals.push(self.operand(*a, peer)?);
        }

        // Advance the caller past the call before switching.
        let cont_seg = self.segment_at(func, block, inst_idx + 1);
        {
            let frame = self.stack.last_mut().expect("caller frame");
            frame.inst = inst_idx + 1;
            frame.ret_dst = dst;
            frame.segment = cont_seg;
        }

        // Control moves to the callee's entry segment.
        let callee_entry = callee_def.entry;
        let entry_seg = self.segment_at(target, callee_entry, 0);
        let params = callee_def.params.clone();
        let writes: Vec<(LocalId, Value)> = params.iter().copied().zip(arg_vals).collect();
        let switch = self.cross(seg, entry_seg, EdgeKind::Call { site: seg }, peer)?;
        if let Some(h) = switch {
            // Parameters are carried by the scheduling message and written
            // on the callee's host.
            return Ok(Some(self.package(
                h,
                PendingAction::PushFrame {
                    func: target,
                    block: callee_entry,
                    segment: entry_seg,
                    writes,
                },
            )));
        }
        self.stack.push(Frame {
            func: target,
            block: callee_entry,
            inst: 0,
            segment: entry_seg,
            ret_dst: None,
        });
        self.active_funcs.insert(target);
        for (p, v) in writes {
            self.write_reg(p, v);
        }
        Ok(None)
    }

    fn exec_return(
        &mut self,
        seg: SegmentId,
        value: Option<Value>,
        peer: &mut dyn ExecHost,
    ) -> Result<Option<ControlMsg>, RuntimeError> {
        let done = self.stack.pop().expect("returning frame");
        self.active_funcs.remove(&done.func);
        let Some(caller) = self.stack.last() else {
            return Ok(None); // main returned
        };
        let cont_seg = caller.segment;
        let ret_dst = caller.ret_dst;
        // The call segment is the one preceding the continuation.
        let call_seg = SegmentId(cont_seg.0 - 1);
        let switch = self.cross(seg, cont_seg, EdgeKind::Return { site: call_seg }, peer)?;
        if let Some(h) = switch {
            // The return value is carried by the message and written on
            // the continuation's host.
            return Ok(Some(self.package(
                h,
                PendingAction::WriteRet {
                    dst: ret_dst,
                    value,
                },
            )));
        }
        if let (Some(d), Some(v)) = (ret_dst, value) {
            self.write_reg(d, v);
        }
        Ok(None)
    }

    fn exec_simple(&mut self, inst: Inst, peer: &mut dyn ExecHost) -> Result<(), RuntimeError> {
        match inst {
            Inst::Copy { dst, src } => {
                let v = self.operand(src, peer)?;
                self.write_reg(dst, v);
            }
            Inst::Un { dst, op, src } => {
                let v = self.operand(src, peer)?;
                let out = match op {
                    offload_lang::UnOp::Neg => Value::Int(
                        v.as_int()
                            .ok_or_else(|| RuntimeError::BadAccess("negating pointer".into()))?
                            .wrapping_neg(),
                    ),
                    offload_lang::UnOp::Not => Value::Int(!v.truthy() as i64),
                };
                self.write_reg(dst, out);
            }
            Inst::Bin { dst, op, lhs, rhs } => {
                let a = self.operand(lhs, peer)?;
                let b = self.operand(rhs, peer)?;
                let out = eval_bin(op, a, b)?;
                self.write_reg(dst, out);
            }
            Inst::AddrGlobal { dst, global } => {
                self.write_reg(dst, Value::Addr(ObjKey::Global(global.0), 0));
            }
            Inst::AddrLocal { dst, local } => {
                let func = self.cur_func();
                self.write_reg(dst, Value::Addr(ObjKey::Local(func, local), 0));
            }
            Inst::AddrIndex {
                dst,
                base,
                index,
                stride,
            } => {
                let b = self.operand(base, peer)?;
                let i = self.operand(index, peer)?;
                let Value::Addr(key, off) = b else {
                    return Err(RuntimeError::BadAccess(format!("indexing {b}")));
                };
                let i = i
                    .as_int()
                    .ok_or_else(|| RuntimeError::BadAccess("pointer used as index".into()))?;
                let new_off = off as i64 + i * stride as i64;
                if new_off < 0 || new_off > u32::MAX as i64 {
                    return Err(RuntimeError::BadAccess(format!("offset {new_off}")));
                }
                self.write_reg(dst, Value::Addr(key, new_off as u32));
            }
            Inst::AddrField { dst, base, offset } => {
                let b = self.operand(base, peer)?;
                let Value::Addr(key, off) = b else {
                    return Err(RuntimeError::BadAccess(format!("field of {b}")));
                };
                self.write_reg(dst, Value::Addr(key, off + offset));
            }
            Inst::Load { dst, addr } => {
                let a = self.operand(addr, peer)?;
                let v = self.load(a, peer)?;
                self.write_reg(dst, v);
            }
            Inst::Store { addr, src } => {
                let a = self.operand(addr, peer)?;
                let v = self.operand(src, peer)?;
                self.store(a, v, peer)?;
            }
            Inst::Alloc {
                dst,
                elem_slots,
                count,
                site,
            } => {
                let c = self
                    .operand(count, peer)?
                    .as_int()
                    .ok_or_else(|| RuntimeError::BadAccess("pointer alloc count".into()))?;
                let slots = (elem_slots as i64).saturating_mul(c.max(0)) as usize;
                let key = ObjKey::Dyn(self.dyn_count);
                self.dyn_count += 1;
                self.ledger.stats.registrations += 1;
                // Registration: the id ↔ site binding becomes shared
                // knowledge (it rides the next control transfer); this
                // host materializes zeroed storage now, the other host on
                // receipt. The registration fee is charged once.
                self.dyn_site.insert(key, (site, slots as u32));
                self.state.mem.insert(key, vec![Value::Int(0); slots]);
                let fee = self.r.device.cost.registration.clone();
                let host = self.host;
                self.ledger.busy(host, fee);
                self.write_reg(dst, Value::Addr(key, 0));
                // The fresh object is valid where it was allocated.
                if let Some(item) = self.item_of_obj(key) {
                    self.note_write(item);
                }
            }
            Inst::LoadFunc { dst, func } => {
                self.write_reg(dst, Value::Func(func));
            }
            Inst::Input { dst } => {
                if self.host != Host::Client {
                    return Err(RuntimeError::ServerIo);
                }
                let v = *self
                    .input
                    .get(self.input_pos)
                    .ok_or(RuntimeError::InputExhausted)?;
                self.input_pos += 1;
                self.write_reg(dst, Value::Int(v));
            }
            Inst::Output { src } => {
                if self.host != Host::Client {
                    return Err(RuntimeError::ServerIo);
                }
                let v = self
                    .operand(src, peer)?
                    .as_int()
                    .ok_or_else(|| RuntimeError::BadAccess("output of pointer".into()))?;
                self.outputs.push(v);
            }
            Inst::Call { .. } => unreachable!("calls handled by exec_call"),
        }
        Ok(())
    }
}

fn eval_bin(op: IrBinOp, a: Value, b: Value) -> Result<Value, RuntimeError> {
    // Pointer equality.
    match (op, &a, &b) {
        (IrBinOp::Eq, Value::Addr(..), _)
        | (IrBinOp::Eq, _, Value::Addr(..))
        | (IrBinOp::Eq, Value::Func(_), _)
        | (IrBinOp::Eq, _, Value::Func(_)) => {
            let eq = ptr_eq(&a, &b);
            return Ok(Value::Int(eq as i64));
        }
        (IrBinOp::Ne, Value::Addr(..), _)
        | (IrBinOp::Ne, _, Value::Addr(..))
        | (IrBinOp::Ne, Value::Func(_), _)
        | (IrBinOp::Ne, _, Value::Func(_)) => {
            let eq = ptr_eq(&a, &b);
            return Ok(Value::Int(!eq as i64));
        }
        _ => {}
    }
    let x = a
        .as_int()
        .ok_or_else(|| RuntimeError::BadAccess("arith on pointer".into()))?;
    let y = b
        .as_int()
        .ok_or_else(|| RuntimeError::BadAccess("arith on pointer".into()))?;
    Ok(Value::Int(match op {
        IrBinOp::Add => x.wrapping_add(y),
        IrBinOp::Sub => x.wrapping_sub(y),
        IrBinOp::Mul => x.wrapping_mul(y),
        IrBinOp::Div => {
            if y == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            x.wrapping_div(y)
        }
        IrBinOp::Rem => {
            if y == 0 {
                return Err(RuntimeError::DivisionByZero);
            }
            x.wrapping_rem(y)
        }
        IrBinOp::Eq => (x == y) as i64,
        IrBinOp::Ne => (x != y) as i64,
        IrBinOp::Lt => (x < y) as i64,
        IrBinOp::Le => (x <= y) as i64,
        IrBinOp::Gt => (x > y) as i64,
        IrBinOp::Ge => (x >= y) as i64,
    }))
}

fn ptr_eq(a: &Value, b: &Value) -> bool {
    match (a, b) {
        (Value::Addr(k1, o1), Value::Addr(k2, o2)) => k1 == k2 && o1 == o2,
        (Value::Func(f1), Value::Func(f2)) => f1 == f2,
        (Value::Addr(..), Value::Int(0)) | (Value::Int(0), Value::Addr(..)) => false,
        (Value::Func(_), Value::Int(0)) | (Value::Int(0), Value::Func(_)) => false,
        (Value::Uninit, Value::Int(0)) | (Value::Int(0), Value::Uninit) => true,
        _ => false,
    }
}
