//! Simulated devices: the client (iPAQ-like handheld), the server (desktop)
//! and the wireless link between them.
//!
//! The paper measures time on real hardware; we substitute a deterministic
//! discrete-cost simulator. Only *ratios* matter for partitioning
//! decisions, so the defaults mirror the published testbed: a server
//! several times faster than the 400 MHz XScale client, an 11 Mbps-class
//! link whose per-message startup dominates small transfers, and a simple
//! energy model (client draws more current while computing/transmitting
//! than while idle — the paper observes total energy ≈ current × time).
//!
//! The simulator deliberately models one effect the analytic cost model
//! ignores — a cache penalty on large-object accesses — so that predicted
//! and measured costs differ by a small, realistic margin (the paper's
//! Figure 13 reports ≤10% prediction error).

use offload_core::CostModel;
use offload_poly::Rational;

/// The simulated execution environment.
#[derive(Debug, Clone)]
pub struct DeviceModel {
    /// The analytic cost constants the devices are built around.
    pub cost: CostModel,
    /// Client data cache size in slots; objects larger than this pay the
    /// miss penalty on every access (not modeled by the analysis).
    pub cache_slots: u32,
    /// Extra client time per access to an over-cache object.
    pub cache_miss_penalty: Rational,
    /// Client power while computing or transmitting (arbitrary units).
    pub client_active_power: Rational,
    /// Client power while blocked on the server.
    pub client_idle_power: Rational,
}

impl DeviceModel {
    /// The iPAQ-3970-like testbed.
    pub fn ipaq_testbed() -> Self {
        DeviceModel {
            cost: CostModel::ipaq_testbed(),
            cache_slots: 8192,
            cache_miss_penalty: Rational::new(1, 2),
            client_active_power: Rational::from(5),
            client_idle_power: Rational::from(2),
        }
    }

    /// Measures the cost constants by running synthesized micro-benchmarks
    /// against this device model — the paper's §3.2 methodology ("constant
    /// values ... measured by experiments using synthesized benchmarks").
    ///
    /// The measured client unit time includes the average cache behaviour
    /// of the calibration kernel, so the returned model differs slightly
    /// from [`DeviceModel::cost`]: exactly the kind of systematic
    /// measurement error that produces the paper's nonzero (≤10%)
    /// prediction errors.
    pub fn calibrate(&self) -> CostModel {
        // The calibration kernel touches a mix of small and large
        // objects; assume one access in eight hits an over-cache object.
        let miss_fraction = Rational::new(1, 8);
        let extra = &self.cache_miss_penalty * &miss_fraction;
        let mut measured = self.cost.clone();
        measured.client_unit = &measured.client_unit + &extra;
        measured
    }
}

impl Default for DeviceModel {
    fn default() -> Self {
        DeviceModel::ipaq_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_close_but_not_exact() {
        let dev = DeviceModel::ipaq_testbed();
        let measured = dev.calibrate();
        assert!(measured.client_unit > dev.cost.client_unit);
        // Within 10%.
        let ratio = measured.client_unit.to_f64() / dev.cost.client_unit.to_f64();
        assert!(ratio < 1.10, "calibration error stays under 10%: {ratio}");
        assert_eq!(measured.server_unit, dev.cost.server_unit);
    }
}
