//! Run-time values and the host-independent object naming scheme.
//!
//! Both hosts keep their own copy of every memory object. Objects are
//! named by host-independent [`ObjKey`]s so that transferred data —
//! including pointer values — means the same thing on either side: this
//! is the paper's registration/mapping-table mechanism (§2.3), realized
//! with a shared key space. Dynamic allocations get sequential
//! registration numbers (allocation order is deterministic because
//! exactly one host executes at any moment).

use offload_ir::{FuncId, LocalId};
use std::fmt;

/// Host-independent name of a memory object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum ObjKey {
    /// A global object.
    Global(u32),
    /// A function's stack-resident local (statically allocated: the
    /// runtime rejects recursion, so one activation suffices — matching
    /// the analysis, which summarizes each local as one abstract
    /// location).
    Local(FuncId, LocalId),
    /// The `n`-th dynamic allocation of the run (the registration id of
    /// §2.3's registration tables).
    Dyn(u64),
}

impl fmt::Display for ObjKey {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ObjKey::Global(g) => write!(f, "g{g}"),
            ObjKey::Local(func, l) => write!(f, "{func}:{l}"),
            ObjKey::Dyn(n) => write!(f, "dyn{n}"),
        }
    }
}

/// A run-time scalar value.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum Value {
    /// An integer.
    Int(i64),
    /// A pointer: object plus slot offset.
    Addr(ObjKey, u32),
    /// A function pointer.
    Func(FuncId),
    /// Never written (reading it is a runtime error in strict mode; it
    /// transfers as itself).
    #[default]
    Uninit,
}

impl Value {
    /// The integer, if this is one (0 for `Uninit`, matching
    /// zero-initialized memory).
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Uninit => Some(0),
            _ => None,
        }
    }

    /// Truthiness for branches: zero and null are false.
    pub fn truthy(&self) -> bool {
        match self {
            Value::Int(v) => *v != 0,
            Value::Addr(..) | Value::Func(_) => true,
            Value::Uninit => false,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Addr(k, o) => write!(f, "&{k}+{o}"),
            Value::Func(id) => write!(f, "&{id}"),
            Value::Uninit => write!(f, "uninit"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn truthiness() {
        assert!(!Value::Int(0).truthy());
        assert!(Value::Int(-3).truthy());
        assert!(Value::Addr(ObjKey::Global(0), 0).truthy());
        assert!(!Value::Uninit.truthy());
    }

    #[test]
    fn uninit_reads_as_zero() {
        assert_eq!(Value::Uninit.as_int(), Some(0));
        assert_eq!(Value::Addr(ObjKey::Global(0), 0).as_int(), None);
    }

    #[test]
    fn keys_order_deterministically() {
        let mut keys = [
            ObjKey::Dyn(1),
            ObjKey::Global(0),
            ObjKey::Local(FuncId(0), LocalId(2)),
        ];
        keys.sort();
        assert_eq!(keys[0], ObjKey::Global(0));
    }
}
