//! Tests of the distributed executor: interpreter correctness on the
//! client-only plan, and the central invariant that any partitioning plan
//! preserves observable behaviour.

use offload_core::{Analysis, AnalysisOptions};
use offload_runtime::{DeviceModel, RuntimeError, Simulator};

fn analysis(src: &str) -> Analysis {
    Analysis::from_source(src, AnalysisOptions::default()).expect("analysis")
}

fn run_local(src: &str, params: &[i64], input: &[i64]) -> Vec<i64> {
    let a = analysis(src);
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    sim.run_local(params, input).expect("run").outputs
}

#[test]
fn arithmetic_and_control_flow() {
    let out = run_local(
        "void main(int n) {
             int i; int acc;
             acc = 0;
             for (i = 1; i <= n; i++) {
                 if (i % 2 == 0) { acc = acc + i; } else { acc = acc - i; }
             }
             output(acc);
         }",
        &[10],
        &[],
    );
    // -1+2-3+4-5+6-7+8-9+10 = 5
    assert_eq!(out, vec![5]);
}

#[test]
fn arrays_and_pointers() {
    let out = run_local(
        "int buf[8];
         void main() {
             int i;
             int *p;
             for (i = 0; i < 8; i++) { buf[i] = i * i; }
             p = &buf[3];
             output(*p);
             *p = 100;
             output(buf[3]);
         }",
        &[],
        &[],
    );
    assert_eq!(out, vec![9, 100]);
}

#[test]
fn structs_and_dynamic_lists() {
    let out = run_local(offload_lang::examples_src::FIGURE4, &[6], &[]);
    // Sum of indices 0..5 = 15.
    assert_eq!(out, vec![15]);
}

#[test]
fn input_stream_consumed_in_order() {
    let out = run_local(
        "void main(int n) {
             int i; int v; int acc;
             acc = 0;
             for (i = 0; i < n; i++) { v = input(); acc = acc + v; }
             output(acc);
         }",
        &[3],
        &[10, 20, 30],
    );
    assert_eq!(out, vec![60]);
}

#[test]
fn input_exhaustion_is_an_error() {
    let a = analysis("void main() { output(input()); }");
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    let err = sim.run_local(&[], &[]).unwrap_err();
    assert!(err.to_string().contains("input stream exhausted"));
}

#[test]
fn division_by_zero_detected() {
    let a = analysis("void main(int n) { output(10 / n); }");
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    let err = sim.run_local(&[0], &[]).unwrap_err();
    assert!(err.to_string().contains("division by zero"));
    assert_eq!(sim.run_local(&[2], &[]).unwrap().outputs, vec![5]);
}

#[test]
fn function_pointers_dispatch() {
    let out = run_local(
        "int twice(int x) { return 2 * x; }
         int thrice(int x) { return 3 * x; }
         void main(int mode, int v) {
             fn g;
             if (mode == 1) { g = &twice; } else { g = &thrice; }
             output(g(v));
         }",
        &[1, 7],
        &[],
    );
    assert_eq!(out, vec![14]);
}

#[test]
fn recursion_rejected() {
    let a = analysis(
        "int fact(int n) { if (n <= 1) { return 1; } return n * fact(n - 1); }
         void main(int n) { output(fact(n)); }",
    );
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    let err = sim.run_local(&[5], &[]).unwrap_err();
    assert!(err.to_string().contains("recursion"), "{err}");
}

#[test]
fn figure1_local_encodes() {
    let a = analysis(offload_lang::examples_src::FIGURE1);
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    // x=2 frames of y=3 samples, z=4 increments per unit.
    let input = vec![5, 6, 7, 8, 9, 10];
    let r = sim.run_local(&[2, 3, 4], &input).unwrap();
    assert_eq!(r.outputs, vec![9, 10, 11, 12, 13, 14]);
    assert_eq!(r.stats.messages, 0, "local run exchanges no messages");
}

#[test]
fn every_choice_preserves_outputs() {
    let a = analysis(offload_lang::examples_src::FIGURE1);
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    let params = [2i64, 3, 4];
    let input = vec![5, 6, 7, 8, 9, 10];
    let local = sim.run_local(&params, &input).unwrap();
    for (i, _) in a.partition.choices.iter().enumerate() {
        let r = sim.run_choice(i, &params, &input).unwrap();
        assert_eq!(
            r.outputs, local.outputs,
            "choice {i} must behave identically"
        );
    }
}

#[test]
fn offloaded_run_exchanges_messages() {
    let a = analysis(offload_lang::examples_src::FIGURE1);
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    // Force a non-local choice if one exists.
    if let Some((i, _)) = a
        .partition
        .choices
        .iter()
        .enumerate()
        .find(|(_, c)| !c.is_all_local())
    {
        let r = sim
            .run_choice(i, &[2, 3, 50], &(5..=10).collect::<Vec<_>>())
            .unwrap();
        assert!(r.stats.messages > 0);
        assert!(r.stats.server_compute > offload_poly::Rational::zero());
    }
}

#[test]
fn dispatched_run_matches_local_output() {
    let a = analysis(offload_lang::examples_src::FIGURE1);
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    for z in [1i64, 10, 1000] {
        let params = [2i64, 3, z];
        let input = vec![1, 2, 3, 4, 5, 6];
        let local = sim.run_local(&params, &input).unwrap();
        let (_, dispatched) = sim.run_dispatched(&params, &input).unwrap();
        assert_eq!(dispatched.outputs, local.outputs, "z={z}");
    }
}

#[test]
fn heavy_work_runs_faster_offloaded() {
    let src = "int work(int k) {
                   int j; int acc;
                   acc = 0;
                   for (j = 0; j < k; j++) { acc = acc + j * j; }
                   return acc;
               }
               void main(int n) { output(work(n)); }";
    let a = analysis(src);
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    let n = 100_000i64;
    let local = sim.run_local(&[n], &[]).unwrap();
    let (idx, dispatched) = sim.run_dispatched(&[n], &[]).unwrap();
    assert!(!a.partition.choices[idx].is_all_local());
    assert!(
        dispatched.stats.total_time < local.stats.total_time,
        "offloading must pay off for n={n}: {} vs {}",
        dispatched.stats.total_time.to_f64(),
        local.stats.total_time.to_f64()
    );
    assert_eq!(dispatched.outputs, local.outputs);
}

#[test]
fn light_work_runs_faster_locally() {
    let src = "int work(int k) {
                   int j; int acc;
                   acc = 0;
                   for (j = 0; j < k; j++) { acc = acc + j * j; }
                   return acc;
               }
               void main(int n) { output(work(n)); }";
    let a = analysis(src);
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    let (idx, _) = sim.run_dispatched(&[3], &[]).unwrap();
    assert!(
        a.partition.choices[idx].is_all_local(),
        "tiny input stays local"
    );
}

#[test]
fn energy_accounting_consistent() {
    let a = analysis("void main(int n) { int i; int s; s = 0; for (i = 0; i < n; i++) { s = s + i; } output(s); }");
    let sim = Simulator::new(&a, DeviceModel::ipaq_testbed());
    let r = sim.run_local(&[100], &[]).unwrap();
    // All-local: client busy the whole time, energy = time * active power.
    let expected = &r.stats.total_time * &sim.device().client_active_power;
    assert_eq!(r.stats.energy, expected);
}

#[test]
fn step_limit_guards_infinite_loops() {
    let a = analysis("void main() { while (1) { } output(1); }");
    let mut tracked: Vec<offload_pta::AbsLocId> = Vec::new();
    tracked.extend(a.items.items.iter().map(|i| i.loc));
    let device = DeviceModel::ipaq_testbed();
    let runner = offload_runtime::Runner {
        module: &a.module,
        tcfg: &a.tcfg,
        pta: &a.pta,
        tracked_order: &tracked,
        device: &device,
        plan: offload_runtime::Plan::AllLocal,
        max_steps: 10_000,
    };
    let err = runner.run(&[], &[]).unwrap_err();
    assert!(matches!(err, RuntimeError::StepLimit(_)));
}
