//! Arbitrary-precision signed integers with an inline small-value fast
//! path.
//!
//! The parametric partitioning algorithm performs long chains of
//! Fourier–Motzkin combinations whose coefficients can overflow any fixed
//! width integer, so all polyhedral arithmetic is exact over [`BigInt`].
//! In practice, though, the overwhelming majority of coefficients are tiny
//! (gcd normalization after every operation keeps them small), so the
//! representation is a two-armed enum: an inline `i64` for values that fit,
//! and a sign plus little-endian `u32` limbs only for values that do not.
//!
//! The representation is canonical — the heap arm is used *only* for
//! values outside the `i64` range, and limb vectors never carry trailing
//! zeros — so structural equality and hashing coincide with numeric
//! equality and derived `Eq`/`Hash` are correct. Every arithmetic result
//! is re-canonicalized, demoting back to the inline arm whenever it fits;
//! promotions (small operands whose result needs limbs) are counted in
//! [`crate::PolyStats::small_int_promotions`].

use std::cmp::Ordering;
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;
use std::sync::atomic::Ordering::Relaxed;

/// Sign of a heap-allocated [`BigInt`] (the heap arm is never zero).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sign {
    Negative,
    Positive,
}

/// Internal representation. Invariant: `Big` is used only for values
/// strictly outside the `i64` range, and its limb vector has no trailing
/// zeros — so every value has exactly one representation.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
enum Repr {
    Small(i64),
    /// Little-endian limbs; magnitude exceeds `i64::MAX` for positives
    /// and 2^63 for negatives (a magnitude of exactly 2^63 with negative
    /// sign is `i64::MIN` and stays `Small`).
    Big(Sign, Vec<u32>),
}

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use offload_poly::BigInt;
///
/// let a = BigInt::from(1_000_000_007i64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1000000014000000049");
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt(Repr);

#[inline]
fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl BigInt {
    /// The integer zero.
    #[inline]
    pub fn zero() -> Self {
        BigInt(Repr::Small(0))
    }

    /// The integer one.
    #[inline]
    pub fn one() -> Self {
        BigInt(Repr::Small(1))
    }

    /// Returns `true` if this integer is zero.
    #[inline]
    pub fn is_zero(&self) -> bool {
        matches!(self.0, Repr::Small(0))
    }

    /// Returns `true` if this integer is strictly positive.
    #[inline]
    pub fn is_positive(&self) -> bool {
        match &self.0 {
            Repr::Small(v) => *v > 0,
            Repr::Big(s, _) => *s == Sign::Positive,
        }
    }

    /// Returns `true` if this integer is strictly negative.
    #[inline]
    pub fn is_negative(&self) -> bool {
        match &self.0 {
            Repr::Small(v) => *v < 0,
            Repr::Big(s, _) => *s == Sign::Negative,
        }
    }

    /// Sign as `-1`, `0` or `1`.
    #[inline]
    pub fn signum(&self) -> i32 {
        match &self.0 {
            Repr::Small(v) => v.signum() as i32,
            Repr::Big(Sign::Negative, _) => -1,
            Repr::Big(Sign::Positive, _) => 1,
        }
    }

    /// The inline value, when this integer fits `i64`.
    #[inline]
    pub(crate) fn as_small(&self) -> Option<i64> {
        match self.0 {
            Repr::Small(v) => Some(v),
            Repr::Big(..) => None,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        match &self.0 {
            Repr::Small(v) => match v.checked_abs() {
                Some(a) => BigInt(Repr::Small(a)),
                // |i64::MIN| = 2^63 does not fit i64.
                None => BigInt::promoted_i128(-(i64::MIN as i128)),
            },
            Repr::Big(_, limbs) => BigInt(Repr::Big(Sign::Positive, limbs.clone())),
        }
    }

    /// Canonical constructor from a value known to fit `i128`; promotes to
    /// the heap arm (and counts the promotion) only when needed.
    #[inline]
    fn promoted_i128(v: i128) -> Self {
        if let Ok(s) = i64::try_from(v) {
            return BigInt(Repr::Small(s));
        }
        crate::counters::SMALL_INT_PROMOTIONS.fetch_add(1, Relaxed);
        Self::big_from_u128(v < 0, v.unsigned_abs())
    }

    /// Like [`Self::promoted_i128`] but without the promotion accounting —
    /// used by `From` conversions, where a large literal is not an
    /// arithmetic overflow.
    #[inline]
    fn from_i128_quiet(v: i128) -> Self {
        if let Ok(s) = i64::try_from(v) {
            return BigInt(Repr::Small(s));
        }
        Self::big_from_u128(v < 0, v.unsigned_abs())
    }

    fn big_from_u128(negative: bool, mut mag: u128) -> Self {
        // Caller guarantees the value is outside i64 range.
        debug_assert!(mag > i64::MAX as u128);
        let mut limbs = Vec::with_capacity(4);
        while mag != 0 {
            limbs.push(mag as u32);
            mag >>= 32;
        }
        let sign = if negative {
            Sign::Negative
        } else {
            Sign::Positive
        };
        BigInt(Repr::Big(sign, limbs))
    }

    /// Canonical constructor from a signed magnitude: trims trailing
    /// zeros and demotes to the inline arm when the value fits `i64`.
    fn from_sign_limbs(sign: i8, mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            return BigInt::zero();
        }
        if limbs.len() <= 2 {
            let mag = limbs[0] as u64 | ((limbs.get(1).copied().unwrap_or(0) as u64) << 32);
            if sign > 0 && mag <= i64::MAX as u64 {
                return BigInt(Repr::Small(mag as i64));
            }
            if sign < 0 && mag <= i64::MIN.unsigned_abs() {
                return BigInt(Repr::Small((mag as i64).wrapping_neg()));
            }
        }
        debug_assert_ne!(sign, 0);
        let s = if sign < 0 {
            Sign::Negative
        } else {
            Sign::Positive
        };
        BigInt(Repr::Big(s, limbs))
    }

    /// Magnitude view: sign as `-1`/`0`/`1` plus a limb slice, borrowing
    /// either the heap limbs or a caller-provided stack buffer for the
    /// inline arm. Lets mixed small/big operations share one code path
    /// without allocating.
    #[inline]
    fn mag_view<'a>(&'a self, buf: &'a mut [u32; 2]) -> (i8, &'a [u32]) {
        match &self.0 {
            Repr::Small(0) => (0, &[]),
            Repr::Small(v) => {
                let m = v.unsigned_abs();
                buf[0] = m as u32;
                buf[1] = (m >> 32) as u32;
                let len = if buf[1] != 0 { 2 } else { 1 };
                (if *v < 0 { -1 } else { 1 }, &buf[..len])
            }
            Repr::Big(Sign::Negative, limbs) => (-1, limbs.as_slice()),
            Repr::Big(Sign::Positive, limbs) => (1, limbs.as_slice()),
        }
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        match &self.0 {
            Repr::Small(v) => Some(*v as i128),
            Repr::Big(sign, limbs) => {
                if limbs.len() > 4 {
                    return None;
                }
                let mut mag: u128 = 0;
                for (i, &l) in limbs.iter().enumerate() {
                    mag |= (l as u128) << (32 * i);
                }
                match sign {
                    Sign::Positive => {
                        if mag <= i128::MAX as u128 {
                            Some(mag as i128)
                        } else {
                            None
                        }
                    }
                    Sign::Negative => {
                        if mag <= i128::MAX as u128 + 1 {
                            Some((mag as i128).wrapping_neg())
                        } else {
                            None
                        }
                    }
                }
            }
        }
    }

    /// Converts to `f64` (approximately, for reporting only).
    pub fn to_f64(&self) -> f64 {
        match &self.0 {
            Repr::Small(v) => *v as f64,
            Repr::Big(sign, limbs) => {
                let mut v = 0.0f64;
                for &l in limbs.iter().rev() {
                    v = v * 4294967296.0 + l as f64;
                }
                if *sign == Sign::Negative {
                    -v
                } else {
                    v
                }
            }
        }
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            if x != y {
                return x.cmp(y);
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let mut s = long[i] as u64 + carry;
            if i < short.len() {
                s += short[i] as u64;
            }
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Requires `a >= b` in magnitude.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for i in 0..a.len() {
            let mut d = a[i] as i64 - borrow;
            if i < b.len() {
                d -= b[i] as i64;
            }
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &y) in b.iter().enumerate() {
                let t = out[i + j] as u64 + x as u64 * y as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        out
    }

    /// Schoolbook magnitude division: returns `(quotient, remainder)`.
    fn divmod_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            // Fast path: single-limb divisor.
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem = 0u64;
            for i in (0..a.len()).rev() {
                let cur = (rem << 32) | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u32]
            };
            return (q, r);
        }
        // Binary long division over bits (adequate for the coefficient sizes
        // arising in our polyhedral computations, which are kept small by
        // gcd normalization after every operation).
        let bits = a.len() * 32;
        let mut q = vec![0u32; a.len()];
        let mut rem: Vec<u32> = Vec::new();
        for bit in (0..bits).rev() {
            // rem = rem << 1 | bit_of_a
            let mut carry = (a[bit / 32] >> (bit % 32)) & 1;
            for limb in rem.iter_mut() {
                let next = *limb >> 31;
                *limb = (*limb << 1) | carry;
                carry = next;
            }
            if carry != 0 {
                rem.push(carry);
            }
            if Self::cmp_mag(&rem, b) != Ordering::Less {
                rem = Self::sub_mag(&rem, b);
                while rem.last() == Some(&0) {
                    rem.pop();
                }
                q[bit / 32] |= 1 << (bit % 32);
            }
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem)
    }

    /// Signed addition over magnitude views (both operands non-zero).
    fn add_signed(s1: i8, m1: &[u32], s2: i8, m2: &[u32]) -> BigInt {
        debug_assert!(s1 != 0 && s2 != 0);
        if s1 == s2 {
            BigInt::from_sign_limbs(s1, Self::add_mag(m1, m2))
        } else {
            match Self::cmp_mag(m1, m2) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => BigInt::from_sign_limbs(s1, Self::sub_mag(m1, m2)),
                Ordering::Less => BigInt::from_sign_limbs(s2, Self::sub_mag(m2, m1)),
            }
        }
    }

    /// Euclidean division returning `(quotient, remainder)` with the
    /// remainder carrying the sign of `self` (truncated division, matching
    /// Rust's `/` and `%` on primitives).
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            // i128 sidesteps the lone overflow case, i64::MIN / -1 = 2^63.
            let (a, b) = (*a as i128, *b as i128);
            return (
                BigInt::promoted_i128(a / b),
                BigInt(Repr::Small((a % b) as i64)),
            );
        }
        let (mut b1, mut b2) = ([0u32; 2], [0u32; 2]);
        let (s1, m1) = self.mag_view(&mut b1);
        let (s2, m2) = other.mag_view(&mut b2);
        let (qm, rm) = Self::divmod_mag(m1, m2);
        (
            BigInt::from_sign_limbs(s1 * s2, qm),
            BigInt::from_sign_limbs(s1, rm),
        )
    }

    /// Greatest common divisor (always non-negative).
    ///
    /// `gcd(0, 0)` is defined as `0`.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            let g = gcd_u64(a.unsigned_abs(), b.unsigned_abs());
            // gcd of two i64 magnitudes can be 2^63 (e.g. both i64::MIN):
            // promoted_i128 handles the spill.
            return BigInt::promoted_i128(g as i128);
        }
        // Mixed or big operands: Euclid over magnitudes drops into the
        // all-small path after at most a couple of big divisions.
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            if let (Repr::Small(x), Repr::Small(y)) = (&a.0, &b.0) {
                let g = gcd_u64(x.unsigned_abs(), y.unsigned_abs());
                return BigInt::promoted_i128(g as i128);
            }
            let r = a.div_rem(&b).1;
            a = b;
            b = r.abs();
        }
        a
    }

    /// Least common multiple (always non-negative).
    ///
    /// # Panics
    ///
    /// Panics if both arguments are zero.
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        let g = self.gcd(other);
        (&(&self.abs() / &g) * &other.abs()).abs()
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (&self.0, &other.0) {
            (Repr::Small(a), Repr::Small(b)) => a.cmp(b),
            // The heap arm is canonical: it is always outside i64 range,
            // so its sign alone decides against any inline value.
            (Repr::Small(_), Repr::Big(Sign::Positive, _)) => Ordering::Less,
            (Repr::Small(_), Repr::Big(Sign::Negative, _)) => Ordering::Greater,
            (Repr::Big(Sign::Positive, _), Repr::Small(_)) => Ordering::Greater,
            (Repr::Big(Sign::Negative, _), Repr::Small(_)) => Ordering::Less,
            (Repr::Big(s1, l1), Repr::Big(s2, l2)) => match (s1, s2) {
                (Sign::Negative, Sign::Negative) => Self::cmp_mag(l2, l1),
                (Sign::Negative, Sign::Positive) => Ordering::Less,
                (Sign::Positive, Sign::Negative) => Ordering::Greater,
                (Sign::Positive, Sign::Positive) => Self::cmp_mag(l1, l2),
            },
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! impl_from_small_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            #[inline]
            fn from(v: $t) -> Self {
                BigInt(Repr::Small(v as i64))
            }
        }
    )*};
}
impl_from_small_signed!(i8, i16, i32, i64, isize);

impl From<i128> for BigInt {
    fn from(v: i128) -> Self {
        BigInt::from_i128_quiet(v)
    }
}

macro_rules! impl_from_small_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            #[inline]
            fn from(v: $t) -> Self {
                BigInt(Repr::Small(v as i64))
            }
        }
    )*};
}
impl_from_small_unsigned!(u8, u16, u32);

macro_rules! impl_from_wide_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            #[inline]
            fn from(v: $t) -> Self {
                BigInt::from_i128_quiet(v as i128)
            }
        }
    )*};
}
impl_from_wide_unsigned!(u64, usize);

impl From<u128> for BigInt {
    fn from(v: u128) -> Self {
        if let Ok(s) = i64::try_from(v) {
            return BigInt(Repr::Small(s));
        }
        BigInt::big_from_u128(false, v)
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match &self.0 {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => BigInt(Repr::Small(n)),
                // -i64::MIN = 2^63 does not fit i64.
                None => BigInt::promoted_i128(-(i64::MIN as i128)),
            },
            Repr::Big(Sign::Negative, limbs) => BigInt(Repr::Big(Sign::Positive, limbs.clone())),
            Repr::Big(Sign::Positive, limbs) => {
                // Magnitude exactly 2^63 demotes to Small(i64::MIN).
                BigInt::from_sign_limbs(-1, limbs.clone())
            }
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        match self.0 {
            Repr::Small(v) => match v.checked_neg() {
                Some(n) => BigInt(Repr::Small(n)),
                None => BigInt::promoted_i128(-(i64::MIN as i128)),
            },
            Repr::Big(Sign::Negative, limbs) => BigInt(Repr::Big(Sign::Positive, limbs)),
            Repr::Big(Sign::Positive, limbs) => BigInt::from_sign_limbs(-1, limbs),
        }
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return match a.checked_add(*b) {
                Some(s) => BigInt(Repr::Small(s)),
                None => BigInt::promoted_i128(*a as i128 + *b as i128),
            };
        }
        let (mut b1, mut b2) = ([0u32; 2], [0u32; 2]);
        let (s1, m1) = self.mag_view(&mut b1);
        let (s2, m2) = other.mag_view(&mut b2);
        if s1 == 0 {
            return other.clone();
        }
        if s2 == 0 {
            return self.clone();
        }
        BigInt::add_signed(s1, m1, s2, m2)
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return match a.checked_sub(*b) {
                Some(s) => BigInt(Repr::Small(s)),
                None => BigInt::promoted_i128(*a as i128 - *b as i128),
            };
        }
        let (mut b1, mut b2) = ([0u32; 2], [0u32; 2]);
        let (s1, m1) = self.mag_view(&mut b1);
        let (s2, m2) = other.mag_view(&mut b2);
        if s2 == 0 {
            return self.clone();
        }
        if s1 == 0 {
            return BigInt::from_sign_limbs(-s2, m2.to_vec());
        }
        BigInt::add_signed(s1, m1, -s2, m2)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            return match a.checked_mul(*b) {
                Some(p) => BigInt(Repr::Small(p)),
                // i64 × i64 always fits i128.
                None => BigInt::promoted_i128(*a as i128 * *b as i128),
            };
        }
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let (mut b1, mut b2) = ([0u32; 2], [0u32; 2]);
        let (s1, m1) = self.mag_view(&mut b1);
        let (s2, m2) = other.mag_view(&mut b2);
        BigInt::from_sign_limbs(s1 * s2, BigInt::mul_mag(m1, m2))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.div_rem(other).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.div_rem(other).1
    }
}

macro_rules! forward_binop_owned {
    ($($tr:ident :: $m:ident),*) => {$(
        impl $tr for BigInt {
            type Output = BigInt;
            fn $m(self, other: BigInt) -> BigInt {
                $tr::$m(&self, &other)
            }
        }
        impl $tr<&BigInt> for BigInt {
            type Output = BigInt;
            fn $m(self, other: &BigInt) -> BigInt {
                $tr::$m(&self, other)
            }
        }
        impl $tr<BigInt> for &BigInt {
            type Output = BigInt;
            fn $m(self, other: BigInt) -> BigInt {
                $tr::$m(self, &other)
            }
        }
    )*};
}
forward_binop_owned!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            if let Some(s) = a.checked_add(*b) {
                self.0 = Repr::Small(s);
                return;
            }
        }
        *self = &*self + other;
    }
}
impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            if let Some(s) = a.checked_sub(*b) {
                self.0 = Repr::Small(s);
                return;
            }
        }
        *self = &*self - other;
    }
}
impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        if let (Repr::Small(a), Repr::Small(b)) = (&self.0, &other.0) {
            if let Some(p) = a.checked_mul(*b) {
                self.0 = Repr::Small(p);
                return;
            }
        }
        *self = &*self * other;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.0 {
            Repr::Small(v) => write!(f, "{v}"),
            Repr::Big(sign, limbs) => {
                // Repeated division by 10^9.
                let mut digits: Vec<u32> = Vec::new();
                let mut cur = limbs.clone();
                while !cur.is_empty() {
                    let (q, r) = Self::divmod_mag(&cur, &[1_000_000_000]);
                    digits.push(r.first().copied().unwrap_or(0));
                    cur = q;
                }
                if *sign == Sign::Negative {
                    write!(f, "-")?;
                }
                write!(f, "{}", digits.last().expect("non-zero big"))?;
                for d in digits.iter().rev().skip(1) {
                    write!(f, "{d:09}")?;
                }
                Ok(())
            }
        }
    }
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal")
    }
}
impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError);
        }
        if body.len() <= 18 {
            // ≤ 18 decimal digits always fits i64 either sign.
            let mag: i64 = body.parse().map_err(|_| ParseBigIntError)?;
            return Ok(BigInt(Repr::Small(if neg { -mag } else { mag })));
        }
        // Accumulate in 9-digit chunks: limbs = limbs * 10^k + chunk.
        let mut limbs: Vec<u32> = Vec::new();
        let bytes = body.as_bytes();
        let mut i = 0;
        while i < bytes.len() {
            let take = (bytes.len() - i).min(9);
            let mut chunk: u32 = 0;
            let mut pow: u32 = 1;
            for &b in &bytes[i..i + take] {
                chunk = chunk * 10 + (b - b'0') as u32;
            }
            for _ in 0..take {
                pow *= 10;
            }
            let mut carry = chunk as u64;
            for l in limbs.iter_mut() {
                let t = *l as u64 * pow as u64 + carry;
                *l = t as u32;
                carry = t >> 32;
            }
            while carry != 0 {
                limbs.push(carry as u32);
                carry >>= 32;
            }
            i += take;
        }
        Ok(BigInt::from_sign_limbs(if neg { -1 } else { 1 }, limbs))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_identity() {
        let z = BigInt::zero();
        let a = BigInt::from(42i64);
        assert_eq!(&a + &z, a);
        assert_eq!(&z + &a, a);
        assert!(z.is_zero());
        assert_eq!(z.to_string(), "0");
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigInt::from(i64::MAX);
        let b = BigInt::from(i64::MAX);
        let s = &a + &b;
        assert_eq!(s.to_i128(), Some(i64::MAX as i128 * 2));
        assert_eq!(&s - &b, a);
    }

    #[test]
    fn mul_carries_across_limbs() {
        let a = BigInt::from(u64::MAX);
        let b = &a * &a;
        assert_eq!(
            b.to_string(),
            format!("{}", u64::MAX as u128 * u64::MAX as u128)
        );
    }

    #[test]
    fn division_matches_primitive() {
        for &(x, y) in &[
            (100i64, 7i64),
            (-100, 7),
            (100, -7),
            (-100, -7),
            (0, 3),
            (5, 100),
        ] {
            let (q, r) = BigInt::from(x).div_rem(&BigInt::from(y));
            assert_eq!(q.to_i128(), Some((x / y) as i128), "{x}/{y}");
            assert_eq!(r.to_i128(), Some((x % y) as i128), "{x}%{y}");
        }
    }

    #[test]
    fn large_division() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let b: BigInt = "9876543210987654321".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigInt::from(12i64).gcd(&BigInt::from(18i64)),
            BigInt::from(6i64)
        );
        assert_eq!(
            BigInt::from(-12i64).gcd(&BigInt::from(18i64)),
            BigInt::from(6i64)
        );
        assert_eq!(
            BigInt::from(0i64).gcd(&BigInt::from(5i64)),
            BigInt::from(5i64)
        );
        assert_eq!(BigInt::zero().gcd(&BigInt::zero()), BigInt::zero());
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(
            BigInt::from(4i64).lcm(&BigInt::from(6i64)),
            BigInt::from(12i64)
        );
    }

    #[test]
    fn ordering() {
        let vals = [-5i64, -1, 0, 1, 5];
        for &x in &vals {
            for &y in &vals {
                assert_eq!(
                    BigInt::from(x).cmp(&BigInt::from(y)),
                    x.cmp(&y),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "4294967296",
            "-123456789012345678901234567890",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
    }

    #[test]
    fn to_i128_bounds() {
        assert_eq!(BigInt::from(i128::MAX).to_i128(), Some(i128::MAX));
        assert_eq!(BigInt::from(i128::MIN).to_i128(), Some(i128::MIN));
        let too_big = &BigInt::from(i128::MAX) + &BigInt::one();
        assert_eq!(too_big.to_i128(), None);
        let min_minus = &BigInt::from(i128::MIN) - &BigInt::one();
        assert_eq!(min_minus.to_i128(), None);
    }

    // --- small/big boundary behavior ---

    /// `true` iff the value is stored inline (test-only introspection).
    fn is_inline(v: &BigInt) -> bool {
        matches!(v.0, Repr::Small(_))
    }

    #[test]
    fn representation_is_canonical_at_the_boundary() {
        assert!(is_inline(&BigInt::from(i64::MAX)));
        assert!(is_inline(&BigInt::from(i64::MIN)));
        assert!(!is_inline(&(&BigInt::from(i64::MAX) + &BigInt::one())));
        assert!(!is_inline(&(&BigInt::from(i64::MIN) - &BigInt::one())));
        // Arithmetic that comes back into range demotes to inline.
        let over = &BigInt::from(i64::MAX) + &BigInt::one();
        assert!(is_inline(&(&over - &BigInt::one())));
        let under = &BigInt::from(i64::MIN) - &BigInt::one();
        assert!(is_inline(&(&under + &BigInt::one())));
    }

    #[test]
    fn min_negation_promotes_and_roundtrips() {
        let min = BigInt::from(i64::MIN);
        let neg = -&min;
        assert!(!is_inline(&neg));
        assert_eq!(neg.to_i128(), Some(-(i64::MIN as i128)));
        assert_eq!(-&neg, min);
        assert!(is_inline(&(-&neg)));
        assert_eq!(min.abs(), neg);
    }

    #[test]
    fn min_divided_by_minus_one() {
        let (q, r) = BigInt::from(i64::MIN).div_rem(&BigInt::from(-1i64));
        assert_eq!(q.to_i128(), Some(-(i64::MIN as i128)));
        assert!(r.is_zero());
    }

    #[test]
    fn gcd_at_the_boundary() {
        let min = BigInt::from(i64::MIN);
        let g = min.gcd(&BigInt::zero());
        assert_eq!(g.to_i128(), Some(-(i64::MIN as i128)));
        assert_eq!(min.gcd(&min), g);
        // Mixed small/big operands.
        let big = &BigInt::from(i64::MAX) + &BigInt::one(); // 2^63
        assert_eq!(BigInt::from(6i64).gcd(&big), BigInt::from(2i64));
        assert_eq!(big.gcd(&BigInt::from(6i64)), BigInt::from(2i64));
    }

    #[test]
    fn promotions_are_counted() {
        let before = crate::PolyStats::snapshot().small_int_promotions;
        let _ = &BigInt::from(i64::MAX) * &BigInt::from(2i64);
        let after = crate::PolyStats::snapshot().small_int_promotions;
        assert!(after > before);
    }

    #[test]
    fn cross_representation_ordering() {
        let big_pos = &BigInt::from(i64::MAX) + &BigInt::one();
        let big_neg = &BigInt::from(i64::MIN) - &BigInt::one();
        assert!(big_pos > BigInt::from(i64::MAX));
        assert!(big_neg < BigInt::from(i64::MIN));
        assert!(big_pos > big_neg);
    }
}
