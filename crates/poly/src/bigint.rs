//! Arbitrary-precision signed integers.
//!
//! The parametric partitioning algorithm performs long chains of
//! Fourier–Motzkin combinations whose coefficients can overflow any fixed
//! width integer, so all polyhedral arithmetic is exact over [`BigInt`].
//!
//! The representation is a sign plus a little-endian vector of `u32` limbs
//! with no trailing zero limbs (zero is the empty limb vector with
//! [`Sign::Zero`]).

use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Rem, Sub, SubAssign};
use std::str::FromStr;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum Sign {
    Negative,
    Zero,
    Positive,
}

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use offload_poly::BigInt;
///
/// let a = BigInt::from(1_000_000_007i64);
/// let b = &a * &a;
/// assert_eq!(b.to_string(), "1000000014000000049");
/// ```
#[derive(Debug, Clone)]
pub struct BigInt {
    sign: Sign,
    /// Little-endian limbs; empty iff `sign == Sign::Zero`.
    limbs: Vec<u32>,
}

impl BigInt {
    /// The integer zero.
    pub fn zero() -> Self {
        BigInt {
            sign: Sign::Zero,
            limbs: Vec::new(),
        }
    }

    /// The integer one.
    pub fn one() -> Self {
        BigInt::from(1i64)
    }

    /// Returns `true` if this integer is zero.
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` if this integer is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Positive
    }

    /// Returns `true` if this integer is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Negative
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        match self.sign {
            Sign::Negative => -1,
            Sign::Zero => 0,
            Sign::Positive => 1,
        }
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        match self.sign {
            Sign::Negative => BigInt {
                sign: Sign::Positive,
                limbs: self.limbs.clone(),
            },
            _ => self.clone(),
        }
    }

    fn from_limbs(sign: Sign, mut limbs: Vec<u32>) -> Self {
        while limbs.last() == Some(&0) {
            limbs.pop();
        }
        if limbs.is_empty() {
            BigInt::zero()
        } else {
            debug_assert_ne!(sign, Sign::Zero);
            BigInt { sign, limbs }
        }
    }

    /// Converts to `i128` if the value fits.
    pub fn to_i128(&self) -> Option<i128> {
        if self.limbs.len() > 4 {
            return None;
        }
        let mut mag: u128 = 0;
        for (i, &l) in self.limbs.iter().enumerate() {
            mag |= (l as u128) << (32 * i);
        }
        match self.sign {
            Sign::Zero => Some(0),
            Sign::Positive => {
                if mag <= i128::MAX as u128 {
                    Some(mag as i128)
                } else {
                    None
                }
            }
            Sign::Negative => {
                if mag <= i128::MAX as u128 + 1 {
                    Some((mag as i128).wrapping_neg())
                } else {
                    None
                }
            }
        }
    }

    /// Converts to `f64` (approximately, for reporting only).
    pub fn to_f64(&self) -> f64 {
        let mut v = 0.0f64;
        for &l in self.limbs.iter().rev() {
            v = v * 4294967296.0 + l as f64;
        }
        if self.sign == Sign::Negative {
            -v
        } else {
            v
        }
    }

    fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            if x != y {
                return x.cmp(y);
            }
        }
        Ordering::Equal
    }

    fn add_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
        let mut out = Vec::with_capacity(long.len() + 1);
        let mut carry = 0u64;
        for i in 0..long.len() {
            let mut s = long[i] as u64 + carry;
            if i < short.len() {
                s += short[i] as u64;
            }
            out.push(s as u32);
            carry = s >> 32;
        }
        if carry != 0 {
            out.push(carry as u32);
        }
        out
    }

    /// Requires `a >= b` in magnitude.
    fn sub_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        debug_assert!(Self::cmp_mag(a, b) != Ordering::Less);
        let mut out = Vec::with_capacity(a.len());
        let mut borrow = 0i64;
        for i in 0..a.len() {
            let mut d = a[i] as i64 - borrow;
            if i < b.len() {
                d -= b[i] as i64;
            }
            if d < 0 {
                d += 1 << 32;
                borrow = 1;
            } else {
                borrow = 0;
            }
            out.push(d as u32);
        }
        debug_assert_eq!(borrow, 0);
        out
    }

    fn mul_mag(a: &[u32], b: &[u32]) -> Vec<u32> {
        if a.is_empty() || b.is_empty() {
            return Vec::new();
        }
        let mut out = vec![0u32; a.len() + b.len()];
        for (i, &x) in a.iter().enumerate() {
            let mut carry = 0u64;
            for (j, &y) in b.iter().enumerate() {
                let t = out[i + j] as u64 + x as u64 * y as u64 + carry;
                out[i + j] = t as u32;
                carry = t >> 32;
            }
            let mut k = i + b.len();
            while carry != 0 {
                let t = out[k] as u64 + carry;
                out[k] = t as u32;
                carry = t >> 32;
                k += 1;
            }
        }
        out
    }

    /// Schoolbook magnitude division: returns `(quotient, remainder)`.
    fn divmod_mag(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
        assert!(!b.is_empty(), "division by zero");
        if Self::cmp_mag(a, b) == Ordering::Less {
            return (Vec::new(), a.to_vec());
        }
        if b.len() == 1 {
            // Fast path: single-limb divisor.
            let d = b[0] as u64;
            let mut q = vec![0u32; a.len()];
            let mut rem = 0u64;
            for i in (0..a.len()).rev() {
                let cur = (rem << 32) | a[i] as u64;
                q[i] = (cur / d) as u32;
                rem = cur % d;
            }
            while q.last() == Some(&0) {
                q.pop();
            }
            let r = if rem == 0 {
                Vec::new()
            } else {
                vec![rem as u32]
            };
            return (q, r);
        }
        // Binary long division over bits (adequate for the coefficient sizes
        // arising in our polyhedral computations, which are kept small by
        // gcd normalization after every operation).
        let bits = a.len() * 32;
        let mut q = vec![0u32; a.len()];
        let mut rem: Vec<u32> = Vec::new();
        for bit in (0..bits).rev() {
            // rem = rem << 1 | bit_of_a
            let mut carry = (a[bit / 32] >> (bit % 32)) & 1;
            for limb in rem.iter_mut() {
                let next = *limb >> 31;
                *limb = (*limb << 1) | carry;
                carry = next;
            }
            if carry != 0 {
                rem.push(carry);
            }
            if Self::cmp_mag(&rem, b) != Ordering::Less {
                rem = Self::sub_mag(&rem, b);
                while rem.last() == Some(&0) {
                    rem.pop();
                }
                q[bit / 32] |= 1 << (bit % 32);
            }
        }
        while q.last() == Some(&0) {
            q.pop();
        }
        (q, rem)
    }

    /// Euclidean division returning `(quotient, remainder)` with the
    /// remainder carrying the sign of `self` (truncated division, matching
    /// Rust's `/` and `%` on primitives).
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "division by zero");
        let (qm, rm) = Self::divmod_mag(&self.limbs, &other.limbs);
        let qsign = if qm.is_empty() {
            Sign::Zero
        } else if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        let rsign = if rm.is_empty() { Sign::Zero } else { self.sign };
        (
            BigInt::from_limbs2(qsign, qm),
            BigInt::from_limbs2(rsign, rm),
        )
    }

    fn from_limbs2(sign: Sign, limbs: Vec<u32>) -> Self {
        if limbs.is_empty() {
            BigInt::zero()
        } else {
            BigInt { sign, limbs }
        }
    }

    /// Greatest common divisor (always non-negative).
    ///
    /// `gcd(0, 0)` is defined as `0`.
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.div_rem(&b).1;
            a = b;
            b = r.abs();
        }
        a
    }

    /// Least common multiple (always non-negative).
    ///
    /// # Panics
    ///
    /// Panics if both arguments are zero.
    pub fn lcm(&self, other: &BigInt) -> BigInt {
        let g = self.gcd(other);
        (&(&self.abs() / &g) * &other.abs()).abs()
    }
}

impl Default for BigInt {
    fn default() -> Self {
        BigInt::zero()
    }
}

impl PartialEq for BigInt {
    fn eq(&self, other: &Self) -> bool {
        self.sign == other.sign && self.limbs == other.limbs
    }
}
impl Eq for BigInt {}

impl Hash for BigInt {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.signum().hash(state);
        self.limbs.hash(state);
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &Self) -> Ordering {
        match (self.sign, other.sign) {
            (Sign::Negative, Sign::Negative) => Self::cmp_mag(&other.limbs, &self.limbs),
            (Sign::Negative, _) => Ordering::Less,
            (Sign::Zero, Sign::Negative) => Ordering::Greater,
            (Sign::Zero, Sign::Zero) => Ordering::Equal,
            (Sign::Zero, Sign::Positive) => Ordering::Less,
            (Sign::Positive, Sign::Positive) => Self::cmp_mag(&self.limbs, &other.limbs),
            (Sign::Positive, _) => Ordering::Greater,
        }
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> Self {
                let sign = match v {
                    0 => return BigInt::zero(),
                    x if x > 0 => Sign::Positive,
                    _ => Sign::Negative,
                };
                let mut mag = (v as i128).unsigned_abs();
                let mut limbs = Vec::new();
                while mag != 0 {
                    limbs.push(mag as u32);
                    mag >>= 32;
                }
                BigInt { sign, limbs }
            }
        }
    )*};
}
impl_from_signed!(i8, i16, i32, i64, i128, isize);

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> Self {
                if v == 0 {
                    return BigInt::zero();
                }
                let mut mag = v as u128;
                let mut limbs = Vec::new();
                while mag != 0 {
                    limbs.push(mag as u32);
                    mag >>= 32;
                }
                BigInt { sign: Sign::Positive, limbs }
            }
        }
    )*};
}
impl_from_unsigned!(u8, u16, u32, u64, u128, usize);

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        let sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        BigInt {
            sign,
            limbs: self.limbs.clone(),
        }
    }
}

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = match self.sign {
            Sign::Negative => Sign::Positive,
            Sign::Zero => Sign::Zero,
            Sign::Positive => Sign::Negative,
        };
        self
    }
}

impl Add for &BigInt {
    type Output = BigInt;
    fn add(self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_limbs(a, BigInt::add_mag(&self.limbs, &other.limbs)),
            _ => match BigInt::cmp_mag(&self.limbs, &other.limbs) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_limbs(self.sign, BigInt::sub_mag(&self.limbs, &other.limbs))
                }
                Ordering::Less => {
                    BigInt::from_limbs(other.sign, BigInt::sub_mag(&other.limbs, &self.limbs))
                }
            },
        }
    }
}

impl Sub for &BigInt {
    type Output = BigInt;
    fn sub(self, other: &BigInt) -> BigInt {
        self + &(-other)
    }
}

impl Mul for &BigInt {
    type Output = BigInt;
    fn mul(self, other: &BigInt) -> BigInt {
        if self.is_zero() || other.is_zero() {
            return BigInt::zero();
        }
        let sign = if self.sign == other.sign {
            Sign::Positive
        } else {
            Sign::Negative
        };
        BigInt::from_limbs(sign, BigInt::mul_mag(&self.limbs, &other.limbs))
    }
}

impl Div for &BigInt {
    type Output = BigInt;
    fn div(self, other: &BigInt) -> BigInt {
        self.div_rem(other).0
    }
}

impl Rem for &BigInt {
    type Output = BigInt;
    fn rem(self, other: &BigInt) -> BigInt {
        self.div_rem(other).1
    }
}

macro_rules! forward_binop_owned {
    ($($tr:ident :: $m:ident),*) => {$(
        impl $tr for BigInt {
            type Output = BigInt;
            fn $m(self, other: BigInt) -> BigInt {
                $tr::$m(&self, &other)
            }
        }
        impl $tr<&BigInt> for BigInt {
            type Output = BigInt;
            fn $m(self, other: &BigInt) -> BigInt {
                $tr::$m(&self, other)
            }
        }
        impl $tr<BigInt> for &BigInt {
            type Output = BigInt;
            fn $m(self, other: BigInt) -> BigInt {
                $tr::$m(self, &other)
            }
        }
    )*};
}
forward_binop_owned!(Add::add, Sub::sub, Mul::mul, Div::div, Rem::rem);

impl AddAssign<&BigInt> for BigInt {
    fn add_assign(&mut self, other: &BigInt) {
        *self = &*self + other;
    }
}
impl SubAssign<&BigInt> for BigInt {
    fn sub_assign(&mut self, other: &BigInt) {
        *self = &*self - other;
    }
}
impl MulAssign<&BigInt> for BigInt {
    fn mul_assign(&mut self, other: &BigInt) {
        *self = &*self * other;
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return write!(f, "0");
        }
        // Repeated division by 10^9.
        let chunk = BigInt::from(1_000_000_000u32);
        let mut digits: Vec<u32> = Vec::new();
        let mut cur = self.abs();
        while !cur.is_zero() {
            let (q, r) = cur.div_rem(&chunk);
            digits.push(r.limbs.first().copied().unwrap_or(0));
            cur = q;
        }
        if self.sign == Sign::Negative {
            write!(f, "-")?;
        }
        write!(f, "{}", digits.last().unwrap())?;
        for d in digits.iter().rev().skip(1) {
            write!(f, "{d:09}")?;
        }
        Ok(())
    }
}

/// Error returned when parsing a [`BigInt`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError;

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid integer literal")
    }
}
impl std::error::Error for ParseBigIntError {}

impl FromStr for BigInt {
    type Err = ParseBigIntError;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (neg, body) = match s.strip_prefix('-') {
            Some(b) => (true, b),
            None => (false, s.strip_prefix('+').unwrap_or(s)),
        };
        if body.is_empty() || !body.bytes().all(|b| b.is_ascii_digit()) {
            return Err(ParseBigIntError);
        }
        let ten = BigInt::from(10u32);
        let mut acc = BigInt::zero();
        for b in body.bytes() {
            acc = &(&acc * &ten) + &BigInt::from((b - b'0') as u32);
        }
        if neg {
            acc = -acc;
        }
        Ok(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_identity() {
        let z = BigInt::zero();
        let a = BigInt::from(42i64);
        assert_eq!(&a + &z, a);
        assert_eq!(&z + &a, a);
        assert!(z.is_zero());
        assert_eq!(z.to_string(), "0");
    }

    #[test]
    fn add_sub_roundtrip() {
        let a = BigInt::from(i64::MAX);
        let b = BigInt::from(i64::MAX);
        let s = &a + &b;
        assert_eq!(s.to_i128(), Some(i64::MAX as i128 * 2));
        assert_eq!(&s - &b, a);
    }

    #[test]
    fn mul_carries_across_limbs() {
        let a = BigInt::from(u64::MAX);
        let b = &a * &a;
        assert_eq!(
            b.to_string(),
            format!("{}", u64::MAX as u128 * u64::MAX as u128)
        );
    }

    #[test]
    fn division_matches_primitive() {
        for &(x, y) in &[
            (100i64, 7i64),
            (-100, 7),
            (100, -7),
            (-100, -7),
            (0, 3),
            (5, 100),
        ] {
            let (q, r) = BigInt::from(x).div_rem(&BigInt::from(y));
            assert_eq!(q.to_i128(), Some((x / y) as i128), "{x}/{y}");
            assert_eq!(r.to_i128(), Some((x % y) as i128), "{x}%{y}");
        }
    }

    #[test]
    fn large_division() {
        let a: BigInt = "123456789012345678901234567890".parse().unwrap();
        let b: BigInt = "9876543210987654321".parse().unwrap();
        let (q, r) = a.div_rem(&b);
        assert_eq!(&(&q * &b) + &r, a);
        assert!(r < b);
    }

    #[test]
    fn gcd_basics() {
        assert_eq!(
            BigInt::from(12i64).gcd(&BigInt::from(18i64)),
            BigInt::from(6i64)
        );
        assert_eq!(
            BigInt::from(-12i64).gcd(&BigInt::from(18i64)),
            BigInt::from(6i64)
        );
        assert_eq!(
            BigInt::from(0i64).gcd(&BigInt::from(5i64)),
            BigInt::from(5i64)
        );
        assert_eq!(BigInt::zero().gcd(&BigInt::zero()), BigInt::zero());
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(
            BigInt::from(4i64).lcm(&BigInt::from(6i64)),
            BigInt::from(12i64)
        );
    }

    #[test]
    fn ordering() {
        let vals = [-5i64, -1, 0, 1, 5];
        for &x in &vals {
            for &y in &vals {
                assert_eq!(
                    BigInt::from(x).cmp(&BigInt::from(y)),
                    x.cmp(&y),
                    "{x} vs {y}"
                );
            }
        }
    }

    #[test]
    fn parse_display_roundtrip() {
        for s in [
            "0",
            "1",
            "-1",
            "4294967296",
            "-123456789012345678901234567890",
        ] {
            let v: BigInt = s.parse().unwrap();
            assert_eq!(v.to_string(), s);
        }
        assert!("".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
    }

    #[test]
    fn to_i128_bounds() {
        assert_eq!(BigInt::from(i128::MAX).to_i128(), Some(i128::MAX));
        assert_eq!(BigInt::from(i128::MIN).to_i128(), Some(i128::MIN));
        let too_big = &BigInt::from(i128::MAX) + &BigInt::one();
        assert_eq!(too_big.to_i128(), None);
        let min_minus = &BigInt::from(i128::MIN) - &BigInt::one();
        assert_eq!(min_minus.to_i128(), None);
    }
}
