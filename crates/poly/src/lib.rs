//! # offload-poly
//!
//! Exact rational arithmetic and polyhedral operations — the substitute for
//! the PolyLib library used by *Wang & Li, "Parametric Analysis for Adaptive
//! Computation Offloading" (PLDI 2004)*.
//!
//! The parametric partitioning algorithm (Algorithm 2 of the paper)
//! manipulates sets of run-time parameter values as systems of linear
//! constraints. This crate provides everything it needs:
//!
//! * [`BigInt`] / [`Rational`] — exact arithmetic, immune to the coefficient
//!   growth of repeated Fourier–Motzkin combination;
//! * [`LinExpr`] / [`Constraint`] — linear expressions and (strict or
//!   non-strict) inequalities over a dense variable space;
//! * [`Polyhedron`] — intersection, exact projection (Fourier–Motzkin with
//!   redundancy pruning), emptiness testing and interior-point sampling;
//! * [`Region`] — finite unions of polyhedra with exact set difference,
//!   used for the shrinking set `X` of not-yet-covered parameter values.
//!
//! # Example
//!
//! Projecting out an existentially quantified variable — the core step of
//! Lemma 1, where flow variables are eliminated to obtain a parameter-space
//! description of a min-cut's optimality region:
//!
//! ```
//! use offload_poly::{Polyhedron, LinExpr, Constraint, Rational};
//!
//! // Variables: x (parameter), f (flow).  Constraints: 0 <= f <= x, f >= 2.
//! let nv = 2;
//! let f_ge0 = Constraint::ge0(LinExpr::var(nv, 1));
//! let f_le_x = Constraint::ge0(LinExpr::var(nv, 0).sub(&LinExpr::var(nv, 1)));
//! let f_ge2 = Constraint::ge0(LinExpr::var(nv, 1).plus_constant(Rational::from(-2)));
//! let p = Polyhedron::from_constraints(nv, vec![f_ge0, f_le_x, f_ge2]);
//!
//! // Eliminate f: a feasible flow exists iff x >= 2.
//! let shadow = p.project_to_first(1);
//! assert!(shadow.contains(&[Rational::from(2)]));
//! assert!(!shadow.contains(&[Rational::from(1)]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod bigint;
mod counters;
mod linear;
mod lp;
mod polyhedron;
mod rational;
mod reduce;
mod region;

pub use bigint::{BigInt, ParseBigIntError};
pub use counters::PolyStats;
pub use linear::{Cmp, Constraint, LinExpr};
pub use lp::{
    cache_clear as lp_cache_clear, closure_feasible, maximize as lp_maximize,
    minimize as lp_minimize, LpResult,
};
pub use polyhedron::Polyhedron;
pub use rational::{ParseRationalError, Rational};
pub use region::Region;
