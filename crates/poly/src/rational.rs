//! Exact rational numbers over [`BigInt`].

use crate::bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number, always stored in lowest terms with a strictly
/// positive denominator.
///
/// # Examples
///
/// ```
/// use offload_poly::Rational;
///
/// let half = Rational::new(1, 2);
/// let third = Rational::new(1, 3);
/// assert_eq!(&half + &third, Rational::new(5, 6));
/// assert!(half > third);
/// ```
#[derive(Debug, Clone)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// Creates `n / d` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(n: i64, d: i64) -> Self {
        Self::from_bigints(BigInt::from(n), BigInt::from(d))
    }

    /// Creates `n / d` from big integers, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rational {
                num: BigInt::zero(),
                den: BigInt::one(),
            };
        }
        let g = num.gcd(&den);
        let (mut num, mut den) = (&num / &g, &den / &g);
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// The rational zero.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// Since `self` is already in lowest terms, the inverse is a swap plus
    /// a sign fix — no gcd needed.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(!self.is_zero(), "reciprocal of zero");
        if self.num.is_negative() {
            Rational {
                num: -(&self.den),
                den: -(&self.num),
            }
        } else {
            Rational {
                num: self.den.clone(),
                den: self.num.clone(),
            }
        }
    }

    /// Floor, as a big integer.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            &q - &BigInt::one()
        } else {
            q
        }
    }

    /// Ceiling, as a big integer.
    pub fn ceil(&self) -> BigInt {
        -(&(-self.clone()).floor())
    }

    /// Approximate `f64` value (for reporting only — never used in the
    /// exact polyhedral algorithms).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Midpoint of two rationals.
    pub fn midpoint(a: &Rational, b: &Rational) -> Rational {
        &(a + b) / &Rational::new(2, 1)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl PartialEq for Rational {
    fn eq(&self, other: &Self) -> bool {
        self.num == other.num && self.den == other.den
    }
}
impl Eq for Rational {}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        if let (Some(a), Some(b), Some(c), Some(d)) = (
            self.num.as_small(),
            self.den.as_small(),
            other.num.as_small(),
            other.den.as_small(),
        ) {
            // i64 × i64 always fits i128: compare without touching BigInt.
            return (a as i128 * d as i128).cmp(&(c as i128 * b as i128));
        }
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Addition/subtraction via Knuth TAOCP 4.5.1: with both operands in
/// lowest terms and `d1 = gcd(b, d)`, the sum `a/b ± c/d` needs at most
/// one more gcd — of the combined numerator against `d1` — instead of a
/// full-size gcd of the cross-multiplied numerator and `b·d`. When
/// `d1 == 1` (the common case for small coefficients) no reduction is
/// needed at all: the result is already in lowest terms.
fn add_sub(lhs: &Rational, rhs: &Rational, negate_rhs: bool) -> Rational {
    if rhs.is_zero() {
        return lhs.clone();
    }
    if lhs.is_zero() {
        let num = if negate_rhs {
            -(&rhs.num)
        } else {
            rhs.num.clone()
        };
        return Rational {
            num,
            den: rhs.den.clone(),
        };
    }
    let (a, b) = (&lhs.num, &lhs.den);
    let (c, d) = (&rhs.num, &rhs.den);
    let d1 = b.gcd(d);
    let (t, den) = if d1 == BigInt::one() {
        let ad = a * d;
        let cb = c * b;
        let t = if negate_rhs { &ad - &cb } else { &ad + &cb };
        // gcd(b, d) == 1 implies the result is already in lowest terms.
        if t.is_zero() {
            return Rational::zero();
        }
        return Rational { num: t, den: b * d };
    } else {
        let b1 = b / &d1;
        let d_red = d / &d1;
        let t = if negate_rhs {
            &(a * &d_red) - &(c * &b1)
        } else {
            &(a * &d_red) + &(c * &b1)
        };
        (t, b1)
    };
    if t.is_zero() {
        return Rational::zero();
    }
    let d2 = t.gcd(&d1);
    Rational {
        num: &t / &d2,
        den: &den * &(d / &d2),
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, other: &Rational) -> Rational {
        add_sub(self, other, false)
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, other: &Rational) -> Rational {
        add_sub(self, other, true)
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, other: &Rational) -> Rational {
        // Knuth 4.5.1: cross-reduce before multiplying. With d1 = gcd(a, d)
        // and d2 = gcd(c, b), (a/d1)·(c/d2) / ((b/d2)·(d/d1)) is in lowest
        // terms, and the multiplications happen on the reduced values.
        if self.is_zero() || other.is_zero() {
            return Rational::zero();
        }
        let (a, b) = (&self.num, &self.den);
        let (c, d) = (&other.num, &other.den);
        let d1 = a.gcd(d);
        let d2 = c.gcd(b);
        let one = BigInt::one();
        let (num, den) = match (d1 == one, d2 == one) {
            (true, true) => (a * c, b * d),
            (true, false) => (a * &(c / &d2), &(b / &d2) * d),
            (false, true) => (&(a / &d1) * c, b * &(d / &d1)),
            (false, false) => (&(a / &d1) * &(c / &d2), &(b / &d2) * &(d / &d1)),
        };
        Rational { num, den }
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "rational division by zero");
        if self.is_zero() {
            return Rational::zero();
        }
        // a/b ÷ c/d = (a·d)/(b·c): cross-reduce a vs c and d vs b, then fix
        // the sign (c may be negative).
        let (a, b) = (&self.num, &self.den);
        let (c, d) = (&other.num, &other.den);
        let d1 = a.gcd(c);
        let d2 = d.gcd(b);
        let mut num = &(a / &d1) * &(d / &d2);
        let mut den = &(b / &d2) * &(c / &d1);
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }
}

macro_rules! forward_binop_owned {
    ($($tr:ident :: $m:ident),*) => {$(
        impl $tr for Rational {
            type Output = Rational;
            fn $m(self, other: Rational) -> Rational {
                $tr::$m(&self, &other)
            }
        }
        impl $tr<&Rational> for Rational {
            type Output = Rational;
            fn $m(self, other: &Rational) -> Rational {
                $tr::$m(&self, other)
            }
        }
        impl $tr<Rational> for &Rational {
            type Output = Rational;
            fn $m(self, other: Rational) -> Rational {
                $tr::$m(self, &other)
            }
        }
    )*};
}
forward_binop_owned!(Add::add, Sub::sub, Mul::mul, Div::div);

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -(&self.num),
            den: self.den.clone(),
        }
    }
}
impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, other: &Rational) {
        *self = &*self + other;
    }
}
impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, other: &Rational) {
        *self = &*self - other;
    }
}
impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, other: &Rational) {
        *self = &*self * other;
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Rational`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError;

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal")
    }
}
impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"n"` or `"n/d"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => {
                let n: BigInt = s.parse().map_err(|_| ParseRationalError)?;
                Ok(Rational::from(n))
            }
            Some((n, d)) => {
                let n: BigInt = n.parse().map_err(|_| ParseRationalError)?;
                let d: BigInt = d.parse().map_err(|_| ParseRationalError)?;
                if d.is_zero() {
                    return Err(ParseRationalError);
                }
                Ok(Rational::from_bigints(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::zero());
        assert_eq!(Rational::new(0, -5).denom(), &BigInt::one());
    }

    #[test]
    fn field_ops() {
        let a = Rational::new(3, 4);
        let b = Rational::new(5, 6);
        assert_eq!(&a + &b, Rational::new(19, 12));
        assert_eq!(&a - &b, Rational::new(-1, 12));
        assert_eq!(&a * &b, Rational::new(5, 8));
        assert_eq!(&a / &b, Rational::new(9, 10));
        assert_eq!(a.recip(), Rational::new(4, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(7, 7) == Rational::one());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(Rational::new(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(Rational::new(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(Rational::new(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(Rational::new(6, 2).floor(), BigInt::from(3i64));
        assert_eq!(Rational::new(6, 2).ceil(), BigInt::from(3i64));
    }

    #[test]
    fn parse() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), Rational::new(3, 4));
        assert_eq!("-6/8".parse::<Rational>().unwrap(), Rational::new(-3, 4));
        assert_eq!("5".parse::<Rational>().unwrap(), Rational::from(5));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x/2".parse::<Rational>().is_err());
    }

    #[test]
    fn midpoint_between() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 2);
        let m = Rational::midpoint(&a, &b);
        assert!(a < m && m < b);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }
}
