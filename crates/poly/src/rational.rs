//! Exact rational numbers over [`BigInt`].

use crate::bigint::BigInt;
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};
use std::str::FromStr;

/// An exact rational number, always stored in lowest terms with a strictly
/// positive denominator.
///
/// # Examples
///
/// ```
/// use offload_poly::Rational;
///
/// let half = Rational::new(1, 2);
/// let third = Rational::new(1, 3);
/// assert_eq!(&half + &third, Rational::new(5, 6));
/// assert!(half > third);
/// ```
#[derive(Debug, Clone)]
pub struct Rational {
    num: BigInt,
    den: BigInt,
}

impl Rational {
    /// Creates `n / d` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    pub fn new(n: i64, d: i64) -> Self {
        Self::from_bigints(BigInt::from(n), BigInt::from(d))
    }

    /// Creates `n / d` from big integers, normalizing sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `d` is zero.
    pub fn from_bigints(num: BigInt, den: BigInt) -> Self {
        assert!(!den.is_zero(), "rational with zero denominator");
        if num.is_zero() {
            return Rational {
                num: BigInt::zero(),
                den: BigInt::one(),
            };
        }
        let g = num.gcd(&den);
        let (mut num, mut den) = (&num / &g, &den / &g);
        if den.is_negative() {
            num = -num;
            den = -den;
        }
        Rational { num, den }
    }

    /// The rational zero.
    pub fn zero() -> Self {
        Rational {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational one.
    pub fn one() -> Self {
        Rational {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Numerator (sign-carrying).
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// Denominator (always positive).
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` if the value is zero.
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` if the value is strictly positive.
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` if the value is strictly negative.
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` if the value is an integer.
    pub fn is_integer(&self) -> bool {
        self.den == BigInt::one()
    }

    /// Sign as `-1`, `0` or `1`.
    pub fn signum(&self) -> i32 {
        self.num.signum()
    }

    /// Absolute value.
    pub fn abs(&self) -> Self {
        Rational {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    pub fn recip(&self) -> Self {
        assert!(!self.is_zero(), "reciprocal of zero");
        Self::from_bigints(self.den.clone(), self.num.clone())
    }

    /// Floor, as a big integer.
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            &q - &BigInt::one()
        } else {
            q
        }
    }

    /// Ceiling, as a big integer.
    pub fn ceil(&self) -> BigInt {
        -(&(-self.clone()).floor())
    }

    /// Approximate `f64` value (for reporting only — never used in the
    /// exact polyhedral algorithms).
    pub fn to_f64(&self) -> f64 {
        self.num.to_f64() / self.den.to_f64()
    }

    /// Midpoint of two rationals.
    pub fn midpoint(a: &Rational, b: &Rational) -> Rational {
        &(a + b) / &Rational::new(2, 1)
    }
}

impl Default for Rational {
    fn default() -> Self {
        Rational::zero()
    }
}

impl From<i64> for Rational {
    fn from(v: i64) -> Self {
        Rational {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }
}

impl From<BigInt> for Rational {
    fn from(v: BigInt) -> Self {
        Rational {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl PartialEq for Rational {
    fn eq(&self, other: &Self) -> bool {
        self.num == other.num && self.den == other.den
    }
}
impl Eq for Rational {}

impl Hash for Rational {
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.num.hash(state);
        self.den.hash(state);
    }
}

impl Ord for Rational {
    fn cmp(&self, other: &Self) -> Ordering {
        // a/b ? c/d  <=>  a*d ? c*b   (b, d > 0)
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl PartialOrd for Rational {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Add for &Rational {
    type Output = Rational;
    fn add(self, other: &Rational) -> Rational {
        Rational::from_bigints(
            &(&self.num * &other.den) + &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Sub for &Rational {
    type Output = Rational;
    fn sub(self, other: &Rational) -> Rational {
        Rational::from_bigints(
            &(&self.num * &other.den) - &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }
}

impl Mul for &Rational {
    type Output = Rational;
    fn mul(self, other: &Rational) -> Rational {
        Rational::from_bigints(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Div for &Rational {
    type Output = Rational;
    fn div(self, other: &Rational) -> Rational {
        assert!(!other.is_zero(), "rational division by zero");
        Rational::from_bigints(&self.num * &other.den, &self.den * &other.num)
    }
}

macro_rules! forward_binop_owned {
    ($($tr:ident :: $m:ident),*) => {$(
        impl $tr for Rational {
            type Output = Rational;
            fn $m(self, other: Rational) -> Rational {
                $tr::$m(&self, &other)
            }
        }
        impl $tr<&Rational> for Rational {
            type Output = Rational;
            fn $m(self, other: &Rational) -> Rational {
                $tr::$m(&self, other)
            }
        }
        impl $tr<Rational> for &Rational {
            type Output = Rational;
            fn $m(self, other: Rational) -> Rational {
                $tr::$m(self, &other)
            }
        }
    )*};
}
forward_binop_owned!(Add::add, Sub::sub, Mul::mul, Div::div);

impl Neg for &Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -(&self.num),
            den: self.den.clone(),
        }
    }
}
impl Neg for Rational {
    type Output = Rational;
    fn neg(self) -> Rational {
        Rational {
            num: -self.num,
            den: self.den,
        }
    }
}

impl AddAssign<&Rational> for Rational {
    fn add_assign(&mut self, other: &Rational) {
        *self = &*self + other;
    }
}
impl SubAssign<&Rational> for Rational {
    fn sub_assign(&mut self, other: &Rational) {
        *self = &*self - other;
    }
}
impl MulAssign<&Rational> for Rational {
    fn mul_assign(&mut self, other: &Rational) {
        *self = &*self * other;
    }
}

impl fmt::Display for Rational {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_integer() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

/// Error returned when parsing a [`Rational`] from a malformed string.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRationalError;

impl fmt::Display for ParseRationalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal")
    }
}
impl std::error::Error for ParseRationalError {}

impl FromStr for Rational {
    type Err = ParseRationalError;

    /// Parses `"n"` or `"n/d"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s.split_once('/') {
            None => {
                let n: BigInt = s.parse().map_err(|_| ParseRationalError)?;
                Ok(Rational::from(n))
            }
            Some((n, d)) => {
                let n: BigInt = n.parse().map_err(|_| ParseRationalError)?;
                let d: BigInt = d.parse().map_err(|_| ParseRationalError)?;
                if d.is_zero() {
                    return Err(ParseRationalError);
                }
                Ok(Rational::from_bigints(n, d))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn normalization() {
        assert_eq!(Rational::new(2, 4), Rational::new(1, 2));
        assert_eq!(Rational::new(-2, -4), Rational::new(1, 2));
        assert_eq!(Rational::new(2, -4), Rational::new(-1, 2));
        assert_eq!(Rational::new(0, 5), Rational::zero());
        assert_eq!(Rational::new(0, -5).denom(), &BigInt::one());
    }

    #[test]
    fn field_ops() {
        let a = Rational::new(3, 4);
        let b = Rational::new(5, 6);
        assert_eq!(&a + &b, Rational::new(19, 12));
        assert_eq!(&a - &b, Rational::new(-1, 12));
        assert_eq!(&a * &b, Rational::new(5, 8));
        assert_eq!(&a / &b, Rational::new(9, 10));
        assert_eq!(a.recip(), Rational::new(4, 3));
    }

    #[test]
    fn ordering() {
        assert!(Rational::new(1, 3) < Rational::new(1, 2));
        assert!(Rational::new(-1, 2) < Rational::new(-1, 3));
        assert!(Rational::new(7, 7) == Rational::one());
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(Rational::new(7, 2).floor(), BigInt::from(3i64));
        assert_eq!(Rational::new(7, 2).ceil(), BigInt::from(4i64));
        assert_eq!(Rational::new(-7, 2).floor(), BigInt::from(-4i64));
        assert_eq!(Rational::new(-7, 2).ceil(), BigInt::from(-3i64));
        assert_eq!(Rational::new(6, 2).floor(), BigInt::from(3i64));
        assert_eq!(Rational::new(6, 2).ceil(), BigInt::from(3i64));
    }

    #[test]
    fn parse() {
        assert_eq!("3/4".parse::<Rational>().unwrap(), Rational::new(3, 4));
        assert_eq!("-6/8".parse::<Rational>().unwrap(), Rational::new(-3, 4));
        assert_eq!("5".parse::<Rational>().unwrap(), Rational::from(5));
        assert!("1/0".parse::<Rational>().is_err());
        assert!("x/2".parse::<Rational>().is_err());
    }

    #[test]
    fn midpoint_between() {
        let a = Rational::new(1, 3);
        let b = Rational::new(1, 2);
        let m = Rational::midpoint(&a, &b);
        assert!(a < m && m < b);
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Rational::new(1, 0);
    }
}
