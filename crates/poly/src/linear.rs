//! Linear expressions and linear constraints over a fixed variable space.
//!
//! Variables are identified by dense indices `0..nvars`; the mapping from
//! indices to program parameters (or flow variables) is maintained by the
//! callers in `offload-symbolic` and `offload-core`.

use crate::bigint::BigInt;
use crate::rational::Rational;
use std::fmt;

/// A linear expression `c0 + c1*x1 + ... + cn*xn` with exact rational
/// coefficients.
///
/// # Examples
///
/// ```
/// use offload_poly::{LinExpr, Rational};
///
/// // 2*x0 - 3*x1 + 5
/// let e = LinExpr::constant(3, Rational::from(5))
///     .plus_term(0, Rational::from(2))
///     .plus_term(1, Rational::from(-3));
/// let point = [Rational::from(1), Rational::from(2), Rational::from(0)];
/// assert_eq!(e.eval(&point), Rational::from(1));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct LinExpr {
    coeffs: Vec<Rational>,
    constant: Rational,
}

impl LinExpr {
    /// The zero expression over `nvars` variables.
    pub fn zero(nvars: usize) -> Self {
        LinExpr {
            coeffs: vec![Rational::zero(); nvars],
            constant: Rational::zero(),
        }
    }

    /// A constant expression over `nvars` variables.
    pub fn constant(nvars: usize, c: Rational) -> Self {
        LinExpr {
            coeffs: vec![Rational::zero(); nvars],
            constant: c,
        }
    }

    /// The expression consisting of a single variable.
    ///
    /// # Panics
    ///
    /// Panics if `var >= nvars`.
    pub fn var(nvars: usize, var: usize) -> Self {
        assert!(
            var < nvars,
            "variable index {var} out of range ({nvars} variables)"
        );
        let mut e = Self::zero(nvars);
        e.coeffs[var] = Rational::one();
        e
    }

    /// Number of variables in this expression's space.
    pub fn nvars(&self) -> usize {
        self.coeffs.len()
    }

    /// Coefficient of variable `var`.
    pub fn coeff(&self, var: usize) -> &Rational {
        &self.coeffs[var]
    }

    /// The constant term.
    pub fn constant_term(&self) -> &Rational {
        &self.constant
    }

    /// Sets the coefficient of `var`.
    pub fn set_coeff(&mut self, var: usize, c: Rational) {
        self.coeffs[var] = c;
    }

    /// Sets the constant term.
    pub fn set_constant(&mut self, c: Rational) {
        self.constant = c;
    }

    /// Builder-style addition of `c * x_var`.
    #[must_use]
    pub fn plus_term(mut self, var: usize, c: Rational) -> Self {
        self.coeffs[var] = &self.coeffs[var] + &c;
        self
    }

    /// Builder-style addition of a constant.
    #[must_use]
    pub fn plus_constant(mut self, c: Rational) -> Self {
        self.constant = &self.constant + &c;
        self
    }

    /// `self + other`.
    ///
    /// # Panics
    ///
    /// Panics if the two expressions have different variable counts.
    pub fn add(&self, other: &LinExpr) -> LinExpr {
        assert_eq!(self.nvars(), other.nvars(), "mismatched variable spaces");
        LinExpr {
            coeffs: self
                .coeffs
                .iter()
                .zip(&other.coeffs)
                .map(|(a, b)| a + b)
                .collect(),
            constant: &self.constant + &other.constant,
        }
    }

    /// `self - other`.
    pub fn sub(&self, other: &LinExpr) -> LinExpr {
        self.add(&other.scale(&Rational::from(-1)))
    }

    /// `k * self`.
    pub fn scale(&self, k: &Rational) -> LinExpr {
        LinExpr {
            coeffs: self.coeffs.iter().map(|c| c * k).collect(),
            constant: &self.constant * k,
        }
    }

    /// Evaluates at a point (one value per variable).
    ///
    /// # Panics
    ///
    /// Panics if `point.len() != nvars`.
    pub fn eval(&self, point: &[Rational]) -> Rational {
        assert_eq!(point.len(), self.nvars(), "point dimension mismatch");
        let mut acc = self.constant.clone();
        for (c, v) in self.coeffs.iter().zip(point) {
            if !c.is_zero() {
                acc += &(c * v);
            }
        }
        acc
    }

    /// Returns `true` if every variable coefficient is zero.
    pub fn is_constant(&self) -> bool {
        self.coeffs.iter().all(Rational::is_zero)
    }

    /// Substitutes a fixed value for variable `var` (the variable's
    /// coefficient becomes zero and the constant absorbs `coeff * value`).
    pub fn substitute(&self, var: usize, value: &Rational) -> LinExpr {
        let mut out = self.clone();
        let c = std::mem::take(&mut out.coeffs[var]);
        out.constant = &out.constant + &(&c * value);
        out
    }

    /// Embeds this expression into a larger variable space: variables keep
    /// their indices, new trailing variables get zero coefficients.
    ///
    /// # Panics
    ///
    /// Panics if `new_nvars < nvars`.
    pub fn extend_vars(&self, new_nvars: usize) -> LinExpr {
        assert!(new_nvars >= self.nvars());
        let mut coeffs = self.coeffs.clone();
        coeffs.resize(new_nvars, Rational::zero());
        LinExpr {
            coeffs,
            constant: self.constant.clone(),
        }
    }

    /// Non-zero terms as `(variable index, coefficient)` pairs, in
    /// ascending variable order.
    pub fn terms(&self) -> impl Iterator<Item = (usize, &Rational)> + '_ {
        self.coeffs.iter().enumerate().filter(|(_, c)| !c.is_zero())
    }

    /// Indices of variables with non-zero coefficients.
    pub fn support(&self) -> impl Iterator<Item = usize> + '_ {
        self.coeffs
            .iter()
            .enumerate()
            .filter(|(_, c)| !c.is_zero())
            .map(|(i, _)| i)
    }

    /// Formats with variable names supplied by `names`.
    pub fn display_with(&self, names: &dyn Fn(usize) -> String) -> String {
        use fmt::Write as _;
        let mut out = String::new();
        let mut first = true;
        for (i, c) in self.coeffs.iter().enumerate() {
            if c.is_zero() {
                continue;
            }
            let name = names(i);
            if first {
                if *c == Rational::one() {
                    let _ = write!(out, "{name}");
                } else if *c == Rational::from(-1) {
                    let _ = write!(out, "-{name}");
                } else {
                    let _ = write!(out, "{c}*{name}");
                }
                first = false;
            } else if c.is_positive() {
                if *c == Rational::one() {
                    let _ = write!(out, " + {name}");
                } else {
                    let _ = write!(out, " + {c}*{name}");
                }
            } else if c.abs() == Rational::one() {
                let _ = write!(out, " - {name}");
            } else {
                let _ = write!(out, " - {}*{name}", c.abs());
            }
        }
        if first {
            let _ = write!(out, "{}", self.constant);
        } else if self.constant.is_positive() {
            let _ = write!(out, " + {}", self.constant);
        } else if self.constant.is_negative() {
            let _ = write!(out, " - {}", self.constant.abs());
        }
        out
    }
}

impl fmt::Display for LinExpr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = |i: usize| format!("x{i}");
        write!(f, "{}", self.display_with(&names))
    }
}

/// Comparison kind of a [`Constraint`]: `expr >= 0` or `expr > 0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// Non-strict: `expr >= 0`.
    Ge,
    /// Strict: `expr > 0`.
    Gt,
}

/// A linear constraint `expr >= 0` (or `expr > 0`).
///
/// Equalities are modeled as the conjunction of two opposite [`Cmp::Ge`]
/// constraints (see [`Constraint::equalities`]).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Constraint {
    /// The left-hand side; the constraint asserts it is (strictly) non-negative.
    pub expr: LinExpr,
    /// Strict or non-strict comparison.
    pub cmp: Cmp,
}

impl Constraint {
    /// `expr >= 0`.
    pub fn ge0(expr: LinExpr) -> Self {
        Constraint { expr, cmp: Cmp::Ge }
    }

    /// `expr > 0`.
    pub fn gt0(expr: LinExpr) -> Self {
        Constraint { expr, cmp: Cmp::Gt }
    }

    /// `lhs >= rhs`.
    pub fn ge(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::ge0(lhs.sub(rhs))
    }

    /// `lhs > rhs`.
    pub fn gt(lhs: &LinExpr, rhs: &LinExpr) -> Self {
        Constraint::gt0(lhs.sub(rhs))
    }

    /// The pair of constraints encoding `lhs == rhs`.
    pub fn equalities(lhs: &LinExpr, rhs: &LinExpr) -> [Self; 2] {
        [Constraint::ge(lhs, rhs), Constraint::ge(rhs, lhs)]
    }

    /// Evaluates the constraint at a point.
    pub fn holds_at(&self, point: &[Rational]) -> bool {
        let v = self.expr.eval(point);
        match self.cmp {
            Cmp::Ge => !v.is_negative(),
            Cmp::Gt => v.is_positive(),
        }
    }

    /// Returns `Some(true)` / `Some(false)` if the constraint is trivially
    /// true / false (no variables), `None` otherwise.
    pub fn trivial_truth(&self) -> Option<bool> {
        if !self.expr.is_constant() {
            return None;
        }
        let c = self.expr.constant_term();
        Some(match self.cmp {
            Cmp::Ge => !c.is_negative(),
            Cmp::Gt => c.is_positive(),
        })
    }

    /// The negation of this constraint (`expr >= 0` becomes `-expr > 0`).
    pub fn negated(&self) -> Constraint {
        let neg = self.expr.scale(&Rational::from(-1));
        match self.cmp {
            Cmp::Ge => Constraint::gt0(neg),
            Cmp::Gt => Constraint::ge0(neg),
        }
    }

    /// Canonicalizes to integer coefficients whose collective gcd is one.
    ///
    /// Two constraints with the same canonical variable coefficients differ
    /// only in their constant term, which enables redundancy pruning during
    /// Fourier–Motzkin elimination.
    pub fn normalize(&self) -> Constraint {
        // Common denominator of all coefficients (including the constant).
        let mut lcm = BigInt::one();
        for c in self
            .expr
            .coeffs
            .iter()
            .chain(std::iter::once(&self.expr.constant))
        {
            if !c.is_zero() {
                lcm = lcm.lcm(c.denom());
            }
        }
        // Gcd of the resulting integer coefficients.
        let mut gcd = BigInt::zero();
        let scaled: Vec<BigInt> = self
            .expr
            .coeffs
            .iter()
            .chain(std::iter::once(&self.expr.constant))
            .map(|c| {
                let v = &(c.numer() * &lcm) / c.denom();
                gcd = gcd.gcd(&v);
                v
            })
            .collect();
        if gcd.is_zero() {
            return self.clone();
        }
        let n = self.expr.nvars();
        let mut expr = LinExpr::zero(n);
        for (i, v) in scaled.iter().take(n).enumerate() {
            expr.coeffs[i] = Rational::from(v / &gcd);
        }
        expr.constant = Rational::from(&scaled[n] / &gcd);
        Constraint {
            expr,
            cmp: self.cmp,
        }
    }

    /// Formats with variable names supplied by `names`.
    pub fn display_with<'a>(&'a self, names: &'a dyn Fn(usize) -> String) -> String {
        let op = match self.cmp {
            Cmp::Ge => ">=",
            Cmp::Gt => ">",
        };
        format!("{} {op} 0", self.expr.display_with(names))
    }
}

impl fmt::Display for Constraint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let op = match self.cmp {
            Cmp::Ge => ">=",
            Cmp::Gt => ">",
        };
        write!(f, "{} {op} 0", self.expr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    #[test]
    fn eval_and_arith() {
        let e = LinExpr::zero(2)
            .plus_term(0, r(2))
            .plus_term(1, r(-1))
            .plus_constant(r(3));
        assert_eq!(e.eval(&[r(1), r(2)]), r(3));
        let f = e.add(&e);
        assert_eq!(f.eval(&[r(1), r(2)]), r(6));
        let g = e.scale(&r(-1));
        assert_eq!(g.eval(&[r(1), r(2)]), r(-3));
        assert_eq!(e.sub(&e).eval(&[r(5), r(7)]), r(0));
    }

    #[test]
    fn substitution() {
        let e = LinExpr::zero(2)
            .plus_term(0, r(2))
            .plus_term(1, r(3))
            .plus_constant(r(1));
        let s = e.substitute(0, &r(10));
        assert!(s.coeff(0).is_zero());
        assert_eq!(s.eval(&[r(999), r(1)]), r(24));
    }

    #[test]
    fn constraint_semantics() {
        let x_minus_2 = LinExpr::zero(1).plus_term(0, r(1)).plus_constant(r(-2));
        let ge = Constraint::ge0(x_minus_2.clone());
        let gt = Constraint::gt0(x_minus_2);
        assert!(ge.holds_at(&[r(2)]));
        assert!(!gt.holds_at(&[r(2)]));
        assert!(gt.holds_at(&[r(3)]));
        assert!(!ge.holds_at(&[r(1)]));
    }

    #[test]
    fn negation_partitions_space() {
        let e = LinExpr::zero(1).plus_term(0, r(1)).plus_constant(r(-2));
        let c = Constraint::ge0(e);
        let n = c.negated();
        for v in [-3i64, 2, 7] {
            let p = [r(v)];
            assert_ne!(
                c.holds_at(&p),
                n.holds_at(&p),
                "exactly one side must hold at {v}"
            );
        }
    }

    #[test]
    fn normalization_scales_to_integers() {
        let e = LinExpr::zero(2)
            .plus_term(0, Rational::new(2, 3))
            .plus_term(1, Rational::new(4, 3))
            .plus_constant(Rational::new(-2, 3));
        let c = Constraint::ge0(e).normalize();
        assert_eq!(c.expr.coeff(0), &r(1));
        assert_eq!(c.expr.coeff(1), &r(2));
        assert_eq!(c.expr.constant_term(), &r(-1));
    }

    #[test]
    fn trivial_truth() {
        assert_eq!(
            Constraint::ge0(LinExpr::constant(0, r(0))).trivial_truth(),
            Some(true)
        );
        assert_eq!(
            Constraint::gt0(LinExpr::constant(0, r(0))).trivial_truth(),
            Some(false)
        );
        assert_eq!(
            Constraint::ge0(LinExpr::constant(0, r(-1))).trivial_truth(),
            Some(false)
        );
        assert_eq!(Constraint::ge0(LinExpr::var(1, 0)).trivial_truth(), None);
    }

    #[test]
    fn display() {
        let e = LinExpr::zero(2)
            .plus_term(0, r(2))
            .plus_term(1, r(-1))
            .plus_constant(r(3));
        assert_eq!(e.to_string(), "2*x0 - x1 + 3");
        assert_eq!(Constraint::ge0(e).to_string(), "2*x0 - x1 + 3 >= 0");
    }
}
