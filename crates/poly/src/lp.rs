//! Exact rational linear programming (two-phase primal simplex with
//! Bland's rule).
//!
//! Used for fast *sound* redundancy elimination on projection outputs:
//! a constraint is dropped only when the LP proves the rest of the system
//! implies it. Strict inequalities are relaxed to their closures, which
//! can only make the check more conservative (we keep a constraint we
//! might have dropped — never the reverse).

use crate::bigint::BigInt;
use crate::linear::{Constraint, LinExpr};
use crate::rational::Rational;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpResult {
    /// The constraint system (closure) has no solution.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// The maximum value of the objective.
    Optimal(Rational),
}

/// Maximizes `objective` subject to the *closures* of `constraints`
/// (each `expr >= 0` / `expr > 0` is treated as `expr >= 0`).
///
/// Variables are free (unbounded in both directions); internally each is
/// split into a difference of two non-negatives.
pub fn maximize(objective: &LinExpr, constraints: &[Constraint]) -> LpResult {
    crate::counters::LP_SOLVES.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let _span = offload_obs::span!(
        "poly",
        "lp_maximize",
        vars = objective.nvars(),
        constraints = constraints.len(),
    );
    let n = objective.nvars();
    debug_assert!(constraints.iter().all(|c| c.expr.nvars() == n));
    let m = constraints.len();

    // Columns: x+ (n), x- (n), slacks (m). Rows: one per constraint, in
    // the form  sum(-a_ij)(x+_j - x-_j) + s_i = c_i.
    let cols = 2 * n + m;
    let mut a: Vec<Vec<Rational>> = Vec::with_capacity(m);
    let mut b: Vec<Rational> = Vec::with_capacity(m);
    for (i, c) in constraints.iter().enumerate() {
        let mut row = vec![Rational::zero(); cols];
        for j in 0..n {
            let aij = c.expr.coeff(j);
            if !aij.is_zero() {
                row[j] = -aij;
                row[n + j] = aij.clone();
            }
        }
        row[2 * n + i] = Rational::one();
        a.push(row);
        b.push(c.expr.constant_term().clone());
    }

    // Normalize negative right-hand sides for phase 1.
    let mut artificials: Vec<usize> = Vec::new();
    for i in 0..m {
        if b[i].is_negative() {
            for v in a[i].iter_mut() {
                *v = -&*v;
            }
            b[i] = -b[i].clone();
            artificials.push(i);
        }
    }
    let total_cols = cols + artificials.len();
    for (k, &i) in artificials.iter().enumerate() {
        for (r, row) in a.iter_mut().enumerate() {
            row.push(if r == i {
                Rational::one()
            } else {
                Rational::zero()
            });
        }
        let _ = k;
    }

    // Initial basis: slack for rows with original sign, artificial
    // otherwise.
    let mut basis: Vec<usize> = Vec::with_capacity(m);
    {
        let mut art_iter = 0usize;
        for i in 0..m {
            if artificials.contains(&i) {
                basis.push(cols + art_iter);
                art_iter += 1;
            } else {
                basis.push(2 * n + i);
            }
        }
    }

    // Phase 1: minimize the sum of artificials (maximize its negation).
    if !artificials.is_empty() {
        let mut phase1 = vec![Rational::zero(); total_cols];
        for k in 0..artificials.len() {
            phase1[cols + k] = Rational::from(-1);
        }
        match simplex(&mut a, &mut b, &mut basis, &phase1, total_cols) {
            // The phase-1 objective (-Σ artificials) is bounded above by
            // zero, so this arm is unreachable in a correct tableau; if it
            // ever fires, `Unbounded` is the sound conservative answer for
            // every caller (redundancy checks keep their constraint, merge
            // checks skip their optional merge) — prefer that to a panic.
            SimplexOutcome::Unbounded => return LpResult::Unbounded,
            SimplexOutcome::Optimal(v) => {
                if v.is_negative() {
                    return LpResult::Infeasible;
                }
            }
        }
        // Pivot any remaining artificial variables out of the basis (or
        // their rows are redundant); then forbid them by zero columns.
        for i in 0..m {
            if basis[i] >= cols {
                // Find a non-artificial column with nonzero entry.
                if let Some(j) = (0..cols).find(|&j| !a[i][j].is_zero()) {
                    pivot(&mut a, &mut b, &mut basis, i, j);
                }
            }
        }
        // Drop artificial columns.
        for row in a.iter_mut() {
            row.truncate(cols);
        }
    }

    // Phase 2 objective: maximize objective(x+ - x-).
    let mut obj = vec![Rational::zero(); cols];
    for j in 0..n {
        let cj = objective.coeff(j);
        if !cj.is_zero() {
            obj[j] = cj.clone();
            obj[n + j] = -cj;
        }
    }
    // Any leftover artificial basis rows became redundant zero rows.
    match simplex(&mut a, &mut b, &mut basis, &obj, cols) {
        SimplexOutcome::Unbounded => LpResult::Unbounded,
        SimplexOutcome::Optimal(v) => LpResult::Optimal(&v + objective.constant_term()),
    }
}

enum SimplexOutcome {
    Optimal(Rational),
    Unbounded,
}

/// Primal simplex on `max obj·x  s.t.  A x = b, x ≥ 0` with the given
/// starting basis; Bland's rule guarantees termination.
fn simplex(
    a: &mut [Vec<Rational>],
    b: &mut [Rational],
    basis: &mut [usize],
    obj: &[Rational],
    active_cols: usize,
) -> SimplexOutcome {
    let m = a.len();
    loop {
        // Reduced costs: c_j - c_B · B^-1 A_j; tableau is kept in basis
        // form, so the basic solution's reduced costs come from direct
        // computation.
        // Compute multipliers implicitly: reduced(j) = obj[j] - sum_i
        // obj[basis[i]] * a[i][j].
        let reduced = |j: usize, a: &[Vec<Rational>], basis: &[usize]| -> Rational {
            let mut r = obj[j].clone();
            for i in 0..m {
                let cb = &obj[basis[i]];
                if !cb.is_zero() && !a[i][j].is_zero() {
                    r -= &(cb * &a[i][j]);
                }
            }
            r
        };
        // Bland: smallest index with positive reduced cost.
        let mut entering = None;
        for j in 0..active_cols {
            if basis.contains(&j) {
                continue;
            }
            if reduced(j, a, basis).is_positive() {
                entering = Some(j);
                break;
            }
        }
        let Some(j) = entering else {
            // Optimal: value = obj · basic solution.
            let mut v = Rational::zero();
            for i in 0..m {
                let cb = &obj[basis[i]];
                if !cb.is_zero() {
                    v += &(cb * &b[i]);
                }
            }
            return SimplexOutcome::Optimal(v);
        };
        // Ratio test (Bland: smallest basis index on ties).
        let mut leave: Option<(usize, Rational)> = None;
        for i in 0..m {
            if a[i][j].is_positive() {
                let ratio = &b[i] / &a[i][j];
                match &leave {
                    None => leave = Some((i, ratio)),
                    Some((li, lr)) => {
                        if ratio < *lr || (ratio == *lr && basis[i] < basis[*li]) {
                            leave = Some((i, ratio));
                        }
                    }
                }
            }
        }
        let Some((i, _)) = leave else {
            return SimplexOutcome::Unbounded;
        };
        pivot(a, b, basis, i, j);
    }
}

fn pivot(a: &mut [Vec<Rational>], b: &mut [Rational], basis: &mut [usize], i: usize, j: usize) {
    crate::counters::LP_PIVOTS.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let m = a.len();
    let piv = a[i][j].clone();
    debug_assert!(!piv.is_zero());
    let inv = piv.recip();
    for v in a[i].iter_mut() {
        *v = &*v * &inv;
    }
    b[i] = &b[i] * &inv;
    for r in 0..m {
        if r == i {
            continue;
        }
        let factor = a[r][j].clone();
        if factor.is_zero() {
            continue;
        }
        let pivot_row = a[i].clone();
        for (dst, src) in a[r].iter_mut().zip(&pivot_row) {
            *dst = &*dst - &(&factor * src);
        }
        b[r] = &b[r] - &(&factor * &b[i]);
    }
    basis[i] = j;
}

/// Minimum of `objective` over the closure of `constraints`.
pub fn minimize(objective: &LinExpr, constraints: &[Constraint]) -> LpResult {
    match maximize(&objective.scale(&Rational::from(-1)), constraints) {
        LpResult::Optimal(v) => LpResult::Optimal(-v),
        other => other,
    }
}

/// A helper for feasibility of the closure.
pub fn closure_feasible(constraints: &[Constraint]) -> bool {
    let n = constraints.first().map(|c| c.expr.nvars()).unwrap_or(0);
    !matches!(
        maximize(&LinExpr::zero(n), constraints),
        LpResult::Infeasible
    )
}

/// Keeps the digits crate linked (gcd normalization is exercised through
/// rationals during pivoting).
#[allow(dead_code)]
fn _types(_: &BigInt) {}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn ge(nvars: usize, coeffs: &[(usize, i64)], c: i64) -> Constraint {
        let mut e = LinExpr::constant(nvars, r(c));
        for &(v, k) in coeffs {
            e = e.plus_term(v, r(k));
        }
        Constraint::ge0(e)
    }

    #[test]
    fn simple_box_maximum() {
        // 0 <= x <= 5, maximize x.
        let cs = vec![ge(1, &[(0, 1)], 0), ge(1, &[(0, -1)], 5)];
        let obj = LinExpr::var(1, 0);
        assert_eq!(maximize(&obj, &cs), LpResult::Optimal(r(5)));
        assert_eq!(minimize(&obj, &cs), LpResult::Optimal(r(0)));
    }

    #[test]
    fn two_dims_diagonal() {
        // x,y >= 0, x + y <= 4: maximize x + 2y = 8 at (0,4).
        let cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(0, -1), (1, -1)], 4),
        ];
        let obj = LinExpr::zero(2).plus_term(0, r(1)).plus_term(1, r(2));
        assert_eq!(maximize(&obj, &cs), LpResult::Optimal(r(8)));
    }

    #[test]
    fn unbounded_detected() {
        let cs = vec![ge(1, &[(0, 1)], 0)];
        assert_eq!(maximize(&LinExpr::var(1, 0), &cs), LpResult::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        // x >= 3 and x <= 1.
        let cs = vec![ge(1, &[(0, 1)], -3), ge(1, &[(0, -1)], 1)];
        assert_eq!(maximize(&LinExpr::var(1, 0), &cs), LpResult::Infeasible);
        assert!(!closure_feasible(&cs));
    }

    #[test]
    fn negative_region() {
        // -10 <= x <= -2: feasibility needs phase 1; free vars handled.
        let cs = vec![ge(1, &[(0, 1)], 10), ge(1, &[(0, -1)], -2)];
        assert_eq!(maximize(&LinExpr::var(1, 0), &cs), LpResult::Optimal(r(-2)));
        assert_eq!(
            minimize(&LinExpr::var(1, 0), &cs),
            LpResult::Optimal(r(-10))
        );
    }

    #[test]
    fn rational_vertices() {
        // 2x + 3y <= 7, 3x + 2y <= 7, x,y >= 0: max x+y at (7/5, 7/5).
        let cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(0, -2), (1, -3)], 7),
            ge(2, &[(0, -3), (1, -2)], 7),
        ];
        let obj = LinExpr::zero(2).plus_term(0, r(1)).plus_term(1, r(1));
        assert_eq!(maximize(&obj, &cs), LpResult::Optimal(Rational::new(14, 5)));
    }

    #[test]
    fn constant_objective() {
        let cs = vec![ge(1, &[(0, 1)], 0)];
        let obj = LinExpr::constant(1, r(42));
        assert_eq!(maximize(&obj, &cs), LpResult::Optimal(r(42)));
    }

    #[test]
    fn degenerate_cycling_guard() {
        // A classically degenerate problem; Bland's rule must terminate.
        let cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(0, -1), (1, -1)], 0), // x + y <= 0 with x,y >= 0 => origin only
        ];
        let obj = LinExpr::zero(2).plus_term(0, r(1)).plus_term(1, r(1));
        assert_eq!(maximize(&obj, &cs), LpResult::Optimal(r(0)));
    }
}
