//! Exact rational linear programming (two-phase primal simplex with
//! Bland's rule).
//!
//! Used for fast *sound* redundancy elimination on projection outputs:
//! a constraint is dropped only when the LP proves the rest of the system
//! implies it. Strict inequalities are relaxed to their closures, which
//! can only make the check more conservative (we keep a constraint we
//! might have dropped — never the reverse).
//!
//! # Performance
//!
//! The solver works on a single flat row-major tableau held in
//! thread-local scratch (mirroring the `DinicSolver` re-solve pattern in
//! the flow crate), so repeated solves reuse one allocation. Reduced costs
//! are maintained incrementally across pivots instead of being recomputed
//! from the basis each iteration — in exact arithmetic the maintained row
//! equals the recomputed one, so Bland's rule picks the identical pivot
//! sequence and results are bit-for-bit unchanged. Pivots touch only the
//! nonzero columns of the pivot row.
//!
//! On top of the scratch solver sits a thread-local *exact* result cache:
//! the region-subtraction and redundancy-reduction loops in `polyhedron.rs`
//! re-issue many identical `(objective, constraints)` systems, which are
//! answered from the cache without re-solving. Keys are compared by full
//! structural equality (never by hash alone), so a cache hit returns
//! exactly what a fresh solve would. To keep the work counters
//! scheduling-independent, a hit still counts as an `lp_solve` and adds
//! the original solve's pivot count to `lp_pivots`; the hit itself is
//! reported separately as `lp_cache_hits`.

use crate::linear::{Constraint, LinExpr};
use crate::rational::Rational;
use std::cell::RefCell;
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};
use std::sync::atomic::Ordering::Relaxed;

/// Outcome of an LP solve.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LpResult {
    /// The constraint system (closure) has no solution.
    Infeasible,
    /// The objective is unbounded above.
    Unbounded,
    /// The maximum value of the objective.
    Optimal(Rational),
}

/// Upper bound on cached constraint cells (`(nvars + 1) × (rows + 1)`
/// summed over entries) per thread. When an insert would exceed it the
/// whole cache is dropped and rebuilt — an epoch scheme that bounds memory
/// without per-entry bookkeeping.
const CACHE_CELL_CAP: usize = 1_000_000;

struct CacheEntry {
    objective: LinExpr,
    constraints: Vec<Constraint>,
    result: LpResult,
    pivots: u64,
}

#[derive(Default)]
struct LpTls {
    scratch: Scratch,
    cache: HashMap<u64, Vec<CacheEntry>>,
    cache_cells: usize,
}

thread_local! {
    static LP_TLS: RefCell<LpTls> = RefCell::new(LpTls::default());
}

/// Drops this thread's LP result cache (scratch buffers are kept).
///
/// The parametric engine calls this at the start of every solve so runs
/// are reproducible: cached results never change *what* is computed (keys
/// are compared exactly), but clearing makes the per-run `lp_cache_hits`
/// counter and timing independent of whatever ran earlier on the thread.
pub fn cache_clear() {
    LP_TLS.with(|tls| {
        let tls = &mut *tls.borrow_mut();
        tls.cache.clear();
        tls.cache_cells = 0;
    });
}

fn key_hash(objective: &LinExpr, constraints: &[Constraint]) -> u64 {
    let mut h = DefaultHasher::new();
    objective.hash(&mut h);
    constraints.hash(&mut h);
    h.finish()
}

/// Maximizes `objective` subject to the *closures* of `constraints`
/// (each `expr >= 0` / `expr > 0` is treated as `expr >= 0`).
///
/// Variables are free (unbounded in both directions); internally each is
/// split into a difference of two non-negatives.
pub fn maximize(objective: &LinExpr, constraints: &[Constraint]) -> LpResult {
    crate::counters::LP_SOLVES.fetch_add(1, Relaxed);
    let _span = offload_obs::span!(
        "poly",
        "lp_maximize",
        vars = objective.nvars(),
        constraints = constraints.len(),
    );
    debug_assert!(constraints
        .iter()
        .all(|c| c.expr.nvars() == objective.nvars()));

    LP_TLS.with(|tls| {
        let tls = &mut *tls.borrow_mut();
        let h = key_hash(objective, constraints);
        if let Some(bucket) = tls.cache.get(&h) {
            for e in bucket {
                if e.objective == *objective && e.constraints == constraints {
                    // A fresh solve of the same system would perform the
                    // same pivots, so account for them: lp_solves/lp_pivots
                    // stay independent of cache (and thread) scheduling.
                    crate::counters::LP_PIVOTS.fetch_add(e.pivots, Relaxed);
                    crate::counters::LP_CACHE_HITS.fetch_add(1, Relaxed);
                    return e.result.clone();
                }
            }
        }
        let mut pivots = 0u64;
        let result = solve(&mut tls.scratch, objective, constraints, &mut pivots);
        crate::counters::LP_PIVOTS.fetch_add(pivots, Relaxed);

        let cells = (objective.nvars() + 1) * (constraints.len() + 1);
        if tls.cache_cells + cells > CACHE_CELL_CAP {
            tls.cache.clear();
            tls.cache_cells = 0;
        }
        tls.cache_cells += cells;
        tls.cache.entry(h).or_default().push(CacheEntry {
            objective: objective.clone(),
            constraints: constraints.to_vec(),
            result: result.clone(),
            pivots,
        });
        result
    })
}

/// Reusable solver state: one flat row-major tableau plus the vectors the
/// simplex needs, all retained across solves so steady-state solving does
/// not allocate tableau storage.
#[derive(Default)]
struct Scratch {
    /// `rows × stride` tableau, row-major.
    tab: Vec<Rational>,
    /// Right-hand sides, one per row.
    b: Vec<Rational>,
    /// Maintained reduced-cost row (length = active column count).
    red: Vec<Rational>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Nonzero column indices of the normalized pivot row.
    nz: Vec<usize>,
    /// Cloned values of the normalized pivot row at `nz` positions.
    prow: Vec<Rational>,
    /// Rows whose initial basic variable is artificial.
    art_rows: Vec<usize>,
}

enum Phase {
    Optimal(Rational),
    Unbounded,
}

fn solve(
    scr: &mut Scratch,
    objective: &LinExpr,
    constraints: &[Constraint],
    pivots: &mut u64,
) -> LpResult {
    let n = objective.nvars();
    let m = constraints.len();

    // Columns: x+ (n), x- (n), slacks (m), then one artificial per row
    // whose right-hand side had to be negated for phase 1. Rows are
    //   sum(-a_ij)(x+_j - x-_j) + s_i = c_i.
    let cols = 2 * n + m;
    scr.art_rows.clear();
    for (i, c) in constraints.iter().enumerate() {
        if c.expr.constant_term().is_negative() {
            scr.art_rows.push(i);
        }
    }
    let na = scr.art_rows.len();
    let stride = cols + na;

    scr.tab.clear();
    scr.tab.resize(m * stride, Rational::zero());
    scr.b.clear();
    scr.basis.clear();
    {
        let mut art = 0usize;
        for (i, c) in constraints.iter().enumerate() {
            let negate = c.expr.constant_term().is_negative();
            let row = &mut scr.tab[i * stride..(i + 1) * stride];
            for j in 0..n {
                let aij = c.expr.coeff(j);
                if !aij.is_zero() {
                    if negate {
                        row[j] = aij.clone();
                        row[n + j] = -aij;
                    } else {
                        row[j] = -aij;
                        row[n + j] = aij.clone();
                    }
                }
            }
            row[2 * n + i] = if negate {
                -Rational::one()
            } else {
                Rational::one()
            };
            if negate {
                row[cols + art] = Rational::one();
                scr.basis.push(cols + art);
                scr.b.push(-c.expr.constant_term());
                art += 1;
            } else {
                scr.basis.push(2 * n + i);
                scr.b.push(c.expr.constant_term().clone());
            }
        }
    }

    // Phase 1: minimize the sum of artificials (maximize its negation).
    if na > 0 {
        // Initial reduced costs for c = -1 on artificial columns with the
        // artificials basic: red_j = c_j + Σ_{artificial rows} a_ij, and
        // the objective value starts at -Σ b_i over those rows.
        scr.red.clear();
        scr.red.resize(stride, Rational::zero());
        let mut z = Rational::zero();
        for k in 0..na {
            scr.red[cols + k] = Rational::from(-1);
        }
        for &i in &scr.art_rows {
            for j in 0..stride {
                let a = &scr.tab[i * stride + j];
                if !a.is_zero() {
                    scr.red[j] += a;
                }
            }
            z -= &scr.b[i];
        }
        match run_simplex(scr, m, stride, stride, z, pivots) {
            // The phase-1 objective (-Σ artificials) is bounded above by
            // zero, so this arm is unreachable in a correct tableau; if it
            // ever fires, `Unbounded` is the sound conservative answer for
            // every caller (redundancy checks keep their constraint, merge
            // checks skip their optional merge) — prefer that to a panic.
            Phase::Unbounded => return LpResult::Unbounded,
            Phase::Optimal(v) => {
                if v.is_negative() {
                    return LpResult::Infeasible;
                }
            }
        }
        // Pivot any remaining artificial variables out of the basis (or
        // their rows are redundant); artificial columns are simply never
        // scanned again afterwards.
        for i in 0..m {
            if scr.basis[i] >= cols {
                if let Some(j) = (0..cols).find(|&j| !scr.tab[i * stride + j].is_zero()) {
                    pivot(scr, m, stride, cols, i, j, pivots);
                }
            }
        }
    }

    // Phase 2 objective: maximize objective(x+ - x-). Columns >= cols
    // (artificials) have objective coefficient zero, including any
    // leftover artificial basis rows (redundant zero rows).
    let obj_of = |col: usize| -> Rational {
        if col < n {
            objective.coeff(col).clone()
        } else if col < 2 * n {
            -objective.coeff(col - n)
        } else {
            Rational::zero()
        }
    };
    scr.red.clear();
    scr.red.resize(cols, Rational::zero());
    for (j, r) in scr.red.iter_mut().enumerate() {
        *r = obj_of(j);
    }
    let mut z = Rational::zero();
    for i in 0..m {
        let cb = obj_of(scr.basis[i]);
        if cb.is_zero() {
            continue;
        }
        for j in 0..cols {
            let a = &scr.tab[i * stride + j];
            if !a.is_zero() {
                scr.red[j] -= &(&cb * a);
            }
        }
        z += &(&cb * &scr.b[i]);
    }
    match run_simplex(scr, m, stride, cols, z, pivots) {
        Phase::Unbounded => LpResult::Unbounded,
        Phase::Optimal(v) => LpResult::Optimal(&v + objective.constant_term()),
    }
}

/// Primal simplex on the scratch tableau with Bland's rule; `width` is the
/// number of active (scannable) columns and `z` the current objective
/// value, both kept in lockstep with the maintained reduced-cost row.
fn run_simplex(
    scr: &mut Scratch,
    m: usize,
    stride: usize,
    width: usize,
    mut z: Rational,
    pivots: &mut u64,
) -> Phase {
    loop {
        // Bland: smallest index with positive reduced cost. Basic columns
        // have an exactly-zero reduced cost, so they are skipped naturally.
        let Some(j) = (0..width).find(|&j| scr.red[j].is_positive()) else {
            return Phase::Optimal(z);
        };
        // Ratio test (Bland: smallest basis index on ties). Ratios are
        // compared by cross-multiplication to avoid forming quotients.
        let mut leave: Option<usize> = None;
        for i in 0..m {
            if !scr.tab[i * stride + j].is_positive() {
                continue;
            }
            match leave {
                None => leave = Some(i),
                Some(li) => {
                    // b_i / a_ij ? b_li / a_lij  <=>  b_i·a_lij ? b_li·a_ij
                    let lhs = &scr.b[i] * &scr.tab[li * stride + j];
                    let rhs = &scr.b[li] * &scr.tab[i * stride + j];
                    if lhs < rhs || (lhs == rhs && scr.basis[i] < scr.basis[li]) {
                        leave = Some(i);
                    }
                }
            }
        }
        let Some(i) = leave else {
            return Phase::Unbounded;
        };
        let rj = scr.red[j].clone();
        pivot(scr, m, stride, width, i, j, pivots);
        // Reduced-cost and objective update: the pivot row (normalized) is
        // in scr.nz/scr.prow. red -= red_j_old · row_i sets red[j] to an
        // exact zero; z grows by red_j_old · (new basic value).
        for (&k, v) in scr.nz.iter().zip(&scr.prow) {
            if k < width {
                scr.red[k] -= &(&rj * v);
            }
        }
        z += &(&rj * &scr.b[i]);
    }
}

/// Pivots on `(i, j)`: normalizes the pivot row, eliminates column `j`
/// from every other row touching only the pivot row's nonzero columns,
/// and leaves the normalized pivot row in `scr.nz`/`scr.prow`. Columns at
/// `width` and beyond are dead (dropped artificials) and skipped.
fn pivot(
    scr: &mut Scratch,
    m: usize,
    stride: usize,
    width: usize,
    i: usize,
    j: usize,
    pivots: &mut u64,
) {
    *pivots += 1;
    let piv = scr.tab[i * stride + j].clone();
    debug_assert!(!piv.is_zero());
    let inv = piv.recip();
    scr.nz.clear();
    scr.prow.clear();
    for k in 0..width {
        let v = &mut scr.tab[i * stride + k];
        if !v.is_zero() {
            *v *= &inv;
            scr.nz.push(k);
            scr.prow.push(v.clone());
        }
    }
    scr.b[i] *= &inv;
    for r in 0..m {
        if r == i {
            continue;
        }
        let factor = scr.tab[r * stride + j].clone();
        if factor.is_zero() {
            continue;
        }
        for (&k, v) in scr.nz.iter().zip(&scr.prow) {
            let t = &factor * v;
            scr.tab[r * stride + k] -= &t;
        }
        if !scr.b[i].is_zero() {
            let t = &factor * &scr.b[i];
            scr.b[r] -= &t;
        }
    }
    scr.basis[i] = j;
}

/// Minimum of `objective` over the closure of `constraints`.
pub fn minimize(objective: &LinExpr, constraints: &[Constraint]) -> LpResult {
    match maximize(&objective.scale(&Rational::from(-1)), constraints) {
        LpResult::Optimal(v) => LpResult::Optimal(-v),
        other => other,
    }
}

/// Whether the closure of `set` implies `c`: the minimum of `c.expr`
/// over `set` is non-negative (strict: positive). An infeasible `set`
/// implies everything; an unbounded minimum implies nothing.
///
/// This is the from-scratch reference for the warm-started incremental
/// check in `reduce.rs`; both must agree on every input.
pub(crate) fn implied_by(set: &[Constraint], c: &Constraint) -> bool {
    match minimize(&c.expr, set) {
        LpResult::Optimal(v) => match c.cmp {
            crate::linear::Cmp::Ge => !v.is_negative(),
            crate::linear::Cmp::Gt => v.is_positive(),
        },
        LpResult::Infeasible => true,
        LpResult::Unbounded => false,
    }
}

/// A helper for feasibility of the closure.
pub fn closure_feasible(constraints: &[Constraint]) -> bool {
    let n = constraints.first().map(|c| c.expr.nvars()).unwrap_or(0);
    !matches!(
        maximize(&LinExpr::zero(n), constraints),
        LpResult::Infeasible
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn ge(nvars: usize, coeffs: &[(usize, i64)], c: i64) -> Constraint {
        let mut e = LinExpr::constant(nvars, r(c));
        for &(v, k) in coeffs {
            e = e.plus_term(v, r(k));
        }
        Constraint::ge0(e)
    }

    #[test]
    fn simple_box_maximum() {
        // 0 <= x <= 5, maximize x.
        let cs = vec![ge(1, &[(0, 1)], 0), ge(1, &[(0, -1)], 5)];
        let obj = LinExpr::var(1, 0);
        assert_eq!(maximize(&obj, &cs), LpResult::Optimal(r(5)));
        assert_eq!(minimize(&obj, &cs), LpResult::Optimal(r(0)));
    }

    #[test]
    fn two_dims_diagonal() {
        // x,y >= 0, x + y <= 4: maximize x + 2y = 8 at (0,4).
        let cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(0, -1), (1, -1)], 4),
        ];
        let obj = LinExpr::zero(2).plus_term(0, r(1)).plus_term(1, r(2));
        assert_eq!(maximize(&obj, &cs), LpResult::Optimal(r(8)));
    }

    #[test]
    fn unbounded_detected() {
        let cs = vec![ge(1, &[(0, 1)], 0)];
        assert_eq!(maximize(&LinExpr::var(1, 0), &cs), LpResult::Unbounded);
    }

    #[test]
    fn infeasible_detected() {
        // x >= 3 and x <= 1.
        let cs = vec![ge(1, &[(0, 1)], -3), ge(1, &[(0, -1)], 1)];
        assert_eq!(maximize(&LinExpr::var(1, 0), &cs), LpResult::Infeasible);
        assert!(!closure_feasible(&cs));
    }

    #[test]
    fn negative_region() {
        // -10 <= x <= -2: feasibility needs phase 1; free vars handled.
        let cs = vec![ge(1, &[(0, 1)], 10), ge(1, &[(0, -1)], -2)];
        assert_eq!(maximize(&LinExpr::var(1, 0), &cs), LpResult::Optimal(r(-2)));
        assert_eq!(
            minimize(&LinExpr::var(1, 0), &cs),
            LpResult::Optimal(r(-10))
        );
    }

    #[test]
    fn rational_vertices() {
        // 2x + 3y <= 7, 3x + 2y <= 7, x,y >= 0: max x+y at (7/5, 7/5).
        let cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(0, -2), (1, -3)], 7),
            ge(2, &[(0, -3), (1, -2)], 7),
        ];
        let obj = LinExpr::zero(2).plus_term(0, r(1)).plus_term(1, r(1));
        assert_eq!(maximize(&obj, &cs), LpResult::Optimal(Rational::new(14, 5)));
    }

    #[test]
    fn constant_objective() {
        let cs = vec![ge(1, &[(0, 1)], 0)];
        let obj = LinExpr::constant(1, r(42));
        assert_eq!(maximize(&obj, &cs), LpResult::Optimal(r(42)));
    }

    #[test]
    fn degenerate_cycling_guard() {
        // A classically degenerate problem; Bland's rule must terminate.
        let cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(0, -1), (1, -1)], 0), // x + y <= 0 with x,y >= 0 => origin only
        ];
        let obj = LinExpr::zero(2).plus_term(0, r(1)).plus_term(1, r(1));
        assert_eq!(maximize(&obj, &cs), LpResult::Optimal(r(0)));
    }

    #[test]
    fn cache_hit_returns_identical_result_and_counts() {
        cache_clear();
        let cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(0, -2), (1, -3)], 7),
            ge(2, &[(0, -3), (1, -2)], 7),
        ];
        let obj = LinExpr::zero(2).plus_term(0, r(1)).plus_term(1, r(1));
        let before = crate::PolyStats::snapshot();
        let first = maximize(&obj, &cs);
        let mid = crate::PolyStats::snapshot();
        let second = maximize(&obj, &cs);
        let after = crate::PolyStats::snapshot();
        assert_eq!(first, second);
        let fresh = mid.since(&before);
        let hit = after.since(&mid);
        assert_eq!(hit.lp_cache_hits, fresh.lp_cache_hits + 1);
        // Stored-pivot accounting: a hit reports the same solve/pivot work
        // as the original solve did.
        assert_eq!(hit.lp_solves, fresh.lp_solves);
        assert_eq!(hit.lp_pivots, fresh.lp_pivots);
    }

    #[test]
    fn cache_distinguishes_differing_systems() {
        cache_clear();
        let cs_a = vec![ge(1, &[(0, 1)], 0), ge(1, &[(0, -1)], 5)];
        let cs_b = vec![ge(1, &[(0, 1)], 0), ge(1, &[(0, -1)], 6)];
        let obj = LinExpr::var(1, 0);
        assert_eq!(maximize(&obj, &cs_a), LpResult::Optimal(r(5)));
        assert_eq!(maximize(&obj, &cs_b), LpResult::Optimal(r(6)));
        assert_eq!(maximize(&obj, &cs_a), LpResult::Optimal(r(5)));
    }

    #[test]
    fn cache_clear_resets_hits() {
        cache_clear();
        let cs = vec![ge(1, &[(0, 1)], 0), ge(1, &[(0, -1)], 5)];
        let obj = LinExpr::var(1, 0);
        let _ = maximize(&obj, &cs);
        cache_clear();
        let before = crate::PolyStats::snapshot();
        let _ = maximize(&obj, &cs);
        let delta = crate::PolyStats::snapshot().since(&before);
        assert_eq!(delta.lp_cache_hits, 0);
    }
}
