//! Convex polyhedra as systems of linear constraints, with exact
//! Fourier–Motzkin elimination.
//!
//! This module is the substitute for the PolyLib library used by the paper:
//! the parametric partitioning algorithm needs intersection, existential
//! projection (to eliminate flow variables in Lemma 1), emptiness testing,
//! and interior-point sampling — all of which Fourier–Motzkin provides
//! soundly over exact rationals, including strict inequalities.

use crate::linear::{Cmp, Constraint, LinExpr};
use crate::rational::Rational;
use std::collections::HashMap;
use std::fmt;

/// A (possibly unbounded, possibly empty) convex polyhedron
/// `{ x | A x (>=|>) b }` in `nvars` dimensions.
///
/// # Examples
///
/// ```
/// use offload_poly::{Polyhedron, LinExpr, Constraint, Rational};
///
/// // { (x, y) | x >= 1, y >= 2, x + y <= 4 }
/// let mut p = Polyhedron::universe(2);
/// p.add(Constraint::ge0(LinExpr::var(2, 0).plus_constant(Rational::from(-1))));
/// p.add(Constraint::ge0(LinExpr::var(2, 1).plus_constant(Rational::from(-2))));
/// p.add(Constraint::ge0(
///     LinExpr::constant(2, Rational::from(4))
///         .plus_term(0, Rational::from(-1))
///         .plus_term(1, Rational::from(-1)),
/// ));
/// assert!(!p.is_empty());
/// let point = p.sample().expect("non-empty");
/// assert!(p.contains(&point));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polyhedron {
    nvars: usize,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The full space in `nvars` dimensions.
    pub fn universe(nvars: usize) -> Self {
        Polyhedron {
            nvars,
            constraints: Vec::new(),
        }
    }

    /// An empty polyhedron in `nvars` dimensions.
    pub fn empty(nvars: usize) -> Self {
        let mut p = Polyhedron::universe(nvars);
        // 0 > 0 is unsatisfiable.
        p.add(Constraint::gt0(LinExpr::zero(nvars)));
        p
    }

    /// Builds a polyhedron from constraints.
    ///
    /// # Panics
    ///
    /// Panics if any constraint has a different variable count.
    pub fn from_constraints(nvars: usize, constraints: Vec<Constraint>) -> Self {
        let mut p = Polyhedron::universe(nvars);
        for c in constraints {
            p.add(c);
        }
        p
    }

    /// Number of dimensions.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The constraint system (not necessarily minimal).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds one constraint.
    ///
    /// # Panics
    ///
    /// Panics if the constraint's variable count differs.
    pub fn add(&mut self, c: Constraint) {
        assert_eq!(c.expr.nvars(), self.nvars, "constraint dimension mismatch");
        self.constraints.push(c);
    }

    /// Intersection of two polyhedra in the same space.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.nvars, other.nvars, "polyhedron dimension mismatch");
        let mut out = self.clone();
        for c in &other.constraints {
            out.add(c.clone());
        }
        out
    }

    /// Returns `true` if the point satisfies every constraint.
    pub fn contains(&self, point: &[Rational]) -> bool {
        self.constraints.iter().all(|c| c.holds_at(point))
    }

    /// Removes duplicate and dominated constraints; returns `None` if a
    /// trivially false constraint is found (the polyhedron is empty).
    fn pruned(&self) -> Option<Polyhedron> {
        // Key: canonical integer variable-coefficient vector (gcd 1).
        // Constraints sharing a key differ only in constant / strictness;
        // only the tightest survives. `order` pins the output to
        // first-encounter order — constraint order steers downstream
        // Fourier–Motzkin combination and region subtraction, so it must
        // not depend on hash iteration.
        let mut best: HashMap<Vec<Rational>, (Rational, Cmp)> = HashMap::new();
        let mut order: Vec<Vec<Rational>> = Vec::new();
        for c in &self.constraints {
            let n = c.normalize();
            match n.trivial_truth() {
                Some(true) => continue,
                Some(false) => return None,
                None => {}
            }
            // Re-canonicalize over variable coefficients only so that the
            // constant term is comparable across constraints.
            let varscale = var_coeff_canonical(&n);
            let (key, constant, cmp) = varscale;
            if !best.contains_key(&key) {
                order.push(key.clone());
            }
            best.entry(key)
                .and_modify(|(c0, m0)| {
                    // expr >= -constant: larger -constant (smaller constant) is tighter.
                    if constant < *c0 || (constant == *c0 && cmp == Cmp::Gt) {
                        *c0 = constant.clone();
                        *m0 = cmp;
                    }
                })
                .or_insert((constant, cmp));
        }
        let mut out = Polyhedron::universe(self.nvars);
        for key in order {
            let Some((constant, cmp)) = best.remove(&key) else {
                continue;
            };
            let mut e = LinExpr::zero(self.nvars);
            for (i, c) in key.into_iter().enumerate() {
                e.set_coeff(i, c);
            }
            e.set_constant(constant);
            out.constraints.push(Constraint { expr: e, cmp });
        }
        Some(out)
    }

    /// Fourier–Motzkin elimination of one variable.
    ///
    /// The result is the exact projection of the polyhedron onto the
    /// remaining variables (the eliminated coordinate keeps its index with
    /// an always-zero coefficient, so dimensions stay aligned).
    pub fn eliminate_var(&self, var: usize) -> Polyhedron {
        assert!(var < self.nvars, "variable index out of range");
        let pruned = match self.pruned() {
            Some(p) => p,
            None => return Polyhedron::empty(self.nvars),
        };
        let mut lowers: Vec<&Constraint> = Vec::new(); // coeff(var) > 0
        let mut uppers: Vec<&Constraint> = Vec::new(); // coeff(var) < 0
        let mut keep: Vec<Constraint> = Vec::new();
        for c in &pruned.constraints {
            let a = c.expr.coeff(var);
            if a.is_positive() {
                lowers.push(c);
            } else if a.is_negative() {
                uppers.push(c);
            } else {
                keep.push(c.clone());
            }
        }
        for lo in &lowers {
            let a = lo.expr.coeff(var).clone(); // > 0
            for up in &uppers {
                let b = up.expr.coeff(var).abs(); // > 0
                                                  // a*x + e1 >= 0  and  -b*x + e2 >= 0
                                                  // => b*e1 + a*e2 >= 0 (strict if either side strict)
                let combined = lo.expr.scale(&b).add(&up.expr.scale(&a));
                debug_assert!(combined.coeff(var).is_zero());
                let cmp = if lo.cmp == Cmp::Gt || up.cmp == Cmp::Gt {
                    Cmp::Gt
                } else {
                    Cmp::Ge
                };
                keep.push(Constraint {
                    expr: combined,
                    cmp,
                });
            }
        }
        let result = Polyhedron {
            nvars: self.nvars,
            constraints: keep,
        };
        match result.pruned() {
            Some(p) => p,
            None => Polyhedron::empty(self.nvars),
        }
    }

    /// Finds a variable in `vars` that is pinned by an equality (a pair of
    /// opposite non-strict constraints) and substitutes it away; returns
    /// the variable on success.
    ///
    /// Equality substitution is exact and — unlike Fourier–Motzkin —
    /// never grows the constraint system, so [`Self::eliminate_vars`]
    /// prefers it. The minimum-cut optimality systems of Lemma 1 are
    /// dominated by equalities (saturated arcs, zero arcs, conservation),
    /// making this the difference between milliseconds and blow-up.
    fn substitute_equality(&mut self, vars: &[usize]) -> Option<usize> {
        // Index normalized expressions to find e >= 0 with -e >= 0.
        // `LinExpr` is its own hash key — no stringification needed.
        let normalized: Vec<Constraint> = self.constraints.iter().map(|c| c.normalize()).collect();
        let mut seen: HashMap<&LinExpr, usize> = HashMap::new();
        for (i, c) in normalized.iter().enumerate() {
            if c.cmp != Cmp::Ge {
                continue;
            }
            seen.insert(&c.expr, i);
        }
        for c in normalized.iter() {
            if c.cmp != Cmp::Ge {
                continue;
            }
            let neg = c.expr.scale(&Rational::from(-1));
            if seen.contains_key(&neg) {
                // c.expr == 0 holds. Pick a variable from `vars` with a
                // non-zero coefficient and substitute it everywhere.
                for &v in vars {
                    let a = c.expr.coeff(v);
                    if a.is_zero() {
                        continue;
                    }
                    // v = -(rest)/a
                    let mut rest = c.expr.clone();
                    rest.set_coeff(v, Rational::zero());
                    let scale = -(&a.recip());
                    let replacement = rest.scale(&scale);
                    for cons in &mut self.constraints {
                        let coeff = cons.expr.coeff(v).clone();
                        if coeff.is_zero() {
                            continue;
                        }
                        cons.expr.set_coeff(v, Rational::zero());
                        cons.expr = cons.expr.add(&replacement.scale(&coeff));
                    }
                    return Some(v);
                }
            }
        }
        None
    }

    /// Eliminates a set of variables: equality substitution first, then
    /// Fourier–Motzkin, choosing at each step the variable whose
    /// elimination produces the fewest new constraints (the classic
    /// `min(|lowers| * |uppers|)` heuristic).
    pub fn eliminate_vars(&self, vars: &[usize]) -> Polyhedron {
        let mut span = offload_obs::span!(
            "poly",
            "fm_eliminate",
            vars = vars.len(),
            constraints_in = self.constraints.len(),
        );
        let out = self.eliminate_vars_inner(vars);
        span.record("constraints_out", out.constraints.len());
        out
    }

    fn eliminate_vars_inner(&self, vars: &[usize]) -> Polyhedron {
        let debug = std::env::var_os("OFFLOAD_POLY_DEBUG").is_some();
        let mut remaining: Vec<usize> = vars.to_vec();
        let mut cur = match self.pruned() {
            Some(p) => p,
            None => return Polyhedron::empty(self.nvars),
        };

        use std::sync::atomic::Ordering::Relaxed;

        // Phase 1: exact equality substitutions (never grow the system).
        while let Some(v) = cur.substitute_equality(&remaining) {
            crate::counters::FM_VARS_ELIMINATED.fetch_add(1, Relaxed);
            remaining.retain(|&x| x != v);
            cur = match cur.pruned() {
                Some(p) => p,
                None => return Polyhedron::empty(self.nvars),
            };
            if remaining.is_empty() {
                return cur;
            }
        }

        // Phase 2: Fourier–Motzkin with Imbert's acceleration — every
        // derived constraint carries the set of phase-2 input constraints
        // it combines; after eliminating k variables, any constraint whose
        // history exceeds k+1 inputs is provably redundant and dropped.
        let mut sys: Vec<(Constraint, std::collections::BTreeSet<u32>)> = cur
            .constraints
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), std::collections::BTreeSet::from([i as u32])))
            .collect();
        let mut eliminated = 0usize;
        while !remaining.is_empty() {
            if debug {
                eprintln!(
                    "[poly] remaining={} constraints={}",
                    remaining.len(),
                    sys.len()
                );
            }
            let Some((idx, &v)) = remaining.iter().enumerate().min_by_key(|(_, &v)| {
                let mut lo = 0usize;
                let mut up = 0usize;
                for (c, _) in &sys {
                    let a = c.expr.coeff(v);
                    if a.is_positive() {
                        lo += 1;
                    } else if a.is_negative() {
                        up += 1;
                    }
                }
                lo * up
            }) else {
                break; // unreachable: loop guard keeps `remaining` non-empty
            };
            remaining.swap_remove(idx);
            eliminated += 1;
            crate::counters::FM_VARS_ELIMINATED.fetch_add(1, Relaxed);

            let mut lowers = Vec::new();
            let mut uppers = Vec::new();
            let mut keep = Vec::new();
            for (c, h) in sys {
                let a = c.expr.coeff(v);
                if a.is_positive() {
                    lowers.push((c, h));
                } else if a.is_negative() {
                    uppers.push((c, h));
                } else {
                    keep.push((c, h));
                }
            }
            let mut generated = 0u64;
            for (lo, lh) in &lowers {
                let a = lo.expr.coeff(v).clone();
                for (up, uh) in &uppers {
                    let hist: std::collections::BTreeSet<u32> = lh.union(uh).copied().collect();
                    if hist.len() > eliminated + 1 {
                        continue; // Imbert: redundant combination
                    }
                    let b = up.expr.coeff(v).abs();
                    let combined = lo.expr.scale(&b).add(&up.expr.scale(&a));
                    let cmp = if lo.cmp == Cmp::Gt || up.cmp == Cmp::Gt {
                        Cmp::Gt
                    } else {
                        Cmp::Ge
                    };
                    keep.push((
                        Constraint {
                            expr: combined,
                            cmp,
                        },
                        hist,
                    ));
                    generated += 1;
                }
            }
            crate::counters::FM_CONSTRAINTS.fetch_add(generated, Relaxed);

            // Prune: drop trivially-true rows, detect contradictions,
            // and keep only the tightest constraint per direction. The
            // surviving system is rebuilt in first-encounter order — its
            // constraint order decides the next round's combinations and
            // ultimately the output's constraint order, so it must not
            // depend on hash iteration.
            let mut best: HashMap<Vec<Rational>, (Rational, Cmp, std::collections::BTreeSet<u32>)> =
                HashMap::new();
            let mut order: Vec<Vec<Rational>> = Vec::new();
            for (c, h) in keep {
                let n = c.normalize();
                match n.trivial_truth() {
                    Some(true) => continue,
                    Some(false) => return Polyhedron::empty(self.nvars),
                    None => {}
                }
                let (key, constant, cmp) = var_coeff_canonical(&n);
                match best.get_mut(&key) {
                    None => {
                        order.push(key.clone());
                        best.insert(key, (constant, cmp, h));
                    }
                    Some((c0, m0, h0)) => {
                        if constant < *c0 || (constant == *c0 && cmp == Cmp::Gt) {
                            *c0 = constant;
                            *m0 = cmp;
                            *h0 = h;
                        }
                    }
                }
            }
            sys = order
                .into_iter()
                .filter_map(|key| {
                    let (constant, cmp, h) = best.remove(&key)?;
                    let mut e = LinExpr::zero(self.nvars);
                    for (i, c) in key.into_iter().enumerate() {
                        e.set_coeff(i, c);
                    }
                    e.set_constant(constant);
                    Some((Constraint { expr: e, cmp }, h))
                })
                .collect();

            // Chernikov's superset rule: a derived constraint whose
            // ancestor set strictly contains another's is redundant.
            if sys.len() > 64 {
                let mut keep = vec![true; sys.len()];
                for i in 0..sys.len() {
                    if !keep[i] {
                        continue;
                    }
                    for j in 0..sys.len() {
                        if i == j || !keep[j] {
                            continue;
                        }
                        let (hi, hj) = (&sys[i].1, &sys[j].1);
                        if hj.len() < hi.len() && hj.is_subset(hi) {
                            keep[i] = false;
                            break;
                        }
                    }
                }
                let mut it = keep.iter();
                sys.retain(|_| *it.next().expect("aligned"));
            }

            // LP-based redundancy reduction when Fourier–Motzkin growth
            // outpaces the cheap filters (sound: only provably implied
            // constraints are dropped).
            if sys.len() > 300 {
                sys = lp_reduce_with_history(sys);
            }
        }
        Polyhedron {
            nvars: self.nvars,
            constraints: sys.into_iter().map(|(c, _)| c).collect(),
        }
    }

    /// Projects onto the first `k` variables: eliminates variables
    /// `k..nvars` and truncates the space to `k` dimensions.
    pub fn project_to_first(&self, k: usize) -> Polyhedron {
        assert!(k <= self.nvars);
        let elim: Vec<usize> = (k..self.nvars).collect();
        let reduced = self.eliminate_vars(&elim);
        let constraints = reduced
            .constraints
            .iter()
            .map(|c| {
                let mut e = LinExpr::zero(k);
                for i in 0..k {
                    e.set_coeff(i, c.expr.coeff(i).clone());
                }
                e.set_constant(c.expr.constant_term().clone());
                Constraint {
                    expr: e,
                    cmp: c.cmp,
                }
            })
            .collect();
        Polyhedron {
            nvars: k,
            constraints,
        }
    }

    /// Embeds into a larger space (new trailing coordinates unconstrained).
    pub fn extend_vars(&self, new_nvars: usize) -> Polyhedron {
        assert!(new_nvars >= self.nvars);
        Polyhedron {
            nvars: new_nvars,
            constraints: self
                .constraints
                .iter()
                .map(|c| Constraint {
                    expr: c.expr.extend_vars(new_nvars),
                    cmp: c.cmp,
                })
                .collect(),
        }
    }

    /// Exact emptiness test.
    ///
    /// Strict inequalities are handled with the ε-method: maximize a slack
    /// ε with every strict constraint relaxed to `expr ≥ ε`; the system is
    /// satisfiable iff the supremum is positive (or unbounded).
    pub fn is_empty(&self) -> bool {
        let eps = self.nvars;
        let nv = self.nvars + 1;
        let mut cs: Vec<Constraint> = Vec::with_capacity(self.constraints.len() + 1);
        let mut any_strict = false;
        for c in &self.constraints {
            match c.trivial_truth() {
                Some(true) => continue,
                Some(false) => return true,
                None => {}
            }
            let mut e = c.expr.extend_vars(nv);
            if c.cmp == Cmp::Gt {
                any_strict = true;
                e = e.plus_term(eps, Rational::from(-1));
            }
            cs.push(Constraint::ge0(e));
        }
        if !any_strict {
            return !crate::lp::closure_feasible(&cs);
        }
        // Bound ε so the LP stays bounded: 0 <= eps <= 1.
        cs.push(Constraint::ge0(LinExpr::var(nv, eps)));
        cs.push(Constraint::ge0(
            LinExpr::constant(nv, Rational::one()).plus_term(eps, Rational::from(-1)),
        ));
        match crate::lp::maximize(&LinExpr::var(nv, eps), &cs) {
            crate::lp::LpResult::Infeasible => true,
            crate::lp::LpResult::Unbounded => false,
            crate::lp::LpResult::Optimal(v) => !v.is_positive(),
        }
    }

    /// Removes constraints implied by the rest of the system (sound
    /// LP-based redundancy elimination). The result describes the same
    /// set with a near-minimal constraint system — essential after
    /// projections, whose raw Fourier–Motzkin output is highly redundant.
    ///
    /// Two passes: an incremental filter that only keeps constraints not
    /// already implied by the kept set (cheap: the kept set stays small),
    /// then a reverse sweep removing survivors made redundant by later
    /// additions.
    pub fn reduce_redundancy(&self) -> Polyhedron {
        let cur = match self.pruned() {
            Some(p) => p,
            None => return Polyhedron::empty(self.nvars),
        };
        let implied = |set: &[Constraint], c: &Constraint| -> bool {
            match crate::lp::minimize(&c.expr, set) {
                crate::lp::LpResult::Optimal(v) => match c.cmp {
                    Cmp::Ge => !v.is_negative(),
                    Cmp::Gt => v.is_positive(),
                },
                crate::lp::LpResult::Infeasible => true,
                crate::lp::LpResult::Unbounded => false,
            }
        };
        // Prefer constraints with fewer variables first (cheaper and
        // likelier to be facets of simple regions).
        let mut ordered = cur.constraints.clone();
        ordered.sort_by_key(|c| c.expr.support().count());
        let mut kept: Vec<Constraint> = Vec::new();
        for c in ordered {
            if kept.is_empty() || !implied(&kept, &c) {
                kept.push(c);
            }
        }
        // Reverse sweep.
        let mut i = 0;
        while i < kept.len() {
            let candidate = kept[i].clone();
            let rest: Vec<Constraint> = kept
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone())
                .collect();
            if !rest.is_empty() && implied(&rest, &candidate) {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        let out = Polyhedron {
            nvars: self.nvars,
            constraints: kept,
        };
        if out.is_empty() {
            return Polyhedron::empty(self.nvars);
        }
        out
    }

    /// Finds a point inside the polyhedron (an interior point with respect
    /// to strict constraints whenever bounds leave room), or `None` if the
    /// polyhedron is empty.
    pub fn sample(&self) -> Option<Vec<Rational>> {
        // systems[k] has variables 0..(nvars - k) live.
        let mut systems: Vec<Polyhedron> = Vec::with_capacity(self.nvars + 1);
        systems.push(self.pruned()?);
        for v in (0..self.nvars).rev() {
            let next = systems.last()?.eliminate_var(v);
            // `eliminate_var` returns the canonical empty polyhedron when
            // it detects infeasibility.
            if next
                .constraints
                .iter()
                .any(|c| c.trivial_truth() == Some(false))
            {
                return None;
            }
            systems.push(next);
        }
        // Back-substitute: assign var j using the system in which vars 0..=j
        // are live (systems[nvars - 1 - j]).
        let mut point = vec![Rational::zero(); self.nvars];
        for j in 0..self.nvars {
            let system = &systems[self.nvars - 1 - j];
            let value = pick_value(system, j, &point)?;
            point[j] = value;
        }
        debug_assert!(
            self.contains(&point),
            "sampled point must satisfy all constraints"
        );
        Some(point)
    }

    /// Returns `true` if `other` contains every point of `self`
    /// (i.e. `self ⊆ other`), computed exactly via emptiness of
    /// `self ∩ ¬c` for each constraint `c` of `other`.
    pub fn subset_of(&self, other: &Polyhedron) -> bool {
        assert_eq!(self.nvars, other.nvars);
        other.constraints.iter().all(|c| {
            let mut escaped = self.clone();
            escaped.add(c.negated());
            escaped.is_empty()
        })
    }

    /// Formats with variable names supplied by `names`.
    pub fn display_with(&self, names: &dyn Fn(usize) -> String) -> String {
        let parts: Vec<String> = match self.pruned() {
            None => return "false".to_string(),
            Some(p) if p.constraints.is_empty() => return "true".to_string(),
            Some(p) => p
                .constraints
                .iter()
                .map(|c| c.display_with(names))
                .collect(),
        };
        let mut sorted = parts;
        sorted.sort();
        sorted.join(" && ")
    }
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = |i: usize| format!("x{i}");
        write!(f, "{}", self.display_with(&names))
    }
}

/// Incremental LP-based redundancy filter preserving derivation
/// histories: keeps a constraint only when the already-kept set does not
/// imply it.
fn lp_reduce_with_history(
    sys: Vec<(Constraint, std::collections::BTreeSet<u32>)>,
) -> Vec<(Constraint, std::collections::BTreeSet<u32>)> {
    let mut ordered = sys;
    ordered.sort_by_key(|(c, _)| c.expr.support().count());
    let mut kept: Vec<(Constraint, std::collections::BTreeSet<u32>)> = Vec::new();
    let mut kept_cs: Vec<Constraint> = Vec::new();
    for (c, h) in ordered {
        let implied = if kept_cs.is_empty() {
            false
        } else {
            match crate::lp::minimize(&c.expr, &kept_cs) {
                crate::lp::LpResult::Optimal(v) => match c.cmp {
                    Cmp::Ge => !v.is_negative(),
                    Cmp::Gt => v.is_positive(),
                },
                crate::lp::LpResult::Infeasible => true,
                crate::lp::LpResult::Unbounded => false,
            }
        };
        if !implied {
            kept_cs.push(c.clone());
            kept.push((c, h));
        }
    }
    kept
}

/// Canonical (gcd-1 integer) variable-coefficient vector, plus the
/// correspondingly scaled constant and the comparison kind.
fn var_coeff_canonical(c: &Constraint) -> (Vec<Rational>, Rational, Cmp) {
    use crate::bigint::BigInt;
    let n = c.expr.nvars();
    // Constraints come in normalized (integer, overall gcd 1); rescale by
    // the gcd of the *variable* coefficients so constants are comparable.
    let mut gcd = BigInt::zero();
    for i in 0..n {
        gcd = gcd.gcd(c.expr.coeff(i).numer());
    }
    if gcd.is_zero() {
        // Constant constraint: callers filter these out beforehand.
        return (
            vec![Rational::zero(); n],
            c.expr.constant_term().clone(),
            c.cmp,
        );
    }
    let scale = Rational::from_bigints(BigInt::one(), gcd);
    let key: Vec<Rational> = (0..n).map(|i| c.expr.coeff(i) * &scale).collect();
    (key, c.expr.constant_term() * &scale, c.cmp)
}

/// Chooses a value for variable `var` in `system`, where all variables with
/// smaller indices already have values in `point` and all variables with
/// larger indices have been eliminated from `system`.
fn pick_value(system: &Polyhedron, var: usize, point: &[Rational]) -> Option<Rational> {
    let mut lower: Option<(Rational, bool)> = None; // (bound, strict)
    let mut upper: Option<(Rational, bool)> = None;
    for c in system.constraints() {
        let a = c.expr.coeff(var).clone();
        if a.is_zero() {
            continue; // holds by construction of the elimination cascade
        }
        // Substitute already-fixed variables (unassigned slots of `point`
        // hold zero and have zero coefficients in this cascade stage).
        let mut rest = c.expr.clone();
        rest.set_coeff(var, Rational::zero());
        let val = rest.eval(point);
        let bound = &(-&val) / &a;
        let strict = c.cmp == Cmp::Gt;
        if a.is_positive() {
            // x >= bound
            match &lower {
                Some((b, s)) if bound < *b || (bound == *b && (*s || !strict)) => {}
                _ => lower = Some((bound, strict)),
            }
        } else {
            // x <= bound
            match &upper {
                Some((b, s)) if bound > *b || (bound == *b && (*s || !strict)) => {}
                _ => upper = Some((bound, strict)),
            }
        }
    }
    match (lower, upper) {
        (None, None) => Some(Rational::zero()),
        (Some((lo, strict)), None) => Some(if strict { &lo + &Rational::one() } else { lo }),
        (None, Some((hi, strict))) => Some(if strict { &hi - &Rational::one() } else { hi }),
        (Some((lo, ls)), Some((hi, us))) => {
            if lo < hi {
                Some(Rational::midpoint(&lo, &hi))
            } else if lo == hi && !ls && !us {
                Some(lo)
            } else {
                // Infeasible interval: only reachable if the elimination
                // cascade failed, which would be a bug.
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    /// `lhs . x + c >= 0` helper.
    fn ge(nvars: usize, coeffs: &[(usize, i64)], c: i64) -> Constraint {
        let mut e = LinExpr::constant(nvars, r(c));
        for &(v, k) in coeffs {
            e = e.plus_term(v, r(k));
        }
        Constraint::ge0(e)
    }

    fn gt(nvars: usize, coeffs: &[(usize, i64)], c: i64) -> Constraint {
        let mut e = LinExpr::constant(nvars, r(c));
        for &(v, k) in coeffs {
            e = e.plus_term(v, r(k));
        }
        Constraint::gt0(e)
    }

    #[test]
    fn universe_and_empty() {
        assert!(!Polyhedron::universe(3).is_empty());
        assert!(Polyhedron::empty(3).is_empty());
    }

    #[test]
    fn box_sampling() {
        // 1 <= x <= 3, 2 <= y <= 2
        let p = Polyhedron::from_constraints(
            2,
            vec![
                ge(2, &[(0, 1)], -1),
                ge(2, &[(0, -1)], 3),
                ge(2, &[(1, 1)], -2),
                ge(2, &[(1, -1)], 2),
            ],
        );
        let pt = p.sample().unwrap();
        assert!(p.contains(&pt));
        assert_eq!(pt[1], r(2));
    }

    #[test]
    fn infeasible_box() {
        // x >= 3 && x <= 1
        let p = Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], -3), ge(1, &[(0, -1)], 1)]);
        assert!(p.is_empty());
    }

    #[test]
    fn strict_boundary_excluded() {
        // x > 1 && x <= 1 is empty; x >= 1 && x <= 1 is the point {1}.
        let strict =
            Polyhedron::from_constraints(1, vec![gt(1, &[(0, 1)], -1), ge(1, &[(0, -1)], 1)]);
        assert!(strict.is_empty());
        let closed =
            Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], -1), ge(1, &[(0, -1)], 1)]);
        assert_eq!(closed.sample().unwrap(), vec![r(1)]);
    }

    #[test]
    fn elimination_projects_shadow() {
        // Triangle x >= 0, y >= 0, x + y <= 4. Projecting out y gives 0 <= x <= 4.
        let p = Polyhedron::from_constraints(
            2,
            vec![
                ge(2, &[(0, 1)], 0),
                ge(2, &[(1, 1)], 0),
                ge(2, &[(0, -1), (1, -1)], 4),
            ],
        );
        let q = p.eliminate_var(1);
        assert!(q.contains(&[r(0), r(999)]));
        assert!(q.contains(&[r(4), r(-5)]));
        assert!(!q.contains(&[r(5), r(0)]));
        assert!(!q.contains(&[r(-1), r(0)]));
    }

    #[test]
    fn project_to_first_truncates() {
        let p = Polyhedron::from_constraints(
            3,
            vec![
                ge(3, &[(0, 1), (2, 1)], 0),
                ge(3, &[(2, 1)], -1),
                ge(3, &[(2, -1)], 2),
            ],
        );
        // x0 + x2 >= 0 with 1 <= x2 <= 2  =>  x0 >= -2
        let q = p.project_to_first(1);
        assert_eq!(q.nvars(), 1);
        assert!(q.contains(&[r(-2)]));
        assert!(!q.contains(&[r(-3)]));
    }

    #[test]
    fn subset_relation() {
        let big = Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], 0)]); // x >= 0
        let small = Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], -5)]); // x >= 5
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
    }

    #[test]
    fn unbounded_sampling() {
        // x >= 10 (unbounded above)
        let p = Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], -10)]);
        let pt = p.sample().unwrap();
        assert!(pt[0] >= r(10));
        // x > 10 strict
        let p = Polyhedron::from_constraints(1, vec![gt(1, &[(0, 1)], -10)]);
        let pt = p.sample().unwrap();
        assert!(pt[0] > r(10));
    }

    #[test]
    fn redundant_constraints_pruned() {
        let p = Polyhedron::from_constraints(
            1,
            vec![
                ge(1, &[(0, 1)], 0),
                ge(1, &[(0, 2)], 0),
                ge(1, &[(0, 1)], -3),
            ],
        );
        let pruned = p.pruned().unwrap();
        // x >= 0, x >= 0 (scaled) and x >= 3 collapse to just x >= 3.
        assert_eq!(pruned.constraints().len(), 1);
    }

    #[test]
    fn display_readable() {
        let p = Polyhedron::from_constraints(2, vec![ge(2, &[(0, 1), (1, -1)], 0)]);
        assert_eq!(p.to_string(), "x0 - x1 >= 0");
        assert_eq!(Polyhedron::universe(1).to_string(), "true");
        assert_eq!(Polyhedron::empty(1).to_string(), "false");
    }
}

#[cfg(test)]
mod reduction_tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn ge(nvars: usize, coeffs: &[(usize, i64)], c: i64) -> Constraint {
        let mut e = LinExpr::constant(nvars, r(c));
        for &(v, k) in coeffs {
            e = e.plus_term(v, r(k));
        }
        Constraint::ge0(e)
    }

    #[test]
    fn redundant_halfspaces_dropped() {
        // x >= 0, x >= -5 (redundant), x + 1 >= 0 (redundant).
        let p = Polyhedron::from_constraints(
            1,
            vec![
                ge(1, &[(0, 1)], 0),
                ge(1, &[(0, 1)], 5),
                ge(1, &[(0, 1)], 1),
            ],
        );
        let q = p.reduce_redundancy();
        assert_eq!(q.constraints().len(), 1);
        assert!(q.contains(&[r(0)]));
        assert!(!q.contains(&[r(-1)]));
    }

    #[test]
    fn reduction_preserves_set() {
        // A 2D wedge with a stack of redundant supports.
        let mut cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(0, -1), (1, -1)], 10),
        ];
        for k in 1..8 {
            cs.push(ge(2, &[(0, -1), (1, -1)], 10 + k)); // weaker copies
            cs.push(ge(2, &[(0, 1), (1, 1)], k)); // implied by x,y >= 0
        }
        let p = Polyhedron::from_constraints(2, cs);
        let q = p.reduce_redundancy();
        assert!(q.constraints().len() <= 3);
        for x in -2i64..=12 {
            for y in -2i64..=12 {
                let pt = [r(x), r(y)];
                assert_eq!(p.contains(&pt), q.contains(&pt), "({x},{y})");
            }
        }
    }

    #[test]
    fn equality_substitution_projects_exactly() {
        // x = 2y (equality pair), x + y <= 9, both nonneg.
        let eq = LinExpr::var(2, 0).plus_term(1, r(-2));
        let p = Polyhedron::from_constraints(
            2,
            vec![
                Constraint::ge0(eq.clone()),
                Constraint::ge0(eq.scale(&r(-1))),
                ge(2, &[(0, -1), (1, -1)], 9),
                ge(2, &[(0, 1)], 0),
                ge(2, &[(1, 1)], 0),
            ],
        );
        // Eliminate x: the shadow on y is 0 <= y <= 3.
        let q = p.eliminate_var(0);
        assert!(q.contains(&[r(99), r(3)]));
        assert!(!q.contains(&[r(0), r(4)]));
        // eliminate_vars (with the equality fast path) agrees.
        let q2 = p.eliminate_vars(&[0]);
        for y in 0..6i64 {
            assert_eq!(
                q.contains(&[r(0), r(y)]),
                q2.contains(&[r(0), r(y)]),
                "y={y}"
            );
        }
    }

    #[test]
    fn empty_reduction_is_empty() {
        let p = Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], -5), ge(1, &[(0, -1)], 2)]);
        let q = p.reduce_redundancy();
        assert!(q.is_empty());
    }
}
