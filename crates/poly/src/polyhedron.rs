//! Convex polyhedra as systems of linear constraints, with exact
//! Fourier–Motzkin elimination.
//!
//! This module is the substitute for the PolyLib library used by the paper:
//! the parametric partitioning algorithm needs intersection, existential
//! projection (to eliminate flow variables in Lemma 1), emptiness testing,
//! and interior-point sampling — all of which Fourier–Motzkin provides
//! soundly over exact rationals, including strict inequalities.

use crate::linear::{Cmp, Constraint, LinExpr};
use crate::rational::Rational;
use std::collections::HashMap;
use std::fmt;

/// System size past which Fourier–Motzkin rounds run the warm-started
/// LP redundancy filter ([`lp_reduce_with_history`]). Tuned on the
/// audio/fft benchmarks: each implication check on the incremental
/// solver is cheap enough that reducing early — before the quadratic
/// combination step can square a bloated system — wins decisively over
/// letting the cheap syntactic filters run alone.
const LP_REDUCE_THRESHOLD: usize = 150;

/// A (possibly unbounded, possibly empty) convex polyhedron
/// `{ x | A x (>=|>) b }` in `nvars` dimensions.
///
/// # Examples
///
/// ```
/// use offload_poly::{Polyhedron, LinExpr, Constraint, Rational};
///
/// // { (x, y) | x >= 1, y >= 2, x + y <= 4 }
/// let mut p = Polyhedron::universe(2);
/// p.add(Constraint::ge0(LinExpr::var(2, 0).plus_constant(Rational::from(-1))));
/// p.add(Constraint::ge0(LinExpr::var(2, 1).plus_constant(Rational::from(-2))));
/// p.add(Constraint::ge0(
///     LinExpr::constant(2, Rational::from(4))
///         .plus_term(0, Rational::from(-1))
///         .plus_term(1, Rational::from(-1)),
/// ));
/// assert!(!p.is_empty());
/// let point = p.sample().expect("non-empty");
/// assert!(p.contains(&point));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Polyhedron {
    nvars: usize,
    constraints: Vec<Constraint>,
}

impl Polyhedron {
    /// The full space in `nvars` dimensions.
    pub fn universe(nvars: usize) -> Self {
        Polyhedron {
            nvars,
            constraints: Vec::new(),
        }
    }

    /// An empty polyhedron in `nvars` dimensions.
    pub fn empty(nvars: usize) -> Self {
        let mut p = Polyhedron::universe(nvars);
        // 0 > 0 is unsatisfiable.
        p.add(Constraint::gt0(LinExpr::zero(nvars)));
        p
    }

    /// Builds a polyhedron from constraints.
    ///
    /// # Panics
    ///
    /// Panics if any constraint has a different variable count.
    pub fn from_constraints(nvars: usize, constraints: Vec<Constraint>) -> Self {
        let mut p = Polyhedron::universe(nvars);
        for c in constraints {
            p.add(c);
        }
        p
    }

    /// Number of dimensions.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The constraint system (not necessarily minimal).
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// Adds one constraint.
    ///
    /// # Panics
    ///
    /// Panics if the constraint's variable count differs.
    pub fn add(&mut self, c: Constraint) {
        assert_eq!(c.expr.nvars(), self.nvars, "constraint dimension mismatch");
        self.constraints.push(c);
    }

    /// Intersection of two polyhedra in the same space.
    ///
    /// # Panics
    ///
    /// Panics if dimensions differ.
    pub fn intersect(&self, other: &Polyhedron) -> Polyhedron {
        assert_eq!(self.nvars, other.nvars, "polyhedron dimension mismatch");
        let mut out = self.clone();
        for c in &other.constraints {
            out.add(c.clone());
        }
        out
    }

    /// Returns `true` if the point satisfies every constraint.
    pub fn contains(&self, point: &[Rational]) -> bool {
        self.constraints.iter().all(|c| c.holds_at(point))
    }

    /// Removes duplicate and dominated constraints; returns `None` if a
    /// trivially false constraint is found (the polyhedron is empty).
    fn pruned(&self) -> Option<Polyhedron> {
        self.pruned_inner(false)
    }

    /// [`Self::pruned`] with the drops attributed to the pre-filter
    /// counters — used by the redundancy-elimination pipeline, where
    /// "how many LP checks did the syntactic ladder discharge" is the
    /// quantity of interest. Generic callers use the uncounted wrapper so
    /// incidental pruning (display, sampling) does not pollute the stats.
    fn pruned_counted(&self) -> Option<Polyhedron> {
        self.pruned_inner(true)
    }

    fn pruned_inner(&self, count: bool) -> Option<Polyhedron> {
        // Key: canonical integer variable-coefficient vector (gcd 1).
        // Constraints sharing a key differ only in constant / strictness;
        // only the tightest survives. `order` pins the output to
        // first-encounter order — constraint order steers downstream
        // Fourier–Motzkin combination and region subtraction, so it must
        // not depend on hash iteration.
        let mut best: HashMap<Vec<Rational>, (Rational, Cmp)> = HashMap::new();
        let mut order: Vec<Vec<Rational>> = Vec::new();
        for c in &self.constraints {
            let n = c.normalize();
            match n.trivial_truth() {
                Some(true) => continue,
                Some(false) => return None,
                None => {}
            }
            // Re-canonicalize over variable coefficients only so that the
            // constant term is comparable across constraints.
            let varscale = var_coeff_canonical(&n);
            let (key, constant, cmp) = varscale;
            match best.get_mut(&key) {
                None => {
                    order.push(key.clone());
                    best.insert(key, (constant, cmp));
                }
                Some((c0, m0)) => {
                    if count {
                        use std::sync::atomic::Ordering::Relaxed;
                        if constant == *c0 && cmp == *m0 {
                            // Syntactically identical rows collapse to one.
                            crate::counters::PREFILTER_DEDUP.fetch_add(1, Relaxed);
                        } else {
                            // Parallel half-spaces: one bound dominates.
                            crate::counters::PREFILTER_DOMINANCE.fetch_add(1, Relaxed);
                        }
                    }
                    // expr >= -constant: larger -constant (smaller constant) is tighter.
                    if constant < *c0 || (constant == *c0 && cmp == Cmp::Gt) {
                        *c0 = constant;
                        *m0 = cmp;
                    }
                }
            }
        }
        let mut out = Polyhedron::universe(self.nvars);
        for key in order {
            let Some((constant, cmp)) = best.remove(&key) else {
                continue;
            };
            let mut e = LinExpr::zero(self.nvars);
            for (i, c) in key.into_iter().enumerate() {
                e.set_coeff(i, c);
            }
            e.set_constant(constant);
            out.constraints.push(Constraint { expr: e, cmp });
        }
        Some(out)
    }

    /// Fourier–Motzkin elimination of one variable.
    ///
    /// The result is the exact projection of the polyhedron onto the
    /// remaining variables (the eliminated coordinate keeps its index with
    /// an always-zero coefficient, so dimensions stay aligned).
    pub fn eliminate_var(&self, var: usize) -> Polyhedron {
        assert!(var < self.nvars, "variable index out of range");
        let pruned = match self.pruned() {
            Some(p) => p,
            None => return Polyhedron::empty(self.nvars),
        };
        let mut lowers: Vec<&Constraint> = Vec::new(); // coeff(var) > 0
        let mut uppers: Vec<&Constraint> = Vec::new(); // coeff(var) < 0
        let mut keep: Vec<Constraint> = Vec::new();
        for c in &pruned.constraints {
            let a = c.expr.coeff(var);
            if a.is_positive() {
                lowers.push(c);
            } else if a.is_negative() {
                uppers.push(c);
            } else {
                keep.push(c.clone());
            }
        }
        for lo in &lowers {
            let a = lo.expr.coeff(var).clone(); // > 0
            for up in &uppers {
                let b = up.expr.coeff(var).abs(); // > 0
                                                  // a*x + e1 >= 0  and  -b*x + e2 >= 0
                                                  // => b*e1 + a*e2 >= 0 (strict if either side strict)
                let combined = lo.expr.scale(&b).add(&up.expr.scale(&a));
                debug_assert!(combined.coeff(var).is_zero());
                let cmp = if lo.cmp == Cmp::Gt || up.cmp == Cmp::Gt {
                    Cmp::Gt
                } else {
                    Cmp::Ge
                };
                keep.push(Constraint {
                    expr: combined,
                    cmp,
                });
            }
        }
        let result = Polyhedron {
            nvars: self.nvars,
            constraints: keep,
        };
        match result.pruned() {
            Some(p) => p,
            None => Polyhedron::empty(self.nvars),
        }
    }

    /// Eliminates a set of variables: equality substitution first, then
    /// Fourier–Motzkin, choosing at each step the variable whose
    /// elimination produces the fewest new constraints (the classic
    /// `min(|lowers| * |uppers|)` heuristic).
    pub fn eliminate_vars(&self, vars: &[usize]) -> Polyhedron {
        self.eliminate_vars_threads(vars, 1)
    }

    /// [`Self::eliminate_vars`] with up to `threads` worker threads for
    /// the intra-step LP-based redundancy reduction. The output — and
    /// every work counter — is identical for every thread count (see
    /// `reduce.rs` for the determinism argument).
    pub fn eliminate_vars_threads(&self, vars: &[usize], threads: usize) -> Polyhedron {
        let mut span = offload_obs::span!(
            "poly",
            "fm_eliminate",
            vars = vars.len(),
            constraints_in = self.constraints.len(),
        );
        let out = self.eliminate_vars_inner(vars, threads);
        span.record("constraints_out", out.constraints.len());
        out
    }

    fn eliminate_vars_inner(&self, vars: &[usize], threads: usize) -> Polyhedron {
        let remaining: Vec<usize> = vars.to_vec();
        let cur = match self.pruned() {
            Some(p) => p,
            None => return Polyhedron::empty(self.nvars),
        };

        use std::sync::atomic::Ordering::Relaxed;

        // Compact the variable space before any per-iteration work.
        // `LinExpr` coefficient vectors are dense over the *full* space,
        // but most variables never appear in this system — their columns
        // are identically zero. Every substitution, combination,
        // normalization and LP check below pays O(columns), so remap the
        // live variables (plus any still to eliminate) onto a dense
        // prefix, eliminate there, and embed the result back at the end.
        // A pure index permutation: the arithmetic — and therefore the
        // output and every counter — is unchanged.
        let (mut cur, mut remaining, to_old) = compact_space(cur, remaining);

        // Phase 1: exact equality substitutions (never grow the system).
        if substitute_equalities(&mut cur, &mut remaining).is_err() {
            return Polyhedron::empty(self.nvars);
        }
        cur = match cur.pruned() {
            Some(p) => p,
            None => return Polyhedron::empty(self.nvars),
        };
        if remaining.is_empty() {
            return embed_space(self.nvars, &to_old, cur.constraints);
        }

        // Re-compact: the substituted variables' columns are gone now.
        let (cur, remaining, to_old) = {
            let (c2, r2, t2) = compact_space(cur, remaining);
            let composed: Vec<usize> = t2.iter().map(|&j| to_old[j]).collect();
            (c2, r2, composed)
        };
        let mut remaining = remaining;
        let m = cur.nvars;

        // Phase 2: Fourier–Motzkin with Imbert's acceleration — every
        // derived constraint carries the set of phase-2 input constraints
        // it combines; after eliminating k variables, any constraint whose
        // history exceeds k+1 inputs is provably redundant and dropped.
        let mut sys: Vec<(Constraint, std::collections::BTreeSet<u32>)> = cur
            .constraints
            .iter()
            .enumerate()
            .map(|(i, c)| (c.clone(), std::collections::BTreeSet::from([i as u32])))
            .collect();
        let mut eliminated = 0usize;
        while !remaining.is_empty() {
            let Some((idx, &v)) = remaining.iter().enumerate().min_by_key(|(_, &v)| {
                let mut lo = 0usize;
                let mut up = 0usize;
                for (c, _) in &sys {
                    let a = c.expr.coeff(v);
                    if a.is_positive() {
                        lo += 1;
                    } else if a.is_negative() {
                        up += 1;
                    }
                }
                lo * up
            }) else {
                break; // unreachable: loop guard keeps `remaining` non-empty
            };
            remaining.swap_remove(idx);
            eliminated += 1;
            crate::counters::FM_VARS_ELIMINATED.fetch_add(1, Relaxed);

            let mut lowers = Vec::new();
            let mut uppers = Vec::new();
            let mut keep = Vec::new();
            for (c, h) in sys {
                let a = c.expr.coeff(v);
                if a.is_positive() {
                    lowers.push((c, h));
                } else if a.is_negative() {
                    uppers.push((c, h));
                } else {
                    keep.push((c, h));
                }
            }
            let mut generated = 0u64;
            for (lo, lh) in &lowers {
                let a = lo.expr.coeff(v).clone();
                for (up, uh) in &uppers {
                    let hist: std::collections::BTreeSet<u32> = lh.union(uh).copied().collect();
                    if hist.len() > eliminated + 1 {
                        continue; // Imbert: redundant combination
                    }
                    let b = up.expr.coeff(v).abs();
                    let combined = lo.expr.scale(&b).add(&up.expr.scale(&a));
                    let cmp = if lo.cmp == Cmp::Gt || up.cmp == Cmp::Gt {
                        Cmp::Gt
                    } else {
                        Cmp::Ge
                    };
                    keep.push((
                        Constraint {
                            expr: combined,
                            cmp,
                        },
                        hist,
                    ));
                    generated += 1;
                }
            }
            crate::counters::FM_CONSTRAINTS.fetch_add(generated, Relaxed);

            // Prune: drop trivially-true rows, detect contradictions,
            // and keep only the tightest constraint per direction. The
            // surviving system is rebuilt in first-encounter order — its
            // constraint order decides the next round's combinations and
            // ultimately the output's constraint order, so it must not
            // depend on hash iteration.
            let mut best: HashMap<Vec<Rational>, (Rational, Cmp, std::collections::BTreeSet<u32>)> =
                HashMap::new();
            let mut order: Vec<Vec<Rational>> = Vec::new();
            for (c, h) in keep {
                let n = c.normalize();
                match n.trivial_truth() {
                    Some(true) => continue,
                    Some(false) => return Polyhedron::empty(self.nvars),
                    None => {}
                }
                let (key, constant, cmp) = var_coeff_canonical(&n);
                match best.get_mut(&key) {
                    None => {
                        order.push(key.clone());
                        best.insert(key, (constant, cmp, h));
                    }
                    Some((c0, m0, h0)) => {
                        if constant < *c0 || (constant == *c0 && cmp == Cmp::Gt) {
                            *c0 = constant;
                            *m0 = cmp;
                            *h0 = h;
                        }
                    }
                }
            }
            sys = order
                .into_iter()
                .filter_map(|key| {
                    let (constant, cmp, h) = best.remove(&key)?;
                    let mut e = LinExpr::zero(m);
                    for (i, c) in key.into_iter().enumerate() {
                        e.set_coeff(i, c);
                    }
                    e.set_constant(constant);
                    Some((Constraint { expr: e, cmp }, h))
                })
                .collect();

            // Chernikov's superset rule: a derived constraint whose
            // ancestor set strictly contains another's is redundant.
            if sys.len() > 64 {
                let mut keep = vec![true; sys.len()];
                for i in 0..sys.len() {
                    if !keep[i] {
                        continue;
                    }
                    for j in 0..sys.len() {
                        if i == j || !keep[j] {
                            continue;
                        }
                        let (hi, hj) = (&sys[i].1, &sys[j].1);
                        if hj.len() < hi.len() && hj.is_subset(hi) {
                            keep[i] = false;
                            break;
                        }
                    }
                }
                let mut it = keep.iter();
                sys.retain(|_| *it.next().expect("aligned"));
            }

            // LP-based redundancy reduction when Fourier–Motzkin growth
            // outpaces the cheap filters (sound: only provably implied
            // constraints are dropped). The trigger is deliberately low:
            // with the warm-started incremental solver each implication
            // check is cheap, and reducing *early* keeps the quadratic
            // combination step small on every later round — on the audio
            // benchmarks a threshold of 150 more than halves end-to-end
            // projection time versus 300+.
            if sys.len() > LP_REDUCE_THRESHOLD {
                sys = lp_reduce_with_history(sys, threads);
            }
        }
        // Embed the compact-space result back into the original space.
        embed_space(
            self.nvars,
            &to_old,
            sys.into_iter().map(|(c, _)| c).collect(),
        )
    }

    /// Projects onto the first `k` variables: eliminates variables
    /// `k..nvars` and truncates the space to `k` dimensions.
    pub fn project_to_first(&self, k: usize) -> Polyhedron {
        self.project_to_first_threads(k, 1)
    }

    /// [`Self::project_to_first`] with up to `threads` worker threads for
    /// the redundancy-elimination inner loop; output is thread-count
    /// independent.
    pub fn project_to_first_threads(&self, k: usize, threads: usize) -> Polyhedron {
        assert!(k <= self.nvars);
        let elim: Vec<usize> = (k..self.nvars).collect();
        let reduced = self.eliminate_vars_threads(&elim, threads);
        let constraints = reduced
            .constraints
            .iter()
            .map(|c| {
                let mut e = LinExpr::zero(k);
                for i in 0..k {
                    e.set_coeff(i, c.expr.coeff(i).clone());
                }
                e.set_constant(c.expr.constant_term().clone());
                Constraint {
                    expr: e,
                    cmp: c.cmp,
                }
            })
            .collect();
        Polyhedron {
            nvars: k,
            constraints,
        }
    }

    /// Embeds into a larger space (new trailing coordinates unconstrained).
    pub fn extend_vars(&self, new_nvars: usize) -> Polyhedron {
        assert!(new_nvars >= self.nvars);
        Polyhedron {
            nvars: new_nvars,
            constraints: self
                .constraints
                .iter()
                .map(|c| Constraint {
                    expr: c.expr.extend_vars(new_nvars),
                    cmp: c.cmp,
                })
                .collect(),
        }
    }

    /// Exact emptiness test.
    ///
    /// Strict inequalities are handled with the ε-method: maximize a slack
    /// ε with every strict constraint relaxed to `expr ≥ ε`; the system is
    /// satisfiable iff the supremum is positive (or unbounded).
    pub fn is_empty(&self) -> bool {
        let t0 = std::time::Instant::now();
        let out = self.is_empty_inner();
        crate::counters::REGION_LP_MICROS.fetch_add(
            t0.elapsed().as_micros() as u64,
            std::sync::atomic::Ordering::Relaxed,
        );
        out
    }

    fn is_empty_inner(&self) -> bool {
        let eps = self.nvars;
        let nv = self.nvars + 1;
        let mut cs: Vec<Constraint> = Vec::with_capacity(self.constraints.len() + 1);
        let mut any_strict = false;
        for c in &self.constraints {
            match c.trivial_truth() {
                Some(true) => continue,
                Some(false) => return true,
                None => {}
            }
            let mut e = c.expr.extend_vars(nv);
            if c.cmp == Cmp::Gt {
                any_strict = true;
                e = e.plus_term(eps, Rational::from(-1));
            }
            cs.push(Constraint::ge0(e));
        }
        if !any_strict {
            return !crate::lp::closure_feasible(&cs);
        }
        // Bound ε so the LP stays bounded: 0 <= eps <= 1.
        cs.push(Constraint::ge0(LinExpr::var(nv, eps)));
        cs.push(Constraint::ge0(
            LinExpr::constant(nv, Rational::one()).plus_term(eps, Rational::from(-1)),
        ));
        match crate::lp::maximize(&LinExpr::var(nv, eps), &cs) {
            crate::lp::LpResult::Infeasible => true,
            crate::lp::LpResult::Unbounded => false,
            crate::lp::LpResult::Optimal(v) => !v.is_positive(),
        }
    }

    /// Removes constraints implied by the rest of the system (sound
    /// LP-based redundancy elimination). The result describes the same
    /// set with a near-minimal constraint system — essential after
    /// projections, whose raw Fourier–Motzkin output is highly redundant.
    ///
    /// Two passes: an incremental filter that only keeps constraints not
    /// already implied by the kept set (syntactic pre-filters, then a
    /// warm-started incremental LP — see `reduce.rs`), then a reverse
    /// sweep removing survivors made redundant by later additions.
    pub fn reduce_redundancy(&self) -> Polyhedron {
        self.reduce_redundancy_threads(1)
    }

    /// [`Self::reduce_redundancy`] with up to `threads` worker threads
    /// for the implication checks. The survivor set — and every work
    /// counter — is identical for every thread count, including 1; the
    /// thread count only changes how fast the same checks run.
    pub fn reduce_redundancy_threads(&self, threads: usize) -> Polyhedron {
        let cur = match self.pruned_counted() {
            Some(p) => p,
            None => return Polyhedron::empty(self.nvars),
        };
        // Prefer constraints with fewer variables first (cheaper and
        // likelier to be facets of simple regions).
        let mut ordered = cur.constraints;
        ordered.sort_by_key(|c| c.expr.support().count());
        let keep = crate::reduce::filter_implied(&ordered, threads);
        let mut kept: Vec<Constraint> = Vec::with_capacity(keep.len());
        let mut want = keep.into_iter().peekable();
        for (i, c) in ordered.into_iter().enumerate() {
            if want.peek() == Some(&i) {
                want.next();
                kept.push(c);
            }
        }
        // Reverse sweep.
        let mut i = 0;
        while i < kept.len() {
            let candidate = kept[i].clone();
            let rest: Vec<Constraint> = kept
                .iter()
                .enumerate()
                .filter(|(j, _)| *j != i)
                .map(|(_, c)| c.clone())
                .collect();
            if !rest.is_empty() && crate::lp::implied_by(&rest, &candidate) {
                kept.remove(i);
            } else {
                i += 1;
            }
        }
        let out = Polyhedron {
            nvars: self.nvars,
            constraints: kept,
        };
        if out.is_empty() {
            return Polyhedron::empty(self.nvars);
        }
        out
    }

    /// Finds a point inside the polyhedron (an interior point with respect
    /// to strict constraints whenever bounds leave room), or `None` if the
    /// polyhedron is empty.
    pub fn sample(&self) -> Option<Vec<Rational>> {
        // systems[k] has variables 0..(nvars - k) live.
        let mut systems: Vec<Polyhedron> = Vec::with_capacity(self.nvars + 1);
        systems.push(self.pruned()?);
        for v in (0..self.nvars).rev() {
            let next = systems.last()?.eliminate_var(v);
            // `eliminate_var` returns the canonical empty polyhedron when
            // it detects infeasibility.
            if next
                .constraints
                .iter()
                .any(|c| c.trivial_truth() == Some(false))
            {
                return None;
            }
            systems.push(next);
        }
        // Back-substitute: assign var j using the system in which vars 0..=j
        // are live (systems[nvars - 1 - j]).
        let mut point = vec![Rational::zero(); self.nvars];
        for j in 0..self.nvars {
            let system = &systems[self.nvars - 1 - j];
            let value = pick_value(system, j, &point)?;
            point[j] = value;
        }
        debug_assert!(
            self.contains(&point),
            "sampled point must satisfy all constraints"
        );
        Some(point)
    }

    /// Returns `true` if `other` contains every point of `self`
    /// (i.e. `self ⊆ other`), computed exactly via emptiness of
    /// `self ∩ ¬c` for each constraint `c` of `other`.
    pub fn subset_of(&self, other: &Polyhedron) -> bool {
        assert_eq!(self.nvars, other.nvars);
        other.constraints.iter().all(|c| {
            let mut escaped = self.clone();
            escaped.add(c.negated());
            escaped.is_empty()
        })
    }

    /// Formats with variable names supplied by `names`.
    pub fn display_with(&self, names: &dyn Fn(usize) -> String) -> String {
        let parts: Vec<String> = match self.pruned() {
            None => return "false".to_string(),
            Some(p) if p.constraints.is_empty() => return "true".to_string(),
            Some(p) => p
                .constraints
                .iter()
                .map(|c| c.display_with(names))
                .collect(),
        };
        let mut sorted = parts;
        sorted.sort();
        sorted.join(" && ")
    }
}

impl fmt::Display for Polyhedron {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = |i: usize| format!("x{i}");
        write!(f, "{}", self.display_with(&names))
    }
}

/// Sign-canonical view of one normalized `e >= 0` row: `e` negated when
/// its leading nonzero coefficient (falling back to the constant) is
/// negative, plus the sign that was stripped. The two halves of an
/// equality — `e >= 0` and `-e >= 0` — canonicalize to the same
/// expression with opposite `positive` flags, so equality detection
/// becomes a cached-hash bucket probe instead of negating and re-hashing
/// every row on every round.
struct SignCanon {
    expr: LinExpr,
    positive: bool,
    hash: u64,
}

fn sign_canon(c: &Constraint) -> Option<SignCanon> {
    use std::hash::{Hash, Hasher};
    if c.cmp != Cmp::Ge {
        return None;
    }
    let lead = c
        .expr
        .terms()
        .map(|(_, a)| a)
        .next()
        .or_else(|| (!c.expr.constant_term().is_zero()).then(|| c.expr.constant_term()));
    let positive = !lead.is_some_and(|a| a.is_negative());
    let expr = if positive {
        c.expr.clone()
    } else {
        c.expr.scale(&Rational::from(-1))
    };
    let mut h = std::collections::hash_map::DefaultHasher::new();
    expr.hash(&mut h);
    Some(SignCanon {
        expr,
        positive,
        hash: h.finish(),
    })
}

/// Phase-1 elimination driver: repeatedly finds a variable from
/// `remaining` pinned by an equality (a pair of opposite non-strict
/// rows, found through the cached [`SignCanon`] index) and substitutes
/// it away everywhere, until no equality pins any remaining variable.
///
/// Equality substitution is exact and — unlike Fourier–Motzkin — never
/// grows the constraint system, so [`Polyhedron::eliminate_vars`]
/// prefers it. The minimum-cut optimality systems of Lemma 1 are
/// dominated by equalities (saturated arcs, zero arcs, conservation),
/// making this the difference between milliseconds and blow-up. The
/// batch driver normalizes and canonicalizes each row once and refreshes
/// only the rows a substitution actually touches, so a run of `k`
/// substitutions over `n` rows costs `O(n + k·touched)` row
/// canonicalizations, not `O(k·n)`.
///
/// Returns the number of variables substituted away (removing them from
/// `remaining`), or `Err(())` when a substitution exposes a trivially
/// false row (the polyhedron is empty).
fn substitute_equalities(cur: &mut Polyhedron, remaining: &mut Vec<usize>) -> Result<usize, ()> {
    use std::sync::atomic::Ordering::Relaxed;
    let mut count = 0usize;
    let mut normalized: Vec<Constraint> = cur.constraints.iter().map(|c| c.normalize()).collect();
    let mut cache: Vec<Option<SignCanon>> = normalized.iter().map(sign_canon).collect();
    // Hash buckets over the canonical expressions; collisions are
    // resolved by comparing the cached expressions themselves.
    let mut buckets: HashMap<u64, Vec<usize>> = HashMap::new();
    for (i, c) in cache.iter().enumerate() {
        if let Some(c) = c {
            buckets.entry(c.hash).or_default().push(i);
        }
    }
    while !remaining.is_empty() {
        let mut found: Option<(usize, usize)> = None;
        for ci in 0..normalized.len() {
            let Some(c) = &cache[ci] else { continue };
            let has_partner = buckets.get(&c.hash).is_some_and(|bucket| {
                bucket.iter().any(|&rj| {
                    rj != ci
                        && cache[rj]
                            .as_ref()
                            .is_some_and(|r| r.positive != c.positive && r.expr == c.expr)
                })
            });
            if !has_partner {
                continue;
            }
            // `normalized[ci].expr == 0` holds. Pick the first variable
            // from `remaining` with a non-zero coefficient (if any).
            let eq = &normalized[ci].expr;
            if let Some(pos) = remaining.iter().position(|&v| !eq.coeff(v).is_zero()) {
                found = Some((ci, pos));
                break;
            }
        }
        let Some((ci, pos)) = found else {
            break;
        };
        // Substitute `v = -(rest)/a` everywhere, refreshing the
        // normalized form and canonical index of only the rows that
        // actually mention `v`.
        let v = remaining[pos];
        let eq = &normalized[ci].expr;
        let a = eq.coeff(v);
        let mut rest = eq.clone();
        rest.set_coeff(v, Rational::zero());
        let scale = -(&a.recip());
        let replacement = rest.scale(&scale);
        for (r, (cons, norm)) in cur
            .constraints
            .iter_mut()
            .zip(normalized.iter_mut())
            .enumerate()
        {
            let coeff = cons.expr.coeff(v).clone();
            if coeff.is_zero() {
                continue;
            }
            cons.expr.set_coeff(v, Rational::zero());
            cons.expr = cons.expr.add(&replacement.scale(&coeff));
            *norm = cons.normalize();
            if let Some(false) = norm.trivial_truth() {
                return Err(());
            }
            if let Some(old) = cache[r].take() {
                if let Some(b) = buckets.get_mut(&old.hash) {
                    b.retain(|&x| x != r);
                    if b.is_empty() {
                        buckets.remove(&old.hash);
                    }
                }
            }
            cache[r] = sign_canon(norm);
            if let Some(c) = &cache[r] {
                buckets.entry(c.hash).or_default().push(r);
            }
        }
        remaining.remove(pos);
        count += 1;
        crate::counters::FM_VARS_ELIMINATED.fetch_add(1, Relaxed);
    }
    Ok(count)
}

/// Remaps the live variables of `cur` (the union of all constraint
/// supports plus the still-to-eliminate set) onto a dense prefix
/// `0..m`. Returns the compacted polyhedron, the remapped elimination
/// list, and the new→old index table for [`embed_space`]. A pure index
/// permutation: the arithmetic — and therefore the output and every
/// counter — is unchanged.
fn compact_space(cur: Polyhedron, remaining: Vec<usize>) -> (Polyhedron, Vec<usize>, Vec<usize>) {
    let n = cur.nvars;
    let mut live = vec![false; n];
    for c in &cur.constraints {
        for v in c.expr.support() {
            live[v] = true;
        }
    }
    for &v in &remaining {
        live[v] = true;
    }
    let to_old: Vec<usize> = (0..n).filter(|&v| live[v]).collect();
    let mut to_new = vec![usize::MAX; n];
    for (new, &old) in to_old.iter().enumerate() {
        to_new[old] = new;
    }
    let m = to_old.len();
    let constraints = cur
        .constraints
        .iter()
        .map(|c| {
            let mut e = LinExpr::zero(m);
            for (old, a) in c.expr.terms() {
                e.set_coeff(to_new[old], a.clone());
            }
            e.set_constant(c.expr.constant_term().clone());
            Constraint {
                expr: e,
                cmp: c.cmp,
            }
        })
        .collect();
    let remaining = remaining.iter().map(|&v| to_new[v]).collect();
    (
        Polyhedron {
            nvars: m,
            constraints,
        },
        remaining,
        to_old,
    )
}

/// Inverse of [`compact_space`]: embeds compact-space constraints back
/// into the `nvars`-dimensional original space via the new→old table.
fn embed_space(nvars: usize, to_old: &[usize], constraints: Vec<Constraint>) -> Polyhedron {
    Polyhedron {
        nvars,
        constraints: constraints
            .into_iter()
            .map(|c| {
                let mut e = LinExpr::zero(nvars);
                for (new, a) in c.expr.terms() {
                    e.set_coeff(to_old[new], a.clone());
                }
                e.set_constant(c.expr.constant_term().clone());
                Constraint {
                    expr: e,
                    cmp: c.cmp,
                }
            })
            .collect(),
    }
}

/// Incremental LP-based redundancy filter preserving derivation
/// histories: keeps a constraint only when the already-kept set does not
/// imply it. The checks run on the warm-started incremental solver
/// across up to `threads` workers; output is thread-count independent.
fn lp_reduce_with_history(
    sys: Vec<(Constraint, std::collections::BTreeSet<u32>)>,
    threads: usize,
) -> Vec<(Constraint, std::collections::BTreeSet<u32>)> {
    let mut ordered = sys;
    ordered.sort_by_key(|(c, _)| c.expr.support().count());
    let cs: Vec<Constraint> = ordered.iter().map(|(c, _)| c.clone()).collect();
    let keep = crate::reduce::filter_implied(&cs, threads);
    let mut kept: Vec<(Constraint, std::collections::BTreeSet<u32>)> =
        Vec::with_capacity(keep.len());
    let mut want = keep.into_iter().peekable();
    for (i, ch) in ordered.into_iter().enumerate() {
        if want.peek() == Some(&i) {
            want.next();
            kept.push(ch);
        }
    }
    kept
}

/// Canonical (gcd-1 integer) variable-coefficient vector, plus the
/// correspondingly scaled constant and the comparison kind.
fn var_coeff_canonical(c: &Constraint) -> (Vec<Rational>, Rational, Cmp) {
    use crate::bigint::BigInt;
    let n = c.expr.nvars();
    // Constraints come in normalized (integer, overall gcd 1); rescale by
    // the gcd of the *variable* coefficients so constants are comparable.
    let mut gcd = BigInt::zero();
    for i in 0..n {
        gcd = gcd.gcd(c.expr.coeff(i).numer());
    }
    if gcd.is_zero() {
        // Constant constraint: callers filter these out beforehand.
        return (
            vec![Rational::zero(); n],
            c.expr.constant_term().clone(),
            c.cmp,
        );
    }
    let scale = Rational::from_bigints(BigInt::one(), gcd);
    let key: Vec<Rational> = (0..n).map(|i| c.expr.coeff(i) * &scale).collect();
    (key, c.expr.constant_term() * &scale, c.cmp)
}

/// Chooses a value for variable `var` in `system`, where all variables with
/// smaller indices already have values in `point` and all variables with
/// larger indices have been eliminated from `system`.
fn pick_value(system: &Polyhedron, var: usize, point: &[Rational]) -> Option<Rational> {
    let mut lower: Option<(Rational, bool)> = None; // (bound, strict)
    let mut upper: Option<(Rational, bool)> = None;
    for c in system.constraints() {
        let a = c.expr.coeff(var).clone();
        if a.is_zero() {
            continue; // holds by construction of the elimination cascade
        }
        // Substitute already-fixed variables (unassigned slots of `point`
        // hold zero and have zero coefficients in this cascade stage).
        let mut rest = c.expr.clone();
        rest.set_coeff(var, Rational::zero());
        let val = rest.eval(point);
        let bound = &(-&val) / &a;
        let strict = c.cmp == Cmp::Gt;
        if a.is_positive() {
            // x >= bound
            match &lower {
                Some((b, s)) if bound < *b || (bound == *b && (*s || !strict)) => {}
                _ => lower = Some((bound, strict)),
            }
        } else {
            // x <= bound
            match &upper {
                Some((b, s)) if bound > *b || (bound == *b && (*s || !strict)) => {}
                _ => upper = Some((bound, strict)),
            }
        }
    }
    match (lower, upper) {
        (None, None) => Some(Rational::zero()),
        (Some((lo, strict)), None) => Some(if strict { &lo + &Rational::one() } else { lo }),
        (None, Some((hi, strict))) => Some(if strict { &hi - &Rational::one() } else { hi }),
        (Some((lo, ls)), Some((hi, us))) => {
            if lo < hi {
                Some(Rational::midpoint(&lo, &hi))
            } else if lo == hi && !ls && !us {
                Some(lo)
            } else {
                // Infeasible interval: only reachable if the elimination
                // cascade failed, which would be a bug.
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    /// `lhs . x + c >= 0` helper.
    fn ge(nvars: usize, coeffs: &[(usize, i64)], c: i64) -> Constraint {
        let mut e = LinExpr::constant(nvars, r(c));
        for &(v, k) in coeffs {
            e = e.plus_term(v, r(k));
        }
        Constraint::ge0(e)
    }

    fn gt(nvars: usize, coeffs: &[(usize, i64)], c: i64) -> Constraint {
        let mut e = LinExpr::constant(nvars, r(c));
        for &(v, k) in coeffs {
            e = e.plus_term(v, r(k));
        }
        Constraint::gt0(e)
    }

    #[test]
    fn universe_and_empty() {
        assert!(!Polyhedron::universe(3).is_empty());
        assert!(Polyhedron::empty(3).is_empty());
    }

    #[test]
    fn box_sampling() {
        // 1 <= x <= 3, 2 <= y <= 2
        let p = Polyhedron::from_constraints(
            2,
            vec![
                ge(2, &[(0, 1)], -1),
                ge(2, &[(0, -1)], 3),
                ge(2, &[(1, 1)], -2),
                ge(2, &[(1, -1)], 2),
            ],
        );
        let pt = p.sample().unwrap();
        assert!(p.contains(&pt));
        assert_eq!(pt[1], r(2));
    }

    #[test]
    fn infeasible_box() {
        // x >= 3 && x <= 1
        let p = Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], -3), ge(1, &[(0, -1)], 1)]);
        assert!(p.is_empty());
    }

    #[test]
    fn strict_boundary_excluded() {
        // x > 1 && x <= 1 is empty; x >= 1 && x <= 1 is the point {1}.
        let strict =
            Polyhedron::from_constraints(1, vec![gt(1, &[(0, 1)], -1), ge(1, &[(0, -1)], 1)]);
        assert!(strict.is_empty());
        let closed =
            Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], -1), ge(1, &[(0, -1)], 1)]);
        assert_eq!(closed.sample().unwrap(), vec![r(1)]);
    }

    #[test]
    fn elimination_projects_shadow() {
        // Triangle x >= 0, y >= 0, x + y <= 4. Projecting out y gives 0 <= x <= 4.
        let p = Polyhedron::from_constraints(
            2,
            vec![
                ge(2, &[(0, 1)], 0),
                ge(2, &[(1, 1)], 0),
                ge(2, &[(0, -1), (1, -1)], 4),
            ],
        );
        let q = p.eliminate_var(1);
        assert!(q.contains(&[r(0), r(999)]));
        assert!(q.contains(&[r(4), r(-5)]));
        assert!(!q.contains(&[r(5), r(0)]));
        assert!(!q.contains(&[r(-1), r(0)]));
    }

    #[test]
    fn project_to_first_truncates() {
        let p = Polyhedron::from_constraints(
            3,
            vec![
                ge(3, &[(0, 1), (2, 1)], 0),
                ge(3, &[(2, 1)], -1),
                ge(3, &[(2, -1)], 2),
            ],
        );
        // x0 + x2 >= 0 with 1 <= x2 <= 2  =>  x0 >= -2
        let q = p.project_to_first(1);
        assert_eq!(q.nvars(), 1);
        assert!(q.contains(&[r(-2)]));
        assert!(!q.contains(&[r(-3)]));
    }

    #[test]
    fn subset_relation() {
        let big = Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], 0)]); // x >= 0
        let small = Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], -5)]); // x >= 5
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
    }

    #[test]
    fn unbounded_sampling() {
        // x >= 10 (unbounded above)
        let p = Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], -10)]);
        let pt = p.sample().unwrap();
        assert!(pt[0] >= r(10));
        // x > 10 strict
        let p = Polyhedron::from_constraints(1, vec![gt(1, &[(0, 1)], -10)]);
        let pt = p.sample().unwrap();
        assert!(pt[0] > r(10));
    }

    #[test]
    fn redundant_constraints_pruned() {
        let p = Polyhedron::from_constraints(
            1,
            vec![
                ge(1, &[(0, 1)], 0),
                ge(1, &[(0, 2)], 0),
                ge(1, &[(0, 1)], -3),
            ],
        );
        let pruned = p.pruned().unwrap();
        // x >= 0, x >= 0 (scaled) and x >= 3 collapse to just x >= 3.
        assert_eq!(pruned.constraints().len(), 1);
    }

    #[test]
    fn display_readable() {
        let p = Polyhedron::from_constraints(2, vec![ge(2, &[(0, 1), (1, -1)], 0)]);
        assert_eq!(p.to_string(), "x0 - x1 >= 0");
        assert_eq!(Polyhedron::universe(1).to_string(), "true");
        assert_eq!(Polyhedron::empty(1).to_string(), "false");
    }
}

#[cfg(test)]
mod reduction_tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn ge(nvars: usize, coeffs: &[(usize, i64)], c: i64) -> Constraint {
        let mut e = LinExpr::constant(nvars, r(c));
        for &(v, k) in coeffs {
            e = e.plus_term(v, r(k));
        }
        Constraint::ge0(e)
    }

    #[test]
    fn redundant_halfspaces_dropped() {
        // x >= 0, x >= -5 (redundant), x + 1 >= 0 (redundant).
        let p = Polyhedron::from_constraints(
            1,
            vec![
                ge(1, &[(0, 1)], 0),
                ge(1, &[(0, 1)], 5),
                ge(1, &[(0, 1)], 1),
            ],
        );
        let q = p.reduce_redundancy();
        assert_eq!(q.constraints().len(), 1);
        assert!(q.contains(&[r(0)]));
        assert!(!q.contains(&[r(-1)]));
    }

    #[test]
    fn reduction_preserves_set() {
        // A 2D wedge with a stack of redundant supports.
        let mut cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(0, -1), (1, -1)], 10),
        ];
        for k in 1..8 {
            cs.push(ge(2, &[(0, -1), (1, -1)], 10 + k)); // weaker copies
            cs.push(ge(2, &[(0, 1), (1, 1)], k)); // implied by x,y >= 0
        }
        let p = Polyhedron::from_constraints(2, cs);
        let q = p.reduce_redundancy();
        assert!(q.constraints().len() <= 3);
        for x in -2i64..=12 {
            for y in -2i64..=12 {
                let pt = [r(x), r(y)];
                assert_eq!(p.contains(&pt), q.contains(&pt), "({x},{y})");
            }
        }
    }

    #[test]
    fn equality_substitution_projects_exactly() {
        // x = 2y (equality pair), x + y <= 9, both nonneg.
        let eq = LinExpr::var(2, 0).plus_term(1, r(-2));
        let p = Polyhedron::from_constraints(
            2,
            vec![
                Constraint::ge0(eq.clone()),
                Constraint::ge0(eq.scale(&r(-1))),
                ge(2, &[(0, -1), (1, -1)], 9),
                ge(2, &[(0, 1)], 0),
                ge(2, &[(1, 1)], 0),
            ],
        );
        // Eliminate x: the shadow on y is 0 <= y <= 3.
        let q = p.eliminate_var(0);
        assert!(q.contains(&[r(99), r(3)]));
        assert!(!q.contains(&[r(0), r(4)]));
        // eliminate_vars (with the equality fast path) agrees.
        let q2 = p.eliminate_vars(&[0]);
        for y in 0..6i64 {
            assert_eq!(
                q.contains(&[r(0), r(y)]),
                q2.contains(&[r(0), r(y)]),
                "y={y}"
            );
        }
    }

    #[test]
    fn empty_reduction_is_empty() {
        let p = Polyhedron::from_constraints(1, vec![ge(1, &[(0, 1)], -5), ge(1, &[(0, -1)], 2)]);
        let q = p.reduce_redundancy();
        assert!(q.is_empty());
    }
}
