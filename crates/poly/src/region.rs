//! Finite unions of convex polyhedra.
//!
//! Algorithm 2 of the paper maintains the set `X` of still-uncovered
//! parameter values. `X` starts as one polyhedron (the declared parameter
//! ranges) and shrinks by subtracting each newly found optimality region
//! `H`; the difference of two polyhedra is in general non-convex, so `X`
//! becomes a union of (disjoint) polyhedra — a [`Region`].

use crate::linear::Constraint;
use crate::polyhedron::Polyhedron;
use crate::rational::Rational;
use std::fmt;

/// A finite union of convex polyhedra in a common space.
///
/// # Examples
///
/// ```
/// use offload_poly::{Region, Polyhedron, Constraint, LinExpr, Rational};
///
/// // Start from x >= 0 and subtract 2 <= x <= 3: two pieces remain.
/// let x_ge = |c: i64| {
///     Constraint::ge0(LinExpr::var(1, 0).plus_constant(Rational::from(-c)))
/// };
/// let x_le = |c: i64| {
///     Constraint::ge0(LinExpr::constant(1, Rational::from(c))
///         .plus_term(0, Rational::from(-1)))
/// };
/// let start = Region::from(Polyhedron::from_constraints(1, vec![x_ge(0)]));
/// let band = Polyhedron::from_constraints(1, vec![x_ge(2), x_le(3)]);
/// let rest = start.subtract(&band);
/// assert!(rest.contains(&[Rational::from(1)]));
/// assert!(!rest.contains(&[Rational::from(2)]));
/// assert!(rest.contains(&[Rational::from(4)]));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Region {
    nvars: usize,
    pieces: Vec<Polyhedron>,
}

impl Region {
    /// The empty region in `nvars` dimensions.
    pub fn empty(nvars: usize) -> Self {
        Region {
            nvars,
            pieces: Vec::new(),
        }
    }

    /// The full space in `nvars` dimensions.
    pub fn universe(nvars: usize) -> Self {
        Region {
            nvars,
            pieces: vec![Polyhedron::universe(nvars)],
        }
    }

    /// Number of dimensions.
    pub fn nvars(&self) -> usize {
        self.nvars
    }

    /// The convex pieces of the union (not guaranteed minimal).
    pub fn pieces(&self) -> &[Polyhedron] {
        &self.pieces
    }

    /// Adds one more convex piece to the union.
    ///
    /// # Panics
    ///
    /// Panics if the piece's dimension differs.
    pub fn push(&mut self, piece: Polyhedron) {
        assert_eq!(piece.nvars(), self.nvars, "region dimension mismatch");
        if !piece.is_empty() {
            self.pieces.push(piece);
        }
    }

    /// Returns `true` if no piece contains any point.
    pub fn is_empty(&self) -> bool {
        self.pieces.iter().all(Polyhedron::is_empty)
    }

    /// Returns `true` if any piece contains the point.
    pub fn contains(&self, point: &[Rational]) -> bool {
        self.pieces.iter().any(|p| p.contains(point))
    }

    /// Samples a point from the first non-empty piece.
    pub fn sample(&self) -> Option<Vec<Rational>> {
        self.pieces.iter().find_map(Polyhedron::sample)
    }

    /// The set difference `self \ other`.
    ///
    /// Each convex piece `P` is split against `other`'s constraints with the
    /// classic disjoint decomposition: for constraints `c1..cn` of `other`,
    /// the pieces of `P \ other` are `P ∩ ¬c1`, `P ∩ c1 ∩ ¬c2`, …, which are
    /// pairwise disjoint by construction.
    pub fn subtract(&self, other: &Polyhedron) -> Region {
        assert_eq!(other.nvars(), self.nvars, "region dimension mismatch");
        let mut out = Region::empty(self.nvars);
        for piece in &self.pieces {
            let mut prefix: Vec<Constraint> = Vec::new();
            for c in other.constraints() {
                let mut split = piece.clone();
                for p in &prefix {
                    split.add(p.clone());
                }
                split.add(c.negated());
                if !split.is_empty() {
                    out.pieces.push(split);
                }
                prefix.push(c.clone());
            }
        }
        out
    }

    /// The set difference `self \ other` for a union subtrahend.
    pub fn subtract_region(&self, other: &Region) -> Region {
        let mut cur = self.clone();
        for piece in &other.pieces {
            cur = cur.subtract(piece);
        }
        cur
    }

    /// Intersects every piece with a polyhedron.
    pub fn intersect(&self, other: &Polyhedron) -> Region {
        assert_eq!(other.nvars(), self.nvars, "region dimension mismatch");
        let mut out = Region::empty(self.nvars);
        for piece in &self.pieces {
            let p = piece.intersect(other);
            if !p.is_empty() {
                out.pieces.push(p);
            }
        }
        out
    }

    /// Returns `true` if every point of `self` lies in `other`
    /// (`self ⊆ other`).
    pub fn subset_of(&self, other: &Region) -> bool {
        self.subtract_region(other).is_empty()
    }

    /// Formats with variable names supplied by `names`.
    pub fn display_with(&self, names: &dyn Fn(usize) -> String) -> String {
        let live: Vec<String> = self
            .pieces
            .iter()
            .filter(|p| !p.is_empty())
            .map(|p| p.display_with(names))
            .collect();
        if live.is_empty() {
            "false".to_string()
        } else if live.len() == 1 {
            live.into_iter().next().expect("one element")
        } else {
            live.into_iter()
                .map(|s| format!("({s})"))
                .collect::<Vec<_>>()
                .join(" || ")
        }
    }
}

impl From<Polyhedron> for Region {
    fn from(p: Polyhedron) -> Self {
        let mut r = Region::empty(p.nvars());
        r.push(p);
        r
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names = |i: usize| format!("x{i}");
        write!(f, "{}", self.display_with(&names))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn x_ge(c: i64) -> Constraint {
        Constraint::ge0(LinExpr::var(1, 0).plus_constant(r(-c)))
    }

    fn x_le(c: i64) -> Constraint {
        Constraint::ge0(LinExpr::constant(1, r(c)).plus_term(0, r(-1)))
    }

    #[test]
    fn subtract_splits_interval() {
        let start = Region::from(Polyhedron::from_constraints(1, vec![x_ge(0), x_le(10)]));
        let mid = Polyhedron::from_constraints(1, vec![x_ge(3), x_le(6)]);
        let rest = start.subtract(&mid);
        for v in [0i64, 2, 7, 10] {
            assert!(rest.contains(&[r(v)]), "{v} should remain");
        }
        for v in [3i64, 5, 6] {
            assert!(!rest.contains(&[r(v)]), "{v} should be removed");
        }
    }

    #[test]
    fn subtract_pieces_are_disjoint() {
        let start = Region::from(Polyhedron::universe(1));
        let band = Polyhedron::from_constraints(1, vec![x_ge(2), x_le(3)]);
        let rest = start.subtract(&band);
        // Every remaining point lies in exactly one piece.
        for v in [-5i64, 0, 1, 4, 100] {
            let hits = rest.pieces().iter().filter(|p| p.contains(&[r(v)])).count();
            assert_eq!(hits, 1, "point {v} must lie in exactly one piece");
        }
    }

    #[test]
    fn subtract_everything_empties() {
        let start = Region::from(Polyhedron::from_constraints(1, vec![x_ge(0), x_le(5)]));
        let all = Polyhedron::from_constraints(1, vec![x_ge(-1), x_le(6)]);
        assert!(start.subtract(&all).is_empty());
    }

    #[test]
    fn sample_avoids_subtracted_zone() {
        let start = Region::from(Polyhedron::from_constraints(1, vec![x_ge(0), x_le(10)]));
        let left = Polyhedron::from_constraints(1, vec![x_le(7)]);
        let rest = start.subtract(&left);
        let p = rest.sample().unwrap();
        assert!(p[0] > r(7) && p[0] <= r(10));
    }

    #[test]
    fn subset_relation() {
        let small = Region::from(Polyhedron::from_constraints(1, vec![x_ge(2), x_le(3)]));
        let big = Region::from(Polyhedron::from_constraints(1, vec![x_ge(0), x_le(10)]));
        assert!(small.subset_of(&big));
        assert!(!big.subset_of(&small));
    }

    #[test]
    fn union_of_pieces() {
        let mut u = Region::empty(1);
        u.push(Polyhedron::from_constraints(1, vec![x_ge(0), x_le(1)]));
        u.push(Polyhedron::from_constraints(1, vec![x_ge(5), x_le(6)]));
        assert!(u.contains(&[r(0)]));
        assert!(u.contains(&[r(6)]));
        assert!(!u.contains(&[r(3)]));
        assert!(!u.is_empty());
    }

    #[test]
    fn empty_pieces_dropped_on_push() {
        let mut u = Region::empty(1);
        u.push(Polyhedron::empty(1));
        assert!(u.pieces().is_empty());
    }
}
