//! Warm-started incremental redundancy elimination — the hot inner loop
//! of every polyhedral projection.
//!
//! [`filter_implied`] reproduces, constraint for constraint, the result
//! of the classic sequential filter ("keep a candidate iff the already
//! kept set does not imply it", checked with an exact LP), but gets there
//! very differently:
//!
//! 1. **Pre-filter ladder.** Syntactically identical constraints and
//!    weaker parallel half-spaces never reach this module (the canonical
//!    dedup / dominance sweep runs in `polyhedron.rs` and is counted
//!    there). Here, *interval propagation* maintains the bounding box
//!    implied by the kept single-variable constraints; any candidate
//!    whose infimum over that box is already non-negative is implied by
//!    transitivity and skips the LP entirely. Symmetrically, a bounded
//!    ring of *witness points* — vertices of the kept region recorded
//!    after each push — disproves implication without an LP: a candidate
//!    whose expression is negative at any feasible point of the kept set
//!    has a negative minimum there, full stop.
//!
//! 2. **Warm-started incremental LP.** One [`IncLp`] instance lives for
//!    the whole call. Kept constraints are *pushed* one at a time — the
//!    new row enters with its own slack basic, and a handful of
//!    dual-simplex pivots (Bland's rule, provably terminating) restore
//!    primal feasibility from the previous basis. An implication check
//!    clones the current basis and runs primal phase-2 only; there is no
//!    phase-1 and no tableau rebuilt from scratch.
//!
//! 3. **Deterministic intra-call parallelism.** Candidates are walked in
//!    a *fixed* block schedule (independent of the thread count). Each
//!    block's checks run against the basis frozen at the block start —
//!    across as many worker threads as the caller granted — and a
//!    sequential integration pass then confirms survivors against the
//!    live basis. A candidate implied by the frozen (smaller) kept set is
//!    implied by every later kept set, so a parallel "implied" verdict is
//!    final; a "not implied" verdict is re-validated sequentially before
//!    the candidate is accepted. The survivor set — and every counter —
//!    is therefore identical for every thread count, including 1.

use crate::linear::{Cmp, Constraint};
use crate::rational::Rational;
use std::sync::atomic::Ordering::Relaxed;
use std::sync::Mutex;
use std::time::Instant;

/// Upper bound on a block of candidate checks that run against one
/// frozen basis. Early blocks are small (survivors cluster at the front,
/// and each survivor in a block forces a sequential re-check), growing
/// geometrically to this cap once drops dominate.
const MAX_BLOCK: usize = 64;

/// Minimum block length worth spawning scoped worker threads for.
const PAR_THRESHOLD: usize = 4;

/// How many witness vertices the incremental LP remembers. Each kept
/// constraint's post-push vertex lands here; older vertices age out.
const WITNESS_CAP: usize = 8;

/// Consecutive degenerate (zero-progress) pivots tolerated under
/// Dantzig's rule before a phase-2 run switches to Bland's rule, whose
/// anti-cycling guarantee ensures termination.
const STALL_LIMIT: usize = 24;

/// The fixed candidate block schedule for `n` candidates: 1, 2, 4, …,
/// [`MAX_BLOCK`], then [`MAX_BLOCK`] repeated. Never depends on the
/// thread count — the schedule decides which basis each check runs
/// against, so it must be part of the deterministic algorithm, not of
/// the execution strategy.
fn block_sizes(n: usize) -> Vec<usize> {
    let mut out = Vec::new();
    let mut covered = 0usize;
    let mut size = 1usize;
    while covered < n {
        let b = size.min(n - covered);
        out.push(b);
        covered += b;
        if size < MAX_BLOCK {
            size *= 2;
        }
    }
    out
}

/// The bounding box implied by the kept single-variable constraints
/// (closure semantics — strictness is ignored, exactly as the LP relaxes
/// strict inequalities to their closures).
struct IntervalBox {
    lo: Vec<Option<Rational>>,
    hi: Vec<Option<Rational>>,
    /// Some kept pair `x >= a`, `x <= b` with `a > b`: the closure of the
    /// kept set is empty and every candidate is implied.
    empty: bool,
}

impl IntervalBox {
    fn new(nvars: usize) -> IntervalBox {
        IntervalBox {
            lo: vec![None; nvars],
            hi: vec![None; nvars],
            empty: false,
        }
    }

    /// Folds a kept constraint into the box (only single-variable
    /// constraints contribute).
    fn absorb(&mut self, c: &Constraint) {
        let mut support = c.expr.support();
        let (Some(v), None) = (support.next(), support.next()) else {
            return;
        };
        let a = c.expr.coeff(v);
        let bound = &(-c.expr.constant_term()) / a;
        if a.is_positive() {
            // x >= bound.
            if self
                .lo
                .get(v)
                .and_then(|b| b.as_ref())
                .is_none_or(|b| bound > *b)
            {
                self.lo[v] = Some(bound);
            }
        } else if self
            .hi
            .get(v)
            .and_then(|b| b.as_ref())
            .is_none_or(|b| bound < *b)
        {
            // x <= bound.
            self.hi[v] = Some(bound);
        }
        if let (Some(lo), Some(hi)) = (&self.lo[v], &self.hi[v]) {
            if lo > hi {
                self.empty = true;
            }
        }
    }

    /// Sound implication test by interval arithmetic: the infimum of the
    /// candidate's expression over the box bounds its LP minimum over the
    /// kept set from below, so a non-negative (strict: positive) infimum
    /// proves the exact LP would answer "implied" too. Restricted to
    /// candidates with ≥ 2 support variables — single-variable candidates
    /// are the box's own inputs and are already minimal after the
    /// syntactic dominance sweep.
    fn implies(&self, c: &Constraint) -> bool {
        if self.empty {
            return true;
        }
        if c.expr.support().take(2).count() < 2 {
            return false;
        }
        let mut inf = c.expr.constant_term().clone();
        for (v, a) in c.expr.terms() {
            let bound = if a.is_positive() {
                &self.lo[v]
            } else {
                &self.hi[v]
            };
            match bound {
                Some(b) => inf += &(a * b),
                None => return false, // unbounded direction: inf = -∞
            }
        }
        match c.cmp {
            Cmp::Ge => !inf.is_negative(),
            Cmp::Gt => inf.is_positive(),
        }
    }
}

/// The warm-started incremental LP over the kept constraint set.
///
/// Standard-form tableau in the same column convention as `lp.rs`: each
/// free variable splits into `x⁺ − x⁻` (columns `0..n` and `n..2n`), and
/// the `i`-th pushed constraint `expr ≥ 0` becomes the row
/// `Σ(−a_j)(x⁺_j − x⁻_j) + s_i = c_i` with slack column `2n + i`. The
/// basis is kept primal-feasible at all times, so implication checks are
/// phase-2 only.
struct IncLp {
    n: usize,
    /// Reserved slack columns (row stride = `2n + slack_cap`); doubled on
    /// demand as constraints are pushed. Kept close to the *kept* row
    /// count — not the candidate count — because every implication check
    /// that pivots copies the tableau, and clone cost is `rows × stride`.
    slack_cap: usize,
    rows: usize,
    tab: Vec<Rational>,
    b: Vec<Rational>,
    basis: Vec<usize>,
    /// The closure of the kept set is empty; every candidate is implied.
    infeasible: bool,
    /// Recently visited vertices of the kept region (original variable
    /// space), used to disprove implication without running the LP.
    points: Vec<Vec<Rational>>,
}

/// Per-check scratch: a disposable copy of the basis state plus the
/// reduced-cost row. `clone_from` keeps the allocations alive across
/// checks, so steady-state checking does not allocate.
#[derive(Default, Clone)]
struct Work {
    tab: Vec<Rational>,
    b: Vec<Rational>,
    basis: Vec<usize>,
    red: Vec<Rational>,
    nz: Vec<usize>,
    prow: Vec<Rational>,
}

/// Outcome of one phase-2 run.
enum Phase {
    Optimal(Rational),
    Unbounded,
}

impl IncLp {
    fn new(nvars: usize, capacity_hint: usize) -> IncLp {
        IncLp {
            n: nvars,
            slack_cap: capacity_hint.clamp(1, 32),
            rows: 0,
            tab: Vec::new(),
            b: Vec::new(),
            basis: Vec::new(),
            infeasible: false,
            points: Vec::new(),
        }
    }

    /// Row stride (dead columns beyond `2n + rows` are reserved slack
    /// slots for future pushes).
    fn stride(&self) -> usize {
        2 * self.n + self.slack_cap
    }

    /// Active column count.
    fn width(&self) -> usize {
        2 * self.n + self.rows
    }

    /// Doubles the reserved slack capacity, re-laying the tableau out at
    /// the wider stride. Slack column *indices* (`2n + row`) are below
    /// the old capacity bound, so basis entries stay valid verbatim.
    fn grow(&mut self) {
        let old_stride = self.stride();
        self.slack_cap *= 2;
        let new_stride = self.stride();
        let mut tab = vec![Rational::zero(); self.rows * new_stride];
        for i in 0..self.rows {
            for j in 0..old_stride {
                let v = &mut self.tab[i * old_stride + j];
                if !v.is_zero() {
                    tab[i * new_stride + j] = std::mem::take(v);
                }
            }
        }
        self.tab = tab;
    }

    /// The basic solution of the current tableau as a point in the
    /// original `n`-dimensional space (`x = x⁺ − x⁻`, non-basic columns
    /// zero). Always a feasible point of the kept closure.
    fn basic_point(&self) -> Vec<Rational> {
        let mut p = vec![Rational::zero(); self.n];
        for i in 0..self.rows {
            let col = self.basis[i];
            if col < self.n {
                p[col] += &self.b[i];
            } else if col < 2 * self.n {
                p[col - self.n] -= &self.b[i];
            }
        }
        p
    }

    /// Records the current vertex in the witness ring (oldest out).
    fn remember_point(&mut self) {
        if self.infeasible {
            return;
        }
        if self.points.len() == WITNESS_CAP {
            self.points.remove(0);
        }
        self.points.push(self.basic_point());
    }

    /// Sound disproof of implication: the candidate's expression is
    /// negative (strict: non-positive) at a known feasible point of the
    /// kept closure, so its exact minimum there is too.
    fn witness_rejects(&self, c: &Constraint) -> bool {
        self.points.iter().any(|p| match c.cmp {
            Cmp::Ge => eval_at(c, p).is_negative(),
            Cmp::Gt => !eval_at(c, p).is_positive(),
        })
    }

    /// Checks whether the kept set implies `c` (minimum of `c.expr` over
    /// the kept closure is non-negative / positive): witness points
    /// first, then warm-started primal phase-2 from the current feasible
    /// basis on a scratch copy.
    fn check(&self, c: &Constraint, work: &mut Work) -> bool {
        if self.infeasible {
            return true;
        }
        if self.witness_rejects(c) {
            crate::counters::PREFILTER_WITNESS.fetch_add(1, Relaxed);
            return false;
        }
        crate::counters::LP_WARM_STARTS.fetch_add(1, Relaxed);
        match self.phase2(c, work).0 {
            Phase::Unbounded => false,
            Phase::Optimal(z) => {
                // Objective was `maximize −(expr − c₀)`, so the exact
                // minimum of `expr` over the kept closure is `c₀ − z`.
                let min = c.expr.constant_term() - &z;
                match c.cmp {
                    Cmp::Ge => !min.is_negative(),
                    Cmp::Gt => min.is_positive(),
                }
            }
        }
    }

    /// Like [`IncLp::check`], but runs phase-2 *in place* on the base
    /// state (any primal-feasible basis is a valid base, so the
    /// candidate's minimizing basis is simply kept) and, on a non-implied
    /// verdict, pushes `c`. From the minimizer the new row enters with a
    /// negative right-hand side, so the dual simplex restores feasibility
    /// along the textbook warm-start cycle. Only the sequential
    /// integration pass calls this, so the mutation is deterministic.
    fn check_and_push(&mut self, c: &Constraint, work: &mut Work) -> bool {
        if self.infeasible {
            return true;
        }
        if self.witness_rejects(c) {
            crate::counters::PREFILTER_WITNESS.fetch_add(1, Relaxed);
            self.push(c, work);
            return false;
        }
        crate::counters::LP_WARM_STARTS.fetch_add(1, Relaxed);
        let implied = match self.phase2_mut(c, work) {
            Phase::Unbounded => false,
            Phase::Optimal(z) => {
                let min = c.expr.constant_term() - &z;
                match c.cmp {
                    Cmp::Ge => !min.is_negative(),
                    Cmp::Gt => min.is_positive(),
                }
            }
        };
        if implied {
            return true;
        }
        self.push(c, work);
        false
    }

    /// Primal phase-2: maximize `−(c.expr − c₀)`, entering by Dantzig's
    /// rule (largest reduced cost, smallest index on ties) and falling
    /// back to Bland's rule after a long degenerate stall so termination
    /// stays guaranteed. Both rules are deterministic, and the optimum is
    /// exact either way, so the verdict never depends on the rule.
    ///
    /// Runs *read-only* against the base state for as long as possible:
    /// the reduced-cost row is computed straight off the base tableau
    /// (touching only the ≤ 2·support basis rows with a non-zero
    /// objective coefficient), and the tableau is copied into `work` only
    /// when a pivot is actually required. Checks that are optimal at the
    /// current vertex — the common case for redundant candidates — cost
    /// no allocation and no copy at all. The returned flag says whether
    /// `work` now holds the (pivoted) final state.
    fn phase2(&self, c: &Constraint, work: &mut Work) -> (Phase, bool) {
        let width = self.width();
        let stride = self.stride();
        let mut red = std::mem::take(&mut work.red);
        let mut z = self.reduced_costs(c, &mut red);
        work.red = red;
        let mut pivoted = false;
        let mut stall = 0usize;
        loop {
            let Some(j) = entering(&work.red, stall >= STALL_LIMIT) else {
                return (Phase::Optimal(z), pivoted);
            };
            if !pivoted {
                work.tab.clone_from(&self.tab);
                work.b.clone_from(&self.b);
                work.basis.clone_from(&self.basis);
                pivoted = true;
            }
            let mut leave: Option<usize> = None;
            for i in 0..self.rows {
                if !work.tab[i * stride + j].is_positive() {
                    continue;
                }
                match leave {
                    None => leave = Some(i),
                    Some(li) => {
                        let lhs = &work.b[i] * &work.tab[li * stride + j];
                        let rhs = &work.b[li] * &work.tab[i * stride + j];
                        if lhs < rhs || (lhs == rhs && work.basis[i] < work.basis[li]) {
                            leave = Some(i);
                        }
                    }
                }
            }
            let Some(i) = leave else {
                return (Phase::Unbounded, pivoted);
            };
            if work.b[i].is_zero() {
                stall += 1;
            } else {
                stall = 0;
            }
            let rj = work.red[j].clone();
            crate::counters::LP_PIVOTS.fetch_add(1, Relaxed);
            pivot(
                &mut work.tab,
                &mut work.b,
                &mut work.basis,
                &mut work.nz,
                &mut work.prow,
                self.rows,
                stride,
                width,
                i,
                j,
            );
            for (&k, v) in work.nz.iter().zip(&work.prow) {
                work.red[k] -= &(&rj * v);
            }
            z += &(&rj * &work.b[i]);
        }
    }

    /// Seeds `red` with the reduced costs of `maximize −(c.expr − c₀)`
    /// at the current basis (touching only the basis rows with a
    /// non-zero objective coefficient — at most 2·support of them) and
    /// returns the objective value there.
    fn reduced_costs(&self, c: &Constraint, red: &mut Vec<Rational>) -> Rational {
        let n = self.n;
        let width = self.width();
        let stride = self.stride();
        let obj = |col: usize| -> Rational {
            if col < n {
                -c.expr.coeff(col)
            } else if col < 2 * n {
                c.expr.coeff(col - n).clone()
            } else {
                Rational::zero()
            }
        };
        red.clear();
        red.resize(width, Rational::zero());
        for (j, r) in red.iter_mut().enumerate() {
            *r = obj(j);
        }
        let mut z = Rational::zero();
        for i in 0..self.rows {
            let cb = obj(self.basis[i]);
            if cb.is_zero() {
                continue;
            }
            for (j, r) in red.iter_mut().enumerate().take(width) {
                let a = &self.tab[i * stride + j];
                if !a.is_zero() {
                    *r -= &(&cb * a);
                }
            }
            z += &(&cb * &self.b[i]);
        }
        z
    }

    /// In-place primal phase-2 for the integration path: identical pivot
    /// selection to [`IncLp::phase2`], but pivots the base tableau
    /// directly instead of a scratch copy — every basis it can reach is
    /// primal-feasible for the same pushed set, so no state is lost and
    /// no clone is paid.
    fn phase2_mut(&mut self, c: &Constraint, work: &mut Work) -> Phase {
        let width = self.width();
        let stride = self.stride();
        let mut red = std::mem::take(&mut work.red);
        let mut z = self.reduced_costs(c, &mut red);
        let mut stall = 0usize;
        let res = loop {
            let Some(j) = entering(&red, stall >= STALL_LIMIT) else {
                break Phase::Optimal(z);
            };
            let mut leave: Option<usize> = None;
            for i in 0..self.rows {
                if !self.tab[i * stride + j].is_positive() {
                    continue;
                }
                match leave {
                    None => leave = Some(i),
                    Some(li) => {
                        let lhs = &self.b[i] * &self.tab[li * stride + j];
                        let rhs = &self.b[li] * &self.tab[i * stride + j];
                        if lhs < rhs || (lhs == rhs && self.basis[i] < self.basis[li]) {
                            leave = Some(i);
                        }
                    }
                }
            }
            let Some(i) = leave else {
                break Phase::Unbounded;
            };
            if self.b[i].is_zero() {
                stall += 1;
            } else {
                stall = 0;
            }
            let rj = red[j].clone();
            crate::counters::LP_PIVOTS.fetch_add(1, Relaxed);
            pivot(
                &mut self.tab,
                &mut self.b,
                &mut self.basis,
                &mut work.nz,
                &mut work.prow,
                self.rows,
                stride,
                width,
                i,
                j,
            );
            for (&k, v) in work.nz.iter().zip(&work.prow) {
                red[k] -= &(&rj * v);
            }
            z += &(&rj * &self.b[i]);
        };
        work.red = red;
        res
    }

    /// Pushes `expr ≥ 0` into the base: appends the row with its own
    /// slack basic, eliminates the currently basic columns from it, and
    /// dual-simplex-pivots until the basis is primal-feasible again (or
    /// the system is proven infeasible).
    fn push(&mut self, c: &Constraint, work: &mut Work) {
        if self.infeasible {
            return;
        }
        if self.rows == self.slack_cap {
            self.grow();
        }
        let n = self.n;
        let stride = self.stride();
        let r = self.rows;
        self.tab.resize((r + 1) * stride, Rational::zero());
        {
            let row = &mut self.tab[r * stride..(r + 1) * stride];
            for j in 0..n {
                let aj = c.expr.coeff(j);
                if !aj.is_zero() {
                    row[j] = -aj;
                    row[n + j] = aj.clone();
                }
            }
            row[2 * n + r] = Rational::one();
        }
        self.b.push(c.expr.constant_term().clone());
        // Express the new row in the current basis: subtract
        // `factor × row_i` for each basic column with a non-zero entry
        // (row_i has 1 in its basic column and 0 in every other, so one
        // sweep suffices).
        for i in 0..r {
            let bi = self.basis[i];
            let factor = self.tab[r * stride + bi].clone();
            if factor.is_zero() {
                continue;
            }
            let width = 2 * n + r;
            for k in 0..width {
                let v = self.tab[i * stride + k].clone();
                if !v.is_zero() {
                    let t = &factor * &v;
                    self.tab[r * stride + k] -= &t;
                }
            }
            let t = &factor * &self.b[i];
            self.b[r] -= &t;
        }
        self.basis.push(2 * n + r);
        self.rows = r + 1;
        self.dual_restore(work);
        // Witness points must stay feasible for the *whole* kept set:
        // evict any recorded vertex the new constraint's closure cuts
        // off, then record the restored vertex (feasible by
        // construction for everything pushed so far).
        self.points.retain(|p| !eval_at(c, p).is_negative());
        self.remember_point();
    }

    /// Dual simplex with Bland's rule: leaving row = the infeasible row
    /// whose basic variable has the smallest index; entering column = the
    /// smallest-index column with a negative pivot-row entry. A zero
    /// objective row stays zero under pivoting, so dual feasibility is
    /// trivial and Bland's anti-cycling argument gives termination.
    fn dual_restore(&mut self, work: &mut Work) {
        let stride = self.stride();
        loop {
            let width = self.width();
            let leave = (0..self.rows)
                .filter(|&i| self.b[i].is_negative())
                .min_by_key(|&i| self.basis[i]);
            let Some(i) = leave else {
                return;
            };
            let Some(j) = (0..width).find(|&j| self.tab[i * stride + j].is_negative()) else {
                // A row asserting (non-negative combination) = negative:
                // the kept closure is empty.
                self.infeasible = true;
                return;
            };
            crate::counters::DUAL_PIVOTS.fetch_add(1, Relaxed);
            pivot(
                &mut self.tab,
                &mut self.b,
                &mut self.basis,
                &mut work.nz,
                &mut work.prow,
                self.rows,
                stride,
                width,
                i,
                j,
            );
        }
    }
}

/// Entering-column choice for primal phase-2: Dantzig's rule (largest
/// positive reduced cost, smallest index on ties) normally; Bland's rule
/// (first positive) once a degenerate stall demands anti-cycling.
fn entering(red: &[Rational], bland: bool) -> Option<usize> {
    if bland {
        return red.iter().position(|r| r.is_positive());
    }
    let mut best: Option<usize> = None;
    for (j, r) in red.iter().enumerate() {
        if r.is_positive() && best.is_none_or(|b| *r > red[b]) {
            best = Some(j);
        }
    }
    best
}

/// The value of `c.expr` at point `p`.
fn eval_at(c: &Constraint, p: &[Rational]) -> Rational {
    let mut v = c.expr.constant_term().clone();
    for (j, a) in c.expr.terms() {
        if !p[j].is_zero() {
            v += &(a * &p[j]);
        }
    }
    v
}

/// Pivot on `(i, j)`: normalize the pivot row, eliminate column `j` from
/// every other row touching only the pivot row's non-zero columns, and
/// leave the normalized pivot row in `nz`/`prow` (for the caller's
/// reduced-cost update). Identical arithmetic to `lp::pivot`.
#[allow(clippy::too_many_arguments)]
fn pivot(
    tab: &mut [Rational],
    b: &mut [Rational],
    basis: &mut [usize],
    nz: &mut Vec<usize>,
    prow: &mut Vec<Rational>,
    rows: usize,
    stride: usize,
    width: usize,
    i: usize,
    j: usize,
) {
    let piv = tab[i * stride + j].clone();
    debug_assert!(!piv.is_zero());
    let inv = piv.recip();
    nz.clear();
    prow.clear();
    for k in 0..width {
        let v = &mut tab[i * stride + k];
        if !v.is_zero() {
            *v *= &inv;
            nz.push(k);
            prow.push(v.clone());
        }
    }
    b[i] *= &inv;
    for r in 0..rows {
        if r == i {
            continue;
        }
        let factor = tab[r * stride + j].clone();
        if factor.is_zero() {
            continue;
        }
        for (&k, v) in nz.iter().zip(prow.iter()) {
            let t = &factor * v;
            tab[r * stride + k] -= &t;
        }
        if !b[i].is_zero() {
            let t = &factor * &b[i];
            b[r] -= &t;
        }
    }
    basis[i] = j;
}

/// One candidate's implication check against a frozen state: the
/// interval pre-filter first, then the warm-started LP.
fn check_one(lp: &IncLp, bounds: &IntervalBox, c: &Constraint, work: &mut Work) -> bool {
    if lp.infeasible {
        return true;
    }
    if bounds.implies(c) {
        crate::counters::PREFILTER_INTERVAL.fetch_add(1, Relaxed);
        return true;
    }
    lp.check(c, work)
}

/// The incremental redundancy filter: returns the (ascending) indices of
/// the candidates that survive "keep iff not implied by the already kept
/// set", walking `ordered` front to back. The survivor set is exactly
/// the sequential filter's — see the module docs for the argument — and
/// both it and every counter are independent of `threads`.
pub(crate) fn filter_implied(ordered: &[Constraint], threads: usize) -> Vec<usize> {
    if ordered.is_empty() {
        return Vec::new();
    }
    let t0 = Instant::now();
    let nvars = ordered[0].expr.nvars();
    let mut lp = IncLp::new(nvars, ordered.len());
    let mut bounds = IntervalBox::new(nvars);
    let mut kept: Vec<usize> = Vec::new();
    let mut work = Work::default();
    let mut start = 0usize;
    for bs in block_sizes(ordered.len()) {
        let block = start..start + bs;
        start += bs;
        if lp.infeasible {
            continue; // everything after an infeasible kept set is implied
        }
        // Verdicts against the basis frozen at block start. "Implied" is
        // final (implication is monotone in the kept set); "not implied"
        // is re-validated during sequential integration below.
        let verdicts: Vec<bool> = if threads >= 2 && bs >= PAR_THRESHOLD {
            parallel_verdicts(&lp, &bounds, ordered, block.clone(), threads)
        } else {
            block
                .clone()
                .map(|i| check_one(&lp, &bounds, &ordered[i], &mut work))
                .collect()
        };
        for (k, i) in block.enumerate() {
            if lp.infeasible || verdicts[k] {
                continue;
            }
            // Confirm against the live basis (the kept set may have grown
            // within this block) and, on survival, adopt + push.
            if bounds.implies(&ordered[i]) {
                crate::counters::PREFILTER_INTERVAL.fetch_add(1, Relaxed);
                continue;
            }
            if lp.check_and_push(&ordered[i], &mut work) {
                continue;
            }
            bounds.absorb(&ordered[i]);
            kept.push(i);
        }
    }
    crate::counters::PRUNE_MICROS.fetch_add(t0.elapsed().as_micros() as u64, Relaxed);
    kept
}

/// Computes the block's verdicts across scoped worker threads. Each
/// check is a pure function of the frozen `(lp, bounds)` state and its
/// candidate, so which thread computes which slot never matters.
fn parallel_verdicts(
    lp: &IncLp,
    bounds: &IntervalBox,
    ordered: &[Constraint],
    block: std::ops::Range<usize>,
    threads: usize,
) -> Vec<bool> {
    let base = block.start;
    let len = block.len();
    let slots: Vec<Mutex<bool>> = (0..len).map(|_| Mutex::new(false)).collect();
    let next = std::sync::atomic::AtomicUsize::new(0);
    let workers = threads.min(len);
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                s.spawn(|| {
                    let mut work = Work::default();
                    loop {
                        let k = next.fetch_add(1, Relaxed);
                        if k >= len {
                            break;
                        }
                        let v = check_one(lp, bounds, &ordered[base + k], &mut work);
                        *slots[k].lock().unwrap_or_else(|e| e.into_inner()) = v;
                    }
                })
            })
            .collect();
        for h in handles {
            if let Err(payload) = h.join() {
                std::panic::resume_unwind(payload);
            }
        }
    });
    slots
        .into_iter()
        .map(|m| m.into_inner().unwrap_or_else(|e| e.into_inner()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linear::LinExpr;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn ge(nvars: usize, coeffs: &[(usize, i64)], c: i64) -> Constraint {
        let mut e = LinExpr::constant(nvars, r(c));
        for &(v, k) in coeffs {
            e = e.plus_term(v, r(k));
        }
        Constraint::ge0(e)
    }

    /// The sequential reference: from-scratch LP per check.
    fn reference_filter(ordered: &[Constraint]) -> Vec<usize> {
        let mut kept: Vec<Constraint> = Vec::new();
        let mut out = Vec::new();
        for (i, c) in ordered.iter().enumerate() {
            if kept.is_empty() || !crate::lp::implied_by(&kept, c) {
                kept.push(c.clone());
                out.push(i);
            }
        }
        out
    }

    #[test]
    fn block_schedule_is_fixed_and_covers() {
        assert_eq!(block_sizes(0), Vec::<usize>::new());
        assert_eq!(block_sizes(1), vec![1]);
        assert_eq!(block_sizes(10), vec![1, 2, 4, 3]);
        let total: usize = block_sizes(1000).iter().sum();
        assert_eq!(total, 1000);
        assert!(block_sizes(1000).iter().all(|&b| b <= MAX_BLOCK));
    }

    #[test]
    fn matches_reference_on_redundant_wedge() {
        // x >= 0, y >= 0, x + y <= 10, plus redundant supports.
        let mut cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(0, -1), (1, -1)], 10),
        ];
        for k in 1..30 {
            cs.push(ge(2, &[(0, 1), (1, 1)], k)); // implied by x,y >= 0
            cs.push(ge(2, &[(0, -1), (1, -2)], 20 + k)); // implied by the wedge
        }
        for threads in [1, 3] {
            assert_eq!(filter_implied(&cs, threads), reference_filter(&cs));
        }
    }

    #[test]
    fn infeasible_prefix_drops_the_tail() {
        // x >= 5 and x <= 2 make the kept closure empty: everything after
        // the contradiction is implied, exactly as the reference says.
        let cs = vec![
            ge(1, &[(0, 1)], -5),
            ge(1, &[(0, -1)], 2),
            ge(1, &[(0, 1)], -100),
            ge(1, &[(0, -1)], 200),
        ];
        let got = filter_implied(&cs, 2);
        assert_eq!(got, reference_filter(&cs));
        assert_eq!(got, vec![0, 1]);
    }

    #[test]
    fn interval_filter_skips_lp_for_box_implied_rows() {
        let before = crate::PolyStats::snapshot();
        // Bounds 0 <= x <= 4, 0 <= y <= 4 (support 1, establish the box),
        // then box-implied two-variable rows: x + y >= -k.
        let mut cs = vec![
            ge(2, &[(0, 1)], 0),
            ge(2, &[(0, -1)], 4),
            ge(2, &[(1, 1)], 0),
            ge(2, &[(1, -1)], 4),
        ];
        for k in 1..10 {
            cs.push(ge(2, &[(0, 1), (1, 1)], k));
        }
        let got = filter_implied(&cs, 1);
        assert_eq!(got, reference_filter(&cs));
        assert_eq!(got, vec![0, 1, 2, 3]);
        let delta = crate::PolyStats::snapshot().since(&before);
        assert!(delta.prefilter_interval > 0, "interval filter must fire");
    }

    #[test]
    fn counters_are_thread_count_independent() {
        let mut cs = vec![
            ge(3, &[(0, 1)], 0),
            ge(3, &[(1, 1)], 0),
            ge(3, &[(2, 1)], 0),
            ge(3, &[(0, -1), (1, -1), (2, -1)], 30),
        ];
        for k in 1..40 {
            cs.push(ge(3, &[(0, k % 5 + 1), (1, 1)], 10 * k));
            cs.push(ge(3, &[(1, -1), (2, -(k % 3) - 1)], 90 + k));
        }
        let before = crate::PolyStats::snapshot();
        let seq = filter_implied(&cs, 1);
        let mid = crate::PolyStats::snapshot();
        let par = filter_implied(&cs, 4);
        let after = crate::PolyStats::snapshot();
        assert_eq!(seq, par);
        let d_seq = mid.since(&before);
        let d_par = after.since(&mid);
        assert_eq!(d_seq.lp_warm_starts, d_par.lp_warm_starts);
        assert_eq!(d_seq.dual_pivots, d_par.dual_pivots);
        assert_eq!(d_seq.lp_pivots, d_par.lp_pivots);
        assert_eq!(d_seq.prefilter_interval, d_par.prefilter_interval);
    }

    #[test]
    fn strict_candidates_follow_closure_semantics() {
        // Kept: x >= 1. Candidate x > 0 has closure-minimum 1 > 0 over
        // the kept set: implied. Candidate x > 1 has minimum 1, not
        // strictly positive: kept.
        let cs = vec![
            ge(1, &[(0, 1)], -1),
            Constraint::gt0(LinExpr::var(1, 0)),
            Constraint::gt0(LinExpr::var(1, 0).plus_constant(r(-1))),
        ];
        let got = filter_implied(&cs, 1);
        assert_eq!(got, reference_filter(&cs));
        assert_eq!(got, vec![0, 2]);
    }
}
