//! Differential property tests for the redundancy-elimination pipeline.
//!
//! The production path (`reduce_redundancy_threads`) stacks syntactic
//! pre-filters, witness-point rejection, and a warm-started incremental
//! LP; a bug in any layer silently changes which constraints survive.
//! These tests pit it against a brute-force O(n²) reference that knows
//! none of those tricks — each constraint is tested against all the
//! others through the independent emptiness oracle (`is_empty`, the
//! ε-method batch simplex) — and require the two descriptions to carve
//! out exactly the same set. A staleness bug in the witness-point cache
//! (a vertex recorded before a later push can lie outside the final
//! region) is precisely the kind of defect this net catches.
//!
//! Randomized with a local xorshift generator instead of `proptest` (the
//! offline build environment cannot fetch crates), so every run draws the
//! same deterministic case set.

use offload_poly::{Cmp, Constraint, LinExpr, Polyhedron, Rational};

/// Deterministic xorshift64* generator for the property loops.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi]` (inclusive).
    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo) as u64 + 1;
        lo + (self.next() % span) as i64
    }

    fn usize(&mut self, bound: usize) -> usize {
        (self.next() % bound as u64) as usize
    }
}

/// A random polyhedron in `nvars` dimensions: small integer coefficients
/// (many zero, so constraints overlap in support), a mix of strict and
/// non-strict rows, and deliberate near-duplicates to exercise the
/// dedup/dominance pre-filters.
fn arb_polyhedron(rng: &mut Rng, nvars: usize, rows: usize) -> Polyhedron {
    let mut p = Polyhedron::universe(nvars);
    let mut made: Vec<Constraint> = Vec::new();
    for _ in 0..rows {
        // One row in four echoes an earlier row with a shifted constant:
        // a parallel half-space the dominance sweep should collapse.
        let c = if !made.is_empty() && rng.usize(4) == 0 {
            let base = &made[rng.usize(made.len())];
            let mut e = base.expr.clone();
            e.set_constant(e.constant_term() + &Rational::from(rng.i64_in(0, 3)));
            Constraint {
                expr: e,
                cmp: base.cmp,
            }
        } else {
            let mut e = LinExpr::zero(nvars);
            for v in 0..nvars {
                if rng.usize(3) != 0 {
                    e.set_coeff(v, Rational::from(rng.i64_in(-3, 3)));
                }
            }
            e.set_constant(Rational::from(rng.i64_in(-4, 8)));
            if rng.usize(5) == 0 {
                Constraint::gt0(e)
            } else {
                Constraint::ge0(e)
            }
        };
        made.push(c.clone());
        p.add(c);
    }
    p
}

/// Independent implication oracle: `sys` implies `c` iff `sys ∧ ¬c` is
/// empty. The negation flips strictness (`¬(e ≥ 0)` is `-e > 0`), and
/// `is_empty` runs the ε-method batch simplex — none of the incremental
/// machinery under test.
fn implies(nvars: usize, sys: &[Constraint], c: &Constraint) -> bool {
    let neg = c.expr.scale(&Rational::from(-1));
    let negated = match c.cmp {
        Cmp::Ge => Constraint::gt0(neg),
        Cmp::Gt => Constraint::ge0(neg),
    };
    let mut p = Polyhedron::universe(nvars);
    for s in sys {
        p.add(s.clone());
    }
    p.add(negated);
    p.is_empty()
}

/// Brute-force O(n²) redundancy elimination: drop each constraint that
/// the remaining ones imply, re-scanning until a fixpoint.
fn brute_force_reduce(p: &Polyhedron) -> Vec<Constraint> {
    let mut kept: Vec<Constraint> = p.constraints().to_vec();
    let mut i = 0;
    while i < kept.len() {
        let rest: Vec<Constraint> = kept
            .iter()
            .enumerate()
            .filter(|(j, _)| *j != i)
            .map(|(_, c)| c.clone())
            .collect();
        if !rest.is_empty() && implies(p.nvars(), &rest, &kept[i]) {
            kept.remove(i);
        } else {
            i += 1;
        }
    }
    kept
}

/// Both systems describe the same point set: each one's constraints are
/// implied by the other system.
fn same_set(nvars: usize, a: &[Constraint], b: &[Constraint]) -> bool {
    a.iter().all(|c| implies(nvars, b, c)) && b.iter().all(|c| implies(nvars, a, c))
}

const CASES: usize = 60;

#[test]
fn reduce_redundancy_matches_brute_force_reference() {
    let mut rng = Rng::new(0x9E3C_0FF1);
    for case in 0..CASES {
        let nvars = 2 + rng.usize(3);
        let rows = 6 + rng.usize(9);
        let p = arb_polyhedron(&mut rng, nvars, rows);
        let reduced = p.reduce_redundancy();
        let brute = brute_force_reduce(&p);
        if p.is_empty() {
            assert!(
                reduced.is_empty(),
                "case {case}: reduction resurrected an empty polyhedron"
            );
            continue;
        }
        assert!(
            same_set(nvars, reduced.constraints(), p.constraints()),
            "case {case}: reduced system describes a different set than the input\n\
             input: {p}\nreduced: {reduced}"
        );
        assert!(
            same_set(nvars, reduced.constraints(), &brute),
            "case {case}: reduced system disagrees with the brute-force reference"
        );
        // The pipeline must never keep a constraint the brute-force
        // reference proves redundant *and* still present verbatim.
        assert!(
            reduced.constraints().len() <= p.constraints().len(),
            "case {case}: reduction grew the system"
        );
    }
}

#[test]
fn reduce_redundancy_is_thread_count_independent() {
    let mut rng = Rng::new(0xD17E_55A7);
    for case in 0..CASES {
        let nvars = 2 + rng.usize(3);
        let rows = 6 + rng.usize(9);
        let p = arb_polyhedron(&mut rng, nvars, rows);
        let one = p.reduce_redundancy_threads(1);
        let three = p.reduce_redundancy_threads(3);
        assert_eq!(
            one, three,
            "case {case}: survivor set depends on thread count\ninput: {p}"
        );
    }
}

#[test]
fn projection_is_sound_and_thread_count_independent() {
    let mut rng = Rng::new(0x51AB_7001);
    for case in 0..40 {
        let nvars = 3 + rng.usize(2);
        let rows = 5 + rng.usize(7);
        let p = arb_polyhedron(&mut rng, nvars, rows);
        let k = 1 + rng.usize(nvars - 1);
        let proj1 = p.project_to_first_threads(k, 1);
        let proj3 = p.project_to_first_threads(k, 3);
        assert_eq!(
            proj1, proj3,
            "case {case}: projection depends on thread count\ninput: {p}"
        );
        // Soundness: the shadow of any point of `p` lies in the
        // projection.
        if let Some(point) = p.sample() {
            assert!(
                proj1.contains(&point[..k]),
                "case {case}: projection excludes the shadow of a feasible point\n\
                 input: {p}\nprojection: {proj1}"
            );
        }
    }
}
