//! Differential property tests for the fast-path exact arithmetic.
//!
//! `BigInt` carries an inline `i64` representation with automatic
//! promotion to heap limbs, and `Rational` uses the Knuth 4.5.1 cross-GCD
//! shortcuts instead of fully normalizing every result. Both must be
//! *observably identical* to the naive definitions. These tests pit them
//! against reference computations — `i128` arithmetic where results fit,
//! and the plain cross-multiply-then-normalize formulas for rationals —
//! over a seeded LCG stream that deliberately oversamples the `i64`
//! promotion boundary.

use offload_poly::{BigInt, Rational};
use std::cmp::Ordering;

/// Deterministic 64-bit LCG (Knuth MMIX constants) — no external deps,
/// same stream on every run.
struct Lcg(u64);

impl Lcg {
    fn new(seed: u64) -> Self {
        Lcg(seed)
    }
    fn next_u64(&mut self) -> u64 {
        self.0 = self
            .0
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        self.0 >> 1 ^ self.0
    }
    /// Samples an `i64` from magnitude classes that stress the inline
    /// representation: tiny values (the dominant case in polyhedral
    /// computations), medium values, full-range values, and values within
    /// a few ulps of the promotion boundary.
    fn i64_stratified(&mut self) -> i64 {
        match self.next_u64() % 8 {
            0..=2 => (self.next_u64() % 33) as i64 - 16,
            3..=4 => (self.next_u64() % (1 << 32)) as i64 - (1 << 31),
            5 => self.next_u64() as i64,
            6 => i64::MAX - (self.next_u64() % 3) as i64,
            _ => i64::MIN + (self.next_u64() % 3) as i64,
        }
    }
    /// A value that usually needs the heap representation: a product of
    /// two stratified `i64`s plus a stratified offset.
    fn big(&mut self) -> BigInt {
        let a = BigInt::from(self.i64_stratified());
        let b = BigInt::from(self.i64_stratified());
        let c = BigInt::from(self.i64_stratified());
        &(&a * &b) + &c
    }
}

// ---- BigInt vs i128 reference ----

#[test]
fn bigint_ops_match_i128_reference() {
    let mut rng = Lcg::new(0x5eed_0001);
    for _ in 0..4000 {
        let x = rng.i64_stratified();
        let y = rng.i64_stratified();
        let (bx, by) = (BigInt::from(x), BigInt::from(y));
        let (rx, ry) = (x as i128, y as i128);
        assert_eq!((&bx + &by).to_i128(), Some(rx + ry), "{x} + {y}");
        assert_eq!((&bx - &by).to_i128(), Some(rx - ry), "{x} - {y}");
        assert_eq!((&bx * &by).to_i128(), Some(rx * ry), "{x} * {y}");
        assert_eq!(bx.cmp(&by), x.cmp(&y), "cmp {x} vs {y}");
        assert_eq!((-&bx).to_i128(), Some(-rx), "-{x}");
        assert_eq!(bx.abs().to_i128(), Some(rx.abs()), "|{x}|");
        if y != 0 {
            let (q, r) = bx.div_rem(&by);
            assert_eq!(q.to_i128(), Some(rx / ry), "{x} / {y}");
            assert_eq!(r.to_i128(), Some(rx % ry), "{x} % {y}");
        }
        let g = bx.gcd(&by);
        let rg = gcd_i128(rx.unsigned_abs(), ry.unsigned_abs());
        assert_eq!(g.to_i128(), Some(rg as i128), "gcd({x}, {y})");
        assert_eq!(bx.to_string(), x.to_string(), "display {x}");
        assert_eq!(x.to_string().parse::<BigInt>().unwrap(), bx, "parse {x}");
    }
}

fn gcd_i128(mut a: u128, mut b: u128) -> u128 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

#[test]
fn bigint_assign_ops_match_binary_ops() {
    let mut rng = Lcg::new(0x5eed_0002);
    for _ in 0..2000 {
        let a = rng.big();
        let b = rng.big();
        let mut x = a.clone();
        x += &b;
        assert_eq!(x, &a + &b);
        let mut x = a.clone();
        x -= &b;
        assert_eq!(x, &a - &b);
        let mut x = a.clone();
        x *= &b;
        assert_eq!(x, &a * &b);
    }
}

#[test]
fn bigint_algebraic_identities_on_big_values() {
    let mut rng = Lcg::new(0x5eed_0003);
    for _ in 0..2000 {
        let a = rng.big();
        let b = rng.big();
        assert_eq!(&(&a + &b) - &b, a, "add/sub roundtrip");
        assert_eq!(&a + &b, &b + &a, "commutative add");
        assert_eq!(&a * &b, &b * &a, "commutative mul");
        if !b.is_zero() {
            let (q, r) = a.div_rem(&b);
            assert_eq!(&(&q * &b) + &r, a, "division identity");
            assert!(r.abs() < b.abs(), "remainder bound");
            assert!(
                r.is_zero() || (r.is_negative() == a.is_negative()),
                "remainder sign follows dividend (truncated division)"
            );
            let g = a.gcd(&b);
            if !g.is_zero() {
                assert!((&a % &g).is_zero(), "gcd divides a");
                assert!((&b % &g).is_zero(), "gcd divides b");
                assert_eq!((&a / &g).gcd(&(&b / &g)), BigInt::one(), "gcd is greatest");
            }
        }
        // Display/parse roundtrip exercises the limb <-> decimal paths.
        let s = a.to_string();
        assert_eq!(s.parse::<BigInt>().unwrap(), a, "parse(display) = id");
    }
}

#[test]
fn bigint_promotion_boundary_cases() {
    let two63 = BigInt::from(1i128 << 63);
    let max = BigInt::from(i64::MAX);
    let min = BigInt::from(i64::MIN);

    // ±2^63 from both directions.
    assert_eq!(&max + &BigInt::one(), two63);
    assert_eq!(-&min, two63);
    assert_eq!(&min - &BigInt::one(), BigInt::from(-(1i128 << 63) - 1));
    assert_eq!(&two63 - &BigInt::one(), max);
    assert_eq!(-&two63, min);
    assert_eq!(min.abs(), two63);

    // i64::MIN negation through every operator form.
    assert_eq!((-&min).to_i128(), Some(1i128 << 63));
    assert_eq!((&BigInt::zero() - &min).to_i128(), Some(1i128 << 63));
    assert_eq!((&min * &BigInt::from(-1i64)).to_i128(), Some(1i128 << 63));
    let (q, r) = min.div_rem(&BigInt::from(-1i64));
    assert_eq!(q, two63);
    assert!(r.is_zero());

    // gcd with mixed small/big operands, including the 2^63 result.
    assert_eq!(min.gcd(&BigInt::zero()), two63);
    assert_eq!(min.gcd(&min), two63);
    assert_eq!(two63.gcd(&BigInt::from(6i64)), BigInt::from(2i64));
    assert_eq!(BigInt::from(6i64).gcd(&two63), BigInt::from(2i64));
    let big = &two63 * &BigInt::from(15i64);
    assert_eq!(big.gcd(&BigInt::from(10i64)), BigInt::from(10i64));

    // Values crossing the boundary and coming back compare/hash equal to
    // ones that never left it.
    let back = &(&max + &BigInt::one()) - &BigInt::one();
    assert_eq!(back, max);
    use std::collections::HashSet;
    let mut set = HashSet::new();
    set.insert(back);
    assert!(set.contains(&max), "demoted value hashes like inline value");
}

// ---- Rational vs naive normalize-everything reference ----

/// Reference rational: the pre-fast-path formulas — cross-multiply, then
/// fully normalize through `from_bigints`.
fn ref_add(a: &Rational, b: &Rational) -> Rational {
    Rational::from_bigints(
        &(a.numer() * b.denom()) + &(b.numer() * a.denom()),
        a.denom() * b.denom(),
    )
}
fn ref_sub(a: &Rational, b: &Rational) -> Rational {
    Rational::from_bigints(
        &(a.numer() * b.denom()) - &(b.numer() * a.denom()),
        a.denom() * b.denom(),
    )
}
fn ref_mul(a: &Rational, b: &Rational) -> Rational {
    Rational::from_bigints(a.numer() * b.numer(), a.denom() * b.denom())
}
fn ref_div(a: &Rational, b: &Rational) -> Rational {
    Rational::from_bigints(a.numer() * b.denom(), a.denom() * b.numer())
}
fn ref_cmp(a: &Rational, b: &Rational) -> Ordering {
    (a.numer() * b.denom()).cmp(&(b.numer() * a.denom()))
}

fn rational(rng: &mut Lcg) -> Rational {
    let n = rng.i64_stratified();
    let mut d = rng.i64_stratified();
    if d == 0 {
        d = 1;
    }
    Rational::new(n, d)
}

/// Canonical-form invariants every `Rational` must satisfy: lowest terms,
/// positive denominator, and the unique zero `0/1`.
fn assert_canonical(r: &Rational, ctx: &str) {
    assert!(r.denom().is_positive(), "{ctx}: denominator must be > 0");
    if r.is_zero() {
        assert_eq!(r.denom(), &BigInt::one(), "{ctx}: zero must be 0/1");
    } else {
        assert_eq!(
            r.numer().gcd(r.denom()),
            BigInt::one(),
            "{ctx}: must be in lowest terms"
        );
    }
}

#[test]
fn rational_ops_match_naive_reference() {
    let mut rng = Lcg::new(0x5eed_0004);
    for i in 0..3000 {
        let a = rational(&mut rng);
        let b = rational(&mut rng);
        let sum = &a + &b;
        assert_eq!(sum, ref_add(&a, &b), "add #{i}: {a} + {b}");
        assert_canonical(&sum, "add");
        let diff = &a - &b;
        assert_eq!(diff, ref_sub(&a, &b), "sub #{i}: {a} - {b}");
        assert_canonical(&diff, "sub");
        let prod = &a * &b;
        assert_eq!(prod, ref_mul(&a, &b), "mul #{i}: {a} * {b}");
        assert_canonical(&prod, "mul");
        if !b.is_zero() {
            let quot = &a / &b;
            assert_eq!(quot, ref_div(&a, &b), "div #{i}: {a} / {b}");
            assert_canonical(&quot, "div");
            let rec = b.recip();
            assert_eq!(rec, ref_div(&Rational::one(), &b), "recip #{i}: {b}");
            assert_canonical(&rec, "recip");
        }
        assert_eq!(a.cmp(&b), ref_cmp(&a, &b), "cmp #{i}: {a} vs {b}");
    }
}

#[test]
fn rational_assign_ops_match_binary_ops() {
    let mut rng = Lcg::new(0x5eed_0005);
    for _ in 0..2000 {
        let a = rational(&mut rng);
        let b = rational(&mut rng);
        let mut x = a.clone();
        x += &b;
        assert_eq!(x, &a + &b);
        let mut x = a.clone();
        x -= &b;
        assert_eq!(x, &a - &b);
        let mut x = a.clone();
        x *= &b;
        assert_eq!(x, &a * &b);
    }
}

#[test]
fn rational_boundary_denominators_and_numerators() {
    // Operands pinned to the promotion boundary: every op must still be
    // canonical and agree with the reference.
    let specials = [
        Rational::new(i64::MIN, 1),
        Rational::new(i64::MAX, 1),
        Rational::new(1, i64::MAX),
        Rational::new(i64::MIN, i64::MAX),
        Rational::new(i64::MAX, 3),
        Rational::new(-1, 2),
        Rational::zero(),
        Rational::one(),
        // den = i64::MIN normalizes to a positive (promoted) denominator.
        Rational::new(1, i64::MIN),
        Rational::new(i64::MIN, i64::MIN),
    ];
    for a in &specials {
        for b in &specials {
            let sum = a + b;
            assert_eq!(sum, ref_add(a, b), "{a} + {b}");
            assert_canonical(&sum, "boundary add");
            let prod = a * b;
            assert_eq!(prod, ref_mul(a, b), "{a} * {b}");
            assert_canonical(&prod, "boundary mul");
            if !b.is_zero() {
                let quot = a / b;
                assert_eq!(quot, ref_div(a, b), "{a} / {b}");
                assert_canonical(&quot, "boundary div");
            }
            assert_eq!(a.cmp(b), ref_cmp(a, b), "{a} vs {b}");
        }
    }
    assert_eq!(
        Rational::new(1, i64::MIN),
        Rational::from_bigints(BigInt::from(-1i64), BigInt::from(1i128 << 63))
    );
    assert_eq!(Rational::new(i64::MIN, i64::MIN), Rational::one());
}
