//! Property-based tests for the exact-arithmetic and polyhedral substrate.

use offload_poly::{BigInt, Constraint, LinExpr, Polyhedron, Rational, Region};
use proptest::prelude::*;

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn bigint_add_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000_000_000i128..1_000_000_000_000) {
        prop_assert_eq!((&bi(a) + &bi(b)).to_i128(), Some(a + b));
    }

    #[test]
    fn bigint_mul_matches_i128(a in -1_000_000_000i128..1_000_000_000, b in -1_000_000_000i128..1_000_000_000) {
        prop_assert_eq!((&bi(a) * &bi(b)).to_i128(), Some(a * b));
    }

    #[test]
    fn bigint_divmod_matches_i128(a in -1_000_000_000_000i128..1_000_000_000_000, b in -1_000_000i128..1_000_000) {
        prop_assume!(b != 0);
        let (q, r) = bi(a).div_rem(&bi(b));
        prop_assert_eq!(q.to_i128(), Some(a / b));
        prop_assert_eq!(r.to_i128(), Some(a % b));
    }

    #[test]
    fn bigint_display_parse_roundtrip(a in any::<i128>()) {
        let v = bi(a);
        let s = v.to_string();
        prop_assert_eq!(s.parse::<BigInt>().unwrap(), v);
        prop_assert_eq!(s, a.to_string());
    }

    #[test]
    fn bigint_gcd_divides_both(a in -100_000i128..100_000, b in -100_000i128..100_000) {
        prop_assume!(a != 0 || b != 0);
        let g = bi(a).gcd(&bi(b));
        prop_assert!(g.is_positive());
        prop_assert!((&bi(a) % &g).is_zero());
        prop_assert!((&bi(b) % &g).is_zero());
    }

    #[test]
    fn rational_field_axioms(
        an in -1000i64..1000, ad in 1i64..50,
        bn in -1000i64..1000, bd in 1i64..50,
        cn in -1000i64..1000, cd in 1i64..50,
    ) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let c = Rational::new(cn, cd);
        // Commutativity and associativity.
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        // Distributivity.
        prop_assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // Inverses.
        prop_assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            prop_assert_eq!(&a / &a, Rational::one());
            prop_assert_eq!(&a * &a.recip(), Rational::one());
        }
    }

    #[test]
    fn rational_order_total(
        an in -100i64..100, ad in 1i64..20,
        bn in -100i64..100, bd in 1i64..20,
    ) {
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let lhs = (an as i128) * (bd as i128);
        let rhs = (bn as i128) * (ad as i128);
        prop_assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    }
}

/// Strategy: a random half-space `c0*x0 + c1*x1 + c2*x2 + k >= 0` in 3D.
fn halfspace() -> impl Strategy<Value = Constraint> {
    (
        prop::collection::vec(-5i64..=5, 3),
        -20i64..=20,
        prop::bool::ANY,
    )
        .prop_map(|(coeffs, k, strict)| {
            let mut e = LinExpr::constant(3, Rational::from(k));
            for (i, c) in coeffs.into_iter().enumerate() {
                e = e.plus_term(i, Rational::from(c));
            }
            if strict {
                Constraint::gt0(e)
            } else {
                Constraint::ge0(e)
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// If the polyhedron is declared non-empty, the sampled witness must
    /// satisfy every constraint.
    #[test]
    fn sample_is_sound(cs in prop::collection::vec(halfspace(), 0..7)) {
        let p = Polyhedron::from_constraints(3, cs);
        if let Some(point) = p.sample() {
            prop_assert!(p.contains(&point));
        }
    }

    /// Fourier–Motzkin projection soundness: if a point is in the original
    /// polyhedron, dropping a coordinate lands inside the projection; and
    /// any sample of the projection extends to a witness in the original.
    #[test]
    fn projection_sound_and_tight(
        cs in prop::collection::vec(halfspace(), 0..6),
        probe in prop::collection::vec(-10i64..=10, 3),
    ) {
        let p = Polyhedron::from_constraints(3, cs);
        let proj = p.eliminate_var(2);
        let probe: Vec<Rational> = probe.into_iter().map(Rational::from).collect();
        if p.contains(&probe) {
            prop_assert!(proj.contains(&probe), "projection must contain shadow of member point");
        }
        // Tightness: the projection is empty exactly when the original is.
        prop_assert_eq!(p.is_empty(), proj.is_empty());
    }

    /// Region subtraction is exact: membership in `a \ b` equals
    /// membership in `a` and not in `b`, at every probe point.
    #[test]
    fn region_subtraction_pointwise(
        cs_a in prop::collection::vec(halfspace(), 0..4),
        cs_b in prop::collection::vec(halfspace(), 1..4),
        probe in prop::collection::vec(-10i64..=10, 3),
    ) {
        let a = Polyhedron::from_constraints(3, cs_a);
        let b = Polyhedron::from_constraints(3, cs_b);
        let diff = Region::from(a.clone()).subtract(&b);
        let probe: Vec<Rational> = probe.into_iter().map(Rational::from).collect();
        let expect = a.contains(&probe) && !b.contains(&probe);
        prop_assert_eq!(diff.contains(&probe), expect);
    }

    /// Pieces produced by subtraction are pairwise disjoint.
    #[test]
    fn region_pieces_disjoint(
        cs_b in prop::collection::vec(halfspace(), 1..4),
        probe in prop::collection::vec(-10i64..=10, 3),
    ) {
        let b = Polyhedron::from_constraints(3, cs_b);
        let diff = Region::universe(3).subtract(&b);
        let probe: Vec<Rational> = probe.into_iter().map(Rational::from).collect();
        let hits = diff.pieces().iter().filter(|p| p.contains(&probe)).count();
        prop_assert!(hits <= 1, "disjoint pieces: point hit {hits} pieces");
    }

    /// subset_of agrees with pointwise membership on witnesses.
    #[test]
    fn subset_of_no_false_positives(
        cs_a in prop::collection::vec(halfspace(), 0..4),
        cs_b in prop::collection::vec(halfspace(), 0..4),
    ) {
        let a = Polyhedron::from_constraints(3, cs_a);
        let b = Polyhedron::from_constraints(3, cs_b);
        if a.subset_of(&b) {
            if let Some(w) = a.sample() {
                prop_assert!(b.contains(&w));
            }
        }
    }
}
