//! Property-based tests for the exact-arithmetic and polyhedral substrate.
//!
//! Randomized with a local xorshift generator instead of `proptest` (the
//! offline build environment cannot fetch crates), so every run draws the
//! same deterministic case set.

use offload_poly::{BigInt, Constraint, LinExpr, Polyhedron, Rational, Region};

/// Deterministic xorshift64* generator for the property loops.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Uniform in `[lo, hi]` (inclusive).
    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        let span = (hi - lo) as u64 + 1;
        lo + (self.next() % span) as i64
    }

    fn i128_in(&mut self, lo: i128, hi: i128) -> i128 {
        let span = hi.wrapping_sub(lo) as u128;
        let raw = (self.next() as u128) << 64 | self.next() as u128;
        if span == u128::MAX {
            return raw as i128;
        }
        lo.wrapping_add((raw % (span + 1)) as i128)
    }

    fn bool(&mut self) -> bool {
        self.next() & 1 == 1
    }
}

fn bi(v: i128) -> BigInt {
    BigInt::from(v)
}

const CASES: usize = 256;

#[test]
fn bigint_arithmetic_matches_i128() {
    let mut rng = Rng::new(0xB161);
    for _ in 0..CASES {
        let a = rng.i128_in(-1_000_000_000_000, 1_000_000_000_000);
        let b = rng.i128_in(-1_000_000_000_000, 1_000_000_000_000);
        assert_eq!((&bi(a) + &bi(b)).to_i128(), Some(a + b));
        let am = rng.i128_in(-1_000_000_000, 1_000_000_000);
        let bm = rng.i128_in(-1_000_000_000, 1_000_000_000);
        assert_eq!((&bi(am) * &bi(bm)).to_i128(), Some(am * bm));
        let d = rng.i128_in(-1_000_000, 1_000_000);
        if d != 0 {
            let (q, r) = bi(a).div_rem(&bi(d));
            assert_eq!(q.to_i128(), Some(a / d));
            assert_eq!(r.to_i128(), Some(a % d));
        }
    }
}

#[test]
fn bigint_display_parse_roundtrip() {
    let mut rng = Rng::new(0xB162);
    for _ in 0..CASES {
        let a = rng.i128_in(i128::MIN + 1, i128::MAX);
        let v = bi(a);
        let s = v.to_string();
        assert_eq!(s.parse::<BigInt>().unwrap(), v);
        assert_eq!(s, a.to_string());
    }
}

#[test]
fn bigint_gcd_divides_both() {
    let mut rng = Rng::new(0xB163);
    for _ in 0..CASES {
        let a = rng.i128_in(-100_000, 100_000);
        let b = rng.i128_in(-100_000, 100_000);
        if a == 0 && b == 0 {
            continue;
        }
        let g = bi(a).gcd(&bi(b));
        assert!(g.is_positive());
        assert!((&bi(a) % &g).is_zero());
        assert!((&bi(b) % &g).is_zero());
    }
}

#[test]
fn rational_field_axioms() {
    let mut rng = Rng::new(0xA710);
    for _ in 0..CASES {
        let a = Rational::new(rng.i64_in(-1000, 1000), rng.i64_in(1, 50));
        let b = Rational::new(rng.i64_in(-1000, 1000), rng.i64_in(1, 50));
        let c = Rational::new(rng.i64_in(-1000, 1000), rng.i64_in(1, 50));
        // Commutativity and associativity.
        assert_eq!(&a + &b, &b + &a);
        assert_eq!(&(&a + &b) + &c, &a + &(&b + &c));
        assert_eq!(&a * &b, &b * &a);
        assert_eq!(&(&a * &b) * &c, &a * &(&b * &c));
        // Distributivity.
        assert_eq!(&a * &(&b + &c), &(&a * &b) + &(&a * &c));
        // Inverses.
        assert_eq!(&a - &a, Rational::zero());
        if !a.is_zero() {
            assert_eq!(&a / &a, Rational::one());
            assert_eq!(&a * &a.recip(), Rational::one());
        }
    }
}

#[test]
fn rational_order_total() {
    let mut rng = Rng::new(0xA711);
    for _ in 0..CASES {
        let (an, ad) = (rng.i64_in(-100, 100), rng.i64_in(1, 20));
        let (bn, bd) = (rng.i64_in(-100, 100), rng.i64_in(1, 20));
        let a = Rational::new(an, ad);
        let b = Rational::new(bn, bd);
        let lhs = (an as i128) * (bd as i128);
        let rhs = (bn as i128) * (ad as i128);
        assert_eq!(a.cmp(&b), lhs.cmp(&rhs));
    }
}

/// A random half-space `c0*x0 + c1*x1 + c2*x2 + k >= 0` (or `> 0`) in 3D.
fn halfspace(rng: &mut Rng) -> Constraint {
    let mut e = LinExpr::constant(3, Rational::from(rng.i64_in(-20, 20)));
    for i in 0..3 {
        e = e.plus_term(i, Rational::from(rng.i64_in(-5, 5)));
    }
    if rng.bool() {
        Constraint::gt0(e)
    } else {
        Constraint::ge0(e)
    }
}

fn halfspaces(rng: &mut Rng, lo: usize, hi: usize) -> Vec<Constraint> {
    let n = rng.i64_in(lo as i64, hi as i64) as usize;
    (0..n).map(|_| halfspace(rng)).collect()
}

fn probe3(rng: &mut Rng) -> Vec<Rational> {
    (0..3)
        .map(|_| Rational::from(rng.i64_in(-10, 10)))
        .collect()
}

/// If the polyhedron is declared non-empty, the sampled witness must
/// satisfy every constraint.
#[test]
fn sample_is_sound() {
    let mut rng = Rng::new(0x5A3);
    for _ in 0..64 {
        let p = Polyhedron::from_constraints(3, halfspaces(&mut rng, 0, 6));
        if let Some(point) = p.sample() {
            assert!(p.contains(&point));
        }
    }
}

/// Fourier–Motzkin projection soundness: if a point is in the original
/// polyhedron, dropping a coordinate lands inside the projection; and
/// the projection is empty exactly when the original is.
#[test]
fn projection_sound_and_tight() {
    let mut rng = Rng::new(0x5A4);
    for _ in 0..64 {
        let p = Polyhedron::from_constraints(3, halfspaces(&mut rng, 0, 5));
        let proj = p.eliminate_var(2);
        let probe = probe3(&mut rng);
        if p.contains(&probe) {
            assert!(
                proj.contains(&probe),
                "projection must contain shadow of member point"
            );
        }
        assert_eq!(p.is_empty(), proj.is_empty());
    }
}

/// Region subtraction is exact: membership in `a \ b` equals membership
/// in `a` and not in `b`, at every probe point.
#[test]
fn region_subtraction_pointwise() {
    let mut rng = Rng::new(0x5A5);
    for _ in 0..64 {
        let a = Polyhedron::from_constraints(3, halfspaces(&mut rng, 0, 3));
        let b = Polyhedron::from_constraints(3, halfspaces(&mut rng, 1, 3));
        let diff = Region::from(a.clone()).subtract(&b);
        let probe = probe3(&mut rng);
        let expect = a.contains(&probe) && !b.contains(&probe);
        assert_eq!(diff.contains(&probe), expect);
    }
}

/// Pieces produced by subtraction are pairwise disjoint.
#[test]
fn region_pieces_disjoint() {
    let mut rng = Rng::new(0x5A6);
    for _ in 0..64 {
        let b = Polyhedron::from_constraints(3, halfspaces(&mut rng, 1, 3));
        let diff = Region::universe(3).subtract(&b);
        let probe = probe3(&mut rng);
        let hits = diff.pieces().iter().filter(|p| p.contains(&probe)).count();
        assert!(hits <= 1, "disjoint pieces: point hit {hits} pieces");
    }
}

/// subset_of agrees with pointwise membership on witnesses.
#[test]
fn subset_of_no_false_positives() {
    let mut rng = Rng::new(0x5A7);
    for _ in 0..64 {
        let a = Polyhedron::from_constraints(3, halfspaces(&mut rng, 0, 3));
        let b = Polyhedron::from_constraints(3, halfspaces(&mut rng, 0, 3));
        if a.subset_of(&b) {
            if let Some(w) = a.sample() {
                assert!(b.contains(&w));
            }
        }
    }
}
