//! # offload-pta
//!
//! Memory abstraction and pointer analysis for the offloading compiler
//! (§2.3 of *Wang & Li, PLDI 2004*).
//!
//! At compile time, every run-time memory address is represented by a
//! typed **abstract memory location** ([`AbsLoc`]): one per global, one
//! per stack-resident local, one per dynamic allocation site (summarizing
//! every object it allocates — the paper's `A6`), and one per virtual
//! register (scalars that flow between tasks). A flow- and
//! context-insensitive inclusion-based (Andersen-style) points-to analysis
//! ([`PointsTo::analyze`]) resolves what each pointer may reference,
//! including function pointers for indirect call sites.
//!
//! On top of it, [`ModRef::compute`] classifies each task's accesses per
//! abstract location — *definite* writes, *possible/partial* writes, and
//! *upward-exposed* reads — exactly the inputs of the paper's data
//! validity state constraints (§2.4).
//!
//! ```
//! use offload_lang::frontend;
//! use offload_ir::lower;
//! use offload_pta::PointsTo;
//!
//! let checked = frontend(offload_lang::examples_src::FIGURE4)?;
//! let module = lower(&checked);
//! let pta = PointsTo::analyze(&module);
//! // One allocation site in `build` (the paper's A6).
//! assert_eq!(pta.alloc_site_locs().count(), 1);
//! # Ok::<(), offload_lang::LangError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod andersen;
mod modref;

pub use andersen::{AbsLoc, AbsLocId, PointsTo, Target, TargetSet};
pub use modref::{AccessSummary, ModRef, TaskAccess};
