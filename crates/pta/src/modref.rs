//! Per-task access classification (mod/ref) over abstract memory
//! locations — the inputs to the paper's data validity state constraints.
//!
//! For each task and each abstract location, this module decides:
//!
//! * **definite write** — the whole data item is certainly overwritten
//!   (register assignments, and stores through a unique non-summary
//!   pointer to a one-slot object);
//! * **possible/partial write** — anything weaker (array element stores,
//!   stores through may-aliases, stores into summary sites), triggering
//!   the paper's *conservative constraint*;
//! * **upward-exposed read** — a read not preceded by a definite write to
//!   the same item within the task (straight-line tracking inside each
//!   segment; conservatively exposed otherwise), triggering the *read
//!   constraint*;
//! * **any access** — for the data access state constraints `Ns`/`Nc` of
//!   dynamically allocated data.
//!
//! Calls are modeled the way the runtime implements RPC: the caller task
//! reads argument registers; the *callee entry task* definitely writes the
//! parameter registers; the *continuation task* (after the call) definitely
//! writes the return-value register. Parameter and return values
//! themselves travel inside the scheduling message (their cost is part of
//! the task-scheduling constants), so they never appear as separate data
//! transfers.

use crate::andersen::{AbsLocId, PointsTo};
use offload_ir::{Callee, FuncId, Inst, LocalId, Module, Operand};
use offload_tcfg::{SegmentEnd, TaskId, Tcfg};
use std::collections::{BTreeMap, BTreeSet};

/// Access summary of one task for one abstract location.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct AccessSummary {
    /// The task contains a read of the item not preceded (straight-line)
    /// by a definite write inside the task.
    pub upward_exposed_read: bool,
    /// The task definitely overwrites the whole item at least once.
    pub definite_write: bool,
    /// The task may write the item without certainly overwriting all of it.
    pub partial_write: bool,
}

impl AccessSummary {
    /// Any write at all.
    pub fn writes(&self) -> bool {
        self.definite_write || self.partial_write
    }

    /// Any access at all.
    pub fn accesses(&self) -> bool {
        self.upward_exposed_read || self.writes()
    }
}

/// Per-task access map.
#[derive(Debug, Clone, Default)]
pub struct TaskAccess {
    /// Summary per accessed location (untouched locations are absent).
    pub per_loc: BTreeMap<AbsLocId, AccessSummary>,
}

impl TaskAccess {
    fn summary_mut(&mut self, loc: AbsLocId) -> &mut AccessSummary {
        self.per_loc.entry(loc).or_default()
    }

    /// The summary for a location (default = no access).
    pub fn of(&self, loc: AbsLocId) -> AccessSummary {
        self.per_loc.get(&loc).copied().unwrap_or_default()
    }
}

/// Mod/ref information for every task of a TCFG.
#[derive(Debug, Clone)]
pub struct ModRef {
    tasks: Vec<TaskAccess>,
}

impl ModRef {
    /// Computes mod/ref for all tasks.
    pub fn compute(module: &Module, tcfg: &Tcfg, pta: &PointsTo) -> ModRef {
        let mut tasks: Vec<TaskAccess> = vec![TaskAccess::default(); tcfg.tasks().len()];

        for (ti, task) in tcfg.tasks().iter().enumerate() {
            let access = &mut tasks[ti];
            for &sid in &task.segments {
                let seg = tcfg.segment(sid);
                let func = seg.func;
                let block = &module.function(func).blocks[seg.block.index()];
                // Straight-line definite-write tracking within the segment.
                let mut written: BTreeSet<AbsLocId> = BTreeSet::new();
                for idx in seg.range.0..seg.range.1 {
                    classify_inst(module, pta, func, &block.insts[idx], access, &mut written);
                }
                // Terminator condition reads.
                if seg.end == SegmentEnd::Term {
                    if let offload_ir::Terminator::Branch { cond, .. } = &block.term {
                        read_operand(pta, func, *cond, access, &written);
                    } else if let offload_ir::Terminator::Return(Some(op)) = &block.term {
                        read_operand(pta, func, *op, access, &written);
                    }
                }
            }
        }

        // Call boundary effects: callee entry tasks definitely write their
        // parameter registers; continuation tasks definitely write the
        // call destination register.
        for (si, seg) in tcfg.segments().iter().enumerate() {
            if let SegmentEnd::Call { inst, targets } = &seg.end {
                let call = &module.function(seg.func).blocks[seg.block.index()].insts[*inst];
                let Inst::Call { dst, .. } = call else {
                    unreachable!("segment ends at call")
                };
                for &callee in targets {
                    let entry_seg = tcfg
                        .block_entry_segment(callee, module.function(callee).entry)
                        .expect("function entry segment");
                    let entry_task = tcfg.task_of(entry_seg);
                    for &p in &module.function(callee).params {
                        let loc = pta
                            .id_of(crate::AbsLoc::Reg {
                                func: callee,
                                local: p,
                            })
                            .expect("parameter registers are locations");
                        tasks[entry_task.index()].summary_mut(loc).definite_write = true;
                    }
                }
                if let Some(d) = dst {
                    // The continuation segment follows the call segment.
                    let cont = offload_tcfg::SegmentId(si as u32 + 1);
                    let cont_task = tcfg.task_of(cont);
                    let loc = pta
                        .id_of(crate::AbsLoc::Reg {
                            func: seg.func,
                            local: *d,
                        })
                        .expect("destination register is a location");
                    tasks[cont_task.index()].summary_mut(loc).definite_write = true;
                }
            }
        }

        ModRef { tasks }
    }

    /// Access map of one task.
    pub fn task(&self, id: TaskId) -> &TaskAccess {
        &self.tasks[id.index()]
    }

    /// Every location accessed by any task.
    pub fn touched_locs(&self) -> BTreeSet<AbsLocId> {
        self.tasks
            .iter()
            .flat_map(|t| t.per_loc.keys().copied())
            .collect()
    }

    /// Tasks that access a given location at all.
    pub fn accessors(&self, loc: AbsLocId) -> Vec<TaskId> {
        self.tasks
            .iter()
            .enumerate()
            .filter(|(_, t)| t.of(loc).accesses())
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }
}

fn read_operand(
    pta: &PointsTo,
    func: FuncId,
    op: Operand,
    access: &mut TaskAccess,
    written: &BTreeSet<AbsLocId>,
) {
    if let Operand::Local(l) = op {
        read_reg(pta, func, l, access, written);
    }
}

fn read_reg(
    pta: &PointsTo,
    func: FuncId,
    l: LocalId,
    access: &mut TaskAccess,
    written: &BTreeSet<AbsLocId>,
) {
    if let Some(loc) = pta.id_of(crate::AbsLoc::Reg { func, local: l }) {
        if !written.contains(&loc) {
            access.summary_mut(loc).upward_exposed_read = true;
        } else {
            // Still an access (for Ns/Nc), without upward exposure.
            access.summary_mut(loc);
        }
    }
}

fn write_reg(
    pta: &PointsTo,
    func: FuncId,
    l: LocalId,
    access: &mut TaskAccess,
    written: &mut BTreeSet<AbsLocId>,
) {
    if let Some(loc) = pta.id_of(crate::AbsLoc::Reg { func, local: l }) {
        access.summary_mut(loc).definite_write = true;
        written.insert(loc);
    }
}

fn classify_inst(
    module: &Module,
    pta: &PointsTo,
    func: FuncId,
    inst: &Inst,
    access: &mut TaskAccess,
    written: &mut BTreeSet<AbsLocId>,
) {
    // Register uses first (reads happen before the def).
    match inst {
        Inst::Call { callee, args, .. } => {
            // The caller reads argument registers and, for indirect calls,
            // the function-pointer register.
            if let Callee::Indirect(op) = callee {
                read_operand(pta, func, *op, access, written);
            }
            for a in args {
                read_operand(pta, func, *a, access, written);
            }
            // Argument *pointees* are not read here: the callee reads them
            // itself, and the points-to analysis attributes those accesses
            // to the callee's tasks.
        }
        _ => {
            for u in inst.uses() {
                read_reg(pta, func, u, access, written);
            }
        }
    }

    // Memory effects.
    match inst {
        Inst::Load { addr, .. } => {
            for obj in pta.operand_objects(func, *addr) {
                // Memory reads are never straight-line killed (our definite
                // writes cover one slot; a later load may touch another).
                access.summary_mut(obj).upward_exposed_read = true;
            }
        }
        Inst::Store { addr, .. } => {
            let objs = pta.operand_objects(func, *addr);
            let unique = objs.len() == 1;
            for obj in objs {
                let loc = pta.loc(obj);
                let whole_item = pta.slots(obj) == Some(1);
                if unique && whole_item && !loc.is_summary() {
                    access.summary_mut(obj).definite_write = true;
                } else {
                    access.summary_mut(obj).partial_write = true;
                }
            }
        }
        _ => {}
    }

    // Register definition last.
    match inst {
        Inst::Call { dst, .. } => {
            // The destination write is attributed to the continuation task
            // (see `ModRef::compute`), not here.
            let _ = dst;
        }
        _ => {
            if let Some(d) = inst.def() {
                write_reg(pta, func, d, access, written);
            }
        }
    }
    let _ = module;
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::andersen::AbsLoc;
    use offload_ir::{lower, GlobalId};
    use offload_lang::frontend;
    use offload_tcfg::Tcfg;

    fn setup(src: &str) -> (Module, Tcfg, PointsTo, ModRef) {
        let m = lower(&frontend(src).unwrap());
        let pta = PointsTo::analyze(&m);
        let tcfg = Tcfg::build(&m, pta.indirect_targets());
        let mr = ModRef::compute(&m, &tcfg, &pta);
        (m, tcfg, pta, mr)
    }

    fn task_of_fn(m: &Module, tcfg: &Tcfg, name: &str) -> Vec<TaskId> {
        let f = m.func_by_name(name).unwrap();
        tcfg.tasks()
            .iter()
            .enumerate()
            .filter(|(_, t)| t.func == f)
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }

    #[test]
    fn global_array_store_is_partial() {
        let (m, tcfg, pta, mr) = setup(
            "int buf[8];
             int fill(int n) { int i; for (i = 0; i < n; i++) { buf[i] = i; } return 0; }
             void main(int n) { output(fill(n)); }",
        );
        let g = pta.id_of(AbsLoc::Global(GlobalId(0))).unwrap();
        let fill_tasks = task_of_fn(&m, &tcfg, "fill");
        let writes: Vec<_> = fill_tasks
            .iter()
            .map(|t| mr.task(*t).of(g))
            .filter(|a| a.writes())
            .collect();
        assert!(!writes.is_empty());
        assert!(writes.iter().all(|a| a.partial_write && !a.definite_write));
    }

    #[test]
    fn global_array_read_is_upward_exposed() {
        let (m, tcfg, pta, mr) = setup(
            "int buf[8];
             int sum(int n) { int i; int s; s = 0; for (i = 0; i < n; i++) { s = s + buf[i]; } return s; }
             void main(int n) { output(sum(n)); }",
        );
        let g = pta.id_of(AbsLoc::Global(GlobalId(0))).unwrap();
        let sum_tasks = task_of_fn(&m, &tcfg, "sum");
        assert!(sum_tasks
            .iter()
            .any(|t| mr.task(*t).of(g).upward_exposed_read));
    }

    #[test]
    fn callee_params_definitely_written_at_entry() {
        let (m, tcfg, pta, mr) = setup(
            "int double_it(int x) { return x * 2; }
             void main(int n) { output(double_it(n)); }",
        );
        let callee = m.func_by_name("double_it").unwrap();
        let p0 = m.function(callee).params[0];
        let loc = pta
            .id_of(AbsLoc::Reg {
                func: callee,
                local: p0,
            })
            .unwrap();
        let entry_task = task_of_fn(&m, &tcfg, "double_it")
            .into_iter()
            .find(|t| mr.task(*t).of(loc).definite_write);
        assert!(
            entry_task.is_some(),
            "parameter written by callee entry task"
        );
    }

    #[test]
    fn scalar_local_write_is_definite() {
        let (m, tcfg, pta, mr) = setup(
            "int f() { int a; a = 3; return a; }
             void main() { output(f()); }",
        );
        let f = m.func_by_name("f").unwrap();
        let ai = m
            .function(f)
            .locals
            .iter()
            .position(|l| l.name == "a")
            .unwrap();
        let loc = pta
            .id_of(AbsLoc::Reg {
                func: f,
                local: offload_ir::LocalId(ai as u32),
            })
            .unwrap();
        let tasks = task_of_fn(&m, &tcfg, "f");
        let s = tasks
            .iter()
            .map(|t| mr.task(*t).of(loc))
            .find(|s| s.writes())
            .unwrap();
        assert!(s.definite_write);
        // `a` is read only after being written in the same straight line,
        // so it is not upward-exposed there.
        assert!(!s.upward_exposed_read);
    }

    #[test]
    fn alloc_site_accesses_recorded() {
        let (m, tcfg, pta, mr) = setup(offload_lang::examples_src::FIGURE4);
        let site = pta.alloc_site_locs().next().unwrap();
        let accessors = mr.accessors(site);
        assert!(!accessors.is_empty());
        // Both build (writes) and main (reads the list) touch the site.
        let funcs: BTreeSet<FuncId> = accessors.iter().map(|t| tcfg.task(*t).func).collect();
        assert!(funcs.contains(&m.func_by_name("build").unwrap()));
        assert!(funcs.contains(&m.main));
    }

    #[test]
    fn site_writes_never_definite() {
        let (m, tcfg, pta, mr) = setup(offload_lang::examples_src::FIGURE4);
        let site = pta.alloc_site_locs().next().unwrap();
        for t in 0..tcfg.tasks().len() {
            let s = mr.task(TaskId(t as u32)).of(site);
            assert!(
                !s.definite_write,
                "summary locations admit no definite writes"
            );
        }
        let _ = m;
    }

    #[test]
    fn figure1_buffer_flow() {
        let (m, tcfg, pta, mr) = setup(offload_lang::examples_src::FIGURE1);
        let inbuf = pta
            .id_of(AbsLoc::Global(m.global_by_name("inbuf").unwrap()))
            .unwrap();
        let outbuf = pta
            .id_of(AbsLoc::Global(m.global_by_name("outbuf").unwrap()))
            .unwrap();
        // Encoder tasks read inbuf and write outbuf.
        let enc_tasks = task_of_fn(&m, &tcfg, "g_fast");
        assert!(enc_tasks
            .iter()
            .any(|t| mr.task(*t).of(inbuf).upward_exposed_read));
        assert!(enc_tasks
            .iter()
            .any(|t| mr.task(*t).of(outbuf).partial_write));
        // f's tasks write inbuf and read outbuf.
        let f_tasks = task_of_fn(&m, &tcfg, "f");
        assert!(f_tasks.iter().any(|t| mr.task(*t).of(inbuf).partial_write));
        assert!(f_tasks
            .iter()
            .any(|t| mr.task(*t).of(outbuf).upward_exposed_read));
    }
}
