//! Inclusion-based (Andersen-style) points-to analysis over the IR.
//!
//! Flow- and context-insensitive, field-insensitive at the object level
//! (a pointer into an aggregate aliases the whole object), matching the
//! paper's choice of "a .ow and context insensitive point-to analysis
//! algorithm similar to [Andersen 1994]" (§5).

use offload_ir::{
    AllocSiteId, BlockId, Callee, FuncId, GlobalId, Inst, LocalId, Module, Operand, Terminator,
};
use offload_tcfg::IndirectTargets;
use std::collections::{BTreeSet, HashMap};
use std::fmt;

/// Dense id of an [`AbsLoc`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct AbsLocId(pub u32);

impl AbsLocId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for AbsLocId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "A{}", self.0)
    }
}

/// An abstract memory location (§2.3 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum AbsLoc {
    /// A global object.
    Global(GlobalId),
    /// A stack-resident local (aggregate or address-taken scalar).
    Local {
        /// Owning function.
        func: FuncId,
        /// The memory local.
        local: LocalId,
    },
    /// A virtual register (scalar local). Registers are data items too:
    /// their values must be transferred when consecutive tasks run on
    /// different hosts.
    Reg {
        /// Owning function.
        func: FuncId,
        /// The register local.
        local: LocalId,
    },
    /// All memory allocated at one `alloc` site (a summary location —
    /// the paper's `A6`).
    Site(AllocSiteId),
}

impl AbsLoc {
    /// Returns `true` if the location summarizes several run-time objects
    /// (writes through it can never be definite).
    pub fn is_summary(&self) -> bool {
        matches!(self, AbsLoc::Site(_))
    }

    /// Returns `true` for dynamically allocated locations (subject to the
    /// registration mechanism and its cost, §3.1).
    pub fn is_dynamic(&self) -> bool {
        matches!(self, AbsLoc::Site(_))
    }
}

/// A points-to target: a memory object or a function (for `fn` values).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Target {
    /// Points to a memory object.
    Loc(AbsLocId),
    /// Holds a function pointer.
    Fun(FuncId),
}

/// A set of points-to targets.
pub type TargetSet = BTreeSet<Target>;

/// Result of the points-to analysis.
#[derive(Debug, Clone)]
pub struct PointsTo {
    locs: Vec<AbsLoc>,
    loc_ids: HashMap<AbsLoc, AbsLocId>,
    /// Human-readable names of the locations (for diagnostics).
    names: Vec<String>,
    /// Slot footprint of each location (`None` for dynamic sites, whose
    /// size is parametric).
    slots: Vec<Option<u32>>,
    /// Points-to set of each register `(func, local)`.
    reg_pts: HashMap<(FuncId, LocalId), TargetSet>,
    /// Points-to set of each location's *contents* (pointers stored in it).
    obj_pts: Vec<TargetSet>,
    /// Resolved targets of indirect call sites.
    indirect: IndirectTargets,
}

impl PointsTo {
    /// Runs the analysis to a fixpoint over the whole module.
    pub fn analyze(module: &Module) -> PointsTo {
        Analyzer::new(module).run()
    }

    /// All abstract memory locations.
    pub fn locs(&self) -> &[AbsLoc] {
        &self.locs
    }

    /// The id of a location.
    pub fn id_of(&self, loc: AbsLoc) -> Option<AbsLocId> {
        self.loc_ids.get(&loc).copied()
    }

    /// The location with the given id.
    pub fn loc(&self, id: AbsLocId) -> AbsLoc {
        self.locs[id.index()]
    }

    /// Human-readable name of a location.
    pub fn name(&self, id: AbsLocId) -> &str {
        &self.names[id.index()]
    }

    /// Slot footprint of a location (`None` for parametric-size sites).
    pub fn slots(&self, id: AbsLocId) -> Option<u32> {
        self.slots[id.index()]
    }

    /// Points-to set of a location's *contents* (the pointers stored in
    /// the object).
    pub fn contents(&self, id: AbsLocId) -> &TargetSet {
        &self.obj_pts[id.index()]
    }

    /// Locations a register may point to (empty set for non-pointers).
    pub fn reg_points_to(&self, func: FuncId, local: LocalId) -> &TargetSet {
        static EMPTY: std::sync::OnceLock<TargetSet> = std::sync::OnceLock::new();
        self.reg_pts
            .get(&(func, local))
            .unwrap_or_else(|| EMPTY.get_or_init(TargetSet::new))
    }

    /// Locations an operand may point to.
    pub fn operand_points_to(&self, func: FuncId, op: Operand) -> TargetSet {
        match op {
            Operand::Const(_) => TargetSet::new(),
            Operand::Local(l) => self.reg_points_to(func, l).clone(),
        }
    }

    /// The memory objects (not functions) an operand may reference.
    pub fn operand_objects(&self, func: FuncId, op: Operand) -> Vec<AbsLocId> {
        self.operand_points_to(func, op)
            .into_iter()
            .filter_map(|t| match t {
                Target::Loc(l) => Some(l),
                Target::Fun(_) => None,
            })
            .collect()
    }

    /// Per-site targets for indirect calls, ready to feed
    /// [`offload_tcfg::Tcfg::build`].
    pub fn indirect_targets(&self) -> &IndirectTargets {
        &self.indirect
    }

    /// Ids of all allocation-site locations.
    pub fn alloc_site_locs(&self) -> impl Iterator<Item = AbsLocId> + '_ {
        self.locs.iter().enumerate().filter_map(|(i, l)| match l {
            AbsLoc::Site(_) => Some(AbsLocId(i as u32)),
            _ => None,
        })
    }
}

struct Analyzer<'m> {
    module: &'m Module,
    locs: Vec<AbsLoc>,
    loc_ids: HashMap<AbsLoc, AbsLocId>,
    names: Vec<String>,
    slots: Vec<Option<u32>>,
    reg_pts: HashMap<(FuncId, LocalId), TargetSet>,
    obj_pts: Vec<TargetSet>,
    /// Return-value points-to set per function.
    ret_pts: HashMap<FuncId, TargetSet>,
}

impl<'m> Analyzer<'m> {
    fn new(module: &'m Module) -> Self {
        let mut a = Analyzer {
            module,
            locs: Vec::new(),
            loc_ids: HashMap::new(),
            names: Vec::new(),
            slots: Vec::new(),
            reg_pts: HashMap::new(),
            obj_pts: Vec::new(),
            ret_pts: HashMap::new(),
        };
        // Enumerate abstract locations: globals, memory locals, registers,
        // alloc sites (in that order, deterministically).
        for (gi, g) in module.globals.iter().enumerate() {
            a.add_loc(
                AbsLoc::Global(GlobalId(gi as u32)),
                g.name.clone(),
                Some(g.slots),
            );
        }
        for (fi, f) in module.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for (li, l) in f.locals.iter().enumerate() {
                let lid = LocalId(li as u32);
                match &l.kind {
                    offload_ir::LocalKind::Memory { slots } => {
                        a.add_loc(
                            AbsLoc::Local {
                                func: fid,
                                local: lid,
                            },
                            format!("{}::{}", f.name, l.name),
                            Some(*slots),
                        );
                    }
                    offload_ir::LocalKind::Register => {
                        a.add_loc(
                            AbsLoc::Reg {
                                func: fid,
                                local: lid,
                            },
                            format!("{}::{}", f.name, l.name),
                            Some(1),
                        );
                    }
                }
            }
        }
        for s in 0..module.alloc_sites {
            a.add_loc(AbsLoc::Site(AllocSiteId(s)), format!("site{s}"), None);
        }
        a.obj_pts = vec![TargetSet::new(); a.locs.len()];
        a
    }

    fn add_loc(&mut self, loc: AbsLoc, name: String, slots: Option<u32>) -> AbsLocId {
        let id = AbsLocId(self.locs.len() as u32);
        self.locs.push(loc);
        self.loc_ids.insert(loc, id);
        self.names.push(name);
        self.slots.push(slots);
        id
    }

    fn run(mut self) -> PointsTo {
        // Iterate all transfer constraints to a fixpoint. Module sizes in
        // this project are small (hundreds of instructions), so a simple
        // round-robin pass is plenty.
        loop {
            let mut changed = false;
            for (fi, f) in self.module.functions.iter().enumerate() {
                let fid = FuncId(fi as u32);
                for block in &f.blocks {
                    for inst in &block.insts {
                        changed |= self.apply(fid, inst);
                    }
                    if let Terminator::Return(Some(op)) = &block.term {
                        let set = self.op_set(fid, *op);
                        let entry = self.ret_pts.entry(fid).or_default();
                        let before = entry.len();
                        entry.extend(set);
                        changed |= entry.len() != before;
                    }
                }
            }
            if !changed {
                break;
            }
        }
        let indirect = self.collect_indirect_targets();
        PointsTo {
            locs: self.locs,
            loc_ids: self.loc_ids,
            names: self.names,
            slots: self.slots,
            reg_pts: self.reg_pts,
            obj_pts: self.obj_pts,
            indirect,
        }
    }

    fn op_set(&self, func: FuncId, op: Operand) -> TargetSet {
        match op {
            Operand::Const(_) => TargetSet::new(),
            Operand::Local(l) => self.reg_pts.get(&(func, l)).cloned().unwrap_or_default(),
        }
    }

    fn extend_reg(&mut self, func: FuncId, reg: LocalId, add: TargetSet) -> bool {
        if add.is_empty() {
            return false;
        }
        let entry = self.reg_pts.entry((func, reg)).or_default();
        let before = entry.len();
        entry.extend(add);
        entry.len() != before
    }

    fn apply(&mut self, fid: FuncId, inst: &Inst) -> bool {
        match inst {
            Inst::Copy { dst, src } => {
                let s = self.op_set(fid, *src);
                self.extend_reg(fid, *dst, s)
            }
            Inst::AddrGlobal { dst, global } => {
                let id = self.loc_ids[&AbsLoc::Global(*global)];
                self.extend_reg(fid, *dst, TargetSet::from([Target::Loc(id)]))
            }
            Inst::AddrLocal { dst, local } => {
                let id = self.loc_ids[&AbsLoc::Local {
                    func: fid,
                    local: *local,
                }];
                self.extend_reg(fid, *dst, TargetSet::from([Target::Loc(id)]))
            }
            Inst::AddrIndex { dst, base, .. } | Inst::AddrField { dst, base, .. } => {
                // Field-insensitive: interior pointers alias the object.
                let s = self.op_set(fid, *base);
                self.extend_reg(fid, *dst, s)
            }
            Inst::Load { dst, addr } => {
                let objs = self.op_set(fid, *addr);
                let mut add = TargetSet::new();
                for t in objs {
                    if let Target::Loc(l) = t {
                        add.extend(self.obj_pts[l.index()].iter().copied());
                    }
                }
                self.extend_reg(fid, *dst, add)
            }
            Inst::Store { addr, src } => {
                let objs = self.op_set(fid, *addr);
                let vals = self.op_set(fid, *src);
                if vals.is_empty() {
                    return false;
                }
                let mut changed = false;
                for t in objs {
                    if let Target::Loc(l) = t {
                        let set = &mut self.obj_pts[l.index()];
                        let before = set.len();
                        set.extend(vals.iter().copied());
                        changed |= set.len() != before;
                    }
                }
                changed
            }
            Inst::Alloc { dst, site, .. } => {
                let id = self.loc_ids[&AbsLoc::Site(*site)];
                self.extend_reg(fid, *dst, TargetSet::from([Target::Loc(id)]))
            }
            Inst::LoadFunc { dst, func } => {
                self.extend_reg(fid, *dst, TargetSet::from([Target::Fun(*func)]))
            }
            Inst::Call { dst, callee, args } => {
                let targets: Vec<FuncId> = match callee {
                    Callee::Direct(f) => vec![*f],
                    Callee::Indirect(op) => self
                        .op_set(fid, *op)
                        .into_iter()
                        .filter_map(|t| match t {
                            Target::Fun(f) => Some(f),
                            Target::Loc(_) => None,
                        })
                        .collect(),
                };
                let mut changed = false;
                for callee_id in targets {
                    let callee_def = self.module.function(callee_id);
                    // Arguments flow into parameters (arity mismatches on
                    // indirect calls are dynamically rejected; statically
                    // we propagate the common prefix).
                    let params: Vec<LocalId> = callee_def.params.clone();
                    for (p, a) in params.iter().zip(args) {
                        let s = self.op_set(fid, *a);
                        changed |= self.extend_reg(callee_id, *p, s);
                    }
                    // Return values flow into the call destination.
                    if let Some(d) = dst {
                        let s = self.ret_pts.get(&callee_id).cloned().unwrap_or_default();
                        changed |= self.extend_reg(fid, *d, s);
                    }
                }
                changed
            }
            Inst::Un { .. } | Inst::Bin { .. } | Inst::Input { .. } | Inst::Output { .. } => false,
        }
    }

    fn collect_indirect_targets(&self) -> IndirectTargets {
        let mut out = IndirectTargets::default();
        for (fi, f) in self.module.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for (bi, block) in f.blocks.iter().enumerate() {
                for (ii, inst) in block.insts.iter().enumerate() {
                    if let Inst::Call {
                        callee: Callee::Indirect(op),
                        ..
                    } = inst
                    {
                        let targets: Vec<FuncId> = self
                            .op_set(fid, *op)
                            .into_iter()
                            .filter_map(|t| match t {
                                Target::Fun(fun) => Some(fun),
                                Target::Loc(_) => None,
                            })
                            .collect();
                        out.per_site.insert((fid, BlockId(bi as u32), ii), targets);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_ir::lower;
    use offload_lang::frontend;

    fn pta(src: &str) -> (Module, PointsTo) {
        let m = lower(&frontend(src).unwrap());
        let p = PointsTo::analyze(&m);
        (m, p)
    }

    /// Finds the register holding variable `name` in function `func`.
    fn reg_of(m: &Module, func: &str, name: &str) -> (FuncId, LocalId) {
        let fid = m.func_by_name(func).unwrap();
        let f = m.function(fid);
        let li = f.locals.iter().position(|l| l.name == name).unwrap();
        (fid, LocalId(li as u32))
    }

    #[test]
    fn pointer_to_global() {
        let (m, p) = pta("int data[8];
             void main() { int *q; q = &data[0]; *q = 1; output(*q); }");
        let (f, q) = reg_of(&m, "main", "q");
        let pts = p.reg_points_to(f, q);
        assert_eq!(pts.len(), 1);
        let Target::Loc(id) = pts.iter().next().unwrap() else {
            panic!()
        };
        assert_eq!(p.loc(*id), AbsLoc::Global(GlobalId(0)));
    }

    #[test]
    fn alloc_site_summary() {
        let (m, p) = pta(offload_lang::examples_src::FIGURE4);
        // p and q in `build` point to the single site.
        let (f, pr) = reg_of(&m, "build", "p");
        let pts = p.reg_points_to(f, pr);
        assert!(pts
            .iter()
            .any(|t| matches!(t, Target::Loc(l) if p.loc(*l) == AbsLoc::Site(AllocSiteId(0)))));
        // The site's contents point back to the site (next pointers) —
        // the linked-list cycle through the summary node.
        let site = p.id_of(AbsLoc::Site(AllocSiteId(0))).unwrap();
        assert!(p.obj_pts[site.index()]
            .iter()
            .any(|t| matches!(t, Target::Loc(l) if *l == site)));
    }

    #[test]
    fn flow_through_call_and_return() {
        let (m, p) = pta("int g[4];
             int *identity(int *x) { return x; }
             void main() { int *r; r = identity(&g[0]); *r = 5; output(*r); }");
        let (f, r) = reg_of(&m, "main", "r");
        let pts = p.reg_points_to(f, r);
        assert!(pts
            .iter()
            .any(|t| matches!(t, Target::Loc(l) if p.loc(*l) == AbsLoc::Global(GlobalId(0)))));
    }

    #[test]
    fn function_pointer_targets() {
        let (m, p) = pta("int a(int x) { return x; }
             int b(int x) { return x + 1; }
             void main(int n) { fn g; if (n) { g = &a; } else { g = &b; } output(g(n)); }");
        let targets = p.indirect_targets();
        assert_eq!(targets.per_site.len(), 1);
        let ts = targets.per_site.values().next().unwrap();
        let names: Vec<&str> = ts.iter().map(|f| m.function(*f).name.as_str()).collect();
        assert!(names.contains(&"a") && names.contains(&"b"));
    }

    #[test]
    fn function_pointer_precise_single_target() {
        let (m, p) = pta("int a(int x) { return x; }
             int b(int x) { return x + 1; }
             void main(int n) { fn g; g = &a; output(g(n)); if (n < 0) { g = &b; } }");
        // The call site sees both &a (before) and — flow-insensitively —
        // &b (after). Andersen is flow-insensitive, so both appear.
        let ts = p.indirect_targets().per_site.values().next().unwrap();
        assert_eq!(ts.len(), 2, "flow-insensitive: both targets possible");
        let _ = m;
    }

    #[test]
    fn store_through_pointer_updates_contents() {
        let (m, p) = pta("struct node { struct node *next; };
             void main() {
                 struct node *a; struct node *b;
                 a = alloc(struct node, 1);
                 b = alloc(struct node, 1);
                 a->next = b;
                 output(0);
             }");
        let site_a = p.id_of(AbsLoc::Site(AllocSiteId(0))).unwrap();
        let site_b = p.id_of(AbsLoc::Site(AllocSiteId(1))).unwrap();
        assert!(p.obj_pts[site_a.index()].contains(&Target::Loc(site_b)));
        let _ = m;
    }

    #[test]
    fn address_taken_local_is_abstract_location() {
        let (m, p) = pta("void main() { int x; int *q; q = &x; *q = 2; output(x); }");
        let fid = m.main;
        let f = m.function(fid);
        let xi = f.locals.iter().position(|l| l.name == "x").unwrap();
        let loc = AbsLoc::Local {
            func: fid,
            local: LocalId(xi as u32),
        };
        assert!(p.id_of(loc).is_some());
        let (_, q) = reg_of(&m, "main", "q");
        let pts = p.reg_points_to(fid, q);
        assert!(pts
            .iter()
            .any(|t| matches!(t, Target::Loc(l) if p.loc(*l) == loc)));
    }

    #[test]
    fn registers_are_locations_too() {
        let (m, p) = pta("void main(int n) { output(n); }");
        let (fid, n) = reg_of(&m, "main", "n");
        assert!(p
            .id_of(AbsLoc::Reg {
                func: fid,
                local: n
            })
            .is_some());
    }

    #[test]
    fn names_and_slots() {
        let (_, p) = pta("int buf[16]; void main() { buf[0] = 1; output(buf[0]); }");
        let g = p.id_of(AbsLoc::Global(GlobalId(0))).unwrap();
        assert_eq!(p.name(g), "buf");
        assert_eq!(p.slots(g), Some(16));
    }
}
