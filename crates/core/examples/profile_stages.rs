//! Developer tool: stage-by-stage timing of the analysis pipeline on
//! the Figure 1 program (set `OFFLOAD_POLY_DEBUG=1` for projection traces).

use offload_core::*;
use std::time::Instant;

fn main() {
    let src = offload_lang::examples_src::FIGURE1;
    let t0 = Instant::now();
    let checked = offload_lang::frontend(src).unwrap();
    let module = offload_ir::lower(&checked);
    let pta = offload_pta::PointsTo::analyze(&module);
    let tcfg = offload_tcfg::Tcfg::build(&module, pta.indirect_targets());
    let modref = offload_pta::ModRef::compute(&module, &tcfg, &pta);
    let mut symbolic = offload_symbolic::Symbolic::analyze(&module, pta.indirect_targets());
    let items = ItemTable::build(&tcfg, &pta, &modref, &symbolic);
    eprintln!(
        "frontend+analyses: {:?}; tasks={} items={} edges={}",
        t0.elapsed(),
        tcfg.tasks().len(),
        items.items.len(),
        tcfg.edges().len()
    );
    let t1 = Instant::now();
    let bounds = ParamBounds::uniform(3, 0, None);
    let network = NetBuilder {
        module: &module,
        tcfg: &tcfg,
        modref: &modref,
        symbolic: &mut symbolic,
        items: &items,
        cost: &CostModel::ipaq_testbed(),
        bounds: &bounds,
        validity_model: Default::default(),
    }
    .build();
    eprintln!(
        "netbuild: {:?}; nodes={} arcs={} dims={} space-constraints={}",
        t1.elapsed(),
        network.net.node_count(),
        network.net.arcs().len(),
        network.dims.len(),
        network.param_space.constraints().len()
    );
    let t2 = Instant::now();
    let (snet, _map) = network.net.simplify(&network.param_space);
    eprintln!(
        "simplify: {:?}; nodes={} arcs={}",
        t2.elapsed(),
        snet.node_count(),
        snet.arcs().len()
    );
    let t3 = Instant::now();
    let point: Vec<offload_poly::Rational> = network.param_space.sample().unwrap();
    eprintln!(
        "sample: {:?} point={:?}",
        t3.elapsed(),
        point.iter().map(|r| r.to_f64()).collect::<Vec<_>>()
    );
    let t4 = Instant::now();
    let mf = snet.solve_at(&point).unwrap();
    eprintln!("solve_at: {:?} value={}", t4.elapsed(), mf.value);
    let t5 = Instant::now();
    let region = snet.optimality_region(&mf.source_side, &network.param_space);
    eprintln!(
        "optimality_region: {:?} constraints={}",
        t5.elapsed(),
        region.constraints().len()
    );
}
