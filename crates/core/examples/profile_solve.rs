//! Developer tool: end-to-end analysis timing and the discovered
//! choices/guards for the Figure 1 program.

use offload_core::*;
use std::time::Instant;

fn main() {
    let src = offload_lang::examples_src::FIGURE1;
    let t = Instant::now();
    let a = Analysis::from_source(src, AnalysisOptions::default()).unwrap();
    eprintln!("full analysis: {:?}", t.elapsed());
    eprintln!(
        "choices: {} iterations: {} merged: {}",
        a.partition.choices.len(),
        a.partition.stats.iterations,
        a.partition.stats.merged_choices
    );
    for (i, g) in a.guards().iter().enumerate() {
        let c = &a.partition.choices[i];
        eprintln!("choice {i} local={} when: {g}", c.is_all_local());
    }
}
