//! Run-time dispatch: selecting the partitioning choice that matches the
//! current parameter values (the transformed program of Figure 2).
//!
//! The compiler emits one guard per partitioning choice — a system of
//! linear constraints over the monomials of the parameters. At program
//! start the dispatcher evaluates the monomials from the actual parameter
//! values (resolving auto-annotated condition dummies exactly, and
//! user-annotated dummies from the supplied [`Annotations`]) and picks the
//! choice whose region contains the point.

use crate::netbuild::PartitionNetwork;
use crate::parametric::{cut_cost_at, ParametricPartition, Partition};
use offload_poly::Rational;
use offload_symbolic::{Atom, DummyOrigin, ParamDict, SymExpr};
use std::collections::HashMap;
use std::fmt;

/// How an annotated dummy is evaluated at dispatch time.
#[derive(Debug, Clone)]
pub enum AnnotationRule {
    /// A polynomial in the parameters.
    Expr(SymExpr),
    /// An arbitrary function of the parameter values (e.g. `log2(n)` for
    /// a doubling loop's trip count, which no polynomial expresses).
    Func(fn(&[Rational]) -> Rational),
}

/// User annotations: one rule per unresolvable dummy (§3.4).
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    /// `dummy id → evaluation rule`.
    pub exprs: HashMap<u32, AnnotationRule>,
}

impl Annotations {
    /// Annotates one dummy with a polynomial.
    pub fn set(&mut self, dummy: u32, expr: SymExpr) {
        self.exprs.insert(dummy, AnnotationRule::Expr(expr));
    }

    /// Annotates one dummy with an arbitrary function of the parameters.
    pub fn set_fn(&mut self, dummy: u32, f: fn(&[Rational]) -> Rational) {
        self.exprs.insert(dummy, AnnotationRule::Func(f));
    }
}

/// Error selecting a partition at run time.
#[derive(Debug, Clone)]
pub enum DispatchError {
    /// A dummy parameter that affects the partitioning decision has no
    /// annotation and no automatic evaluation rule.
    MissingAnnotation {
        /// The dummy's id.
        dummy: u32,
        /// Where it came from.
        site: String,
    },
    /// Wrong number of run-time parameter values.
    ArityMismatch {
        /// Parameters expected by the analyzed program.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::MissingAnnotation { dummy, site } => {
                write!(
                    f,
                    "dummy parameter d{dummy} ({site}) needs a user annotation"
                )
            }
            DispatchError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} parameter values, got {got}")
            }
        }
    }
}
impl std::error::Error for DispatchError {}

/// The run-time partition selector.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    dict: ParamDict,
    annotations: Annotations,
}

impl Dispatcher {
    /// Creates a dispatcher for a program's dictionary and annotations.
    pub fn new(dict: ParamDict, annotations: Annotations) -> Self {
        Dispatcher { dict, annotations }
    }

    /// The dictionary in use.
    pub fn dict(&self) -> &ParamDict {
        &self.dict
    }

    /// The annotations in use.
    pub fn annotations(&self) -> &Annotations {
        &self.annotations
    }

    /// Evaluates one atom given concrete parameter values.
    fn atom_value(
        &self,
        a: Atom,
        params: &[Rational],
        depth: u32,
    ) -> Result<Rational, DispatchError> {
        if depth > 16 {
            // Pathological self-referential annotation; treat as missing.
            return Err(DispatchError::MissingAnnotation {
                dummy: u32::MAX,
                site: "cyclic".into(),
            });
        }
        match a {
            Atom::Param(i) => Ok(params[i as usize].clone()),
            Atom::Dummy(d) => {
                if let Some(rule) = self.annotations.exprs.get(&d) {
                    return match rule {
                        AnnotationRule::Expr(e) => self.eval_expr(e, params, depth + 1),
                        AnnotationRule::Func(f) => Ok(f(params)),
                    };
                }
                match self.dict.dummies().get(d as usize) {
                    Some(DummyOrigin::AutoCond { op, lhs, rhs, .. }) => {
                        let l = self.eval_expr(lhs, params, depth + 1)?;
                        let r = self.eval_expr(rhs, params, depth + 1)?;
                        use offload_ir::IrBinOp::*;
                        let b = match op {
                            Eq => l == r,
                            Ne => l != r,
                            Lt => l < r,
                            Le => l <= r,
                            Gt => l > r,
                            Ge => l >= r,
                            _ => false,
                        };
                        Ok(Rational::from(b as i64))
                    }
                    Some(other) => Err(DispatchError::MissingAnnotation {
                        dummy: d,
                        site: other.site().to_string(),
                    }),
                    None => Err(DispatchError::MissingAnnotation {
                        dummy: d,
                        site: "unknown".to_string(),
                    }),
                }
            }
        }
    }

    /// Evaluates a symbolic expression at concrete parameter values.
    pub fn eval_expr(
        &self,
        e: &SymExpr,
        params: &[Rational],
        depth: u32,
    ) -> Result<Rational, DispatchError> {
        let err = std::cell::RefCell::new(None);
        let v = e.eval(&self.dict, &|a| match self.atom_value(a, params, depth) {
            Ok(v) => v,
            Err(e) => {
                err.borrow_mut().get_or_insert(e);
                Rational::zero()
            }
        });
        match err.into_inner() {
            Some(e) => Err(e),
            None => Ok(v),
        }
    }

    /// Computes the linearized-dimension point for concrete parameters.
    pub fn dim_point(
        &self,
        pnet: &PartitionNetwork,
        params: &[Rational],
    ) -> Result<Vec<Rational>, DispatchError> {
        let err = std::cell::RefCell::new(None);
        let point = pnet
            .dims
            .iter()
            .map(|m| {
                self.dict
                    .eval_monomial(*m, &|a| match self.atom_value(a, params, 0) {
                        Ok(v) => v,
                        Err(e) => {
                            err.borrow_mut().get_or_insert(e);
                            Rational::zero()
                        }
                    })
            })
            .collect();
        match err.into_inner() {
            Some(e) => Err(e),
            None => Ok(point),
        }
    }

    /// Selects the partitioning choice for concrete parameter values:
    /// the choice whose region contains the point, falling back to the
    /// cheapest cut when the point lies outside every recorded region
    /// (e.g. outside the declared parameter bounds).
    ///
    /// # Errors
    ///
    /// Propagates [`DispatchError`] for missing annotations or wrong
    /// arity.
    pub fn select(
        &self,
        pnet: &PartitionNetwork,
        partition: &ParametricPartition,
        params: &[i64],
    ) -> Result<usize, DispatchError> {
        if params.len() != self.dict.param_count() {
            return Err(DispatchError::ArityMismatch {
                expected: self.dict.param_count(),
                got: params.len(),
            });
        }
        let params: Vec<Rational> = params.iter().map(|&v| Rational::from(v)).collect();
        let point = self.dim_point(pnet, &params)?;
        for (i, choice) in partition.choices.iter().enumerate() {
            if choice.region.contains(&point) {
                offload_obs::event!("runtime", "dispatch", choice = i, matched_region = true,);
                if offload_obs::enabled() {
                    offload_obs::counter("runtime.dispatch.region_matches").inc();
                }
                return Ok(i);
            }
        }
        // Outside the declared space: pick the cheapest known cut.
        let mut best: Option<(usize, Rational)> = None;
        for (i, choice) in partition.choices.iter().enumerate() {
            if let Some(v) = cut_cost_at(pnet, choice, &point) {
                best = Some(match best {
                    None => (i, v),
                    Some((_, bv)) if v < bv => (i, v),
                    Some(b) => b,
                });
            }
        }
        let selected = best.map(|(i, _)| i).unwrap_or(0);
        offload_obs::event!(
            "runtime",
            "dispatch",
            choice = selected,
            matched_region = false,
        );
        if offload_obs::enabled() {
            offload_obs::counter("runtime.dispatch.fallbacks").inc();
        }
        Ok(selected)
    }

    /// Reusable region test: does `choice`'s optimality region contain the
    /// point induced by the concrete parameter values? This is the guard
    /// of Figure 2 evaluated directly, exposed so other executors (the TCP
    /// engine, external harnesses) can re-run the dispatcher's test for a
    /// *specific* choice without reimplementing monomial evaluation.
    ///
    /// # Errors
    ///
    /// Propagates [`DispatchError`] for missing annotations or wrong
    /// arity.
    pub fn region_contains(
        &self,
        pnet: &PartitionNetwork,
        choice: &Partition,
        params: &[i64],
    ) -> Result<bool, DispatchError> {
        if params.len() != self.dict.param_count() {
            return Err(DispatchError::ArityMismatch {
                expected: self.dict.param_count(),
                got: params.len(),
            });
        }
        let params: Vec<Rational> = params.iter().map(|&v| Rational::from(v)).collect();
        let point = self.dim_point(pnet, &params)?;
        Ok(choice.region.contains(&point))
    }

    /// Renders the guard condition of a choice in the style of Figure 2,
    /// e.g. `(z - 12 > 0) && (6 - 5*y > 0)`.
    pub fn guard_text(&self, pnet: &PartitionNetwork, choice: &Partition) -> String {
        let dict = &self.dict;
        let dims = pnet.dims.clone();
        let names = move |i: usize| dict.monomial_name(dims[i]);
        choice.region.display_with(&names)
    }
}

/// Lists the dummy parameters that actually appear in the partitioning
/// solution's regions — exactly the annotations the paper's §3.4 says are
/// required (Table 4's "No. of Annotations" counts a superset: every
/// parameter-like quantity the analysis names, auto or not).
pub fn dummies_in_solution(
    pnet: &PartitionNetwork,
    partition: &ParametricPartition,
    dict: &ParamDict,
) -> Vec<u32> {
    let mut used = std::collections::BTreeSet::new();
    for choice in &partition.choices {
        for piece in choice.region.pieces() {
            for c in piece.constraints() {
                for dim in c.expr.support() {
                    for a in dict.atoms(pnet.dims[dim]) {
                        if let Atom::Dummy(d) = a {
                            used.insert(*d);
                        }
                    }
                }
            }
        }
    }
    used.into_iter().collect()
}
