//! Run-time dispatch: selecting the partitioning choice that matches the
//! current parameter values (the transformed program of Figure 2).
//!
//! The compiler emits one guard per partitioning choice — a system of
//! linear constraints over the monomials of the parameters. At program
//! start the dispatcher evaluates the monomials from the actual parameter
//! values (resolving auto-annotated condition dummies exactly, and
//! user-annotated dummies from the supplied [`Annotations`]) and picks the
//! choice whose region contains the point.

use crate::netbuild::PartitionNetwork;
use crate::parametric::{cut_cost_at, ParametricPartition, Partition, Plan};
use offload_poly::Rational;
use offload_symbolic::{Atom, DummyOrigin, ParamDict, SymExpr};
use std::collections::HashMap;
use std::fmt;

/// How a dispatch decision was reached.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DispatchRoute {
    /// Answered by the compiled point-location DAG
    /// ([`crate::PointLocator`]) — the production path.
    Dag,
    /// Answered by the linear region scan (no locator compiled for the
    /// partition). Kept as a first-class route so the scan stays
    /// available as the differential-testing oracle.
    LinearScan,
    /// The point lies outside every region (outside the declared
    /// parameter space); the cheapest known cut was selected instead.
    Fallback,
}

impl fmt::Display for DispatchRoute {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            DispatchRoute::Dag => "dag",
            DispatchRoute::LinearScan => "linear-scan",
            DispatchRoute::Fallback => "fallback",
        })
    }
}

/// A typed dispatch decision: what to execute, which region matched, and
/// how the answer was computed.
///
/// This replaces the bare `usize` (and `(usize, Plan)` tuple) the
/// dispatcher used to hand out: callers get the executable [`Plan`], the
/// region/choice index for reporting, and the [`DispatchRoute`] for
/// observability, in one value.
#[derive(Debug, Clone, Copy)]
pub struct Decision<'a> {
    /// The executable plan for the selected choice.
    pub plan: Plan<'a>,
    /// Index of the selected choice (== its region's index; regions are
    /// pairwise disjoint, one per choice).
    pub region_id: usize,
    /// How the decision was reached.
    pub route: DispatchRoute,
}

impl Decision<'_> {
    /// The selected choice index (alias of [`Decision::region_id`]).
    pub fn choice(&self) -> usize {
        self.region_id
    }
}

/// How an annotated dummy is evaluated at dispatch time.
#[derive(Debug, Clone)]
pub enum AnnotationRule {
    /// A polynomial in the parameters.
    Expr(SymExpr),
    /// An arbitrary function of the parameter values (e.g. `log2(n)` for
    /// a doubling loop's trip count, which no polynomial expresses).
    Func(fn(&[Rational]) -> Rational),
}

/// User annotations: one rule per unresolvable dummy (§3.4).
#[derive(Debug, Clone, Default)]
pub struct Annotations {
    /// `dummy id → evaluation rule`.
    pub exprs: HashMap<u32, AnnotationRule>,
}

impl Annotations {
    /// Annotates one dummy with a polynomial.
    pub fn set(&mut self, dummy: u32, expr: SymExpr) {
        self.exprs.insert(dummy, AnnotationRule::Expr(expr));
    }

    /// Annotates one dummy with an arbitrary function of the parameters.
    pub fn set_fn(&mut self, dummy: u32, f: fn(&[Rational]) -> Rational) {
        self.exprs.insert(dummy, AnnotationRule::Func(f));
    }
}

/// Error selecting a partition at run time.
#[derive(Debug, Clone)]
pub enum DispatchError {
    /// A dummy parameter that affects the partitioning decision has no
    /// annotation and no automatic evaluation rule.
    MissingAnnotation {
        /// The dummy's id.
        dummy: u32,
        /// Where it came from.
        site: String,
    },
    /// Wrong number of run-time parameter values.
    ArityMismatch {
        /// Parameters expected by the analyzed program.
        expected: usize,
        /// Values supplied.
        got: usize,
    },
}

impl fmt::Display for DispatchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DispatchError::MissingAnnotation { dummy, site } => {
                write!(
                    f,
                    "dummy parameter d{dummy} ({site}) needs a user annotation"
                )
            }
            DispatchError::ArityMismatch { expected, got } => {
                write!(f, "expected {expected} parameter values, got {got}")
            }
        }
    }
}
impl std::error::Error for DispatchError {}

/// The run-time partition selector.
#[derive(Debug, Clone)]
pub struct Dispatcher {
    dict: ParamDict,
    annotations: Annotations,
}

impl Dispatcher {
    /// Creates a dispatcher for a program's dictionary and annotations.
    pub fn new(dict: ParamDict, annotations: Annotations) -> Self {
        Dispatcher { dict, annotations }
    }

    /// The dictionary in use.
    pub fn dict(&self) -> &ParamDict {
        &self.dict
    }

    /// The annotations in use.
    pub fn annotations(&self) -> &Annotations {
        &self.annotations
    }

    /// Evaluates one atom given concrete parameter values.
    fn atom_value(
        &self,
        a: Atom,
        params: &[Rational],
        depth: u32,
    ) -> Result<Rational, DispatchError> {
        if depth > 16 {
            // Pathological self-referential annotation; treat as missing.
            return Err(DispatchError::MissingAnnotation {
                dummy: u32::MAX,
                site: "cyclic".into(),
            });
        }
        match a {
            Atom::Param(i) => Ok(params[i as usize].clone()),
            Atom::Dummy(d) => {
                if let Some(rule) = self.annotations.exprs.get(&d) {
                    return match rule {
                        AnnotationRule::Expr(e) => self.eval_expr(e, params, depth + 1),
                        AnnotationRule::Func(f) => Ok(f(params)),
                    };
                }
                match self.dict.dummies().get(d as usize) {
                    Some(DummyOrigin::AutoCond { op, lhs, rhs, .. }) => {
                        let l = self.eval_expr(lhs, params, depth + 1)?;
                        let r = self.eval_expr(rhs, params, depth + 1)?;
                        use offload_ir::IrBinOp::*;
                        let b = match op {
                            Eq => l == r,
                            Ne => l != r,
                            Lt => l < r,
                            Le => l <= r,
                            Gt => l > r,
                            Ge => l >= r,
                            _ => false,
                        };
                        Ok(Rational::from(b as i64))
                    }
                    Some(other) => Err(DispatchError::MissingAnnotation {
                        dummy: d,
                        site: other.site().to_string(),
                    }),
                    None => Err(DispatchError::MissingAnnotation {
                        dummy: d,
                        site: "unknown".to_string(),
                    }),
                }
            }
        }
    }

    /// Evaluates a symbolic expression at concrete parameter values.
    pub fn eval_expr(
        &self,
        e: &SymExpr,
        params: &[Rational],
        depth: u32,
    ) -> Result<Rational, DispatchError> {
        let err = std::cell::RefCell::new(None);
        let v = e.eval(&self.dict, &|a| match self.atom_value(a, params, depth) {
            Ok(v) => v,
            Err(e) => {
                err.borrow_mut().get_or_insert(e);
                Rational::zero()
            }
        });
        match err.into_inner() {
            Some(e) => Err(e),
            None => Ok(v),
        }
    }

    /// Computes the linearized-dimension point for concrete parameters.
    pub fn dim_point(
        &self,
        pnet: &PartitionNetwork,
        params: &[Rational],
    ) -> Result<Vec<Rational>, DispatchError> {
        let err = std::cell::RefCell::new(None);
        let point = pnet
            .dims
            .iter()
            .map(|m| {
                self.dict
                    .eval_monomial(*m, &|a| match self.atom_value(a, params, 0) {
                        Ok(v) => v,
                        Err(e) => {
                            err.borrow_mut().get_or_insert(e);
                            Rational::zero()
                        }
                    })
            })
            .collect();
        match err.into_inner() {
            Some(e) => Err(e),
            None => Ok(point),
        }
    }

    /// Computes the linearized-dimension point for raw `i64` parameter
    /// values, checking arity.
    fn point_for(
        &self,
        pnet: &PartitionNetwork,
        params: &[i64],
    ) -> Result<Vec<Rational>, DispatchError> {
        if params.len() != self.dict.param_count() {
            return Err(DispatchError::ArityMismatch {
                expected: self.dict.param_count(),
                got: params.len(),
            });
        }
        let params: Vec<Rational> = params.iter().map(|&v| Rational::from(v)).collect();
        self.dim_point(pnet, &params)
    }

    /// Assembles the [`Decision`] for a matched (or fallen-back) choice.
    fn decision<'a>(
        partition: &'a ParametricPartition,
        region_id: usize,
        route: DispatchRoute,
    ) -> Decision<'a> {
        let choice = &partition.choices[region_id];
        let plan = if choice.is_all_local() {
            Plan::AllLocal
        } else {
            Plan::Partitioned(choice)
        };
        offload_obs::event!(
            "runtime",
            "dispatch",
            choice = region_id,
            matched_region = route != DispatchRoute::Fallback,
        );
        if offload_obs::enabled() {
            match route {
                DispatchRoute::Fallback => offload_obs::counter("runtime.dispatch.fallbacks").inc(),
                _ => offload_obs::counter("runtime.dispatch.region_matches").inc(),
            }
        }
        Decision {
            plan,
            region_id,
            route,
        }
    }

    /// Cheapest known cut at a point outside every region (outside the
    /// declared parameter bounds).
    fn fallback_choice(
        pnet: &PartitionNetwork,
        partition: &ParametricPartition,
        point: &[Rational],
    ) -> usize {
        let mut best: Option<(usize, Rational)> = None;
        for (i, choice) in partition.choices.iter().enumerate() {
            if let Some(v) = cut_cost_at(pnet, choice, point) {
                best = Some(match best {
                    None => (i, v),
                    Some((_, bv)) if v < bv => (i, v),
                    Some(b) => b,
                });
            }
        }
        best.map(|(i, _)| i).unwrap_or(0)
    }

    /// Selects the partitioning choice for concrete parameter values and
    /// returns the full typed [`Decision`]: the choice whose region
    /// contains the point, falling back to the cheapest cut when the
    /// point lies outside every recorded region (e.g. outside the
    /// declared parameter bounds).
    ///
    /// Uses the partition's compiled point-location DAG
    /// ([`crate::PointLocator`]) when one is present — O(depth) sign
    /// tests instead of a scan over every constraint of every region —
    /// and the linear region scan otherwise; [`Decision::route`] records
    /// which engine answered.
    ///
    /// # Errors
    ///
    /// Propagates [`DispatchError`] for missing annotations or wrong
    /// arity.
    pub fn decide<'a>(
        &self,
        pnet: &PartitionNetwork,
        partition: &'a ParametricPartition,
        params: &[i64],
    ) -> Result<Decision<'a>, DispatchError> {
        let point = self.point_for(pnet, params)?;
        if let Some(locator) = &partition.locator {
            return Ok(match locator.locate(&point) {
                Some(i) => Self::decision(partition, i, DispatchRoute::Dag),
                None => Self::decision(
                    partition,
                    Self::fallback_choice(pnet, partition, &point),
                    DispatchRoute::Fallback,
                ),
            });
        }
        Ok(self.scan_decision(pnet, partition, point))
    }

    /// Like [`Dispatcher::decide`], but always answers with the linear
    /// region scan, ignoring any compiled locator. This is the original
    /// dispatch procedure, kept as the differential-testing oracle for
    /// the DAG (and reachable in production via partitions without a
    /// locator).
    ///
    /// # Errors
    ///
    /// Propagates [`DispatchError`] for missing annotations or wrong
    /// arity.
    pub fn decide_linear<'a>(
        &self,
        pnet: &PartitionNetwork,
        partition: &'a ParametricPartition,
        params: &[i64],
    ) -> Result<Decision<'a>, DispatchError> {
        let point = self.point_for(pnet, params)?;
        Ok(self.scan_decision(pnet, partition, point))
    }

    fn scan_decision<'a>(
        &self,
        pnet: &PartitionNetwork,
        partition: &'a ParametricPartition,
        point: Vec<Rational>,
    ) -> Decision<'a> {
        for (i, choice) in partition.choices.iter().enumerate() {
            if choice.region.contains(&point) {
                return Self::decision(partition, i, DispatchRoute::LinearScan);
            }
        }
        Self::decision(
            partition,
            Self::fallback_choice(pnet, partition, &point),
            DispatchRoute::Fallback,
        )
    }

    /// Selects the partitioning choice for concrete parameter values.
    ///
    /// # Errors
    ///
    /// Propagates [`DispatchError`] for missing annotations or wrong
    /// arity.
    #[deprecated(note = "use `decide`, which returns the typed `Decision`")]
    pub fn select(
        &self,
        pnet: &PartitionNetwork,
        partition: &ParametricPartition,
        params: &[i64],
    ) -> Result<usize, DispatchError> {
        self.decide(pnet, partition, params).map(|d| d.region_id)
    }

    /// Reusable region test: does `choice`'s optimality region contain the
    /// point induced by the concrete parameter values? This is the guard
    /// of Figure 2 evaluated directly, exposed so other executors (the TCP
    /// engine, external harnesses) can re-run the dispatcher's test for a
    /// *specific* choice without reimplementing monomial evaluation.
    ///
    /// # Errors
    ///
    /// Propagates [`DispatchError`] for missing annotations or wrong
    /// arity.
    pub fn region_contains(
        &self,
        pnet: &PartitionNetwork,
        choice: &Partition,
        params: &[i64],
    ) -> Result<bool, DispatchError> {
        if params.len() != self.dict.param_count() {
            return Err(DispatchError::ArityMismatch {
                expected: self.dict.param_count(),
                got: params.len(),
            });
        }
        let params: Vec<Rational> = params.iter().map(|&v| Rational::from(v)).collect();
        let point = self.dim_point(pnet, &params)?;
        Ok(choice.region.contains(&point))
    }

    /// Renders the guard condition of a choice in the style of Figure 2,
    /// e.g. `(z - 12 > 0) && (6 - 5*y > 0)`.
    pub fn guard_text(&self, pnet: &PartitionNetwork, choice: &Partition) -> String {
        let dict = &self.dict;
        let dims = pnet.dims.clone();
        let names = move |i: usize| dict.monomial_name(dims[i]);
        choice.region.display_with(&names)
    }
}

/// Lists the dummy parameters that actually appear in the partitioning
/// solution's regions — exactly the annotations the paper's §3.4 says are
/// required (Table 4's "No. of Annotations" counts a superset: every
/// parameter-like quantity the analysis names, auto or not).
pub fn dummies_in_solution(
    pnet: &PartitionNetwork,
    partition: &ParametricPartition,
    dict: &ParamDict,
) -> Vec<u32> {
    let mut used = std::collections::BTreeSet::new();
    for choice in &partition.choices {
        for piece in choice.region.pieces() {
            for c in piece.constraints() {
                for dim in c.expr.support() {
                    for a in dict.atoms(pnet.dims[dim]) {
                        if let Atom::Dummy(d) = a {
                            used.insert(*d);
                        }
                    }
                }
            }
        }
    }
    used.into_iter().collect()
}
