//! Selection of the data items that participate in validity-state
//! tracking, with their sizes and relevance sets.
//!
//! Every abstract memory location touched by **two or more tasks** is a
//! *tracked item*: its per-host copies need validity states and its
//! transfers carry costs. Locations confined to a single task never move
//! between hosts and are skipped (a large, sound pruning — the bulk of
//! compiler temporaries).

use offload_poly::Rational;
use offload_pta::{AbsLocId, ModRef, PointsTo};
use offload_symbolic::{SymExpr, Symbolic};
use offload_tcfg::{TaskId, Tcfg};
use std::collections::{BTreeMap, BTreeSet};

/// One tracked data item.
#[derive(Debug, Clone)]
pub struct TrackedItem {
    /// The underlying abstract location.
    pub loc: AbsLocId,
    /// Tasks that access the item.
    pub accessors: Vec<TaskId>,
    /// Tasks for which validity states are modeled: every task from which
    /// an accessor is still reachable (closed under TCFG predecessors).
    pub relevant: BTreeSet<TaskId>,
    /// Size of one transfer of this item, in slots (symbolic for dynamic
    /// sites, whose footprint depends on the parameters).
    pub transfer_slots: SymExpr,
    /// `true` for dynamically allocated data (registration applies).
    pub dynamic: bool,
    /// The allocation site, for dynamic items.
    pub site: Option<offload_ir::AllocSiteId>,
}

/// The full tracked-item table.
#[derive(Debug, Clone, Default)]
pub struct ItemTable {
    /// Tracked items, in deterministic order.
    pub items: Vec<TrackedItem>,
    /// All dynamic locations accessed by at least one task (they need
    /// `Ns`/`Nc` nodes even when single-accessor — registration charges
    /// only when *both* hosts touch them, which single-accessor items
    /// can't trigger, but multi-accessor ones can).
    pub dynamic_locs: Vec<AbsLocId>,
}

impl ItemTable {
    /// Builds the table.
    pub fn build(tcfg: &Tcfg, pta: &PointsTo, modref: &ModRef, symbolic: &Symbolic) -> ItemTable {
        // Successor lists over tasks.
        let n = tcfg.tasks().len();
        let mut preds: Vec<Vec<TaskId>> = vec![Vec::new(); n];
        for e in tcfg.edges() {
            preds[e.to.index()].push(e.from);
        }

        let mut items = Vec::new();
        let mut dynamic_locs = Vec::new();
        let touched: BTreeMap<AbsLocId, Vec<TaskId>> = {
            let mut m: BTreeMap<AbsLocId, Vec<TaskId>> = BTreeMap::new();
            for loc in modref.touched_locs() {
                m.insert(loc, modref.accessors(loc));
            }
            m
        };
        for (loc, accessors) in touched {
            let is_dyn = pta.loc(loc).is_dynamic();
            if is_dyn && !accessors.is_empty() {
                dynamic_locs.push(loc);
            }
            if accessors.len() < 2 {
                continue;
            }
            // Relevant set: reverse-reachable from any accessor.
            let mut relevant: BTreeSet<TaskId> = accessors.iter().copied().collect();
            let mut stack: Vec<TaskId> = accessors.clone();
            while let Some(t) = stack.pop() {
                for &p in &preds[t.index()] {
                    if relevant.insert(p) {
                        stack.push(p);
                    }
                }
            }
            let site = match pta.loc(loc) {
                offload_pta::AbsLoc::Site(s) => Some(s),
                _ => None,
            };
            let transfer_slots = match pta.slots(loc) {
                Some(s) => SymExpr::constant(Rational::from(s as i64)),
                None => {
                    // Dynamic site: transfers move the whole registered
                    // footprint (conservative, like the paper's treatment
                    // of an abstract location as one data unit).
                    let s = site.expect("only sites lack static sizes");
                    symbolic.allocs[s.index()].total_slots.clone()
                }
            };
            items.push(TrackedItem {
                loc,
                accessors,
                relevant,
                transfer_slots,
                dynamic: is_dyn,
                site,
            });
        }
        ItemTable {
            items,
            dynamic_locs,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_ir::lower;
    use offload_lang::frontend;
    use offload_pta::PointsTo;
    use offload_tcfg::Tcfg;

    fn build(src: &str) -> (offload_ir::Module, Tcfg, PointsTo, ItemTable) {
        let m = lower(&frontend(src).unwrap());
        let pta = PointsTo::analyze(&m);
        let tcfg = Tcfg::build(&m, pta.indirect_targets());
        let modref = ModRef::compute(&m, &tcfg, &pta);
        let sym = Symbolic::analyze(&m, pta.indirect_targets());
        let table = ItemTable::build(&tcfg, &pta, &modref, &sym);
        (m, tcfg, pta, table)
    }

    #[test]
    fn shared_buffer_is_tracked() {
        let (m, _, pta, table) = build(offload_lang::examples_src::FIGURE1);
        let inbuf = pta.id_of(offload_pta::AbsLoc::Global(
            m.global_by_name("inbuf").unwrap(),
        ));
        assert!(
            table.items.iter().any(|i| Some(i.loc) == inbuf),
            "inbuf crosses tasks"
        );
    }

    #[test]
    fn single_task_temps_skipped() {
        let (_, tcfg, _, table) = build(
            "void main(int n) {
                 int i; int acc;
                 acc = 0;
                 for (i = 0; i < n; i++) { acc = acc + i; }
                 output(acc);
             }",
        );
        // One task => nothing crosses task boundaries.
        assert_eq!(tcfg.tasks().len(), 1);
        assert!(table.items.is_empty());
    }

    #[test]
    fn relevant_closed_under_predecessors() {
        let (_, tcfg, _, table) = build(offload_lang::examples_src::FIGURE1);
        for item in &table.items {
            for e in tcfg.edges() {
                if item.relevant.contains(&e.to) {
                    assert!(
                        item.relevant.contains(&e.from),
                        "relevant sets are predecessor-closed"
                    );
                }
            }
        }
    }

    #[test]
    fn dynamic_site_tracked_with_symbolic_size() {
        let (_, _, _, table) = build(offload_lang::examples_src::FIGURE4);
        let dynamic: Vec<_> = table.items.iter().filter(|i| i.dynamic).collect();
        assert_eq!(dynamic.len(), 1);
        assert!(
            !dynamic[0].transfer_slots.is_constant(),
            "site size depends on n"
        );
        assert_eq!(table.dynamic_locs.len(), 1);
    }
}
