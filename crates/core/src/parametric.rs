//! Algorithm 2: the parametric min-cut solver.
//!
//! Starting from the declared parameter region `X`, repeatedly: sample a
//! point `h ∈ X`, solve the concrete min-cut at `h`, compute the full
//! polyhedral region `H` where that cut stays minimal (Lemma 1, via
//! flow-variable elimination), record the pair `(P, H ∩ X)` and shrink
//! `X ← X \ H`. The §5.4 simplification heuristic runs first so the
//! Lemma-1 projection works on a small network; the §5.2 degeneracy
//! reduction merges choices whose assigned regions are covered by another
//! choice's full optimality region.

use crate::netbuild::{PartitionNetwork, Term};
use offload_flow::{Capacity, ParamNetwork, UnboundedFlow};
use offload_poly::{Polyhedron, Rational, Region};
use offload_tcfg::{TaskId, Tcfg};
use std::fmt;

/// Direction of a data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client to server.
    ClientToServer,
    /// Server to client.
    ServerToClient,
}

/// One partitioning choice: a task assignment plus its parameter region.
#[derive(Debug, Clone)]
pub struct Partition {
    /// `true` = the task runs on the server.
    pub server_tasks: Vec<bool>,
    /// Planned eager transfers per TCFG edge index: `(item index,
    /// direction)` pairs, derived from the validity states of the cut.
    pub transfers: Vec<Vec<(u32, Direction)>>,
    /// The sub-region of the declared space assigned to this choice
    /// (choices' regions are pairwise disjoint and cover the space).
    pub region: Region,
    /// The full optimality region of the cut (may overlap other choices').
    pub full_region: Polyhedron,
    /// Raw node sides on the *full* (unsimplified) network.
    pub cut: Vec<bool>,
}

impl Partition {
    /// `true` if every task runs on the client (no offloading).
    pub fn is_all_local(&self) -> bool {
        self.server_tasks.iter().all(|&s| !s)
    }

    /// Tasks assigned to the server.
    pub fn server_task_ids(&self) -> Vec<TaskId> {
        self.server_tasks
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }
}

/// What to execute: the single plan vocabulary shared by the simulator
/// (`offload_runtime`), the TCP engine (`offload-net`) and the experiment
/// harness (`offload-bench`).
///
/// `Remote` names a partitioning choice by index without borrowing it, so
/// it can travel through configuration and over the wire; call
/// [`Plan::resolve`] against the [`ParametricPartition`] before handing it
/// to an executor.
#[derive(Debug, Clone, Copy)]
pub enum Plan<'a> {
    /// Everything on the client (the paper's normalization baseline).
    AllLocal,
    /// Run under a specific partitioning choice.
    Partitioned(&'a Partition),
    /// Partitioning choice `i` of the analysis (an index into
    /// [`ParametricPartition::choices`]), not yet resolved to a borrow.
    Remote(usize),
}

impl<'a> Plan<'a> {
    /// Resolves [`Plan::Remote`] to [`Plan::Partitioned`] against the
    /// analysis' choice table; other variants pass through unchanged.
    ///
    /// # Panics
    ///
    /// Panics if a `Remote` index is out of range.
    pub fn resolve(self, partition: &'a ParametricPartition) -> Plan<'a> {
        match self {
            Plan::Remote(i) => Plan::Partitioned(&partition.choices[i]),
            other => other,
        }
    }

    /// `true` if this plan keeps every task on the client.
    pub fn is_all_local(&self) -> bool {
        match self {
            Plan::AllLocal => true,
            Plan::Partitioned(p) => p.is_all_local(),
            Plan::Remote(_) => false,
        }
    }
}

/// Statistics of a parametric solve.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Iterations of Algorithm 2's main loop.
    pub iterations: usize,
    /// Network nodes before simplification.
    pub nodes_before: usize,
    /// Network nodes after §5.4 simplification.
    pub nodes_after: usize,
    /// Choices removed by the §5.2 degeneracy reduction.
    pub merged_choices: usize,
}

/// The complete parametric partitioning result.
#[derive(Debug, Clone)]
pub struct ParametricPartition {
    /// Partitioning choices with their (disjoint) regions.
    pub choices: Vec<Partition>,
    /// Solve statistics.
    pub stats: SolveStats,
}

/// Errors from the parametric solver.
#[derive(Debug)]
pub enum SolveError {
    /// Every cut is infinite at some sampled point (malformed network).
    Unbounded(UnboundedFlow),
    /// The iteration limit was exceeded before covering the region
    /// (indicates a degenerate region computation).
    IterationLimit {
        /// Choices found before giving up.
        found: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Unbounded(e) => write!(f, "{e}"),
            SolveError::IterationLimit { found } => {
                write!(f, "parameter region not covered after finding {found} cuts")
            }
        }
    }
}
impl std::error::Error for SolveError {}

/// How optimality regions are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegionStrategy {
    /// The paper's Lemma 1: exact regions via flow-variable elimination.
    /// Exact but expensive on large networks (the paper's own analysis
    /// took 164–3482 s per benchmark).
    #[default]
    Exact,
    /// Fast heuristic: regions are defined by pairwise cut-value
    /// dominance among the cuts discovered so far, refined by probing
    /// each region for better cuts until no probe improves. Produces the
    /// same dispatch behaviour whenever the probe points expose every
    /// optimal cut; not certified exact.
    Dominance,
}

/// Options controlling the solver.
#[derive(Debug, Clone)]
pub struct SolveOptions {
    /// Apply the §5.4 network simplification before solving.
    pub simplify: bool,
    /// Apply the §5.2 degeneracy reduction afterwards.
    pub reduce_degeneracy: bool,
    /// Safety bound on Algorithm 2 iterations.
    pub max_iterations: usize,
    /// Region computation strategy.
    pub region_strategy: RegionStrategy,
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            simplify: true,
            reduce_degeneracy: true,
            max_iterations: 64,
            region_strategy: RegionStrategy::Exact,
        }
    }
}

/// Runs Algorithm 2 on a partitioning network.
///
/// # Errors
///
/// Returns [`SolveError::Unbounded`] if the network admits no finite cut
/// (impossible for well-formed partitioning problems: running everything
/// on the client is always finite), or [`SolveError::IterationLimit`].
pub fn solve(
    pnet: &PartitionNetwork,
    tcfg: &Tcfg,
    n_items: usize,
    options: &SolveOptions,
) -> Result<ParametricPartition, SolveError> {
    solve_with_probes(pnet, tcfg, n_items, options, &[])
}

/// Like [`solve`], with additional caller-supplied probe points (in the
/// linearized dimension space, consistent with the monomial structure).
/// The [`RegionStrategy::Dominance`] strategy seeds its cut discovery
/// from these; the exact strategy ignores them.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with_probes(
    pnet: &PartitionNetwork,
    tcfg: &Tcfg,
    n_items: usize,
    options: &SolveOptions,
    probes: &[Vec<Rational>],
) -> Result<ParametricPartition, SolveError> {
    let mut stats = SolveStats { nodes_before: pnet.net.node_count(), ..Default::default() };

    let t_simplify = std::time::Instant::now();
    let (snet, mapping): (ParamNetwork, Vec<usize>) = if options.simplify {
        pnet.net.simplify(&pnet.param_space)
    } else {
        (pnet.net.clone(), (0..pnet.net.node_count()).collect())
    };
    stats.nodes_after = snet.node_count();
    if std::env::var_os("OFFLOAD_CORE_DEBUG").is_some() {
        eprintln!(
            "[core] simplify {:?}: {} -> {} nodes, {} arcs, {} dims",
            t_simplify.elapsed(),
            stats.nodes_before,
            stats.nodes_after,
            snet.arcs().len(),
            pnet.dims.len(),
        );
    }

    if options.region_strategy == RegionStrategy::Dominance {
        let choices = solve_dominance(pnet, tcfg, n_items, &snet, &mapping, probes, &mut stats)?;
        return Ok(ParametricPartition { choices, stats });
    }

    let debug = std::env::var_os("OFFLOAD_CORE_DEBUG").is_some();
    let mut x = Region::from(pnet.param_space.clone());
    let mut choices: Vec<Partition> = Vec::new();

    loop {
        let t_sample = std::time::Instant::now();
        let Some(point) = x.sample() else { break };
        stats.iterations += 1;
        if stats.iterations > options.max_iterations {
            return Err(SolveError::IterationLimit { found: choices.len() });
        }
        let t_cut = std::time::Instant::now();
        let mf = snet.solve_at(&point).map_err(SolveError::Unbounded)?;
        let t_region = std::time::Instant::now();
        let full_region = snet.optimality_region(&mf.source_side, &pnet.param_space);
        if debug {
            eprintln!(
                "[core] iter {}: sample {:?} cut {:?} region {:?} ({} constraints, {} pieces left)",
                stats.iterations,
                t_cut - t_sample,
                t_region - t_cut,
                t_region.elapsed(),
                full_region.constraints().len(),
                x.pieces().len(),
            );
        }
        if !full_region.contains(&point) {
            // Should be impossible (Theorem 2); fail fast rather than
            // loop forever.
            return Err(SolveError::IterationLimit { found: choices.len() });
        }
        let assigned = x.intersect(&full_region);
        x = x.subtract(&full_region);
        let cut = expand_cut(&mapping, &mf.source_side, pnet.net.node_count());
        choices.push(extract_partition(pnet, tcfg, n_items, cut, assigned, full_region));
    }

    if options.reduce_degeneracy {
        stats.merged_choices = reduce_degeneracy(&mut choices);
    }

    Ok(ParametricPartition { choices, stats })
}

fn expand_cut(mapping: &[usize], simplified_side: &[bool], nodes: usize) -> Vec<bool> {
    (0..nodes).map(|n| simplified_side[mapping[n]]).collect()
}

/// The symbolic value of a cut: the sum of forward-arc capacities
/// (`None` when the cut severs an infinite arc).
fn cut_value_expr(net: &ParamNetwork, side: &[bool]) -> Option<offload_poly::LinExpr> {
    let mut total = offload_poly::LinExpr::zero(net.params);
    for a in net.arcs() {
        if side[a.from] && !side[a.to] {
            match &a.cap {
                offload_flow::ParamCap::Affine(e) => total = total.add(e),
                offload_flow::ParamCap::Infinite => return None,
            }
        }
    }
    Some(total)
}

/// The [`RegionStrategy::Dominance`] solver: discover cuts by probing,
/// define each cut's region by pairwise cut-value dominance (cheap affine
/// constraints — no flow-variable elimination), and iterate until no
/// probe point finds a better cut.
fn solve_dominance(
    pnet: &PartitionNetwork,
    tcfg: &Tcfg,
    n_items: usize,
    snet: &ParamNetwork,
    mapping: &[usize],
    probes: &[Vec<Rational>],
    stats: &mut SolveStats,
) -> Result<Vec<Partition>, SolveError> {
    use offload_poly::Rational;
    let space = &pnet.param_space;
    let mut cuts: Vec<(Vec<bool>, offload_poly::LinExpr)> = Vec::new();

    let add_cut_at = |point: &[Rational],
                          cuts: &mut Vec<(Vec<bool>, offload_poly::LinExpr)>|
     -> Result<bool, SolveError> {
        let mf = snet.solve_at(point).map_err(SolveError::Unbounded)?;
        if cuts.iter().any(|(s, _)| *s == mf.source_side) {
            return Ok(false);
        }
        // Only keep the new cut if it strictly beats every known cut at
        // this point.
        let better = cuts.iter().all(|(_, e)| mf.value < e.eval(point));
        if !better && !cuts.is_empty() {
            return Ok(false);
        }
        let Some(expr) = cut_value_expr(snet, &mf.source_side) else {
            return Ok(false);
        };
        cuts.push((mf.source_side, expr));
        Ok(true)
    };

    // Seed with the region's interior point and the caller's
    // parameter-consistent probe points (realistic monomial values —
    // dimension-space bumps alone would violate the product relations and
    // land outside the declared space).
    let Some(seed) = space.sample() else {
        return Ok(Vec::new());
    };
    add_cut_at(&seed, &mut cuts)?;
    for p in probes {
        if space.contains(p) {
            add_cut_at(p, &mut cuts)?;
        }
    }

    // Refinement rounds: probe each dominance region (its interior sample
    // plus scaled-out points along the diagonal) for better cuts.
    for _round in 0..12 {
        stats.iterations += 1;
        let mut improved = false;
        let regions = dominance_regions(space, &cuts);
        for region in &regions {
            let Some(p) = region.sample() else { continue };
            let k = p.len();
            let mut probes: Vec<Vec<Rational>> = vec![p.clone()];
            for step in [1i64, 100, 10_000, 1_000_000] {
                // Diagonal bump.
                let diag: Vec<Rational> =
                    p.iter().map(|v| v + &Rational::from(step)).collect();
                probes.push(diag);
                // Per-dimension bumps.
                for d in 0..k {
                    let mut q = p.clone();
                    q[d] = &q[d] + &Rational::from(step);
                    probes.push(q);
                }
            }
            for q in probes {
                // Probe within this cut's claimed region (and the declared
                // space): that is exactly where a better cut would falsify
                // the region.
                if region.contains(&q) {
                    improved |= add_cut_at(&q, &mut cuts)?;
                }
            }
        }
        if !improved {
            break;
        }
    }

    // Assemble disjoint regions and partitions.
    let regions = dominance_regions(space, &cuts);
    let mut out = Vec::new();
    for ((side, _), region_poly) in cuts.iter().zip(regions) {
        let cut = expand_cut(mapping, side, pnet.net.node_count());
        let mut region = Region::from(region_poly.clone());
        // Disjointify against earlier choices.
        for earlier in &out {
            let e: &Partition = earlier;
            region = region.subtract(&e.full_region);
        }
        out.push(extract_partition(pnet, tcfg, n_items, cut, region, region_poly));
    }
    // Drop choices whose region vanished after disjointification.
    // (Degeneracy reduction is unnecessary here — dominance regions are
    // already one-per-cut.)
    out.retain(|p| !p.region.is_empty());
    return Ok(out);

    fn dominance_regions(
        space: &offload_poly::Polyhedron,
        cuts: &[(Vec<bool>, offload_poly::LinExpr)],
    ) -> Vec<offload_poly::Polyhedron> {
        cuts.iter()
            .map(|(_, ei)| {
                let mut r = space.clone();
                for (_, ej) in cuts {
                    if std::ptr::eq(ei, ej) {
                        continue;
                    }
                    // val_i <= val_j  <=>  ej - ei >= 0.
                    r.add(offload_poly::Constraint::ge0(ej.sub(ei)));
                }
                r.reduce_redundancy()
            })
            .collect()
    }
}

/// §5.2: drop choice `i` when another choice's full optimality region
/// covers `i`'s assigned region; the survivor absorbs the region.
fn reduce_degeneracy(choices: &mut Vec<Partition>) -> usize {
    let mut merged = 0;
    let mut i = 0;
    while i < choices.len() {
        let mut absorbed = false;
        for j in 0..choices.len() {
            if i == j {
                continue;
            }
            let covered = choices[i]
                .region
                .subtract(&choices[j].full_region)
                .is_empty();
            if covered {
                let region = choices[i].region.clone();
                let (a, b) = (i.min(j), i.max(j));
                let _ = (a, b);
                for piece in region.pieces() {
                    choices[j].region.push(piece.clone());
                }
                choices.remove(i);
                merged += 1;
                absorbed = true;
                break;
            }
        }
        if !absorbed {
            i += 1;
        }
    }
    merged
}

fn extract_partition(
    pnet: &PartitionNetwork,
    tcfg: &Tcfg,
    n_items: usize,
    cut: Vec<bool>,
    region: Region,
    full_region: Polyhedron,
) -> Partition {
    let value = |t: Term| -> Option<bool> { pnet.node(t).map(|n| cut[n]) };
    let server_tasks: Vec<bool> = (0..tcfg.tasks().len())
        .map(|i| value(Term::M(TaskId(i as u32))).unwrap_or(false))
        .collect();

    let mut transfers: Vec<Vec<(u32, Direction)>> = vec![Vec::new(); tcfg.edges().len()];
    for (ei, e) in tcfg.edges().iter().enumerate() {
        for d in 0..n_items as u32 {
            // c→s on (vi,vj): Vso(vi,d) = 0 and Vsi(vj,d) = 1.
            if let (Some(vso), Some(vsi)) =
                (value(Term::Vso(e.from, d)), value(Term::Vsi(e.to, d)))
            {
                if !vso && vsi {
                    transfers[ei].push((d, Direction::ClientToServer));
                }
            }
            // s→c on (vi,vj): Vco(vi,d) = 0 and Vci(vj,d) = 1, i.e.
            // ¬Vco(vi,d) = 1 and ¬Vci(vj,d) = 0.
            if let (Some(nvco), Some(nvci)) =
                (value(Term::NotVco(e.from, d)), value(Term::NotVci(e.to, d)))
            {
                if nvco && !nvci {
                    transfers[ei].push((d, Direction::ServerToClient));
                }
            }
        }
    }

    Partition { server_tasks, transfers, region, full_region, cut }
}

/// Evaluates the total cost of a partition's cut at a concrete point of
/// the linearized parameter space.
pub fn cut_cost_at(
    pnet: &PartitionNetwork,
    partition: &Partition,
    point: &[Rational],
) -> Option<Rational> {
    match pnet.net.cut_value_at(&partition.cut, point) {
        Capacity::Finite(v) => Some(v),
        Capacity::Infinite => None,
    }
}
