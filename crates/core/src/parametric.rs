//! Algorithm 2: the parametric min-cut solver — the region-exploration
//! engine.
//!
//! Starting from the declared parameter region `X`, repeatedly: sample a
//! point `h ∈ X`, solve the concrete min-cut at `h`, compute the full
//! polyhedral region `H` where that cut stays minimal (Lemma 1, via
//! flow-variable elimination), record the pair `(P, H ∩ X)` and shrink
//! `X ← X \ H`. The §5.4 simplification heuristic runs first so the
//! Lemma-1 projection works on a small network; the §5.2 degeneracy
//! reduction merges choices whose assigned regions are covered by another
//! choice's full optimality region.
//!
//! The engine drains `X` as a **worklist of disjoint convex pieces**,
//! explored by a round-synchronous pool of `std::thread::scope` workers
//! (see [`SolveOptions::threads`]): each round, every current piece of
//! `X` is sampled / min-cut solved / Lemma-1 projected in parallel, then
//! a *sequential* merge in piece order accepts each discovered cut unless
//! an earlier-accepted region of the same round already covers its sample
//! point. Parallelism only decides *who computes* each piece's result,
//! never *which results exist*, so the output is bit-identical for every
//! thread count — including `threads = 1`, which runs the same worklist
//! inline. A memo cache keyed by cut signature (the source-side bit
//! vector) reuses projected regions when the same cut is rediscovered
//! ([`SolveOptions::cut_cache`]).

use crate::netbuild::{PartitionNetwork, Term};
use offload_flow::{Capacity, FlowStats, ParamNetwork, ParamSolver, UnboundedFlow};
use offload_poly::{PolyStats, Polyhedron, Rational, Region};
use offload_tcfg::{TaskId, Tcfg};
use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Direction of a data transfer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Direction {
    /// Client to server.
    ClientToServer,
    /// Server to client.
    ServerToClient,
}

/// One partitioning choice: a task assignment plus its parameter region.
#[derive(Debug, Clone, PartialEq)]
pub struct Partition {
    /// `true` = the task runs on the server.
    pub server_tasks: Vec<bool>,
    /// Planned eager transfers per TCFG edge index: `(item index,
    /// direction)` pairs, derived from the validity states of the cut.
    pub transfers: Vec<Vec<(u32, Direction)>>,
    /// The sub-region of the declared space assigned to this choice
    /// (choices' regions are pairwise disjoint and cover the space).
    pub region: Region,
    /// The full optimality region of the cut (may overlap other choices').
    pub full_region: Polyhedron,
    /// Raw node sides on the *full* (unsimplified) network.
    pub cut: Vec<bool>,
}

impl Partition {
    /// `true` if every task runs on the client (no offloading).
    pub fn is_all_local(&self) -> bool {
        self.server_tasks.iter().all(|&s| !s)
    }

    /// Tasks assigned to the server.
    pub fn server_task_ids(&self) -> Vec<TaskId> {
        self.server_tasks
            .iter()
            .enumerate()
            .filter(|(_, &s)| s)
            .map(|(i, _)| TaskId(i as u32))
            .collect()
    }
}

/// What to execute: the single plan vocabulary shared by the simulator
/// (`offload_runtime`), the TCP engine (`offload-net`) and the experiment
/// harness (`offload-bench`).
///
/// `Remote` names a partitioning choice by index without borrowing it, so
/// it can travel through configuration and over the wire; call
/// [`Plan::resolve`] against the [`ParametricPartition`] before handing it
/// to an executor.
#[derive(Debug, Clone, Copy)]
pub enum Plan<'a> {
    /// Everything on the client (the paper's normalization baseline).
    AllLocal,
    /// Run under a specific partitioning choice.
    Partitioned(&'a Partition),
    /// Partitioning choice `i` of the analysis (an index into
    /// [`ParametricPartition::choices`]), not yet resolved to a borrow.
    Remote(usize),
}

impl<'a> Plan<'a> {
    /// Resolves [`Plan::Remote`] to [`Plan::Partitioned`] against the
    /// analysis' choice table; other variants pass through unchanged.
    ///
    /// # Panics
    ///
    /// Panics if a `Remote` index is out of range.
    pub fn resolve(self, partition: &'a ParametricPartition) -> Plan<'a> {
        match self {
            Plan::Remote(i) => Plan::Partitioned(&partition.choices[i]),
            other => other,
        }
    }

    /// `true` if this plan keeps every task on the client.
    pub fn is_all_local(&self) -> bool {
        match self {
            Plan::AllLocal => true,
            Plan::Partitioned(p) => p.is_all_local(),
            Plan::Remote(_) => false,
        }
    }
}

/// Statistics of a parametric solve.
#[derive(Debug, Clone, Default)]
pub struct SolveStats {
    /// Iterations of Algorithm 2's main loop (accepted cuts in the exact
    /// engine; refinement rounds under [`RegionStrategy::Dominance`]).
    pub iterations: usize,
    /// Network nodes before simplification.
    pub nodes_before: usize,
    /// Network nodes after §5.4 simplification.
    pub nodes_after: usize,
    /// Choices removed by the §5.2 degeneracy reduction.
    pub merged_choices: usize,
    /// Unified work counters across the flow / poly / core layers.
    pub pipeline: PipelineStats,
}

pub use offload_obs::PipelineStats;

/// The complete parametric partitioning result.
#[derive(Debug, Clone)]
pub struct ParametricPartition {
    /// Partitioning choices with their (disjoint) regions.
    pub choices: Vec<Partition>,
    /// Solve statistics.
    pub stats: SolveStats,
    /// The compiled point-location structure over the choices' regions
    /// (shared so N sessions of one program share one DAG). `None` only
    /// for hand-assembled partitions; [`solve`] always compiles one.
    pub locator: Option<Arc<crate::pointloc::PointLocator>>,
}

/// Errors from the parametric solver.
#[derive(Debug)]
pub enum SolveError {
    /// Every cut is infinite at some sampled point (malformed network).
    Unbounded(UnboundedFlow),
    /// The iteration limit was exceeded before covering the region
    /// (indicates a degenerate region computation).
    IterationLimit {
        /// Choices found before giving up.
        found: usize,
    },
}

impl fmt::Display for SolveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolveError::Unbounded(e) => write!(f, "{e}"),
            SolveError::IterationLimit { found } => {
                write!(f, "parameter region not covered after finding {found} cuts")
            }
        }
    }
}
impl std::error::Error for SolveError {}

/// How optimality regions are computed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RegionStrategy {
    /// The paper's Lemma 1: exact regions via flow-variable elimination.
    /// Exact but expensive on large networks (the paper's own analysis
    /// took 164–3482 s per benchmark).
    #[default]
    Exact,
    /// Fast heuristic: regions are defined by pairwise cut-value
    /// dominance among the cuts discovered so far, refined by probing
    /// each region for better cuts until no probe improves. Produces the
    /// same dispatch behaviour whenever the probe points expose every
    /// optimal cut; not certified exact.
    Dominance,
}

/// Verbosity of a [`SolveOptions::log`] message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum LogLevel {
    /// Per-round / per-iteration progress detail.
    Debug,
    /// Milestones (simplification done, solve done).
    Info,
    /// Unexpected-but-recoverable situations.
    Warn,
}

impl fmt::Display for LogLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogLevel::Debug => write!(f, "debug"),
            LogLevel::Info => write!(f, "info"),
            LogLevel::Warn => write!(f, "warn"),
        }
    }
}

/// A leveled progress sink for the solver (see [`SolveOptions::log`]).
pub type LogFn = dyn Fn(LogLevel, &str) + Send + Sync;

/// Options controlling the solver.
#[derive(Clone)]
pub struct SolveOptions {
    /// Apply the §5.4 network simplification before solving.
    pub simplify: bool,
    /// Apply the §5.2 degeneracy reduction afterwards.
    pub reduce_degeneracy: bool,
    /// Safety bound on Algorithm 2 iterations.
    pub max_iterations: usize,
    /// Region computation strategy.
    pub region_strategy: RegionStrategy,
    /// Worker threads for the region-exploration engine. `0` (default)
    /// means [`std::thread::available_parallelism`]. The partitioning
    /// output is bit-identical for every value.
    pub threads: usize,
    /// Reuse projected optimality regions when the same cut signature is
    /// rediscovered (default `true`; sound — the projection is a pure
    /// function of the signature).
    pub cut_cache: bool,
    /// Leveled progress callback. When unset, progress is emitted to
    /// stderr only if the `OFFLOAD_CORE_DEBUG` environment variable is
    /// set (the legacy behaviour); embedders such as the server daemon
    /// set this to capture progress without stderr scraping.
    pub log: Option<Arc<LogFn>>,
}

impl fmt::Debug for SolveOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SolveOptions")
            .field("simplify", &self.simplify)
            .field("reduce_degeneracy", &self.reduce_degeneracy)
            .field("max_iterations", &self.max_iterations)
            .field("region_strategy", &self.region_strategy)
            .field("threads", &self.threads)
            .field("cut_cache", &self.cut_cache)
            .field("log", &self.log.as_ref().map(|_| "closure"))
            .finish()
    }
}

impl Default for SolveOptions {
    fn default() -> Self {
        SolveOptions {
            simplify: true,
            reduce_degeneracy: true,
            max_iterations: 64,
            region_strategy: RegionStrategy::Exact,
            threads: 0,
            cut_cache: true,
            log: None,
        }
    }
}

/// Internal logging shim: every message becomes a leveled structured
/// event in the `offload-obs` recorder (when tracing is enabled), and is
/// additionally delivered to the legacy [`SolveOptions::log`] callback
/// and/or the `OFFLOAD_CORE_DEBUG` stderr fallback so existing embedders
/// keep working unchanged.
struct Logger {
    sink: Option<Arc<LogFn>>,
    env_debug: bool,
}

impl Logger {
    fn new(options: &SolveOptions) -> Logger {
        Logger {
            sink: options.log.clone(),
            env_debug: std::env::var_os("OFFLOAD_CORE_DEBUG").is_some(),
        }
    }

    fn enabled(&self) -> bool {
        self.sink.is_some() || self.env_debug || offload_obs::enabled()
    }

    fn log(&self, level: LogLevel, msg: impl FnOnce() -> String) {
        if !self.enabled() {
            return;
        }
        let text = msg();
        offload_obs::log_event(level.into(), "core", &text);
        match &self.sink {
            Some(f) => f(level, &text),
            None if self.env_debug => eprintln!("[core:{level}] {}", text),
            None => {}
        }
    }
}

impl From<LogLevel> for offload_obs::Level {
    fn from(l: LogLevel) -> offload_obs::Level {
        match l {
            LogLevel::Debug => offload_obs::Level::Debug,
            LogLevel::Info => offload_obs::Level::Info,
            LogLevel::Warn => offload_obs::Level::Warn,
        }
    }
}

/// Runs Algorithm 2 on a partitioning network.
///
/// # Errors
///
/// Returns [`SolveError::Unbounded`] if the network admits no finite cut
/// (impossible for well-formed partitioning problems: running everything
/// on the client is always finite), or [`SolveError::IterationLimit`].
pub fn solve(
    pnet: &PartitionNetwork,
    tcfg: &Tcfg,
    n_items: usize,
    options: &SolveOptions,
) -> Result<ParametricPartition, SolveError> {
    solve_with_probes(pnet, tcfg, n_items, options, &[])
}

/// Like [`solve`], with additional caller-supplied probe points (in the
/// linearized dimension space, consistent with the monomial structure).
/// The [`RegionStrategy::Dominance`] strategy seeds its cut discovery
/// from these; the exact strategy ignores them.
///
/// # Errors
///
/// See [`solve`].
pub fn solve_with_probes(
    pnet: &PartitionNetwork,
    tcfg: &Tcfg,
    n_items: usize,
    options: &SolveOptions,
    probes: &[Vec<Rational>],
) -> Result<ParametricPartition, SolveError> {
    let logger = Logger::new(options);
    // Start from a cold LP result cache so per-run cache-hit counts and
    // timings are reproducible regardless of what ran earlier on this
    // thread. (Worker threads are spawned fresh each round, so their
    // caches always start empty.)
    offload_poly::lp_cache_clear();
    let poly_before = PolyStats::snapshot();
    let mut stats = SolveStats {
        nodes_before: pnet.net.node_count(),
        ..Default::default()
    };
    // Resolve the configured worker count once, up front, so every
    // strategy reports the same number (`threads_used` used to be
    // hard-wired to 1 on the dominance path even when the caller asked
    // for more workers). A strategy that cannot use the workers says so
    // via `sequential_strategy` instead of under-reporting the config.
    let threads = match options.threads {
        0 => std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        n => n,
    };
    stats.pipeline.threads_used = threads as u32;
    let mut solve_span = offload_obs::span!(
        "parametric",
        "solve",
        nodes = pnet.net.node_count(),
        dims = pnet.dims.len(),
        threads = threads,
    );

    let t_simplify = Instant::now();
    let simplify_span = offload_obs::span!(
        "parametric",
        "simplify",
        enabled = options.simplify,
        nodes_in = pnet.net.node_count(),
    );
    let (snet, mapping): (ParamNetwork, Vec<usize>) = if options.simplify {
        pnet.net.simplify(&pnet.param_space)
    } else {
        (pnet.net.clone(), (0..pnet.net.node_count()).collect())
    };
    drop(simplify_span);
    stats.nodes_after = snet.node_count();
    stats.pipeline.simplify_micros = t_simplify.elapsed().as_micros() as u64;
    logger.log(LogLevel::Info, || {
        format!(
            "simplify {:?}: {} -> {} nodes, {} arcs, {} dims",
            t_simplify.elapsed(),
            stats.nodes_before,
            stats.nodes_after,
            snet.arcs().len(),
            pnet.dims.len(),
        )
    });

    let t_solve = Instant::now();
    let result = if options.region_strategy == RegionStrategy::Dominance {
        // Probing refines sequentially by design: keep the configured
        // worker count honest and flag the strategy instead.
        stats.pipeline.sequential_strategy = true;
        solve_dominance(pnet, tcfg, n_items, &snet, &mapping, probes, &mut stats)
    } else {
        explore_regions(
            pnet, tcfg, n_items, options, threads, &logger, &snet, &mapping, &mut stats,
        )
    };
    stats.pipeline.solve_micros = t_solve.elapsed().as_micros() as u64;
    let poly = PolyStats::snapshot().since(&poly_before);
    stats.pipeline.absorb_poly_counts(
        poly.lp_solves,
        poly.lp_pivots,
        poly.fm_vars_eliminated,
        poly.fm_constraints,
        poly.lp_cache_hits,
        poly.small_int_promotions,
    );
    stats.pipeline.absorb_poly_extras(
        poly.prefilter_hits(),
        poly.lp_warm_starts,
        poly.dual_pivots,
        poly.prune_micros,
        poly.region_lp_micros,
    );

    let mut choices = result?;
    if options.region_strategy == RegionStrategy::Exact && options.reduce_degeneracy {
        stats.merged_choices = reduce_degeneracy(&mut choices);
    }
    logger.log(LogLevel::Info, || {
        format!(
            "solved: {} choices ({} merged) in {} us\n{}",
            choices.len(),
            stats.merged_choices,
            stats.pipeline.solve_micros,
            stats.pipeline,
        )
    });
    if offload_obs::enabled() {
        solve_span.record("choices", choices.len());
        solve_span.record("rounds", stats.pipeline.rounds);
        stats.pipeline.publish_metrics();
    }
    // Compile the region decomposition into the point-location DAG the
    // dispatcher walks at run time (built once here, shared by every
    // session of this analysis). `None` when the decomposition is too
    // rich to compile within the build budget — dispatch then keeps the
    // linear scan.
    let regions: Vec<&Region> = choices.iter().map(|c| &c.region).collect();
    let locator =
        crate::pointloc::PointLocator::build(&regions, pnet.param_space.nvars()).map(Arc::new);
    Ok(ParametricPartition {
        choices,
        stats,
        locator,
    })
}

/// The result of exploring one worklist piece: its deterministic sample
/// point, the cut found there (on the simplified network), and the cut's
/// full Lemma-1 optimality region.
struct PieceResult {
    point: Vec<Rational>,
    side: Vec<bool>,
    full_region: Polyhedron,
}

/// The memo cache mapping a cut signature (source-side bit vector on the
/// simplified network) to its projected optimality region.
type CutCache = Mutex<HashMap<Vec<bool>, Polyhedron>>;

/// The exact region-exploration engine: a round-synchronous parallel
/// worklist over the disjoint pieces of the uncovered region `X`.
///
/// Each round takes a snapshot of `X`'s pieces in order and explores all
/// of them (sample → concrete min-cut → optimality region) across the
/// worker pool; a sequential merge then walks the results **in piece
/// order**, accepting a cut unless a region accepted earlier in the same
/// round already covers its sample point, and shrinking `X` per accepted
/// cut. Every piece is explored in every round regardless of thread
/// count, and the merge is sequential, so the output — and even the flow
/// work counters — are independent of scheduling.
#[allow(clippy::too_many_arguments)]
fn explore_regions(
    pnet: &PartitionNetwork,
    tcfg: &Tcfg,
    n_items: usize,
    options: &SolveOptions,
    threads: usize,
    logger: &Logger,
    snet: &ParamNetwork,
    mapping: &[usize],
    stats: &mut SolveStats,
) -> Result<Vec<Partition>, SolveError> {
    let cache: Option<CutCache> = options.cut_cache.then(|| Mutex::new(HashMap::new()));

    let mut x = Region::from(pnet.param_space.clone());
    let mut choices: Vec<Partition> = Vec::new();

    loop {
        let pieces = x.pieces();
        if pieces.is_empty() {
            break;
        }
        stats.pipeline.rounds += 1;
        let n_pieces = pieces.len();
        let t_round = Instant::now();
        let mut round_span = offload_obs::span!(
            "parametric",
            "round",
            round = stats.pipeline.rounds,
            pieces = n_pieces,
        );
        let results = explore_round(
            snet,
            &pnet.param_space,
            pieces,
            threads,
            cache.as_ref(),
            stats,
        );

        // Sequential merge in piece order. Parallelism above only decided
        // who computed each slot; from here on everything is ordered.
        let mut accepted: Vec<PieceResult> = Vec::new();
        for result in results {
            let r = match result {
                None => continue, // piece was empty (cannot happen: X holds non-empty pieces)
                Some(Err(e)) => return Err(SolveError::Unbounded(e)),
                Some(Ok(r)) => r,
            };
            if accepted.iter().any(|a| a.full_region.contains(&r.point)) {
                // An earlier-accepted cut of this round already covers
                // this sample; the shrunken X re-queues whatever remains
                // of the piece next round.
                continue;
            }
            stats.iterations += 1;
            if stats.iterations > options.max_iterations {
                return Err(SolveError::IterationLimit {
                    found: choices.len(),
                });
            }
            if !r.full_region.contains(&r.point) {
                // Should be impossible (Theorem 2); fail fast rather than
                // loop forever.
                return Err(SolveError::IterationLimit {
                    found: choices.len(),
                });
            }
            let assigned = x.intersect(&r.full_region);
            x = x.subtract(&r.full_region);
            let cut = expand_cut(mapping, &r.side, pnet.net.node_count());
            choices.push(extract_partition(
                pnet,
                tcfg,
                n_items,
                cut,
                assigned,
                r.full_region.clone(),
            ));
            accepted.push(r);
        }
        stats.pipeline.regions_explored += accepted.len() as u64;
        round_span.record("accepted", accepted.len());
        drop(round_span);
        if logger.enabled() {
            logger.log(LogLevel::Debug, || {
                format!(
                    "round {}: {} pieces -> {} accepted cuts ({} total) in {:?}, {} pieces left",
                    stats.pipeline.rounds,
                    n_pieces,
                    accepted.len(),
                    choices.len(),
                    t_round.elapsed(),
                    x.pieces().len(),
                )
            });
        }
    }
    Ok(choices)
}

/// Explores every piece of the current round, returning results in piece
/// order. With one thread (or one piece) the work runs inline; otherwise
/// `threads` scoped workers drain an atomic index over the piece list,
/// each owning a [`ParamSolver`] so repeated min-cuts share scratch
/// buffers. Result slots are indexed by piece, so assembly order is
/// independent of scheduling.
fn explore_round(
    snet: &ParamNetwork,
    param_space: &Polyhedron,
    pieces: &[Polyhedron],
    threads: usize,
    cache: Option<&CutCache>,
    stats: &mut SolveStats,
) -> Vec<Option<Result<PieceResult, UnboundedFlow>>> {
    let n = pieces.len();
    // Spawn scoped workers only when the round actually has ≥2 pieces to
    // distribute; a single-piece round (every round of a two-choice exact
    // program) runs inline, avoiding thread setup that can only slow the
    // solve down. Who computes a piece never changes what is computed, so
    // output is bit-identical either way.
    let workers = if n >= 2 { threads.min(n) } else { 1 };
    let mut flow = FlowStats::default();
    // (cache hits, cache misses).
    let mut tally = (0u64, 0u64);
    let mut results: Vec<Option<Result<PieceResult, UnboundedFlow>>> = Vec::with_capacity(n);
    if workers <= 1 {
        // All granted threads go to intra-piece projection work — this is
        // the exact-strategy hot path, where rounds have a single piece
        // and region-level parallelism has nothing to distribute.
        let mut solver = snet.solver();
        for piece in pieces {
            results.push(explore_piece(
                snet,
                param_space,
                piece,
                &mut solver,
                cache,
                threads,
                &mut tally,
            ));
        }
        flow = flow.add(&solver.stats());
    } else {
        results.resize_with(n, || None);
        let slots: Vec<Mutex<Option<Result<PieceResult, UnboundedFlow>>>> =
            (0..n).map(|_| Mutex::new(None)).collect();
        let next = AtomicUsize::new(0);
        // Piece-level workers claim the thread budget first; whatever is
        // left over parallelizes each worker's own projections.
        let intra = (threads / workers).max(1);
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..workers)
                .map(|_| {
                    s.spawn(|| {
                        let mut solver = snet.solver();
                        let mut t = (0u64, 0u64);
                        loop {
                            let i = next.fetch_add(1, Ordering::Relaxed);
                            if i >= n {
                                break;
                            }
                            let r = explore_piece(
                                snet,
                                param_space,
                                &pieces[i],
                                &mut solver,
                                cache,
                                intra,
                                &mut t,
                            );
                            *lock_ignore_poison(&slots[i]) = r;
                        }
                        (solver.stats(), t)
                    })
                })
                .collect();
            for handle in handles {
                match handle.join() {
                    Ok((f, t)) => {
                        flow = flow.add(&f);
                        tally.0 += t.0;
                        tally.1 += t.1;
                    }
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });
        for (slot, result) in slots.into_iter().zip(results.iter_mut()) {
            *result = slot.into_inner().unwrap_or_else(|e| e.into_inner());
        }
    }
    stats
        .pipeline
        .absorb_flow_counts(flow.solves, flow.phases, flow.augmenting_paths);
    stats.pipeline.cache_hits += tally.0;
    stats.pipeline.cache_misses += tally.1;
    results
}

/// Explores one worklist piece: sample its deterministic interior point,
/// solve the concrete min-cut there, and obtain the cut's optimality
/// region (from the signature cache when enabled). Returns `None` for an
/// empty piece.
fn explore_piece(
    snet: &ParamNetwork,
    param_space: &Polyhedron,
    piece: &Polyhedron,
    solver: &mut ParamSolver,
    cache: Option<&CutCache>,
    intra_threads: usize,
    cache_tally: &mut (u64, u64),
) -> Option<Result<PieceResult, UnboundedFlow>> {
    let mut span = offload_obs::span!("parametric", "piece");
    let point = piece.sample()?;
    let mf = match solver.solve_at(&point) {
        Ok(mf) => mf,
        Err(e) => return Some(Err(e)),
    };
    let full_region = match cache {
        Some(cache) => {
            let cached = lock_ignore_poison(cache).get(&mf.source_side).cloned();
            match cached {
                Some(region) => {
                    cache_tally.0 += 1;
                    span.record("cache_hit", true);
                    region
                }
                None => {
                    cache_tally.1 += 1;
                    span.record("cache_hit", false);
                    // Pure function of (signature, param_space): a racing
                    // double-compute stores the identical value twice.
                    let region =
                        snet.optimality_region_threads(&mf.source_side, param_space, intra_threads);
                    lock_ignore_poison(cache).insert(mf.source_side.clone(), region.clone());
                    region
                }
            }
        }
        None => snet.optimality_region_threads(&mf.source_side, param_space, intra_threads),
    };
    Some(Ok(PieceResult {
        point,
        side: mf.source_side,
        full_region,
    }))
}

/// Locks a mutex, recovering the guard from a poisoned lock (the data is
/// plain counters / memo entries — a worker panic cannot leave them in a
/// harmful state, and the panic itself is re-raised by the scope join).
fn lock_ignore_poison<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(|e| e.into_inner())
}

fn expand_cut(mapping: &[usize], simplified_side: &[bool], nodes: usize) -> Vec<bool> {
    (0..nodes).map(|n| simplified_side[mapping[n]]).collect()
}

/// The symbolic value of a cut: the sum of forward-arc capacities
/// (`None` when the cut severs an infinite arc).
fn cut_value_expr(net: &ParamNetwork, side: &[bool]) -> Option<offload_poly::LinExpr> {
    let mut total = offload_poly::LinExpr::zero(net.params);
    for a in net.arcs() {
        if side[a.from] && !side[a.to] {
            match &a.cap {
                offload_flow::ParamCap::Affine(e) => total = total.add(e),
                offload_flow::ParamCap::Infinite => return None,
            }
        }
    }
    Some(total)
}

/// The [`RegionStrategy::Dominance`] solver: discover cuts by probing,
/// define each cut's region by pairwise cut-value dominance (cheap affine
/// constraints — no flow-variable elimination), and iterate until no
/// probe point finds a better cut.
fn solve_dominance(
    pnet: &PartitionNetwork,
    tcfg: &Tcfg,
    n_items: usize,
    snet: &ParamNetwork,
    mapping: &[usize],
    probes: &[Vec<Rational>],
    stats: &mut SolveStats,
) -> Result<Vec<Partition>, SolveError> {
    use offload_poly::Rational;
    let space = &pnet.param_space;
    let mut cuts: Vec<(Vec<bool>, offload_poly::LinExpr)> = Vec::new();
    let solver = std::cell::RefCell::new(snet.solver());

    let add_cut_at = |point: &[Rational],
                      cuts: &mut Vec<(Vec<bool>, offload_poly::LinExpr)>|
     -> Result<bool, SolveError> {
        let mf = solver
            .borrow_mut()
            .solve_at(point)
            .map_err(SolveError::Unbounded)?;
        if cuts.iter().any(|(s, _)| *s == mf.source_side) {
            return Ok(false);
        }
        // Only keep the new cut if it strictly beats every known cut at
        // this point.
        let better = cuts.iter().all(|(_, e)| mf.value < e.eval(point));
        if !better && !cuts.is_empty() {
            return Ok(false);
        }
        let Some(expr) = cut_value_expr(snet, &mf.source_side) else {
            return Ok(false);
        };
        cuts.push((mf.source_side, expr));
        Ok(true)
    };

    // Seed with the region's interior point and the caller's
    // parameter-consistent probe points (realistic monomial values —
    // dimension-space bumps alone would violate the product relations and
    // land outside the declared space).
    let Some(seed) = space.sample() else {
        return Ok(Vec::new());
    };
    add_cut_at(&seed, &mut cuts)?;
    for p in probes {
        if space.contains(p) {
            add_cut_at(p, &mut cuts)?;
        }
    }

    // Refinement rounds: probe each dominance region (its interior sample
    // plus scaled-out points along the diagonal) for better cuts.
    for _round in 0..12 {
        stats.iterations += 1;
        let mut improved = false;
        let regions = dominance_regions(space, &cuts);
        for region in &regions {
            let Some(p) = region.sample() else { continue };
            let k = p.len();
            let mut probes: Vec<Vec<Rational>> = vec![p.clone()];
            for step in [1i64, 100, 10_000, 1_000_000] {
                // Diagonal bump.
                let diag: Vec<Rational> = p.iter().map(|v| v + &Rational::from(step)).collect();
                probes.push(diag);
                // Per-dimension bumps.
                for d in 0..k {
                    let mut q = p.clone();
                    q[d] = &q[d] + &Rational::from(step);
                    probes.push(q);
                }
            }
            for q in probes {
                // Probe within this cut's claimed region (and the declared
                // space): that is exactly where a better cut would falsify
                // the region.
                if region.contains(&q) {
                    improved |= add_cut_at(&q, &mut cuts)?;
                }
            }
        }
        if !improved {
            break;
        }
    }

    // Assemble disjoint regions and partitions.
    let regions = dominance_regions(space, &cuts);
    let mut out = Vec::new();
    for ((side, _), region_poly) in cuts.iter().zip(regions) {
        let cut = expand_cut(mapping, side, pnet.net.node_count());
        let mut region = Region::from(region_poly.clone());
        // Disjointify against earlier choices.
        for earlier in &out {
            let e: &Partition = earlier;
            region = region.subtract(&e.full_region);
        }
        out.push(extract_partition(
            pnet,
            tcfg,
            n_items,
            cut,
            region,
            region_poly,
        ));
    }
    // Drop choices whose region vanished after disjointification.
    // (Degeneracy reduction is unnecessary here — dominance regions are
    // already one-per-cut.)
    out.retain(|p| !p.region.is_empty());
    let flow = solver.borrow().stats();
    stats
        .pipeline
        .absorb_flow_counts(flow.solves, flow.phases, flow.augmenting_paths);
    stats.pipeline.regions_explored += out.len() as u64;
    return Ok(out);

    fn dominance_regions(
        space: &offload_poly::Polyhedron,
        cuts: &[(Vec<bool>, offload_poly::LinExpr)],
    ) -> Vec<offload_poly::Polyhedron> {
        cuts.iter()
            .map(|(_, ei)| {
                let mut r = space.clone();
                for (_, ej) in cuts {
                    if std::ptr::eq(ei, ej) {
                        continue;
                    }
                    // val_i <= val_j  <=>  ej - ei >= 0.
                    r.add(offload_poly::Constraint::ge0(ej.sub(ei)));
                }
                r.reduce_redundancy()
            })
            .collect()
    }
}

/// §5.2: drop choice `i` when another choice's full optimality region
/// covers `i`'s assigned region; the survivor absorbs the region.
fn reduce_degeneracy(choices: &mut Vec<Partition>) -> usize {
    let mut merged = 0;
    let mut i = 0;
    while i < choices.len() {
        let mut absorbed = false;
        for j in 0..choices.len() {
            if i == j {
                continue;
            }
            let covered = choices[i]
                .region
                .subtract(&choices[j].full_region)
                .is_empty();
            if covered {
                let region = choices[i].region.clone();
                let (a, b) = (i.min(j), i.max(j));
                let _ = (a, b);
                for piece in region.pieces() {
                    choices[j].region.push(piece.clone());
                }
                choices.remove(i);
                merged += 1;
                absorbed = true;
                break;
            }
        }
        if !absorbed {
            i += 1;
        }
    }
    merged
}

fn extract_partition(
    pnet: &PartitionNetwork,
    tcfg: &Tcfg,
    n_items: usize,
    cut: Vec<bool>,
    region: Region,
    full_region: Polyhedron,
) -> Partition {
    let value = |t: Term| -> Option<bool> { pnet.node(t).map(|n| cut[n]) };
    let server_tasks: Vec<bool> = (0..tcfg.tasks().len())
        .map(|i| value(Term::M(TaskId(i as u32))).unwrap_or(false))
        .collect();

    let mut transfers: Vec<Vec<(u32, Direction)>> = vec![Vec::new(); tcfg.edges().len()];
    for (ei, e) in tcfg.edges().iter().enumerate() {
        for d in 0..n_items as u32 {
            // c→s on (vi,vj): Vso(vi,d) = 0 and Vsi(vj,d) = 1.
            if let (Some(vso), Some(vsi)) = (value(Term::Vso(e.from, d)), value(Term::Vsi(e.to, d)))
            {
                if !vso && vsi {
                    transfers[ei].push((d, Direction::ClientToServer));
                }
            }
            // s→c on (vi,vj): Vco(vi,d) = 0 and Vci(vj,d) = 1, i.e.
            // ¬Vco(vi,d) = 1 and ¬Vci(vj,d) = 0.
            if let (Some(nvco), Some(nvci)) =
                (value(Term::NotVco(e.from, d)), value(Term::NotVci(e.to, d)))
            {
                if nvco && !nvci {
                    transfers[ei].push((d, Direction::ServerToClient));
                }
            }
        }
    }

    Partition {
        server_tasks,
        transfers,
        region,
        full_region,
        cut,
    }
}

/// Evaluates the total cost of a partition's cut at a concrete point of
/// the linearized parameter space.
pub fn cut_cost_at(
    pnet: &PartitionNetwork,
    partition: &Partition,
    point: &[Rational],
) -> Option<Rational> {
    match pnet.net.cut_value_at(&partition.cut, point) {
        Capacity::Finite(v) => Some(v),
        Capacity::Infinite => None,
    }
}
