//! The Theorem 1 reduction: optimal program partitioning as a
//! single-source single-sink min-cut problem with parametric capacities.
//!
//! Every boolean term of the optimization problem — `M(v)`, the validity
//! states `Vsi/Vso/¬Vci/¬Vco`, and the access states `Ns/¬Nc` — becomes a
//! network node; a node on the source side has value 1. Constraints
//! (§2.4) become infinite arcs (`a ⇒ b` is an arc `a → b`: cutting it
//! would cost ∞); costs (§3.1) become finite arcs whose capacities are
//! affine functions of the linearized parameters:
//!
//! * client computation `¬M(v)·cc(v)` — arc `s → M(v)` (paid when `M∈T`);
//! * server computation `M(v)·cs(v)` — arc `M(v) → t` (∞ for I/O tasks,
//!   which the semantic constraint pins to the client);
//! * client→server transfer `¬Vso(vi,d)·Vsi(vj,d)·c` — arc
//!   `Vsi(vj,d) → Vso(vi,d)`;
//! * server→client transfer `¬Vco(vi,d)·Vci(vj,d)·c` — arc
//!   `¬Vco(vi,d) → ¬Vci(vj,d)`;
//! * scheduling `¬M(vi)·M(vj)·tcst` — arc `M(vj) → M(vi)` (and mirrored);
//! * registration `Ns(d)·Nc(d)·ta` — arc `Ns(d) → ¬Nc(d)`.

use crate::costmodel::CostModel;
use crate::items::ItemTable;
use offload_flow::{ParamCap, ParamNetwork};
use offload_poly::{Constraint, LinExpr, Polyhedron, Rational};
use offload_pta::ModRef;
use offload_symbolic::{Atom, DummyOrigin, MonomialId, SymExpr, Symbolic};
use offload_tcfg::{EdgeKind, TaskId, Tcfg};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// A boolean term of Problem 1, represented by one network node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Term {
    /// `M(v)` — 1 when task `v` runs on the server.
    M(TaskId),
    /// `Vsi(v, d)` — item `d` valid on the server at entry of `v`.
    Vsi(TaskId, u32),
    /// `Vso(v, d)` — item `d` valid on the server at exit of `v`.
    Vso(TaskId, u32),
    /// `¬Vci(v, d)` — item `d` *invalid* on the client at entry of `v`.
    NotVci(TaskId, u32),
    /// `¬Vco(v, d)` — item `d` *invalid* on the client at exit of `v`.
    NotVco(TaskId, u32),
    /// `Ns(d)` — dynamic item `d` accessed on the server.
    Ns(u32),
    /// `¬Nc(d)` — dynamic item `d` *not* accessed on the client.
    NotNc(u32),
}

/// Pending arc target during construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
enum End {
    Source,
    Sink,
    Term(Term),
}

/// Pending capacity during construction (symbolic until dimensions are
/// allocated).
#[derive(Debug, Clone)]
enum PendingCap {
    Sym(SymExpr),
    Infinite,
}

/// The assembled parametric partitioning network.
#[derive(Debug, Clone)]
pub struct PartitionNetwork {
    /// The parametric flow network (node 0 = source `s`, node 1 = sink
    /// `t`, then one node per term).
    pub net: ParamNetwork,
    /// Terms by node index (offset by 2).
    pub terms: Vec<Term>,
    /// Node index of each term.
    pub node_of: HashMap<Term, usize>,
    /// The monomial behind each parameter dimension.
    pub dims: Vec<MonomialId>,
    /// Dimension of each monomial.
    pub dim_of: HashMap<MonomialId, usize>,
    /// Declared parameter region (over the linearized dimensions).
    pub param_space: Polyhedron,
}

impl PartitionNetwork {
    /// Node index of a term, if it exists in the network.
    pub fn node(&self, t: Term) -> Option<usize> {
        self.node_of.get(&t).copied()
    }

    /// Evaluates the point in linearized dimension space corresponding to
    /// concrete atom values.
    pub fn dim_point(
        &self,
        dict: &offload_symbolic::ParamDict,
        atom_value: &dyn Fn(Atom) -> Rational,
    ) -> Vec<Rational> {
        self.dims
            .iter()
            .map(|m| dict.eval_monomial(*m, atom_value))
            .collect()
    }
}

/// Per-parameter bounds supplied by the user (inclusive).
#[derive(Debug, Clone, Default)]
pub struct ParamBounds {
    /// `(lower, upper)` per `main` parameter; `None` = unbounded.
    pub per_param: Vec<(Option<i64>, Option<i64>)>,
}

impl ParamBounds {
    /// All parameters in `[lo, hi]`.
    pub fn uniform(count: usize, lo: i64, hi: Option<i64>) -> Self {
        ParamBounds {
            per_param: vec![(Some(lo), hi); count],
        }
    }

    /// Effective lower bound of parameter `i` (defaults to 0).
    pub fn lower(&self, i: usize) -> Option<i64> {
        self.per_param
            .get(i)
            .map(|b| b.0)
            .unwrap_or(Some(0))
            .or(Some(0))
    }

    /// Effective upper bound of parameter `i`, if declared.
    pub fn upper(&self, i: usize) -> Option<i64> {
        self.per_param.get(i).and_then(|b| b.1)
    }
}

/// How data-transfer requirements are modeled (§2.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValidityModel {
    /// The paper's contribution: per-host validity states, so a value
    /// transferred once can be shared by later consumers (Figure 3).
    #[default]
    States,
    /// The traditional model the paper argues against: every
    /// definition-use chain crossing hosts is charged separately,
    /// exaggerating communication when one producer feeds several
    /// consumer tasks.
    DuChains,
}

/// Builds the partitioning network for a prepared analysis.
pub struct NetBuilder<'a> {
    /// The module under analysis.
    pub module: &'a offload_ir::Module,
    /// Its task graph.
    pub tcfg: &'a Tcfg,
    /// Per-task access classification.
    pub modref: &'a ModRef,
    /// Symbolic counts (mutable: capacity products may intern monomials).
    pub symbolic: &'a mut Symbolic,
    /// Tracked items.
    pub items: &'a ItemTable,
    /// Cost constants.
    pub cost: &'a CostModel,
    /// Declared parameter bounds.
    pub bounds: &'a ParamBounds,
    /// Data-transfer model (validity states by default).
    pub validity_model: ValidityModel,
}

impl<'a> NetBuilder<'a> {
    /// Assembles the network.
    pub fn build(mut self) -> PartitionNetwork {
        let mut arcs: Vec<(End, End, PendingCap)> = Vec::new();

        self.computation_arcs(&mut arcs);
        self.scheduling_arcs(&mut arcs);
        match self.validity_model {
            ValidityModel::States => self.validity_arcs(&mut arcs),
            ValidityModel::DuChains => self.du_chain_arcs(&mut arcs),
        }
        self.registration_arcs(&mut arcs);

        // Allocate dimensions for every monomial used by any capacity.
        let mut dims: Vec<MonomialId> = Vec::new();
        let mut dim_of: HashMap<MonomialId, usize> = HashMap::new();
        for (_, _, cap) in &arcs {
            if let PendingCap::Sym(e) = cap {
                for (m, _) in e.terms() {
                    if let std::collections::hash_map::Entry::Vacant(slot) = dim_of.entry(m) {
                        slot.insert(dims.len());
                        dims.push(m);
                    }
                }
            }
        }
        let k = dims.len();

        // Allocate nodes for every referenced term.
        let mut terms: Vec<Term> = Vec::new();
        let mut node_of: HashMap<Term, usize> = HashMap::new();
        {
            let mut seen: BTreeSet<Term> = BTreeSet::new();
            for (a, b, _) in &arcs {
                for e in [a, b] {
                    if let End::Term(t) = e {
                        seen.insert(*t);
                    }
                }
            }
            for t in seen {
                node_of.insert(t, 2 + terms.len());
                terms.push(t);
            }
        }

        let mut net = ParamNetwork::new(k, 2 + terms.len(), 0, 1);
        for (a, b, cap) in arcs {
            let from = match a {
                End::Source => 0,
                End::Sink => 1,
                End::Term(t) => node_of[&t],
            };
            let to = match b {
                End::Source => 0,
                End::Sink => 1,
                End::Term(t) => node_of[&t],
            };
            let cap = match cap {
                PendingCap::Infinite => ParamCap::Infinite,
                PendingCap::Sym(e) => {
                    if e.is_zero() {
                        continue;
                    }
                    ParamCap::Affine(e.to_linexpr(k, &|m| dim_of[&m]))
                }
            };
            net.add_arc(from, to, cap);
        }

        let param_space = self.param_space(&dims, &dim_of);
        PartitionNetwork {
            net,
            terms,
            node_of,
            dims,
            dim_of,
            param_space,
        }
    }

    /// `a = 1 ⇒ b = 1` as an infinite arc.
    fn imply(arcs: &mut Vec<(End, End, PendingCap)>, a: Term, b: Term) {
        arcs.push((End::Term(a), End::Term(b), PendingCap::Infinite));
    }

    fn computation_arcs(&mut self, arcs: &mut Vec<(End, End, PendingCap)>) {
        for (ti, task) in self.tcfg.tasks().iter().enumerate() {
            let tid = TaskId(ti as u32);
            // Accumulate weight per block, then scale by block counts.
            // (A BTreeMap so the summation order — and hence the term
            // order of the symbolic expression and every downstream
            // dimension assignment — is identical on every run.)
            let mut weight_by_block: BTreeMap<(offload_ir::FuncId, offload_ir::BlockId), u32> =
                BTreeMap::new();
            for (f, b, _, inst) in self.tcfg.task_instructions(self.module, tid) {
                *weight_by_block.entry((f, b)).or_insert(0) += self.cost.inst_weight(inst);
            }
            let mut work = SymExpr::zero();
            for ((f, b), w) in weight_by_block {
                let count = self.symbolic.block_count(f, b);
                work = work.add(&count.scale(&Rational::from(w as i64)));
            }
            let cc = work.scale(&self.cost.client_unit);
            arcs.push((End::Source, End::Term(Term::M(tid)), PendingCap::Sym(cc)));
            if task.is_io {
                // Semantic constraint: I/O tasks cannot run on the server.
                arcs.push((End::Term(Term::M(tid)), End::Sink, PendingCap::Infinite));
            } else {
                let cs = work.scale(&self.cost.server_unit);
                arcs.push((End::Term(Term::M(tid)), End::Sink, PendingCap::Sym(cs)));
            }
        }
    }

    /// Execution count of a TCFG edge.
    fn edge_count(&mut self, e: &offload_tcfg::TcfgEdge) -> SymExpr {
        match e.kind {
            EdgeKind::Jump { from, to } => self.symbolic.edge_count(e.func, from, to),
            EdgeKind::Call { site } | EdgeKind::Return { site } => {
                let seg = self.tcfg.segment(site);
                self.symbolic.block_count(seg.func, seg.block)
            }
        }
    }

    fn scheduling_arcs(&mut self, arcs: &mut Vec<(End, End, PendingCap)>) {
        for e in self.tcfg.edges().to_vec() {
            let r = self.edge_count(&e);
            let c2s = r.scale(&self.cost.sched_c2s);
            let s2c = r.scale(&self.cost.sched_s2c);
            // ¬M(vi)·M(vj)·tcst : pay when vj on server, vi on client.
            arcs.push((
                End::Term(Term::M(e.to)),
                End::Term(Term::M(e.from)),
                PendingCap::Sym(c2s),
            ));
            // ¬M(vj)·M(vi)·tsct : pay when vi on server, vj on client.
            arcs.push((
                End::Term(Term::M(e.from)),
                End::Term(Term::M(e.to)),
                PendingCap::Sym(s2c),
            ));
        }
    }

    fn validity_arcs(&mut self, arcs: &mut Vec<(End, End, PendingCap)>) {
        let items = self.items.items.clone();
        for (di, item) in items.iter().enumerate() {
            let d = di as u32;
            // Per-task constraint arcs.
            for &v in &item.relevant {
                let acc = self.modref.task(v).of(item.loc);
                let m = Term::M(v);
                if acc.upward_exposed_read {
                    // Read constraint.
                    Self::imply(arcs, m, Term::Vsi(v, d));
                    Self::imply(arcs, Term::NotVci(v, d), m);
                }
                if acc.definite_write || acc.partial_write {
                    // Write constraint: M = Vso and M = ¬Vco.
                    Self::imply(arcs, m, Term::Vso(v, d));
                    Self::imply(arcs, Term::Vso(v, d), m);
                    Self::imply(arcs, m, Term::NotVco(v, d));
                    Self::imply(arcs, Term::NotVco(v, d), m);
                }
                if acc.partial_write && !acc.definite_write {
                    // Conservative constraint (possible/partial writes).
                    Self::imply(arcs, m, Term::Vsi(v, d));
                    Self::imply(arcs, Term::NotVci(v, d), m);
                }
                if !acc.definite_write && !acc.partial_write {
                    // Transitive constraint.
                    Self::imply(arcs, Term::Vso(v, d), Term::Vsi(v, d));
                    Self::imply(arcs, Term::NotVci(v, d), Term::NotVco(v, d));
                }
            }
            // Per-edge transfer costs.
            for e in self.tcfg.edges().to_vec() {
                if !item.relevant.contains(&e.from) || !item.relevant.contains(&e.to) {
                    continue;
                }
                let r = self.edge_count(&e);
                let size = item.transfer_slots.clone();
                // c→s: r·(tcsh + tcsu·s(d))
                let c2s = {
                    let per = size.scale(&self.cost.send_unit_c2s);
                    let per = per.add(&SymExpr::constant(self.cost.send_startup_c2s.clone()));
                    r.mul(&per, &mut self.symbolic.dict)
                };
                arcs.push((
                    End::Term(Term::Vsi(e.to, d)),
                    End::Term(Term::Vso(e.from, d)),
                    PendingCap::Sym(c2s),
                ));
                // s→c: r·(tsch + tscu·s(d))
                let s2c = {
                    let per = size.scale(&self.cost.send_unit_s2c);
                    let per = per.add(&SymExpr::constant(self.cost.send_startup_s2c.clone()));
                    r.mul(&per, &mut self.symbolic.dict)
                };
                arcs.push((
                    End::Term(Term::NotVco(e.from, d)),
                    End::Term(Term::NotVci(e.to, d)),
                    PendingCap::Sym(s2c),
                ));
            }
        }
    }

    /// The traditional per-DU-chain charging of §2.2 / Figure 3: for every
    /// (writer task, reader task) pair of an item, a transfer is charged
    /// whenever the two run on different hosts — even when another reader
    /// already pulled the data to that host.
    fn du_chain_arcs(&mut self, arcs: &mut Vec<(End, End, PendingCap)>) {
        let items = self.items.items.clone();
        for item in items.iter() {
            let writers: Vec<_> = item
                .accessors
                .iter()
                .copied()
                .filter(|t| self.modref.task(*t).of(item.loc).writes())
                .collect();
            let readers: Vec<_> = item
                .accessors
                .iter()
                .copied()
                .filter(|t| self.modref.task(*t).of(item.loc).upward_exposed_read)
                .collect();
            for &w in &writers {
                for &r in &readers {
                    if w == r {
                        continue;
                    }
                    // Chain executes as often as the reader task's
                    // instructions do (take its header block's count).
                    let seg = self.tcfg.segment(self.tcfg.task(r).header);
                    let count = self.symbolic.block_count(seg.func, seg.block);
                    let size = item.transfer_slots.clone();
                    let per_c2s = size
                        .scale(&self.cost.send_unit_c2s)
                        .add(&SymExpr::constant(self.cost.send_startup_c2s.clone()));
                    let per_s2c = size
                        .scale(&self.cost.send_unit_s2c)
                        .add(&SymExpr::constant(self.cost.send_startup_s2c.clone()));
                    let c2s = count.mul(&per_c2s, &mut self.symbolic.dict);
                    let s2c = count.mul(&per_s2c, &mut self.symbolic.dict);
                    // Pay when the writer and reader land on different
                    // hosts, in either direction.
                    arcs.push((
                        End::Term(Term::M(r)),
                        End::Term(Term::M(w)),
                        PendingCap::Sym(c2s),
                    ));
                    arcs.push((
                        End::Term(Term::M(w)),
                        End::Term(Term::M(r)),
                        PendingCap::Sym(s2c),
                    ));
                }
            }
        }
    }

    fn registration_arcs(&mut self, arcs: &mut Vec<(End, End, PendingCap)>) {
        let items = self.items.items.clone();
        for (di, item) in items.iter().enumerate() {
            if !item.dynamic {
                continue;
            }
            let d = di as u32;
            for &v in &item.accessors {
                Self::imply(arcs, Term::M(v), Term::Ns(d));
                Self::imply(arcs, Term::NotNc(d), Term::M(v));
            }
            // Registration cost: Ns(d)·Nc(d)·ta·r(alloc).
            let site = item.site.expect("dynamic items carry their site");
            let r = self.symbolic.allocs[site.index()].count.clone();
            let ca = r.scale(&self.cost.registration);
            arcs.push((
                End::Term(Term::Ns(d)),
                End::Term(Term::NotNc(d)),
                PendingCap::Sym(ca),
            ));
        }
    }

    /// Builds the declared parameter region over the linearized
    /// dimensions: bounds on parameters and dummies, plus the derivable
    /// relations between monomials (`m·a ≥ lb(a)·m`, `m·β ≤ m`).
    fn param_space(&self, dims: &[MonomialId], dim_of: &HashMap<MonomialId, usize>) -> Polyhedron {
        let k = dims.len();
        let dict = &self.symbolic.dict;
        let mut cs: Vec<Constraint> = Vec::new();

        let atom_bounds = |a: Atom| -> (Option<i64>, Option<i64>) {
            match a {
                Atom::Param(i) => (self.bounds.lower(i as usize), self.bounds.upper(i as usize)),
                Atom::Dummy(d) => match dict.dummies().get(d as usize) {
                    Some(DummyOrigin::AutoCond { .. }) | Some(DummyOrigin::BranchFreq { .. }) => {
                        (Some(0), Some(1))
                    }
                    _ => (Some(0), None),
                },
            }
        };

        for (i, m) in dims.iter().enumerate() {
            let atoms = dict.atoms(*m);
            // Lower bound: product of atom lower bounds (atoms are
            // non-negative, so the product bound is sound).
            let lb: Option<i64> = atoms.iter().try_fold(1i64, |acc, a| {
                atom_bounds(*a).0.map(|l| acc.saturating_mul(l.max(0)))
            });
            let lb = lb.unwrap_or(0);
            cs.push(Constraint::ge0(
                LinExpr::var(k, i).plus_constant(Rational::from(-lb)),
            ));
            // Upper bound for degree-1 monomials.
            if atoms.len() == 1 {
                if let (_, Some(u)) = atom_bounds(atoms[0]) {
                    cs.push(Constraint::ge0(
                        LinExpr::constant(k, Rational::from(u)).plus_term(i, Rational::from(-1)),
                    ));
                }
            }
            // Relations to sub-monomials: if m = m' ⊎ {a}, then
            // m ≥ lb(a)·m' and (when ub(a) = 1) m ≤ m'.
            for (j, m2) in dims.iter().enumerate() {
                if i == j {
                    continue;
                }
                let sub = dict.atoms(*m2);
                if let Some(extra) = multiset_diff_one(atoms, sub) {
                    let (lo, hi) = atom_bounds(extra);
                    if let Some(lo) = lo {
                        // m - lo*m' >= 0
                        cs.push(Constraint::ge0(
                            LinExpr::var(k, i).plus_term(j, Rational::from(-lo)),
                        ));
                    }
                    if let Some(hi) = hi {
                        // hi*m' - m >= 0
                        cs.push(Constraint::ge0(
                            LinExpr::zero(k)
                                .plus_term(j, Rational::from(hi))
                                .plus_term(i, Rational::from(-1)),
                        ));
                    }
                }
            }
        }
        let _ = dim_of;
        Polyhedron::from_constraints(k, cs)
    }
}

/// If `big = small ⊎ {a}` as multisets, returns `a`.
fn multiset_diff_one(big: &[Atom], small: &[Atom]) -> Option<Atom> {
    if big.len() != small.len() + 1 {
        return None;
    }
    // Both are sorted (dictionary invariant).
    let mut extra: Option<Atom> = None;
    let mut i = 0;
    for &b in big {
        if i < small.len() && small[i] == b {
            i += 1;
        } else if extra.is_none() {
            extra = Some(b);
        } else {
            return None;
        }
    }
    if i == small.len() {
        extra
    } else {
        None
    }
}
