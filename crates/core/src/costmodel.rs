//! The cost model: the measured constants of §3.2.
//!
//! The paper measures these "by experiments using synthesized benchmarks"
//! on an iPAQ 3970 (400 MHz XScale) client, a 2 GHz P4 server and an
//! 11 Mbps WaveLAN link. Our defaults mirror that hardware's ratios; the
//! `offload-runtime` crate can *calibrate* a model against its simulated
//! devices, reproducing the paper's methodology.

use offload_ir::{Inst, IrBinOp};
use offload_poly::Rational;

/// Measured cost constants (all in abstract time units; only ratios
/// matter for partitioning decisions).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CostModel {
    /// Client time per unit of instruction weight (`tc`).
    pub client_unit: Rational,
    /// Server time per unit of instruction weight (`ts`).
    pub server_unit: Rational,
    /// Client-to-server transfer startup time (`tcsh`).
    pub send_startup_c2s: Rational,
    /// Client-to-server time per transferred slot (`tcsu`).
    pub send_unit_c2s: Rational,
    /// Server-to-client transfer startup time (`tsch`).
    pub send_startup_s2c: Rational,
    /// Server-to-client time per transferred slot (`tscu`).
    pub send_unit_s2c: Rational,
    /// Client-to-server task scheduling time (`tcst`).
    pub sched_c2s: Rational,
    /// Server-to-client task scheduling time (`tsct`).
    pub sched_s2c: Rational,
    /// Registration time per dynamic allocation (`ta`).
    pub registration: Rational,
}

impl CostModel {
    /// A model shaped like the paper's testbed: the server is 5× faster
    /// than the client; message startup dominates small transfers.
    pub fn ipaq_testbed() -> Self {
        CostModel {
            client_unit: Rational::from(5),
            server_unit: Rational::from(1),
            send_startup_c2s: Rational::from(600),
            send_unit_c2s: Rational::from(4),
            send_startup_s2c: Rational::from(600),
            send_unit_s2c: Rational::from(4),
            sched_c2s: Rational::from(600),
            sched_s2c: Rational::from(600),
            registration: Rational::from(8),
        }
    }

    /// The toy constants of the paper's running example (§1.1): unit
    /// computation per innermost statement, transfer startup 6, unit
    /// transfer cost 1, everything else free. With these constants the
    /// analysis reproduces Table 1 exactly.
    pub fn paper_example() -> Self {
        CostModel {
            client_unit: Rational::from(1),
            server_unit: Rational::zero(),
            send_startup_c2s: Rational::from(6),
            send_unit_c2s: Rational::from(1),
            send_startup_s2c: Rational::from(6),
            send_unit_s2c: Rational::from(1),
            sched_c2s: Rational::zero(),
            sched_s2c: Rational::zero(),
            registration: Rational::zero(),
        }
    }

    /// Weight of one IR instruction in abstract work units.
    ///
    /// Multiplications and divisions are costlier than moves; address
    /// arithmetic is cheap; `alloc` pays an allocator fee.
    pub fn inst_weight(&self, inst: &Inst) -> u32 {
        match inst {
            Inst::Copy { .. } => 1,
            Inst::Un { .. } => 1,
            Inst::Bin { op, .. } => match op {
                IrBinOp::Mul => 3,
                IrBinOp::Div | IrBinOp::Rem => 8,
                _ => 1,
            },
            Inst::AddrGlobal { .. } | Inst::AddrLocal { .. } => 1,
            Inst::AddrIndex { .. } | Inst::AddrField { .. } => 1,
            Inst::Load { .. } | Inst::Store { .. } => 2,
            Inst::Alloc { .. } => 12,
            Inst::LoadFunc { .. } => 1,
            Inst::Call { .. } => 2,
            // The I/O device time is identical under every partitioning
            // (I/O always runs on the client), so it carries ordinary
            // instruction weight here and never biases decisions.
            Inst::Input { .. } | Inst::Output { .. } => 2,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::ipaq_testbed()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_ir::{LocalId, Operand};

    #[test]
    fn weights_ordered_sensibly() {
        let m = CostModel::default();
        let copy = Inst::Copy {
            dst: LocalId(0),
            src: Operand::Const(1),
        };
        let div = Inst::Bin {
            dst: LocalId(0),
            op: IrBinOp::Div,
            lhs: Operand::Const(1),
            rhs: Operand::Const(2),
        };
        assert!(m.inst_weight(&div) > m.inst_weight(&copy));
    }

    #[test]
    fn testbed_ratios() {
        let m = CostModel::ipaq_testbed();
        assert!(m.client_unit > m.server_unit, "server faster than client");
        assert!(
            m.send_startup_c2s > m.send_unit_c2s,
            "startup dominates per-slot cost"
        );
    }

    #[test]
    fn paper_example_constants() {
        let m = CostModel::paper_example();
        assert_eq!(m.send_startup_c2s, Rational::from(6));
        assert_eq!(m.send_unit_c2s, Rational::from(1));
    }
}
