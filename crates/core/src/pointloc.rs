//! Point location: compiling a region decomposition into a hyperplane
//! decision DAG.
//!
//! The paper's Figure 2 dispatcher linearly tests which polyhedral region
//! contains the current parameter point. That is the right shape for the
//! two-region programs of the evaluation, and the wrong shape for a
//! service answering millions of dispatch queries: every query re-checks
//! every constraint of every piece of every choice. This module compiles
//! the decomposition **once**, at analysis time, into a decision DAG over
//! the distinct hyperplanes of the region inequalities:
//!
//! * Every constraint `e ⋈ 0` of every piece is canonicalized to a signed
//!   integer hyperplane `h` (integer coefficients, collective gcd one,
//!   leading coefficient positive), deduplicated across pieces and
//!   choices, so a facet shared by two adjacent regions is evaluated
//!   once per query.
//! * Internal nodes test the **sign** of one hyperplane at the query
//!   point and branch three ways (`< 0`, `= 0`, `> 0`); the trichotomy —
//!   rather than a binary test — is what keeps points that lie exactly
//!   on a region boundary exact: strict and non-strict constraints on
//!   the same hyperplane resolve differently at sign zero, and both
//!   resolve correctly here.
//! * Construction is exact: each branch's accumulated sign context is a
//!   polyhedron, infeasible branches are pruned with the poly layer's
//!   rational emptiness LP, and a branch whose context is covered by the
//!   remaining candidate pieces of a single choice terminates early in a
//!   leaf. Identical sign contexts are hash-consed, so the structure is
//!   a DAG, not a tree.
//! * Evaluation runs in fixed-width integer arithmetic: each hyperplane
//!   stores its coefficients as `i128` (when they fit) and the sign of
//!   `h(x)` is an overflow-checked dot product for integer-valued query
//!   points, falling back to the exact rational evaluation on overflow
//!   or on fractional coordinates (annotated dummies can evaluate to
//!   rationals). Fast path and fallback compute the same sign, so the
//!   result never depends on which one ran.
//!
//! The DAG answers "which choice's region contains this point?" in one
//! root-to-leaf walk — at most one sign evaluation per distinct
//! hyperplane, and typically far fewer. [`crate::Dispatcher::decide`]
//! consults it via the locator stored on
//! [`crate::ParametricPartition::locator`]; the linear scan remains
//! available (and differential-tested against the DAG) as
//! [`crate::DispatchRoute::LinearScan`] — and stays the sole dispatch
//! route for decompositions whose hyperplane arrangements are too rich
//! to compile within [`PointLocator::build`]'s size gate and work
//! budget.

use offload_poly::{Cmp, Constraint, LinExpr, Polyhedron, Rational, Region};
use std::collections::HashMap;

/// Sign-requirement bitmask: which signs of a hyperplane value satisfy a
/// constraint.
const NEG: u8 = 1;
const ZERO: u8 = 2;
const POS: u8 = 4;

/// One canonical hyperplane `h(x) = c0 + Σ ci·xi`.
#[derive(Debug, Clone)]
struct Plane {
    /// Exact form (integer coefficients, gcd one, leading coefficient
    /// positive).
    expr: LinExpr,
    /// `(coefficients, constant)` as `i128`, when every coefficient fits.
    int_form: Option<(Vec<i128>, i128)>,
}

impl Plane {
    fn from_expr(expr: LinExpr) -> Plane {
        let int_form = (|| {
            let mut coeffs = Vec::with_capacity(expr.nvars());
            for i in 0..expr.nvars() {
                let c = expr.coeff(i);
                debug_assert!(c.is_integer(), "canonical plane has integer coefficients");
                coeffs.push(c.numer().to_i128()?);
            }
            let c0 = expr.constant_term().numer().to_i128()?;
            Some((coeffs, c0))
        })();
        Plane { expr, int_form }
    }

    /// Sign of `h` at `point`: `-1`, `0` or `1`. `ints` is the point's
    /// `i128` image when every coordinate is an integer that fits.
    fn sign_at(&self, point: &[Rational], ints: Option<&[i128]>) -> i32 {
        if let (Some((coeffs, c0)), Some(xs)) = (&self.int_form, ints) {
            if let Some(sign) = int_dot_sign(coeffs, *c0, xs) {
                return sign;
            }
            // i128 overflow: fall through to the exact path.
            if offload_obs::enabled() {
                offload_obs::counter("core.pointloc.exact_fallbacks").inc();
            }
        }
        self.expr.eval(point).signum()
    }
}

/// Overflow-checked `sign(c0 + Σ ci·xi)` in `i128`; `None` on overflow.
fn int_dot_sign(coeffs: &[i128], c0: i128, xs: &[i128]) -> Option<i32> {
    let mut acc = c0;
    for (c, x) in coeffs.iter().zip(xs) {
        if *c != 0 {
            acc = acc.checked_add(c.checked_mul(*x)?)?;
        }
    }
    Some(acc.signum() as i32)
}

/// A node of the decision DAG.
#[derive(Debug, Clone)]
enum Node {
    /// No choice's region contains the point.
    NoMatch,
    /// The point lies in this choice's region.
    Match(u32),
    /// Branch on the sign of a hyperplane.
    Test {
        plane: u32,
        neg: u32,
        zero: u32,
        pos: u32,
    },
}

/// One piece of one choice's region, as sign requirements on planes.
#[derive(Debug, Clone)]
struct PieceReq {
    choice: u32,
    /// Piece index within the source regions (used to fetch the
    /// polyhedron for coverage tests during construction).
    poly: Polyhedron,
    /// `(plane, allowed-sign mask)`, deduplicated per plane.
    reqs: Vec<(u32, u8)>,
}

/// A compiled point-location structure over a region decomposition.
///
/// Built once per analysis (see [`crate::ParametricPartition::locator`]);
/// evaluated per dispatch query by [`PointLocator::locate`].
#[derive(Debug, Clone)]
pub struct PointLocator {
    nvars: usize,
    planes: Vec<Plane>,
    nodes: Vec<Node>,
    root: u32,
    depth: u32,
}

/// Construction rides every analysis, so it must be cheap or absent:
/// compiling the DAG is worth seconds for a decomposition a server will
/// answer millions of queries against, but a hyperplane arrangement
/// that is too rich (its cell count is exponential in dimension) must
/// abandon the DAG — dispatch then keeps the paper's linear scan
/// ([`crate::DispatchRoute::LinearScan`]) — rather than stall the
/// solve. Two deterministic guards enforce that:
///
/// * an up-front gate on arrangement size — past [`MAX_PLANES`]
///   distinct hyperplanes or [`MAX_PIECES`] region pieces the cell
///   count dwarfs any scan savings, so construction is not attempted
///   (of the checked-in benchmarks, fft at 29 planes / 11 dims and
///   susan at 30 / 14 are gated out; the ADPCM codecs at 12 / 6
///   compile to ~2.7k nodes);
/// * a work budget counted in LP calls ([`BUILD_WORK_BUDGET`]) — the
///   unit of actual construction cost — so an attempt that turns out
///   pathological aborts in bounded time instead of bounded recursion
///   with unbounded per-step cost.
const MAX_PLANES: usize = 24;
const MAX_PIECES: usize = 16;
const BUILD_WORK_BUDGET: usize = 200_000;

impl PointLocator {
    /// Compiles the decision DAG for a set of pairwise-disjoint regions
    /// (one per partitioning choice, in choice order) over an
    /// `nvars`-dimensional space.
    ///
    /// Returns `None` when the arrangement fails the size gate or
    /// construction exceeds its work budget (the arrangement is too
    /// rich to compile cheaply); callers fall back to the linear scan,
    /// which is always available.
    pub fn build(regions: &[&Region], nvars: usize) -> Option<PointLocator> {
        let mut b = Builder {
            planes: Vec::new(),
            plane_ids: HashMap::new(),
            pieces: Vec::new(),
            nodes: Vec::new(),
            memo: HashMap::new(),
            work: 0,
            aborted: false,
        };
        for (choice, region) in regions.iter().enumerate() {
            for piece in region.pieces() {
                b.intern_piece(choice as u32, piece);
            }
        }
        if b.planes.len() > MAX_PLANES || b.pieces.len() > MAX_PIECES {
            if offload_obs::enabled() {
                offload_obs::counter("core.pointloc.build_skips").inc();
            }
            return None;
        }
        let all: Vec<usize> = (0..b.pieces.len()).collect();
        let root = b.node_for(&mut Vec::new(), &all, Polyhedron::universe(nvars));
        if b.aborted {
            if offload_obs::enabled() {
                offload_obs::counter("core.pointloc.build_aborts").inc();
            }
            return None;
        }
        let depth = b.max_depth(root);
        let locator = PointLocator {
            nvars,
            planes: b.planes,
            nodes: b.nodes,
            root,
            depth,
        };
        if offload_obs::enabled() {
            offload_obs::histogram("core.pointloc.nodes").record(locator.nodes.len() as u64);
            offload_obs::histogram("core.pointloc.depth").record(locator.depth as u64);
        }
        Some(locator)
    }

    /// The index of the choice whose region contains `point`, or `None`
    /// when the point lies outside every region (outside the declared
    /// parameter space).
    ///
    /// # Panics
    ///
    /// Panics if the point's dimension differs from the regions'.
    pub fn locate(&self, point: &[Rational]) -> Option<usize> {
        assert_eq!(point.len(), self.nvars, "point dimension mismatch");
        // One integerization for the whole walk: every coordinate as
        // i128 when the point is integral (the common case — integer
        // parameters through integer monomials).
        let ints: Option<Vec<i128>> = point
            .iter()
            .map(|r| {
                if r.is_integer() {
                    r.numer().to_i128()
                } else {
                    None
                }
            })
            .collect();
        let mut node = self.root;
        loop {
            match &self.nodes[node as usize] {
                Node::NoMatch => return None,
                Node::Match(c) => return Some(*c as usize),
                Node::Test {
                    plane,
                    neg,
                    zero,
                    pos,
                } => {
                    let sign = self.planes[*plane as usize].sign_at(point, ints.as_deref());
                    node = match sign {
                        s if s < 0 => *neg,
                        0 => *zero,
                        _ => *pos,
                    };
                }
            }
        }
    }

    /// Number of DAG nodes (leaves included).
    pub fn nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Longest root-to-leaf path (sign evaluations on the worst query).
    pub fn depth(&self) -> usize {
        self.depth as usize
    }

    /// Number of distinct hyperplanes across all regions.
    pub fn planes(&self) -> usize {
        self.planes.len()
    }

    /// Dimension of the located space.
    pub fn nvars(&self) -> usize {
        self.nvars
    }
}

struct Builder {
    planes: Vec<Plane>,
    plane_ids: HashMap<LinExpr, u32>,
    pieces: Vec<PieceReq>,
    nodes: Vec<Node>,
    /// Hash-consing: sign assignment (sorted `(plane, sign-bit)`) → node.
    memo: HashMap<Vec<(u32, u8)>, u32>,
    /// Work units spent (roughly, emptiness LPs solved); construction
    /// aborts past [`BUILD_WORK_BUDGET`].
    work: usize,
    aborted: bool,
}

impl Builder {
    /// Charges `units` of construction work against the budget; returns
    /// `false` (and latches the abort flag) once the budget is blown.
    fn charge(&mut self, units: usize) -> bool {
        self.work = self.work.saturating_add(units);
        if self.work > BUILD_WORK_BUDGET {
            self.aborted = true;
        }
        !self.aborted
    }

    /// Canonicalizes a constraint to `(plane, allowed-sign mask)`.
    /// Returns `None` for trivially-true constraints and a full-`false`
    /// mask (`0`) for trivially-false ones.
    fn intern_constraint(&mut self, c: &Constraint) -> Option<(u32, u8)> {
        match c.trivial_truth() {
            Some(true) => return None,
            Some(false) => return Some((u32::MAX, 0)),
            None => {}
        }
        let norm = c.normalize();
        // Sign-canonical: flip so the leading nonzero coefficient is
        // positive, remembering the flip in the allowed-sign mask.
        let flip = (0..norm.expr.nvars())
            .map(|i| norm.expr.coeff(i))
            .find(|v| !v.is_zero())
            .map(|v| v.is_negative())
            .unwrap_or(false);
        let expr = if flip {
            norm.expr.scale(&Rational::from(-1))
        } else {
            norm.expr.clone()
        };
        let mask = match (norm.cmp, flip) {
            (Cmp::Ge, false) => ZERO | POS,
            (Cmp::Ge, true) => NEG | ZERO,
            (Cmp::Gt, false) => POS,
            (Cmp::Gt, true) => NEG,
        };
        let id = match self.plane_ids.get(&expr) {
            Some(id) => *id,
            None => {
                let id = self.planes.len() as u32;
                self.planes.push(Plane::from_expr(expr.clone()));
                self.plane_ids.insert(expr, id);
                id
            }
        };
        Some((id, mask))
    }

    fn intern_piece(&mut self, choice: u32, poly: &Polyhedron) {
        let mut reqs: Vec<(u32, u8)> = Vec::new();
        for c in poly.constraints() {
            match self.intern_constraint(c) {
                None => {}
                Some((_, 0)) => return, // trivially-false: empty piece
                Some((p, m)) => match reqs.iter_mut().find(|(q, _)| *q == p) {
                    Some((_, exist)) => *exist &= m,
                    None => reqs.push((p, m)),
                },
            }
        }
        if reqs.iter().any(|(_, m)| *m == 0) {
            return; // contradictory on one plane: empty piece
        }
        reqs.sort_unstable_by_key(|(p, _)| *p);
        self.pieces.push(PieceReq {
            choice,
            poly: poly.clone(),
            reqs,
        });
    }

    fn push_node(&mut self, n: Node) -> u32 {
        let id = self.nodes.len() as u32;
        self.nodes.push(n);
        id
    }

    /// Constraints a sign assignment imposes on the context polyhedron.
    fn sign_constraints(&self, plane: u32, bit: u8) -> Vec<Constraint> {
        let h = self.planes[plane as usize].expr.clone();
        match bit {
            NEG => vec![Constraint::gt0(h.scale(&Rational::from(-1)))],
            ZERO => vec![
                Constraint::ge0(h.clone()),
                Constraint::ge0(h.scale(&Rational::from(-1))),
            ],
            _ => vec![Constraint::gt0(h)],
        }
    }

    /// Builds (or reuses) the node for a sign assignment. `assign` is
    /// kept sorted by plane id; `candidates` lists pieces compatible with
    /// it; `ctx` is the polyhedron of the assignment's constraints.
    fn node_for(
        &mut self,
        assign: &mut Vec<(u32, u8)>,
        candidates: &[usize],
        ctx: Polyhedron,
    ) -> u32 {
        if let Some(id) = self.memo.get(assign.as_slice()) {
            return *id;
        }
        let id = self.build_node(assign, candidates, ctx);
        self.memo.insert(assign.clone(), id);
        id
    }

    fn build_node(
        &mut self,
        assign: &mut Vec<(u32, u8)>,
        candidates: &[usize],
        ctx: Polyhedron,
    ) -> u32 {
        if candidates.is_empty() {
            return self.push_node(Node::NoMatch);
        }
        // Unreachable sign combinations get a NoMatch leaf; pruning here
        // is what keeps the structure near the decomposition's intrinsic
        // size instead of 3^planes.
        if !self.charge(1) {
            return self.push_node(Node::NoMatch);
        }
        if ctx.is_empty() {
            return self.push_node(Node::NoMatch);
        }
        // A piece whose every requirement is decided true contains the
        // whole context; regions are pairwise disjoint, so it is the
        // answer everywhere below this node.
        let decided = |reqs: &[(u32, u8)]| {
            reqs.iter()
                .all(|(p, m)| assign.iter().any(|(ap, abit)| ap == p && (abit & m) != 0))
        };
        if let Some(i) = candidates.iter().find(|&&i| decided(&self.pieces[i].reqs)) {
            return self.push_node(Node::Match(self.pieces[*i].choice));
        }
        // Geometric refinement — the step that keeps the recursion at
        // the decomposition's intrinsic complexity instead of the full
        // hyperplane arrangement's (which is exponential in dimension):
        // a candidate whose piece *contains* the whole context is the
        // answer outright (first in choice order, mirroring the scan),
        // and a candidate whose piece is disjoint from the context can
        // never match below this node and is dropped, so branching only
        // continues on planes that still discriminate here.
        let mut live: Vec<usize> = Vec::with_capacity(candidates.len());
        for &i in candidates {
            // subset_of runs one emptiness LP per constraint of the
            // piece; the intersection test runs one more.
            let lp_cost = self.pieces[i].poly.constraints().len() + 1;
            if !self.charge(lp_cost) {
                return self.push_node(Node::NoMatch);
            }
            if ctx.subset_of(&self.pieces[i].poly) {
                return self.push_node(Node::Match(self.pieces[i].choice));
            }
            if !ctx.intersect(&self.pieces[i].poly).is_empty() {
                live.push(i);
            }
        }
        if live.is_empty() {
            return self.push_node(Node::NoMatch);
        }
        let candidates = &live[..];
        // Early leaf: when every remaining candidate belongs to one
        // choice and together they cover the context, no further sign
        // can change the answer.
        let first_choice = self.pieces[candidates[0]].choice;
        if candidates
            .iter()
            .all(|&i| self.pieces[i].choice == first_choice)
        {
            let mut rest = Region::from(ctx.clone());
            for &i in candidates {
                if !self.charge(self.pieces[i].poly.constraints().len() + 1) {
                    return self.push_node(Node::NoMatch);
                }
                rest = rest.subtract(&self.pieces[i].poly);
                if rest.is_empty() {
                    return self.push_node(Node::Match(first_choice));
                }
            }
        }
        // Branch on the hyperplane that appears in the most candidate
        // pieces (ties break to the lowest id, for determinism).
        let assigned = |p: u32| assign.iter().any(|(ap, _)| *ap == p);
        let mut counts: Vec<(u32, usize)> = Vec::new();
        for &i in candidates {
            for (p, _) in &self.pieces[i].reqs {
                if assigned(*p) {
                    continue;
                }
                match counts.iter_mut().find(|(q, _)| q == p) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((*p, 1)),
                }
            }
        }
        let Some(&(plane, _)) = counts
            .iter()
            .max_by(|a, b| a.1.cmp(&b.1).then(b.0.cmp(&a.0)))
        else {
            // Every plane of every candidate is assigned, yet none is
            // fully satisfied: each candidate has some requirement
            // decided false, so nothing matches here.
            return self.push_node(Node::NoMatch);
        };
        let mut children = [0u32; 3];
        for (slot, bit) in [NEG, ZERO, POS].into_iter().enumerate() {
            let next: Vec<usize> = candidates
                .iter()
                .copied()
                .filter(|&i| {
                    self.pieces[i]
                        .reqs
                        .iter()
                        .all(|(p, m)| *p != plane || (m & bit) != 0)
                })
                .collect();
            let mut child_ctx = ctx.clone();
            for c in self.sign_constraints(plane, bit) {
                child_ctx.add(c);
            }
            let pos = assign
                .binary_search_by_key(&(plane, bit), |&e| e)
                .unwrap_err();
            assign.insert(pos, (plane, bit));
            children[slot] = self.node_for(assign, &next, child_ctx);
            assign.remove(pos);
        }
        self.push_node(Node::Test {
            plane,
            neg: children[0],
            zero: children[1],
            pos: children[2],
        })
    }

    /// Longest path from `root` to any leaf (the DAG is acyclic by
    /// construction: children are always created before their parent).
    fn max_depth(&self, root: u32) -> u32 {
        let mut depth = vec![0u32; self.nodes.len()];
        for (i, n) in self.nodes.iter().enumerate() {
            if let Node::Test { neg, zero, pos, .. } = n {
                depth[i] = 1 + depth[*neg as usize]
                    .max(depth[*zero as usize])
                    .max(depth[*pos as usize]);
            }
        }
        depth[root as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn x_ge(c: i64) -> Constraint {
        Constraint::ge0(LinExpr::var(1, 0).plus_constant(r(-c)))
    }

    fn x_lt(c: i64) -> Constraint {
        Constraint::gt0(LinExpr::constant(1, r(c)).plus_term(0, r(-1)))
    }

    /// Two disjoint 1-d regions split at x = 10 (x < 10 | x >= 10): the
    /// boundary point must land in the closed side.
    #[test]
    fn split_point_boundary_is_exact() {
        let low = Region::from(Polyhedron::from_constraints(1, vec![x_ge(0), x_lt(10)]));
        let high = Region::from(Polyhedron::from_constraints(1, vec![x_ge(10)]));
        let loc = PointLocator::build(&[&low, &high], 1).expect("DAG builds within budget");
        assert_eq!(loc.locate(&[r(0)]), Some(0));
        assert_eq!(loc.locate(&[r(9)]), Some(0));
        assert_eq!(loc.locate(&[r(10)]), Some(1), "boundary goes to >=");
        assert_eq!(loc.locate(&[r(11)]), Some(1));
        assert_eq!(loc.locate(&[r(-1)]), None, "outside the declared space");
        assert_eq!(
            loc.locate(&[Rational::new(19, 2)]),
            Some(0),
            "rational coordinates use the exact path"
        );
    }

    /// A shared facet between adjacent regions is interned once.
    #[test]
    fn shared_hyperplane_dedup() {
        let low = Region::from(Polyhedron::from_constraints(1, vec![x_lt(10)]));
        let high = Region::from(Polyhedron::from_constraints(1, vec![x_ge(10)]));
        let loc = PointLocator::build(&[&low, &high], 1).expect("DAG builds within budget");
        assert_eq!(loc.planes(), 1, "x<10 and x>=10 share one hyperplane");
        assert_eq!(loc.depth(), 1);
    }

    /// Zero-dimensional space: a single universal region.
    #[test]
    fn zero_dims_universe() {
        let all = Region::universe(0);
        let loc = PointLocator::build(&[&all], 0).expect("DAG builds within budget");
        assert_eq!(loc.locate(&[]), Some(0));
    }

    /// Coefficients too large for i128 still evaluate (exact fallback).
    #[test]
    fn huge_point_falls_back_to_exact() {
        let low = Region::from(Polyhedron::from_constraints(1, vec![x_lt(10)]));
        let high = Region::from(Polyhedron::from_constraints(1, vec![x_ge(10)]));
        let loc = PointLocator::build(&[&low, &high], 1).expect("DAG builds within budget");
        // 2^200 does not fit i128; the rational path must answer.
        let mut huge = Rational::one();
        for _ in 0..200 {
            huge = &huge * &Rational::from(2);
        }
        assert_eq!(loc.locate(&[huge]), Some(1));
    }

    /// 2-d: quadrant-style split with a wedge, exercising DAG sharing.
    #[test]
    fn two_dims_three_choices() {
        let nv = 2;
        let x = || LinExpr::var(nv, 0);
        let y = || LinExpr::var(nv, 1);
        // A: x >= 0, y >= 0, x - y >= 0 (lower wedge incl. diagonal)
        let a = Region::from(Polyhedron::from_constraints(
            nv,
            vec![
                Constraint::ge0(x()),
                Constraint::ge0(y()),
                Constraint::ge0(x().sub(&y())),
            ],
        ));
        // B: x >= 0, y >= 0, y - x > 0 (upper wedge, open diagonal)
        let b = Region::from(Polyhedron::from_constraints(
            nv,
            vec![
                Constraint::ge0(x()),
                Constraint::ge0(y()),
                Constraint::gt0(y().sub(&x())),
            ],
        ));
        let loc = PointLocator::build(&[&a, &b], nv).expect("DAG builds within budget");
        assert_eq!(loc.locate(&[r(3), r(2)]), Some(0));
        assert_eq!(loc.locate(&[r(2), r(3)]), Some(1));
        assert_eq!(loc.locate(&[r(2), r(2)]), Some(0), "diagonal is A's");
        assert_eq!(loc.locate(&[r(-1), r(2)]), None);
        // The shared boundary plane x - y appears once.
        assert!(loc.planes() <= 3);
    }
}
