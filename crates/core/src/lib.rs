//! # offload-core
//!
//! The primary contribution of *Wang & Li, "Parametric Analysis for
//! Adaptive Computation Offloading" (PLDI 2004)*: parametric cost
//! analysis and parametric program partitioning for client/server
//! computation offloading.
//!
//! The pipeline, end to end:
//!
//! 1. front end + IR (`offload-lang`, `offload-ir`);
//! 2. points-to & memory abstraction (`offload-pta`, §2.3);
//! 3. task formation (`offload-tcfg`, Algorithm 1);
//! 4. per-task mod/ref classification (§2.4's constraint inputs);
//! 5. symbolic flow-constraint analysis (`offload-symbolic`, §3.3–3.4);
//! 6. the Theorem 1 reduction to a parametric min-cut network
//!    ([`NetBuilder`]);
//! 7. Algorithm 2 ([`solve`]): one optimal partitioning per polyhedral
//!    region of the parameter space;
//! 8. dispatch-guard generation ([`Dispatcher`], the Figure 2 program
//!    transformation).
//!
//! ```
//! use offload_core::{Analysis, AnalysisOptions};
//!
//! let src = "
//!     int work(int k) {
//!         int j; int acc;
//!         acc = 0;
//!         for (j = 0; j < k; j++) { acc = acc + j * j; }
//!         return acc;
//!     }
//!     void main(int n) { output(work(n)); }";
//! let analysis = Analysis::from_source(src, AnalysisOptions::default())?;
//! // Small n: stay local. Huge n: offload the worker.
//! let small = analysis.decide(&[1])?;
//! let large = analysis.decide(&[100000])?;
//! assert!(small.plan.is_all_local());
//! assert!(!large.plan.is_all_local());
//! # Ok::<(), offload_core::AnalyzeError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod costmodel;
mod dispatch;
mod items;
mod netbuild;
mod parametric;
mod pointloc;

pub use costmodel::CostModel;
pub use dispatch::{
    dummies_in_solution, AnnotationRule, Annotations, Decision, DispatchError, DispatchRoute,
    Dispatcher,
};
pub use items::{ItemTable, TrackedItem};
pub use netbuild::{NetBuilder, ParamBounds, PartitionNetwork, Term, ValidityModel};
pub use parametric::{
    cut_cost_at, solve, Direction, LogFn, LogLevel, ParametricPartition, Partition, PipelineStats,
    Plan, RegionStrategy, SolveError, SolveOptions, SolveStats,
};
pub use pointloc::PointLocator;

use offload_ir::Module;
use offload_pta::{ModRef, PointsTo};
use offload_symbolic::Symbolic;
use offload_tcfg::Tcfg;
use std::fmt;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// An annotation hook: builds [`Annotations`] from the discovered dummies.
///
/// Dummy ids only exist after the symbolic analysis runs, so callers that
/// want to annotate supply a hook instead of a fixed table.
pub type AnnotateFn = dyn Fn(&Symbolic) -> Annotations + Send + Sync;

/// Options for a whole-program analysis.
///
/// Construct via [`AnalysisOptions::builder`] (preferred), or field-by-field
/// from [`Default`] — both remain supported:
///
/// ```
/// use offload_core::{AnalysisOptions, RegionStrategy};
///
/// let opts = AnalysisOptions::builder()
///     .region_strategy(RegionStrategy::Dominance)
///     .annotate_with(|_sym| offload_core::Annotations::default())
///     .build();
/// # let _ = opts;
/// ```
#[derive(Clone, Default)]
pub struct AnalysisOptions {
    /// Cost constants (defaults to the iPAQ-like testbed).
    pub cost: CostModel,
    /// Declared parameter bounds (defaults to `h ≥ 0`).
    pub bounds: ParamBounds,
    /// User annotations for unresolvable dummies.
    pub annotations: Annotations,
    /// Builds annotations from the discovered dummies (dummy ids only
    /// exist after the symbolic analysis runs, so benchmark-style callers
    /// supply a function instead of a fixed table). Takes precedence over
    /// `annotations` when set.
    pub annotate: Option<fn(&Symbolic) -> Annotations>,
    /// Closure form of [`AnalysisOptions::annotate`]; set via the builder's
    /// [`AnalysisOptionsBuilder::annotate_with`]. Takes precedence over both
    /// `annotate` and `annotations` when set.
    pub annotate_with: Option<Arc<AnnotateFn>>,
    /// Data-transfer model: the paper's validity states (default) or the
    /// traditional per-DU-chain charging it improves upon (§2.2 ablation).
    pub validity_model: ValidityModel,
    /// Solver options (simplification, degeneracy reduction).
    pub solve: SolveOptions,
}

impl fmt::Debug for AnalysisOptions {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AnalysisOptions")
            .field("cost", &self.cost)
            .field("bounds", &self.bounds)
            .field("annotations", &self.annotations)
            .field("annotate", &self.annotate.map(|_| "fn"))
            .field(
                "annotate_with",
                &self.annotate_with.as_ref().map(|_| "closure"),
            )
            .field("validity_model", &self.validity_model)
            .field("solve", &self.solve)
            .finish()
    }
}

impl AnalysisOptions {
    /// Starts a builder with all-default options.
    pub fn builder() -> AnalysisOptionsBuilder {
        AnalysisOptionsBuilder {
            opts: AnalysisOptions::default(),
        }
    }

    /// Resolves the effective annotations for an analyzed program, honoring
    /// the precedence `annotate_with` > `annotate` > `annotations`.
    fn resolve_annotations(&self, symbolic: &Symbolic) -> Annotations {
        if let Some(f) = &self.annotate_with {
            f(symbolic)
        } else if let Some(f) = self.annotate {
            f(symbolic)
        } else {
            self.annotations.clone()
        }
    }
}

/// Fluent constructor for [`AnalysisOptions`].
#[derive(Debug, Clone, Default)]
pub struct AnalysisOptionsBuilder {
    opts: AnalysisOptions,
}

impl AnalysisOptionsBuilder {
    /// Sets the cost constants.
    pub fn cost(mut self, cost: CostModel) -> Self {
        self.opts.cost = cost;
        self
    }

    /// Sets the declared parameter bounds.
    pub fn bounds(mut self, bounds: ParamBounds) -> Self {
        self.opts.bounds = bounds;
        self
    }

    /// Sets a fixed annotation table.
    pub fn annotations(mut self, annotations: Annotations) -> Self {
        self.opts.annotations = annotations;
        self
    }

    /// Sets a closure that builds annotations from the discovered dummies
    /// (runs after symbolic analysis; overrides `annotations`).
    pub fn annotate_with<F>(mut self, f: F) -> Self
    where
        F: Fn(&Symbolic) -> Annotations + Send + Sync + 'static,
    {
        self.opts.annotate_with = Some(Arc::new(f));
        self
    }

    /// Sets the data-transfer charging model.
    pub fn validity_model(mut self, model: ValidityModel) -> Self {
        self.opts.validity_model = model;
        self
    }

    /// Sets the full solver option block.
    pub fn solve(mut self, solve: SolveOptions) -> Self {
        self.opts.solve = solve;
        self
    }

    /// Convenience: sets just the region strategy within the solver options.
    pub fn region_strategy(mut self, strategy: RegionStrategy) -> Self {
        self.opts.solve.region_strategy = strategy;
        self
    }

    /// Finishes the builder.
    pub fn build(self) -> AnalysisOptions {
        self.opts
    }
}

/// Errors from [`Analysis::from_source`].
#[derive(Debug)]
pub enum AnalyzeError {
    /// Front-end rejection.
    Lang(offload_lang::LangError),
    /// Parametric solver failure.
    Solve(SolveError),
    /// Run-time dispatch failure (from helper methods).
    Dispatch(DispatchError),
}

impl fmt::Display for AnalyzeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AnalyzeError::Lang(e) => write!(f, "{e}"),
            AnalyzeError::Solve(e) => write!(f, "{e}"),
            AnalyzeError::Dispatch(e) => write!(f, "{e}"),
        }
    }
}
impl std::error::Error for AnalyzeError {}

impl From<offload_lang::LangError> for AnalyzeError {
    fn from(e: offload_lang::LangError) -> Self {
        AnalyzeError::Lang(e)
    }
}
impl From<SolveError> for AnalyzeError {
    fn from(e: SolveError) -> Self {
        AnalyzeError::Solve(e)
    }
}
impl From<DispatchError> for AnalyzeError {
    fn from(e: DispatchError) -> Self {
        AnalyzeError::Dispatch(e)
    }
}

/// Builds a grid of parameter-consistent probe points in the linearized
/// dimension space: per-parameter geometric ladders (within the declared
/// bounds) swept individually and diagonally, crossed with a few dummy
/// assignments. Used to seed the dominance-probing region strategy.
fn probe_points(
    dict: &offload_symbolic::ParamDict,
    network: &PartitionNetwork,
    bounds: &ParamBounds,
) -> Vec<Vec<offload_poly::Rational>> {
    use offload_poly::Rational;
    use offload_symbolic::Atom;
    let k = dict.param_count();
    let ladder = |i: usize| -> Vec<i64> {
        let lb = bounds.lower(i).unwrap_or(0).max(1);
        let ub = bounds.upper(i);
        let mut vals = vec![lb];
        let mut v = lb.saturating_mul(8);
        loop {
            match ub {
                Some(u) if v >= u => {
                    if vals.last() != Some(&u) {
                        vals.push(u);
                    }
                    break;
                }
                None if v > 1_000_000 => {
                    vals.push(1_000_000);
                    break;
                }
                _ => vals.push(v),
            }
            if vals.len() >= 5 {
                break;
            }
            v = v.saturating_mul(8);
        }
        vals
    };
    let ladders: Vec<Vec<i64>> = (0..k).map(ladder).collect();
    let max_levels = ladders.iter().map(Vec::len).max().unwrap_or(1);

    let mut param_vecs: Vec<Vec<i64>> = Vec::new();
    // Diagonals: every parameter at its level-L value.
    for level in 0..max_levels {
        param_vecs.push(
            ladders
                .iter()
                .map(|l| {
                    l.get(level.min(l.len().saturating_sub(1)))
                        .copied()
                        .unwrap_or(1)
                })
                .collect(),
        );
    }
    // Per-parameter sweeps with the others at their second level.
    let base: Vec<i64> = ladders
        .iter()
        .map(|l| {
            l.get(1.min(l.len().saturating_sub(1)))
                .copied()
                .unwrap_or(1)
        })
        .collect();
    for (i, l) in ladders.iter().enumerate() {
        for &v in l {
            let mut p = base.clone();
            p[i] = v;
            param_vecs.push(p);
        }
    }

    let dummy_values = [Rational::zero(), Rational::one(), Rational::new(1, 2)];
    let mut out = Vec::new();
    for params in &param_vecs {
        for dv in &dummy_values {
            let point: Vec<Rational> = network
                .dims
                .iter()
                .map(|m| {
                    dict.eval_monomial(*m, &|a| match a {
                        Atom::Param(i) => Rational::from(params[i as usize]),
                        Atom::Dummy(_) => dv.clone(),
                    })
                })
                .collect();
            out.push(point);
        }
    }
    out.sort();
    out.dedup();
    out
}

/// A complete parametric offloading analysis of one program.
#[derive(Debug)]
pub struct Analysis {
    /// The lowered program.
    pub module: Module,
    /// Task control flow graph.
    pub tcfg: Tcfg,
    /// Points-to results.
    pub pta: PointsTo,
    /// Per-task access classification.
    pub modref: ModRef,
    /// Symbolic counts and the parameter dictionary.
    pub symbolic: Symbolic,
    /// Tracked data items.
    pub items: ItemTable,
    /// The Theorem 1 network.
    pub network: PartitionNetwork,
    /// The Algorithm 2 solution.
    pub partition: ParametricPartition,
    /// The run-time selector.
    pub dispatcher: Dispatcher,
    /// Wall-clock time of the whole analysis.
    pub analysis_time: Duration,
}

impl Analysis {
    /// Runs the full pipeline on mini-C source text.
    ///
    /// # Errors
    ///
    /// Returns front-end errors verbatim and solver failures (see
    /// [`AnalyzeError`]).
    pub fn from_source(src: &str, options: AnalysisOptions) -> Result<Analysis, AnalyzeError> {
        let start = Instant::now();
        let checked = offload_lang::frontend(src)?;
        let module = offload_ir::lower(&checked);
        Self::from_module(module, options, start)
    }

    fn from_module(
        module: Module,
        options: AnalysisOptions,
        start: Instant,
    ) -> Result<Analysis, AnalyzeError> {
        let pta = PointsTo::analyze(&module);
        let tcfg = Tcfg::build(&module, pta.indirect_targets());
        let modref = ModRef::compute(&module, &tcfg, &pta);
        let mut symbolic = Symbolic::analyze(&module, pta.indirect_targets());
        // Resolve annotations, then apply every *polynomial* annotation by
        // substitution (§3.4): the dummy disappears from all costs and
        // never becomes a polyhedral dimension. Function-rule annotations
        // (e.g. log2 trip counts) stay as dimensions and are evaluated at
        // dispatch time.
        let annotations = options.resolve_annotations(&symbolic);
        // Substitute in ascending dummy order: substitution interns new
        // monomials, and the interning order decides every downstream
        // dimension numbering — iterating the map directly would make the
        // analysis differ structurally from run to run.
        let mut rules: Vec<(u32, AnnotationRule)> = annotations
            .exprs
            .iter()
            .map(|(d, r)| (*d, r.clone()))
            .collect();
        rules.sort_by_key(|(d, _)| *d);
        for (d, rule) in rules {
            if let AnnotationRule::Expr(e) = rule {
                symbolic.substitute_dummy(d, &e);
            }
        }
        let items = ItemTable::build(&tcfg, &pta, &modref, &symbolic);
        let mut bounds = options.bounds.clone();
        if bounds.per_param.is_empty() {
            bounds = ParamBounds::uniform(symbolic.dict.param_count(), 0, None);
        }
        let network = NetBuilder {
            module: &module,
            tcfg: &tcfg,
            modref: &modref,
            symbolic: &mut symbolic,
            items: &items,
            cost: &options.cost,
            bounds: &bounds,
            validity_model: options.validity_model,
        }
        .build();
        let probes = probe_points(&symbolic.dict, &network, &bounds);
        let partition = parametric::solve_with_probes(
            &network,
            &tcfg,
            items.items.len(),
            &options.solve,
            &probes,
        )?;
        let dispatcher = Dispatcher::new(symbolic.dict.clone(), annotations);
        Ok(Analysis {
            module,
            tcfg,
            pta,
            modref,
            symbolic,
            items,
            network,
            partition,
            dispatcher,
            analysis_time: start.elapsed(),
        })
    }

    /// Selects the partitioning choice for concrete parameter values.
    ///
    /// # Errors
    ///
    /// Returns [`DispatchError`] for missing annotations or wrong arity.
    #[deprecated(note = "use `decide`, which returns the typed `Decision`")]
    pub fn select(&self, params: &[i64]) -> Result<usize, DispatchError> {
        self.decide(params).map(|d| d.region_id)
    }

    /// Selects the partitioning choice for concrete parameter values and
    /// returns the full typed [`Decision`] — the executable [`Plan`], the
    /// matched region index, and the [`DispatchRoute`] that answered
    /// (point-location DAG, linear scan, or cheapest-cut fallback).
    ///
    /// This is the one-call bridge from analysis to execution: the plan
    /// feeds directly into the simulator's and the TCP engine's `run`
    /// entry points.
    ///
    /// # Errors
    ///
    /// Returns [`DispatchError`] for missing annotations or wrong arity.
    pub fn decide(&self, params: &[i64]) -> Result<Decision<'_>, DispatchError> {
        self.dispatcher
            .decide(&self.network, &self.partition, params)
    }

    /// Like [`Analysis::decide`], but always answers with the linear
    /// region scan — the differential-testing oracle for the compiled
    /// point-location DAG.
    ///
    /// # Errors
    ///
    /// Returns [`DispatchError`] for missing annotations or wrong arity.
    pub fn decide_linear(&self, params: &[i64]) -> Result<Decision<'_>, DispatchError> {
        self.dispatcher
            .decide_linear(&self.network, &self.partition, params)
    }

    /// Unified work counters of the parametric solve (flow / poly / core
    /// layers), as recorded on the partitioning result.
    pub fn pipeline_stats(&self) -> PipelineStats {
        self.partition.stats.pipeline
    }

    /// Selects the partitioning choice for concrete parameter values and
    /// returns it as an executable [`Plan`] alongside the choice index.
    ///
    /// This is the one-call bridge from analysis to execution: the result
    /// feeds directly into the simulator's and the TCP engine's `run`
    /// entry points.
    ///
    /// # Errors
    ///
    /// Returns [`DispatchError`] for missing annotations or wrong arity.
    #[deprecated(note = "use `decide`, which returns the typed `Decision`")]
    pub fn plan_for(&self, params: &[i64]) -> Result<(usize, Plan<'_>), DispatchError> {
        self.decide(params).map(|d| (d.region_id, d.plan))
    }

    /// The Figure 2-style guard text of each choice.
    pub fn guards(&self) -> Vec<String> {
        self.partition
            .choices
            .iter()
            .map(|c| self.dispatcher.guard_text(&self.network, c))
            .collect()
    }

    /// Dummy parameters that appear in the solution and lack both an
    /// automatic rule and a user annotation (§3.4: these must be
    /// annotated before dispatch).
    pub fn missing_annotations(&self) -> Vec<u32> {
        dummies_in_solution(&self.network, &self.partition, &self.symbolic.dict)
            .into_iter()
            .filter(|d| {
                let auto = self
                    .symbolic
                    .dict
                    .dummies()
                    .get(*d as usize)
                    .map(|o| o.is_auto())
                    .unwrap_or(false);
                !auto && !self.dispatcher.annotations().exprs.contains_key(d)
            })
            .collect()
    }

    /// One-line summary per choice (for reports).
    pub fn describe_choices(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, c) in self.partition.choices.iter().enumerate() {
            let server: Vec<String> = c
                .server_task_ids()
                .iter()
                .map(|t| {
                    let task = self.tcfg.task(*t);
                    format!("{}@{}", t, self.module.function(task.func).name)
                })
                .collect();
            let _ = writeln!(
                out,
                "choice {i}: server tasks = [{}]\n  when {}",
                server.join(", "),
                self.dispatcher.guard_text(&self.network, c)
            );
        }
        out
    }
}
