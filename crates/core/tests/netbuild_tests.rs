//! Structural tests of the Theorem 1 network construction.

use offload_core::{Analysis, AnalysisOptions, Term};
use offload_flow::ParamCap;

fn analyze(src: &str) -> Analysis {
    Analysis::from_source(src, AnalysisOptions::default()).expect("analysis")
}

#[test]
fn every_task_has_an_m_node() {
    let a = analyze(offload_lang::examples_src::FIGURE1);
    for i in 0..a.tcfg.tasks().len() {
        assert!(
            a.network
                .node(Term::M(offload_tcfg::TaskId(i as u32)))
                .is_some(),
            "task {i} missing M node"
        );
    }
}

#[test]
fn io_tasks_have_infinite_server_arcs() {
    let a = analyze(offload_lang::examples_src::FIGURE1);
    let sink = a.network.net.sink();
    for (i, t) in a.tcfg.tasks().iter().enumerate() {
        if !t.is_io {
            continue;
        }
        let m = a
            .network
            .node(Term::M(offload_tcfg::TaskId(i as u32)))
            .unwrap();
        let has_inf = a
            .network
            .net
            .arcs()
            .iter()
            .any(|arc| arc.from == m && arc.to == sink && arc.cap == ParamCap::Infinite);
        assert!(has_inf, "I/O task {i} must be pinned by an infinite arc");
    }
}

#[test]
fn client_computation_arcs_leave_source() {
    let a = analyze("void main(int n) { int i; for (i = 0; i < n; i++) { output(i); } }");
    let src = a.network.net.source();
    let m = a.network.node(Term::M(offload_tcfg::TaskId(0))).unwrap();
    let has_cc = a
        .network
        .net
        .arcs()
        .iter()
        .any(|arc| arc.from == src && arc.to == m);
    assert!(has_cc, "client computation cost arc s -> M");
}

#[test]
fn validity_nodes_only_for_tracked_items() {
    let a = analyze(
        "void main(int n) {
             int i; int acc;
             acc = 0;
             for (i = 0; i < n; i++) { acc = acc + i; }
             output(acc);
         }",
    );
    // Single task: no tracked items, hence no validity nodes.
    assert!(a.items.items.is_empty());
    let has_validity = a.network.terms.iter().any(|t| {
        matches!(
            t,
            Term::Vsi(..) | Term::Vso(..) | Term::NotVci(..) | Term::NotVco(..)
        )
    });
    assert!(!has_validity);
}

#[test]
fn figure4_has_registration_nodes() {
    let a = analyze(offload_lang::examples_src::FIGURE4);
    let has_ns = a.network.terms.iter().any(|t| matches!(t, Term::Ns(_)));
    let has_nc = a.network.terms.iter().any(|t| matches!(t, Term::NotNc(_)));
    assert!(
        has_ns && has_nc,
        "dynamic items get Ns/¬Nc access-state nodes"
    );
}

#[test]
fn dims_cover_all_capacities() {
    let a = analyze(offload_lang::examples_src::FIGURE1);
    let k = a.network.dims.len();
    for arc in a.network.net.arcs() {
        if let ParamCap::Affine(e) = &arc.cap {
            assert_eq!(e.nvars(), k, "capacity lives in the dim space");
        }
    }
    assert_eq!(a.network.param_space.nvars(), k);
}

#[test]
fn param_space_contains_representative_points() {
    let a = analyze(offload_lang::examples_src::FIGURE1);
    let params = [offload_poly::Rational::from(2), 4.into(), 8.into()];
    let point = a.dispatcher.dim_point(&a.network, &params).unwrap();
    assert!(
        a.network.param_space.contains(&point),
        "in-bounds parameter values land inside the declared space"
    );
}
