//! Property tests for the point-location DAG.
//!
//! The DAG ([`offload_core::PointLocator`]) and the paper's linear
//! region scan must be *extensionally equal*: for every parameter point
//! — interior, boundary, or outside the declared parameter space — both
//! must name the same partitioning choice. proptest is unavailable
//! offline, so the suite drives a seeded xorshift64* generator (the same
//! idiom as the wire-protocol fuzz tests) over mixed magnitudes, signs,
//! and exact boundary neighborhoods, plus rational (non-integer) points
//! that force the locator off its `i128` fast path.

use offload_core::{Analysis, AnalysisOptions, DispatchRoute};
use offload_poly::Rational;

/// `(source, parameter arity)` for programs with multi-choice partitions
/// (loops over distinct parameters produce distinct cuts and genuinely
/// intersecting region boundaries).
const PROGRAMS: &[(&str, usize)] = &[
    (
        "int work(int k) {
         int j; int acc;
         acc = 0;
         for (j = 0; j < k; j++) { acc = acc + j * j; }
         return acc;
     }
     void main(int n) { output(work(n)); }",
        1,
    ),
    (
        "int stage1(int k) {
         int j; int acc;
         acc = 0;
         for (j = 0; j < k; j++) { acc = acc + j * 3 % 97; }
         return acc;
     }
     int stage2(int k) {
         int j; int acc;
         acc = 1;
         for (j = 0; j < k; j++) { acc = acc + j * j % 31; }
         return acc;
     }
     void main(int n, int m) { output(stage1(n) + stage2(m)); }",
        2,
    ),
    (
        "int inner(int k) {
         int j; int acc;
         acc = 0;
         for (j = 0; j < k; j++) { acc = acc + j; }
         return acc;
     }
     int outer(int n, int m) {
         int i; int acc;
         acc = 0;
         for (i = 0; i < n; i++) { acc = acc + inner(m); }
         return acc;
     }
     void main(int n, int m) { output(outer(n, m)); }",
        2,
    ),
];

fn analyze(src: &str) -> Analysis {
    Analysis::from_source(src, AnalysisOptions::default()).expect("analysis succeeds")
}

/// Deterministic xorshift64* generator (proptest is unavailable offline).
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// A parameter value from a magnitude tier chosen per draw: small
    /// values straddle the region boundaries, large ones exercise the
    /// deep interiors, and negatives land outside the declared space.
    fn param(&mut self) -> i64 {
        match self.next() % 4 {
            0 => (self.next() % 32) as i64,
            1 => (self.next() % 10_000) as i64,
            2 => (self.next() % 2_000_000_000) as i64,
            _ => -((self.next() % 1_000) as i64),
        }
    }
}

/// Asserts that the DAG route and the linear-scan oracle produce the
/// same decision for `params`, and that the routes are the expected
/// pair (DAG⇄scan on a match, fallback⇄fallback off the space).
fn assert_agree(analysis: &Analysis, params: &[i64]) {
    let dag = analysis.decide(params).expect("decide succeeds");
    let scan = analysis.decide_linear(params).expect("scan succeeds");
    assert_eq!(
        dag.region_id, scan.region_id,
        "params {params:?}: DAG chose {} but the linear scan chose {}",
        dag.region_id, scan.region_id
    );
    assert_eq!(
        dag.plan.is_all_local(),
        scan.plan.is_all_local(),
        "params {params:?}: same region, different plan shape"
    );
    match scan.route {
        DispatchRoute::LinearScan => assert_eq!(
            dag.route,
            DispatchRoute::Dag,
            "params {params:?}: scan matched a region but the DAG fell back"
        ),
        DispatchRoute::Fallback => assert_eq!(
            dag.route,
            DispatchRoute::Fallback,
            "params {params:?}: scan fell back but the DAG matched a region"
        ),
        DispatchRoute::Dag => unreachable!("decide_linear never routes through the DAG"),
    }
}

#[test]
fn dag_agrees_with_linear_scan_on_random_params() {
    for (i, &(src, arity)) in PROGRAMS.iter().enumerate() {
        let analysis = analyze(src);
        assert!(
            analysis.partition.locator.is_some(),
            "program {i}: analysis produced no point locator"
        );
        let mut rng = Rng::new(0x9E37_79B9 + i as u64);
        for _ in 0..2000 {
            let params: Vec<i64> = (0..arity).map(|_| rng.param()).collect();
            assert_agree(&analysis, &params);
        }
    }
}

#[test]
fn dag_agrees_with_linear_scan_at_region_boundaries() {
    // Walk a dense window of small parameter values; everywhere the
    // linear scan's answer *changes* between n and n+1 is a region
    // boundary, and the three-way sign branching must resolve n-1, n,
    // and n+1 exactly as the scan does. (The window itself already
    // asserts agreement point by point; recording the crossings makes
    // the test fail loudly if a program stops exercising any boundary.)
    for (i, &(src, arity)) in PROGRAMS.iter().enumerate() {
        let analysis = analyze(src);
        let mut crossings = 0usize;
        let mut prev: Option<usize> = None;
        for n in 0..256i64 {
            // Diagonal sweep: all parameters move together, so every
            // 1-D boundary slice along the diagonal is visited.
            let params: Vec<i64> = (0..arity).map(|k| n + k as i64).collect();
            assert_agree(&analysis, &params);
            let id = analysis.decide_linear(&params).unwrap().region_id;
            if prev.is_some_and(|p| p != id) {
                crossings += 1;
                for delta in [-1, 0, 1] {
                    let near: Vec<i64> = params.iter().map(|&v| v + delta).collect();
                    assert_agree(&analysis, &near);
                }
            }
            prev = Some(id);
        }
        assert!(
            crossings > 0,
            "program {i}: diagonal sweep crossed no region boundary — \
             the boundary-exactness check is vacuous"
        );
    }
}

#[test]
fn locator_matches_contains_scan_on_rational_points() {
    // Drive the locator directly with rational points — including
    // non-integer coordinates, which integer-valued parameters can
    // never produce, so this is the only coverage of the exact-rational
    // fallback off the i128 fast path — and compare against the
    // definitional answer: the first choice whose region contains the
    // point.
    for (i, &(src, _)) in PROGRAMS.iter().enumerate() {
        let analysis = analyze(src);
        let part = &analysis.partition;
        let locator = part.locator.as_ref().expect("locator built");
        let nvars = locator.nvars();
        let mut rng = Rng::new(0xDEAD_BEEF + i as u64);
        let mut fractional = 0usize;
        for round in 0..1500 {
            let point: Vec<Rational> = (0..nvars)
                .map(|_| {
                    let numer = (rng.next() % 4001) as i64 - 500;
                    let denom = *[1, 1, 2, 3, 8].get((rng.next() % 5) as usize).unwrap();
                    Rational::new(numer, denom)
                })
                .collect();
            if point.iter().any(|c| !c.is_integer()) {
                fractional += 1;
            }
            let expected = part.choices.iter().position(|c| c.region.contains(&point));
            assert_eq!(
                locator.locate(&point),
                expected,
                "program {i}, round {round}: locator disagrees with the \
                 contains() scan at {point:?}"
            );
        }
        assert!(
            fractional > 0,
            "program {i}: no fractional points generated — the exact \
             fallback path went untested"
        );
    }
}

#[test]
fn locator_structure_is_compiled_not_degenerate() {
    let analysis = analyze(PROGRAMS[1].0);
    let locator = analysis
        .partition
        .locator
        .as_ref()
        .expect("locator built for a multi-choice partition");
    assert!(locator.nodes() > 0, "empty DAG");
    assert!(locator.planes() > 0, "no hyperplanes interned");
    assert!(
        locator.depth() <= locator.planes(),
        "a root-to-leaf walk ({} tests) must never evaluate more than \
         the {} distinct hyperplanes",
        locator.depth(),
        locator.planes()
    );
}
