//! Determinism contracts of the region-exploration engine.
//!
//! The parallel worklist must produce bit-identical partitions for every
//! thread count (parallelism only decides *who* computes each piece,
//! never *which* results exist), the cut-signature cache must be a pure
//! memoization (identical output on and off), and the whole analysis must
//! be reproducible run to run within one process (no hash-iteration
//! ordering may leak into the output).

use offload_core::{Analysis, AnalysisOptions, PipelineStats, SolveOptions};

/// Programs with multi-choice partitions exercising several rounds of
/// the worklist (loops over distinct parameters produce distinct cuts).
const PROGRAMS: &[&str] = &[
    "int work(int k) {
         int j; int acc;
         acc = 0;
         for (j = 0; j < k; j++) { acc = acc + j * j; }
         return acc;
     }
     void main(int n) { output(work(n)); }",
    "int stage1(int k) {
         int j; int acc;
         acc = 0;
         for (j = 0; j < k; j++) { acc = acc + j * 3 % 97; }
         return acc;
     }
     int stage2(int k) {
         int j; int acc;
         acc = 1;
         for (j = 0; j < k; j++) { acc = acc + j * j % 31; }
         return acc;
     }
     void main(int n, int m) { output(stage1(n) + stage2(m)); }",
    "int inner(int k) {
         int j; int acc;
         acc = 0;
         for (j = 0; j < k; j++) { acc = acc + j; }
         return acc;
     }
     int outer(int n, int m) {
         int i; int acc;
         acc = 0;
         for (i = 0; i < n; i++) { acc = acc + inner(m); }
         return acc;
     }
     void main(int n, int m) { output(outer(n, m)); }",
];

fn analyze_with(src: &str, solve: SolveOptions) -> Analysis {
    let opts = AnalysisOptions {
        solve,
        ..AnalysisOptions::default()
    };
    Analysis::from_source(src, opts).expect("analysis succeeds")
}

#[test]
fn parallel_partition_is_bit_identical_to_sequential() {
    for (i, src) in PROGRAMS.iter().enumerate() {
        let seq = analyze_with(
            src,
            SolveOptions {
                threads: 1,
                ..Default::default()
            },
        );
        for threads in [2, 4, 8] {
            let par = analyze_with(
                src,
                SolveOptions {
                    threads,
                    ..Default::default()
                },
            );
            assert_eq!(
                seq.partition.choices, par.partition.choices,
                "program {i}: threads={threads} diverged from sequential"
            );
        }
    }
}

#[test]
fn parallel_work_counters_are_scheduling_independent() {
    // Every piece is explored in every round regardless of thread count,
    // so even the flow-layer effort counters must match exactly. The
    // `work_counters` view masks the legitimately run-dependent fields
    // (thread count, wall times), so the whole record must compare equal.
    for src in PROGRAMS {
        let seq = analyze_with(
            src,
            SolveOptions {
                threads: 1,
                ..Default::default()
            },
        );
        let par = analyze_with(
            src,
            SolveOptions {
                threads: 4,
                ..Default::default()
            },
        );
        let (s, p) = (seq.pipeline_stats(), par.pipeline_stats());
        assert_eq!(s.flow_solves, p.flow_solves);
        assert_eq!(s.flow_phases, p.flow_phases);
        assert_eq!(s.flow_augmenting_paths, p.flow_augmenting_paths);
        assert_eq!(s.rounds, p.rounds);
        assert_eq!(s.regions_explored, p.regions_explored);
        assert_eq!(s.work_counters(), p.work_counters());
        assert_ne!(
            s.threads_used, p.threads_used,
            "the masked field really differs"
        );
    }
}

#[test]
fn threads_used_reports_the_configured_worker_count() {
    // `threads_used` records the resolved configuration on every
    // strategy; a sequential-by-design strategy says so through
    // `sequential_strategy` instead of misreporting 1.
    for threads in [1usize, 2, 3] {
        let a = analyze_with(
            PROGRAMS[0],
            SolveOptions {
                threads,
                ..Default::default()
            },
        );
        let p = a.pipeline_stats();
        assert_eq!(p.threads_used as usize, threads);
        assert!(!p.sequential_strategy, "the exact engine is parallel");
    }
    let dom = analyze_with(
        PROGRAMS[0],
        SolveOptions {
            threads: 2,
            region_strategy: offload_core::RegionStrategy::Dominance,
            ..Default::default()
        },
    );
    let p = dom.pipeline_stats();
    assert_eq!(
        p.threads_used, 2,
        "dominance still reports the configured count"
    );
    assert!(p.sequential_strategy, "dominance is sequential by design");
}

#[test]
fn cut_cache_does_not_change_the_partition() {
    for (i, src) in PROGRAMS.iter().enumerate() {
        let cached = analyze_with(
            src,
            SolveOptions {
                cut_cache: true,
                ..Default::default()
            },
        );
        let raw = analyze_with(
            src,
            SolveOptions {
                cut_cache: false,
                ..Default::default()
            },
        );
        assert_eq!(
            cached.partition.choices, raw.partition.choices,
            "program {i}: cache changed the output"
        );
        let off = raw.pipeline_stats();
        assert_eq!(off.cache_hits, 0, "disabled cache must never report hits");
        assert_eq!(
            off.cache_misses, 0,
            "disabled cache must never report misses"
        );
    }
}

#[test]
fn analysis_is_reproducible_within_a_process() {
    // Two analyses of the same source in one process see differently
    // seeded hash maps; none of that may reach the output.
    for (i, src) in PROGRAMS.iter().enumerate() {
        let a = analyze_with(src, SolveOptions::default());
        let b = analyze_with(src, SolveOptions::default());
        assert_eq!(
            a.partition.choices, b.partition.choices,
            "program {i}: repeated analysis diverged"
        );
        assert_eq!(a.network.param_space, b.network.param_space);
    }
}

#[test]
fn incremental_prune_counters_fire_and_are_thread_count_independent() {
    // The warm-started redundancy pipeline must (a) actually run on a
    // real evaluation program — every ladder stage fires, so none of the
    // counters may be zero — and (b) do *identical* work at every thread
    // count: the intra-piece parallel split only changes who verifies
    // each candidate, never which checks happen.
    let bench = offload_benchmarks::all()
        .into_iter()
        .find(|b| b.name == "rawcaudio")
        .expect("rawcaudio is a stock benchmark");
    let mut runs = Vec::new();
    for threads in [1usize, 2, 4] {
        let a = bench
            .analyze_with(SolveOptions {
                threads,
                ..Default::default()
            })
            .expect("analysis succeeds");
        runs.push((threads, a.pipeline_stats(), a.partition.choices.clone()));
    }
    let (_, first, choices) = &runs[0];
    assert!(first.prefilter_hits > 0, "pre-filter ladder never fired");
    assert!(first.lp_warm_starts > 0, "incremental LP never consulted");
    assert!(first.dual_pivots > 0, "dual-simplex restore never ran");
    assert!(first.prune_micros > 0, "prune time must be accounted");
    for (threads, stats, ch) in &runs[1..] {
        assert_eq!(choices, ch, "threads={threads}: partition diverged");
        for (name, a, b) in [
            ("prefilter_hits", first.prefilter_hits, stats.prefilter_hits),
            ("lp_warm_starts", first.lp_warm_starts, stats.lp_warm_starts),
            ("dual_pivots", first.dual_pivots, stats.dual_pivots),
            ("lp_pivots", first.lp_pivots, stats.lp_pivots),
            ("lp_solves", first.lp_solves, stats.lp_solves),
            ("fm_constraints", first.fm_constraints, stats.fm_constraints),
        ] {
            assert_eq!(a, b, "threads={threads}: {name} depends on thread count");
        }
    }
}

#[test]
fn pipeline_stats_are_populated_on_the_exact_path() {
    let a = analyze_with(
        PROGRAMS[0],
        SolveOptions {
            threads: 2,
            ..Default::default()
        },
    );
    let p: PipelineStats = a.pipeline_stats();
    assert!(p.flow_solves > 0, "min-cut work must be counted");
    assert!(p.lp_solves > 0, "LP work must be counted");
    assert!(p.rounds > 0, "worklist rounds must be counted");
    assert!(p.regions_explored as usize >= a.partition.choices.len());
    assert_eq!(p.threads_used, 2);
}
