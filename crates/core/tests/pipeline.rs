//! End-to-end tests of the parametric partitioning pipeline.

use offload_core::{Analysis, AnalysisOptions, CostModel, ParamBounds, SolveOptions};
use offload_poly::Rational;

fn analyze(src: &str) -> Analysis {
    Analysis::from_source(src, AnalysisOptions::default()).expect("analysis succeeds")
}

#[test]
fn trivial_program_single_local_choice() {
    let a = analyze("void main() { output(42); }");
    assert_eq!(a.partition.choices.len(), 1);
    assert!(
        a.partition.choices[0].is_all_local(),
        "I/O pins the only task to the client"
    );
    assert_eq!(a.decide(&[]).unwrap().region_id, 0);
}

#[test]
fn pure_compute_helper_offloads_for_large_inputs() {
    let a = analyze(
        "int work(int k) {
             int j; int acc;
             acc = 0;
             for (j = 0; j < k; j++) { acc = acc + j * j; }
             return acc;
         }
         void main(int n) { output(work(n)); }",
    );
    assert!(a.partition.choices.len() >= 2, "{}", a.describe_choices());
    let small = a.decide(&[1]).unwrap().region_id;
    let large = a.decide(&[1_000_000]).unwrap().region_id;
    assert!(a.partition.choices[small].is_all_local());
    assert!(!a.partition.choices[large].is_all_local());
    // The offloaded choice sends the worker to the server but keeps the
    // I/O task on the client.
    let offloaded = &a.partition.choices[large];
    let work = a.module.func_by_name("work").unwrap();
    let server_funcs: Vec<_> = offloaded
        .server_task_ids()
        .iter()
        .map(|t| a.tcfg.task(*t).func)
        .collect();
    assert!(server_funcs.contains(&work));
    for (i, t) in a.tcfg.tasks().iter().enumerate() {
        if t.is_io {
            assert!(!offloaded.server_tasks[i], "I/O tasks stay on the client");
        }
    }
}

#[test]
fn regions_partition_declared_space() {
    let a = analyze(
        "int work(int k) {
             int j; int acc;
             acc = 0;
             for (j = 0; j < k; j++) { acc = acc + j * j; }
             return acc;
         }
         void main(int n) { output(work(n)); }",
    );
    // Probe many parameter values: exactly one region should claim each.
    for n in [0i64, 1, 10, 100, 1000, 10_000, 100_000, 1_000_000] {
        let params = [Rational::from(n)];
        let point = a.dispatcher.dim_point(&a.network, &params).unwrap();
        let holders = a
            .partition
            .choices
            .iter()
            .filter(|c| c.region.contains(&point))
            .count();
        assert_eq!(holders, 1, "n={n}: point must lie in exactly one region");
    }
}

#[test]
fn selected_choice_is_cheapest() {
    let a = analyze(
        "int work(int k) {
             int j; int acc;
             acc = 0;
             for (j = 0; j < k; j++) { acc = acc + j * j; }
             return acc;
         }
         void main(int n) { output(work(n)); }",
    );
    for n in [1i64, 64, 512, 4096, 65536] {
        let chosen = a.decide(&[n]).unwrap().region_id;
        let params = [Rational::from(n)];
        let point = a.dispatcher.dim_point(&a.network, &params).unwrap();
        let chosen_cost =
            offload_core::cut_cost_at(&a.network, &a.partition.choices[chosen], &point)
                .expect("finite");
        for (i, c) in a.partition.choices.iter().enumerate() {
            if let Some(v) = offload_core::cut_cost_at(&a.network, c, &point) {
                assert!(
                    chosen_cost <= v,
                    "n={n}: choice {chosen} ({chosen_cost}) beaten by {i} ({v})"
                );
            }
        }
    }
}

#[test]
fn figure1_produces_parameter_dependent_choices() {
    let a = analyze(offload_lang::examples_src::FIGURE1);
    // No annotations needed for Figure 1.
    assert!(a.missing_annotations().is_empty());
    // Different (x, y, z) corners select different partitionings, as in
    // the paper's worked example: heavy per-unit work (large z) favors
    // offloading the encoder; tiny work keeps everything local.
    let local = a.decide(&[4, 64, 1]).unwrap().region_id;
    let heavy = a.decide(&[4, 64, 100_000]).unwrap().region_id;
    assert_ne!(local, heavy, "{}", a.describe_choices());
    assert!(a.partition.choices[local].is_all_local());
    let g = a.module.func_by_name("g_fast").unwrap();
    let heavy_choice = &a.partition.choices[heavy];
    let server_funcs: Vec<_> = heavy_choice
        .server_task_ids()
        .iter()
        .map(|t| a.tcfg.task(*t).func)
        .collect();
    assert!(
        server_funcs.contains(&g),
        "large z offloads the encoder\n{}",
        a.describe_choices()
    );
}

#[test]
fn figure1_transfers_buffers_not_garbage() {
    let a = analyze(offload_lang::examples_src::FIGURE1);
    let heavy = a.decide(&[4, 64, 100_000]).unwrap().region_id;
    let choice = &a.partition.choices[heavy];
    // Some edge carries a client-to-server transfer (inbuf) and some edge
    // carries a server-to-client transfer (outbuf).
    let dirs: std::collections::HashSet<offload_core::Direction> =
        choice.transfers.iter().flatten().map(|(_, d)| *d).collect();
    assert!(
        dirs.contains(&offload_core::Direction::ClientToServer),
        "input buffer must move to the server"
    );
    assert!(
        dirs.contains(&offload_core::Direction::ServerToClient),
        "output buffer must come back"
    );
}

#[test]
fn degeneracy_reduction_reduces_or_keeps() {
    let src = "int work(int k) {
                   int j; int acc;
                   acc = 0;
                   for (j = 0; j < k; j++) { acc = acc + j * j; }
                   return acc;
               }
               void main(int n) { output(work(n)); }";
    let opts = AnalysisOptions {
        solve: SolveOptions {
            reduce_degeneracy: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let without = Analysis::from_source(src, opts).unwrap();
    let with = analyze(src);
    assert!(with.partition.choices.len() <= without.partition.choices.len());
}

#[test]
fn simplification_does_not_change_decisions() {
    let src = "int work(int k) {
                   int j; int acc;
                   acc = 0;
                   for (j = 0; j < k; j++) { acc = acc + j * j; }
                   return acc;
               }
               void main(int n) { output(work(n)); }";
    let opts = AnalysisOptions {
        solve: SolveOptions {
            simplify: false,
            ..Default::default()
        },
        ..Default::default()
    };
    let plain = Analysis::from_source(src, opts).unwrap();
    let simplified = analyze(src);
    for n in [1i64, 100, 10_000, 1_000_000] {
        let a = plain.partition.choices[plain.decide(&[n]).unwrap().region_id].is_all_local();
        let b =
            simplified.partition.choices[simplified.decide(&[n]).unwrap().region_id].is_all_local();
        assert_eq!(a, b, "n={n}");
    }
}

#[test]
fn param_bounds_respected() {
    // With an upper bound keeping n tiny, the all-local choice covers the
    // whole space.
    let src = "int work(int k) {
                   int j; int acc;
                   acc = 0;
                   for (j = 0; j < k; j++) { acc = acc + j * j; }
                   return acc;
               }
               void main(int n) { output(work(n)); }";
    let opts = AnalysisOptions {
        bounds: ParamBounds::uniform(1, 0, Some(4)),
        ..Default::default()
    };
    let a = Analysis::from_source(src, opts).unwrap();
    assert_eq!(a.partition.choices.len(), 1, "{}", a.describe_choices());
    assert!(a.partition.choices[0].is_all_local());
}

#[test]
fn zero_communication_model_offloads_everything_possible() {
    // With free communication and a fast server, every non-I/O task
    // should land on the server for large inputs.
    let mut cost = CostModel::ipaq_testbed();
    cost.send_startup_c2s = Rational::zero();
    cost.send_unit_c2s = Rational::zero();
    cost.send_startup_s2c = Rational::zero();
    cost.send_unit_s2c = Rational::zero();
    cost.sched_c2s = Rational::zero();
    cost.sched_s2c = Rational::zero();
    let opts = AnalysisOptions {
        cost,
        ..Default::default()
    };
    let a = Analysis::from_source(
        "int work(int k) {
             int j; int acc;
             acc = 0;
             for (j = 0; j < k; j++) { acc = acc + j * j; }
             return acc;
         }
         void main(int n) { output(work(n)); }",
        opts,
    )
    .unwrap();
    let idx = a.decide(&[1000]).unwrap().region_id;
    let choice = &a.partition.choices[idx];
    let work = a.module.func_by_name("work").unwrap();
    let worker_tasks: Vec<usize> = a
        .tcfg
        .tasks()
        .iter()
        .enumerate()
        .filter(|(_, t)| t.func == work && !t.is_io)
        .map(|(i, _)| i)
        .collect();
    assert!(
        worker_tasks.iter().all(|&i| choice.server_tasks[i]),
        "free communication: compute tasks go to the faster server\n{}",
        a.describe_choices()
    );
}

#[test]
fn guards_render_readably() {
    let a = analyze(
        "int work(int k) {
             int j; int acc;
             acc = 0;
             for (j = 0; j < k; j++) { acc = acc + j * j; }
             return acc;
         }
         void main(int n) { output(work(n)); }",
    );
    let guards = a.guards();
    assert_eq!(guards.len(), a.partition.choices.len());
    assert!(
        guards.iter().any(|g| g.contains('n')),
        "guards mention the parameter: {guards:?}"
    );
}

#[test]
fn analysis_time_recorded() {
    let a = analyze("void main() { output(1); }");
    assert!(a.analysis_time.as_nanos() > 0);
}
