//! The dominance-probing region strategy must agree with the exact
//! Lemma 1 strategy on programs small enough to run both.

use offload_core::{Analysis, AnalysisOptions, RegionStrategy, SolveOptions};

fn analyze(src: &str, strategy: RegionStrategy) -> Analysis {
    let options = AnalysisOptions {
        solve: SolveOptions {
            region_strategy: strategy,
            ..Default::default()
        },
        ..Default::default()
    };
    Analysis::from_source(src, options).expect("analysis")
}

const WORKER: &str = "
    int work(int k) {
        int j; int acc;
        acc = 0;
        for (j = 0; j < k; j++) { acc = acc + j * j; }
        return acc;
    }
    void main(int n) { output(work(n)); }";

#[test]
fn dominance_matches_exact_dispatch_on_worker() {
    let exact = analyze(WORKER, RegionStrategy::Exact);
    let dom = analyze(WORKER, RegionStrategy::Dominance);
    for n in [1i64, 10, 100, 1000, 10_000, 100_000, 1_000_000] {
        let e = exact.partition.choices[exact.decide(&[n]).unwrap().region_id].is_all_local();
        let d = dom.partition.choices[dom.decide(&[n]).unwrap().region_id].is_all_local();
        assert_eq!(e, d, "n={n}: strategies disagree");
    }
}

#[test]
fn dominance_matches_exact_dispatch_on_figure1() {
    let exact = analyze(offload_lang::examples_src::FIGURE1, RegionStrategy::Exact);
    let dom = analyze(
        offload_lang::examples_src::FIGURE1,
        RegionStrategy::Dominance,
    );
    for &(x, y, z) in &[
        (1i64, 4, 1),
        (4, 64, 3),
        (2, 8, 500),
        (1, 512, 40),
        (3, 3, 3),
        (2, 2, 5000),
    ] {
        let e = exact.partition.choices[exact.decide(&[x, y, z]).unwrap().region_id]
            .server_task_ids()
            .len();
        let d = dom.partition.choices[dom.decide(&[x, y, z]).unwrap().region_id]
            .server_task_ids()
            .len();
        assert_eq!(
            e, d,
            "({x},{y},{z}): strategies disagree on offloaded task count"
        );
    }
}

#[test]
fn dominance_regions_cover_space() {
    let dom = analyze(WORKER, RegionStrategy::Dominance);
    for n in [0i64, 1, 7, 999, 123_456] {
        let point = dom
            .dispatcher
            .dim_point(&dom.network, &[offload_poly::Rational::from(n)])
            .unwrap();
        let holders = dom
            .partition
            .choices
            .iter()
            .filter(|c| c.region.contains(&point))
            .count();
        assert_eq!(
            holders, 1,
            "n={n}: dominance regions must partition the space"
        );
    }
}
