//! The §2.2 claim behind the validity-state model (Figure 3): when one
//! producer task feeds several consumers, the traditional per-DU-chain
//! charging exaggerates communication cost relative to validity states —
//! so the states model never predicts a higher offloading cost, and its
//! offloading region is at least as large.

use offload_core::{Analysis, AnalysisOptions, ValidityModel};
use offload_poly::Rational;

const SHARED_PRODUCER: &str = "
    int data[64];
    void produce(int n) {
        int i;
        for (i = 0; i < n; i++) { data[i % 64] = i % 97; }
    }
    int consume_a(int n) {
        int i; int acc;
        acc = 0;
        for (i = 0; i < n; i++) { acc = acc + data[i % 64]; }
        return acc;
    }
    int consume_b(int n) {
        int i; int acc;
        acc = 0;
        for (i = 0; i < n; i++) { acc = acc + data[i % 64] * 2; }
        return acc;
    }
    void main(int n) {
        produce(n);
        output(consume_a(n) + consume_b(n));
    }";

fn best_cost(a: &Analysis, n: i64) -> f64 {
    let point = a
        .dispatcher
        .dim_point(&a.network, &[Rational::from(n)])
        .expect("no missing annotations");
    a.partition
        .choices
        .iter()
        .filter_map(|c| offload_core::cut_cost_at(&a.network, c, &point))
        .map(|r| r.to_f64())
        .fold(f64::INFINITY, f64::min)
}

#[test]
fn states_model_never_costs_more() {
    let states =
        Analysis::from_source(SHARED_PRODUCER, AnalysisOptions::default()).expect("states");
    let duchain = Analysis::from_source(
        SHARED_PRODUCER,
        AnalysisOptions {
            validity_model: ValidityModel::DuChains,
            ..Default::default()
        },
    )
    .expect("du-chains");
    for n in [16i64, 256, 4096, 65536, 1 << 20] {
        let s = best_cost(&states, n);
        let d = best_cost(&duchain, n);
        assert!(
            s <= d * 1.0001,
            "n={n}: validity states ({s}) must not exceed DU-chain cost ({d})"
        );
    }
}

#[test]
fn both_models_offload_eventually() {
    // With enough work the compute savings dominate either transfer
    // model; both should leave the all-local choice.
    for model in [ValidityModel::States, ValidityModel::DuChains] {
        let a = Analysis::from_source(
            SHARED_PRODUCER,
            AnalysisOptions {
                validity_model: model,
                ..Default::default()
            },
        )
        .expect("analysis");
        let idx = a.decide(&[1 << 22]).expect("dispatch").region_id;
        assert!(
            !a.partition.choices[idx].is_all_local(),
            "{model:?}: heavy work must offload\n{}",
            a.describe_choices()
        );
    }
}
