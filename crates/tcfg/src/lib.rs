//! # offload-tcfg
//!
//! Task formation and the **Task Control Flow Graph** (TCFG) — Algorithm 1
//! of *Wang & Li, PLDI 2004*.
//!
//! A *task* is a maximal consecutive statement segment that starts at a
//! *task header* and ends at a *task branch* (Definitions 1–3 of the
//! paper). Function calls and returns are always task branches; other
//! branches become task branches only when they jump between different
//! tasks. Algorithm 1 iterates to a fixpoint that keeps tasks as large as
//! possible, which is exactly what this crate implements — over the IR, at
//! the granularity of *segments* (basic blocks split at call sites).
//!
//! ```
//! use offload_lang::frontend;
//! use offload_ir::lower;
//! use offload_tcfg::Tcfg;
//!
//! let checked = frontend(offload_lang::examples_src::FIGURE1)?;
//! let module = lower(&checked);
//! let tcfg = Tcfg::build(&module, &Default::default());
//! // The paper divides this program into the tasks I, f1, g, f2, O (§4.2);
//! // at IR granularity we get a handful of tasks, some pinned to the client:
//! assert!(tcfg.tasks().len() >= 3);
//! assert!(tcfg.tasks().iter().any(|t| t.is_io));
//! # Ok::<(), offload_lang::LangError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use offload_ir::{BlockId, Callee, FuncId, Inst, Module, Terminator};
use std::collections::{BTreeMap, HashMap, HashSet};
use std::fmt;

/// Id of a segment (a basic block split at call sites).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SegmentId(pub u32);

impl SegmentId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SegmentId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seg{}", self.0)
    }
}

/// Id of a task in the TCFG.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(pub u32);

impl TaskId {
    /// The id as an index.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "task{}", self.0)
    }
}

/// How a segment ends.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SegmentEnd {
    /// Ends with (and includes) the call instruction at this index.
    Call {
        /// Index of the call in the block's instruction list.
        inst: usize,
        /// Possible callees (singleton for direct calls; the points-to
        /// result for indirect calls).
        targets: Vec<FuncId>,
    },
    /// Ends at the block terminator.
    Term,
}

/// A segment: a run of instructions inside one basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Segment {
    /// Function that contains the segment.
    pub func: FuncId,
    /// Basic block that contains the segment.
    pub block: BlockId,
    /// Instruction index range `[start, end)` within the block. For a
    /// `Call` segment, `end` is `inst + 1` (the call is included).
    pub range: (usize, usize),
    /// How the segment ends.
    pub end: SegmentEnd,
}

/// Why a TCFG edge exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EdgeKind {
    /// An intra-function control-flow edge between two blocks.
    Jump {
        /// Source block.
        from: BlockId,
        /// Target block.
        to: BlockId,
    },
    /// A call edge (caller segment → callee entry).
    Call {
        /// The calling segment.
        site: SegmentId,
    },
    /// A return edge (callee exit → the segment after the call).
    Return {
        /// The calling segment whose continuation receives control.
        site: SegmentId,
    },
}

/// A TCFG edge between two tasks.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TcfgEdge {
    /// Source task.
    pub from: TaskId,
    /// Target task.
    pub to: TaskId,
    /// Provenance (used to attach execution counts).
    pub kind: EdgeKind,
    /// Function in which the transfer occurs (the caller for call/return
    /// edges).
    pub func: FuncId,
}

/// A task: a set of segments sharing one header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Task {
    /// The task's header segment (its unique identifier per Definition 1).
    pub header: SegmentId,
    /// All segments belonging to the task.
    pub segments: Vec<SegmentId>,
    /// Function containing the task (tasks never span functions).
    pub func: FuncId,
    /// `true` if the task performs I/O and is pinned to the client by the
    /// paper's semantic constraint.
    pub is_io: bool,
}

/// Supplies possible targets for indirect calls.
///
/// The conservative default (every address-taken function) is what the
/// TCFG uses when no points-to information is supplied; `offload-pta`
/// computes a precise map.
#[derive(Debug, Clone, Default)]
pub struct IndirectTargets {
    /// Per-site targets: `(func, block, inst index) -> callees`.
    pub per_site: HashMap<(FuncId, BlockId, usize), Vec<FuncId>>,
}

impl IndirectTargets {
    fn targets_for(
        &self,
        module: &Module,
        func: FuncId,
        block: BlockId,
        inst: usize,
    ) -> Vec<FuncId> {
        if let Some(t) = self.per_site.get(&(func, block, inst)) {
            return t.clone();
        }
        // Fallback: all address-taken functions.
        address_taken_functions(module)
    }
}

/// All functions whose address is taken by a `LoadFunc` instruction.
pub fn address_taken_functions(module: &Module) -> Vec<FuncId> {
    let mut out = HashSet::new();
    for f in &module.functions {
        for b in &f.blocks {
            for i in &b.insts {
                if let Inst::LoadFunc { func, .. } = i {
                    out.insert(*func);
                }
            }
        }
    }
    let mut v: Vec<FuncId> = out.into_iter().collect();
    v.sort();
    v
}

/// The Task Control Flow Graph.
#[derive(Debug, Clone)]
pub struct Tcfg {
    segments: Vec<Segment>,
    tasks: Vec<Task>,
    edges: Vec<TcfgEdge>,
    task_of_segment: Vec<TaskId>,
    entry_task: TaskId,
    /// First segment of each block: `(func, block) -> segment`.
    block_entry: HashMap<(FuncId, BlockId), SegmentId>,
}

impl Tcfg {
    /// Builds the TCFG for a module (Algorithm 1).
    ///
    /// `indirect` supplies callee sets for indirect call sites; pass
    /// `&Default::default()` to use the conservative
    /// all-address-taken-functions fallback.
    pub fn build(module: &Module, indirect: &IndirectTargets) -> Tcfg {
        Builder::new(module, indirect).run()
    }

    /// All segments.
    pub fn segments(&self) -> &[Segment] {
        &self.segments
    }

    /// All tasks.
    pub fn tasks(&self) -> &[Task] {
        &self.tasks
    }

    /// All inter-task edges.
    pub fn edges(&self) -> &[TcfgEdge] {
        &self.edges
    }

    /// The task containing a segment.
    pub fn task_of(&self, seg: SegmentId) -> TaskId {
        self.task_of_segment[seg.index()]
    }

    /// The task that starts program execution (entry of `main`).
    pub fn entry_task(&self) -> TaskId {
        self.entry_task
    }

    /// The task by id.
    pub fn task(&self, id: TaskId) -> &Task {
        &self.tasks[id.index()]
    }

    /// The segment by id.
    pub fn segment(&self, id: SegmentId) -> &Segment {
        &self.segments[id.index()]
    }

    /// First segment of a block.
    pub fn block_entry_segment(&self, func: FuncId, block: BlockId) -> Option<SegmentId> {
        self.block_entry.get(&(func, block)).copied()
    }

    /// Iterates over the instructions of a task, as
    /// `(func, block, inst index, instruction)` tuples.
    pub fn task_instructions<'m>(
        &'m self,
        module: &'m Module,
        task: TaskId,
    ) -> impl Iterator<Item = (FuncId, BlockId, usize, &'m Inst)> + 'm {
        self.tasks[task.index()].segments.iter().flat_map(move |s| {
            let seg = &self.segments[s.index()];
            let block = &module.function(seg.func).blocks[seg.block.index()];
            (seg.range.0..seg.range.1).map(move |i| (seg.func, seg.block, i, &block.insts[i]))
        })
    }

    /// Renders a concise description of the TCFG.
    pub fn summary(&self, module: &Module) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (i, t) in self.tasks.iter().enumerate() {
            let f = &module.function(t.func).name;
            let _ = writeln!(
                out,
                "task{i}: fn={f} header={} segs={} io={}",
                t.header,
                t.segments.len(),
                t.is_io
            );
        }
        for e in &self.edges {
            let _ = writeln!(out, "{} -> {} ({:?})", e.from, e.to, e.kind);
        }
        out
    }
}

struct Builder<'m> {
    module: &'m Module,
    segments: Vec<Segment>,
    /// Segment-level control-flow edges with their provenance.
    seg_edges: Vec<(SegmentId, SegmentId, EdgeKind, FuncId)>,
    block_entry: HashMap<(FuncId, BlockId), SegmentId>,
    func_entry: HashMap<FuncId, SegmentId>,
}

impl<'m> Builder<'m> {
    fn new(module: &'m Module, indirect: &IndirectTargets) -> Self {
        let mut b = Builder {
            module,
            segments: Vec::new(),
            seg_edges: Vec::new(),
            block_entry: HashMap::new(),
            func_entry: HashMap::new(),
        };
        b.split_segments(indirect);
        b.connect_segments();
        b
    }

    fn split_segments(&mut self, indirect: &IndirectTargets) {
        for (fi, f) in self.module.functions.iter().enumerate() {
            let fid = FuncId(fi as u32);
            for (bid, block) in f.iter_blocks() {
                let mut start = 0usize;
                for (i, inst) in block.insts.iter().enumerate() {
                    if let Inst::Call { callee, .. } = inst {
                        let targets = match callee {
                            Callee::Direct(t) => vec![*t],
                            Callee::Indirect(_) => indirect.targets_for(self.module, fid, bid, i),
                        };
                        let id = SegmentId(self.segments.len() as u32);
                        if start == 0 {
                            self.block_entry.insert((fid, bid), id);
                        }
                        self.segments.push(Segment {
                            func: fid,
                            block: bid,
                            range: (start, i + 1),
                            end: SegmentEnd::Call { inst: i, targets },
                        });
                        start = i + 1;
                    }
                }
                let id = SegmentId(self.segments.len() as u32);
                if start == 0 {
                    self.block_entry.insert((fid, bid), id);
                }
                self.segments.push(Segment {
                    func: fid,
                    block: bid,
                    range: (start, block.insts.len()),
                    end: SegmentEnd::Term,
                });
            }
            let entry = self.block_entry[&(fid, f.entry)];
            self.func_entry.insert(fid, entry);
        }
    }

    fn connect_segments(&mut self) {
        let segments = self.segments.clone();
        for (si, seg) in segments.iter().enumerate() {
            let sid = SegmentId(si as u32);
            match &seg.end {
                SegmentEnd::Call { targets, .. } => {
                    let next = SegmentId(si as u32 + 1); // same block, next segment
                    for &callee in targets {
                        let callee_entry = self.func_entry[&callee];
                        self.seg_edges.push((
                            sid,
                            callee_entry,
                            EdgeKind::Call { site: sid },
                            seg.func,
                        ));
                        // Return edges: each exit segment of the callee
                        // transfers control back to `next`.
                        for (ei, e) in segments.iter().enumerate() {
                            if e.func == callee
                                && e.end == SegmentEnd::Term
                                && matches!(
                                    self.module.function(callee).blocks[e.block.index()].term,
                                    Terminator::Return(_)
                                )
                            {
                                self.seg_edges.push((
                                    SegmentId(ei as u32),
                                    next,
                                    EdgeKind::Return { site: sid },
                                    seg.func,
                                ));
                            }
                        }
                    }
                }
                SegmentEnd::Term => {
                    let term = &self.module.function(seg.func).blocks[seg.block.index()].term;
                    for succ in term.successors() {
                        let target = self.block_entry[&(seg.func, succ)];
                        self.seg_edges.push((
                            sid,
                            target,
                            EdgeKind::Jump {
                                from: seg.block,
                                to: succ,
                            },
                            seg.func,
                        ));
                    }
                }
            }
        }
    }

    /// Runs Algorithm 1 to a fixpoint and assembles the TCFG.
    fn run(self) -> Tcfg {
        let n = self.segments.len();
        let mut headers: HashSet<SegmentId> = self.func_entry.values().copied().collect();

        // Segment-level predecessor lists.
        let mut preds: Vec<Vec<SegmentId>> = vec![Vec::new(); n];
        for (s, t, _, _) in &self.seg_edges {
            preds[t.index()].push(*s);
        }

        loop {
            let mut new_headers: HashSet<SegmentId> = HashSet::new();
            // Joins whose predecessors live in different tasks must start
            // their own task.
            let header_of = self.assign_headers(&headers, &preds, &mut |seg| {
                new_headers.insert(seg);
            });
            for (s, t, kind, _) in &self.seg_edges {
                let hs = header_of[s.index()];
                let ht = header_of[t.index()];
                if hs != ht {
                    // The branch target becomes a header...
                    new_headers.insert(*t);
                    // ...and so does the continuation of the branch.
                    match kind {
                        EdgeKind::Call { .. } => {
                            // The segment after the call in the same block.
                            new_headers.insert(SegmentId(s.0 + 1));
                        }
                        EdgeKind::Jump { .. } => {
                            // Conditional branches: all sibling targets
                            // become headers (the paper's `r`).
                            for (s2, t2, k2, _) in &self.seg_edges {
                                if s2 == s && matches!(k2, EdgeKind::Jump { .. }) {
                                    new_headers.insert(*t2);
                                }
                            }
                        }
                        EdgeKind::Return { .. } => {
                            // The continuation after the call is already a
                            // header via the call rule.
                        }
                    }
                }
            }
            let before = headers.len();
            headers.extend(new_headers);
            if headers.len() == before {
                // Fixpoint: assemble tasks.
                return self.assemble(header_of);
            }
        }
    }

    /// Propagates header ownership forward; returns `header_of[seg]`.
    /// Calls `on_conflict(seg)` for joins whose predecessors carry
    /// different headers (such joins must become headers themselves).
    fn assign_headers(
        &self,
        headers: &HashSet<SegmentId>,
        preds: &[Vec<SegmentId>],
        on_conflict: &mut dyn FnMut(SegmentId),
    ) -> Vec<SegmentId> {
        let n = self.segments.len();
        let mut header_of: Vec<Option<SegmentId>> = vec![None; n];
        for &h in headers {
            header_of[h.index()] = Some(h);
        }
        let mut changed = true;
        while changed {
            changed = false;
            for i in 0..n {
                if header_of[i].is_some() {
                    continue;
                }
                let mut candidate: Option<SegmentId> = None;
                for p in &preds[i] {
                    if let Some(h) = header_of[p.index()] {
                        match candidate {
                            None => candidate = Some(h),
                            Some(c) if c != h => on_conflict(SegmentId(i as u32)),
                            _ => {}
                        }
                    }
                }
                if let Some(c) = candidate {
                    header_of[i] = Some(c);
                    changed = true;
                }
            }
        }
        // Unreachable segments own themselves.
        header_of
            .into_iter()
            .enumerate()
            .map(|(i, h)| h.unwrap_or(SegmentId(i as u32)))
            .collect()
    }

    fn assemble(self, header_of: Vec<SegmentId>) -> Tcfg {
        // Group segments by header.
        let mut groups: BTreeMap<SegmentId, Vec<SegmentId>> = BTreeMap::new();
        for (i, h) in header_of.iter().enumerate() {
            groups.entry(*h).or_default().push(SegmentId(i as u32));
        }
        let mut tasks = Vec::new();
        let mut task_ids: HashMap<SegmentId, TaskId> = HashMap::new();
        for (header, segs) in groups {
            let func = self.segments[header.index()].func;
            let is_io = segs.iter().any(|s| {
                let seg = &self.segments[s.index()];
                let block = &self.module.function(seg.func).blocks[seg.block.index()];
                block.insts[seg.range.0..seg.range.1]
                    .iter()
                    .any(Inst::is_io)
            });
            let id = TaskId(tasks.len() as u32);
            task_ids.insert(header, id);
            tasks.push(Task {
                header,
                segments: segs,
                func,
                is_io,
            });
        }
        let task_of_segment: Vec<TaskId> = header_of.iter().map(|h| task_ids[h]).collect();

        // Inter-task edges: segment edges that cross task boundaries.
        let mut edges = Vec::new();
        let mut seen = HashSet::new();
        for (s, t, kind, func) in &self.seg_edges {
            let from = task_of_segment[s.index()];
            let to = task_of_segment[t.index()];
            if from != to && seen.insert((from, to, *kind)) {
                edges.push(TcfgEdge {
                    from,
                    to,
                    kind: *kind,
                    func: *func,
                });
            }
        }

        let entry_task = task_of_segment[self.func_entry[&self.module.main].index()];
        Tcfg {
            segments: self.segments,
            tasks,
            edges,
            task_of_segment,
            entry_task,
            block_entry: self.block_entry,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_ir::lower;
    use offload_lang::frontend;

    fn build(src: &str) -> (Module, Tcfg) {
        let m = lower(&frontend(src).unwrap());
        let t = Tcfg::build(&m, &Default::default());
        (m, t)
    }

    #[test]
    fn no_calls_means_one_task() {
        let (_, t) = build(
            "void main(int n) {
                 int i; int acc;
                 acc = 0;
                 for (i = 0; i < n; i++) {
                     if (i % 2 == 0) { acc = acc + i; } else { acc = acc - i; }
                 }
             }",
        );
        assert_eq!(t.tasks().len(), 1, "no calls => a single task");
        assert!(t.edges().is_empty());
    }

    #[test]
    fn call_splits_tasks() {
        let (m, t) = build(
            "int helper(int x) { return x * 2; }
             void main(int n) { output(helper(n)); }",
        );
        assert!(t.tasks().len() >= 3, "{}", t.summary(&m));
        assert!(t
            .edges()
            .iter()
            .any(|e| matches!(e.kind, EdgeKind::Call { .. })));
        assert!(t
            .edges()
            .iter()
            .any(|e| matches!(e.kind, EdgeKind::Return { .. })));
    }

    #[test]
    fn every_segment_in_exactly_one_task() {
        let (_, t) = build(offload_lang::examples_src::FIGURE1);
        let mut seen = vec![false; t.segments().len()];
        for task in t.tasks() {
            for s in &task.segments {
                assert!(!seen[s.index()], "segment in two tasks");
                seen[s.index()] = true;
            }
        }
        assert!(seen.iter().all(|&b| b), "segment in no task");
    }

    #[test]
    fn tasks_never_span_functions() {
        let (_, t) = build(offload_lang::examples_src::FIGURE1);
        for task in t.tasks() {
            for s in &task.segments {
                assert_eq!(t.segment(*s).func, task.func);
            }
        }
    }

    #[test]
    fn io_tasks_flagged() {
        let (m, t) = build(
            "int pure(int x) { return x + 1; }
             void main(int n) { int v; v = pure(n); output(v); }",
        );
        assert!(t.tasks().iter().any(|x| x.is_io));
        let pure = m.func_by_name("pure").unwrap();
        assert!(t
            .tasks()
            .iter()
            .filter(|x| x.func == pure)
            .all(|x| !x.is_io));
    }

    #[test]
    fn edges_connect_existing_tasks() {
        let (_, t) = build(offload_lang::examples_src::FIGURE1);
        for e in t.edges() {
            assert!(e.from.index() < t.tasks().len());
            assert!(e.to.index() < t.tasks().len());
            assert_ne!(e.from, e.to, "TCFG edges cross task boundaries");
        }
    }

    #[test]
    fn figure1_has_expected_shape() {
        let (m, t) = build(offload_lang::examples_src::FIGURE1);
        let g = m.func_by_name("g_fast").unwrap();
        let g_tasks: Vec<&Task> = t.tasks().iter().filter(|x| x.func == g).collect();
        assert!(!g_tasks.is_empty());
        assert!(g_tasks.iter().all(|x| !x.is_io), "encoder does no I/O");
        let f = m.func_by_name("f").unwrap();
        assert!(t.tasks().iter().any(|x| x.func == f && x.is_io));
    }

    #[test]
    fn indirect_call_targets_conservative_default() {
        let src = "int a(int x) { return x; }
                   int b(int x) { return x + 1; }
                   void main(int n) { fn g; if (n > 0) { g = &a; } else { g = &b; } output(g(n)); }";
        let (m, t) = build(src);
        let fa = m.func_by_name("a").unwrap();
        let fb = m.func_by_name("b").unwrap();
        let into = |f: FuncId| {
            t.edges()
                .iter()
                .any(|e| matches!(e.kind, EdgeKind::Call { .. }) && t.task(e.to).func == f)
        };
        assert!(into(fa) && into(fb));
    }

    #[test]
    fn entry_task_is_main_entry() {
        let (m, t) = build("int f() { return 1; } void main() { output(f()); }");
        assert_eq!(t.task(t.entry_task()).func, m.main);
    }

    #[test]
    fn task_instructions_cover_module() {
        let (m, t) = build("void main(int n) { output(n + 1); }");
        let total: usize = (0..t.tasks().len())
            .map(|i| t.task_instructions(&m, TaskId(i as u32)).count())
            .sum();
        let expect: usize = m
            .functions
            .iter()
            .flat_map(|f| &f.blocks)
            .map(|b| b.insts.len())
            .sum();
        assert_eq!(total, expect);
    }

    #[test]
    fn precise_indirect_targets_respected() {
        let src = "int a(int x) { return x; }
                   int b(int x) { return x + 1; }
                   void main(int n) { fn g; g = &a; g = &b; output(g(n)); }";
        let m = lower(&frontend(src).unwrap());
        // Find the indirect call site.
        let main = m.function(m.main);
        let mut site = None;
        for (bid, b) in main.iter_blocks() {
            for (i, inst) in b.insts.iter().enumerate() {
                if matches!(
                    inst,
                    Inst::Call {
                        callee: Callee::Indirect(_),
                        ..
                    }
                ) {
                    site = Some((m.main, bid, i));
                }
            }
        }
        let site = site.expect("indirect call exists");
        let only_b = m.func_by_name("b").unwrap();
        let mut targets = IndirectTargets::default();
        targets.per_site.insert(site, vec![only_b]);
        let t = Tcfg::build(&m, &targets);
        let fa = m.func_by_name("a").unwrap();
        let into = |f: FuncId| {
            t.edges()
                .iter()
                .any(|e| matches!(e.kind, EdgeKind::Call { .. }) && t.task(e.to).func == f)
        };
        assert!(!into(fa), "a excluded by precise targets");
        assert!(into(only_b));
    }
}
