//! Property tests: max-flow/min-cut duality on random graphs, and
//! soundness of the Lemma-1 optimality regions against brute-force
//! minimum cuts.
//!
//! Randomized with a local xorshift generator instead of `proptest` (the
//! offline build environment cannot fetch crates), so every run draws the
//! same deterministic case set.

use offload_flow::{Capacity, FlowNetwork, ParamCap, ParamNetwork};
use offload_poly::{Constraint, LinExpr, Polyhedron, Rational};

/// Deterministic xorshift64* generator for the property loops.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        self.0 ^= self.0 << 13;
        self.0 ^= self.0 >> 7;
        self.0 ^= self.0 << 17;
        self.0.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + (self.next() % (hi - lo + 1) as u64) as usize
    }

    fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next() % (hi - lo + 1) as u64) as i64
    }
}

fn r(n: i64) -> Rational {
    Rational::from(n)
}

/// Random small graph: 4-7 nodes, 1-16 arcs with capacities 0..20, no
/// self-arcs.
fn random_graph(rng: &mut Rng) -> (usize, Vec<(usize, usize, i64)>) {
    let n = rng.usize_in(4, 7);
    let mut arcs = Vec::new();
    let count = rng.usize_in(1, 16);
    while arcs.len() < count {
        let f = rng.usize_in(0, n - 1);
        let t = rng.usize_in(0, n - 1);
        if f == t {
            continue;
        }
        arcs.push((f, t, rng.i64_in(0, 20)));
    }
    (n, arcs)
}

/// Brute-force minimum cut by enumerating all side assignments.
fn brute_min_cut(n: usize, arcs: &[(usize, usize, i64)], s: usize, t: usize) -> Rational {
    let mut best: Option<i64> = None;
    for mask in 0u32..(1 << n) {
        if mask & (1 << s) == 0 || mask & (1 << t) != 0 {
            continue;
        }
        let val: i64 = arcs
            .iter()
            .filter(|(f, to, _)| mask & (1 << f) != 0 && mask & (1 << to) == 0)
            .map(|(_, _, c)| *c)
            .sum();
        best = Some(best.map_or(val, |b: i64| b.min(val)));
    }
    r(best.expect("at least the trivial cut"))
}

const CASES: usize = 48;

#[test]
fn maxflow_equals_brute_force_mincut() {
    let mut rng = Rng::new(0xF101);
    for _ in 0..CASES {
        let (n, arcs) = random_graph(&mut rng);
        let (s, t) = (0, n - 1);
        let mut net = FlowNetwork::new(n, s, t);
        for &(f, to, c) in &arcs {
            net.add_arc(f, to, Capacity::Finite(r(c)));
        }
        let mf = net.max_flow().unwrap();
        assert_eq!(mf.value, brute_min_cut(n, &arcs, s, t));
    }
}

#[test]
fn reported_cut_achieves_flow_value() {
    let mut rng = Rng::new(0xF102);
    for _ in 0..CASES {
        let (n, arcs) = random_graph(&mut rng);
        let (s, t) = (0, n - 1);
        let mut net = FlowNetwork::new(n, s, t);
        for &(f, to, c) in &arcs {
            net.add_arc(f, to, Capacity::Finite(r(c)));
        }
        let mf = net.max_flow().unwrap();
        assert!(mf.source_side[s]);
        assert!(!mf.source_side[t]);
        let cut: Rational = net
            .arcs()
            .iter()
            .filter(|(f, to, _)| mf.source_side[*f] && !mf.source_side[*to])
            .map(|(_, _, c)| c.as_finite().unwrap().clone())
            .fold(Rational::zero(), |a, b| &a + &b);
        assert_eq!(mf.value, cut);
    }
}

/// Parametric regions: at every integer point of a small range, a cut
/// whose region contains the point must achieve the true minimum there.
#[test]
fn optimality_regions_sound() {
    let mut rng = Rng::new(0xF103);
    for _ in 0..CASES {
        let (n, arcs) = random_graph(&mut rng);
        let (s, t) = (0, n - 1);
        let mut net = ParamNetwork::new(1, n, s, t);
        for &(f, to, c) in &arcs {
            let slope = rng.i64_in(0, 3);
            net.add_arc(
                f,
                to,
                ParamCap::Affine(LinExpr::constant(1, r(c)).plus_term(0, r(slope))),
            );
        }
        let space = Polyhedron::from_constraints(
            1,
            vec![
                Constraint::ge0(LinExpr::var(1, 0)),
                Constraint::ge0(LinExpr::constant(1, r(8)).plus_term(0, r(-1))),
            ],
        );
        // Solve at x = 2, get a cut, compute its region.
        let probe = [r(2)];
        let mf = net.solve_at(&probe).unwrap();
        let region = net.optimality_region(&mf.source_side, &space);
        assert!(
            region.contains(&probe),
            "cut must be optimal where it was found"
        );
        for x in 0..=8i64 {
            let p = [r(x)];
            if region.contains(&p) {
                let best = net.solve_at(&p).unwrap().value;
                let this = match net.cut_value_at(&mf.source_side, &p) {
                    Capacity::Finite(v) => v,
                    Capacity::Infinite => panic!("finite cut expected"),
                };
                assert_eq!(this, best, "region over-claims at x={x}");
            }
        }
    }
}

/// Simplification never changes the min-cut value.
#[test]
fn simplification_value_preserving() {
    let mut rng = Rng::new(0xF104);
    for _ in 0..CASES {
        let (n, arcs) = random_graph(&mut rng);
        let inf_mask = rng.next() as u16;
        let (s, t) = (0, n - 1);
        let mut net = ParamNetwork::new(1, n, s, t);
        for (i, &(f, to, c)) in arcs.iter().enumerate() {
            let cap = if inf_mask & (1 << (i % 16)) != 0 {
                ParamCap::Infinite
            } else {
                ParamCap::constant(1, r(c))
            };
            net.add_arc(f, to, cap);
        }
        let space = Polyhedron::from_constraints(1, vec![Constraint::ge0(LinExpr::var(1, 0))]);
        let (simplified, _) = net.simplify(&space);
        for x in [0i64, 3, 9] {
            let v1 = net.solve_at(&[r(x)]);
            let v2 = simplified.solve_at(&[r(x)]);
            match (v1, v2) {
                (Ok(a), Ok(b)) => assert_eq!(a.value, b.value),
                (Err(_), Err(_)) => {}
                (a, b) => panic!(
                    "bounded/unbounded mismatch: {:?} vs {:?}",
                    a.map(|m| m.value),
                    b.map(|m| m.value)
                ),
            }
        }
    }
}
