//! Exact max-flow / min-cut over rational capacities (Dinic's algorithm).
//!
//! Capacities may be infinite (the paper's encoding of hard constraints:
//! an infinite arc can never be cut). Dinic's bound of `O(V²E)` phases is
//! independent of capacity magnitudes, so exact rationals are safe.

use offload_poly::Rational;
use std::fmt;

/// A capacity: a non-negative rational or `+∞`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capacity {
    /// Finite capacity (non-negative).
    Finite(Rational),
    /// Infinite capacity (uncuttable constraint arc).
    Infinite,
}

impl Capacity {
    /// Finite zero.
    pub fn zero() -> Self {
        Capacity::Finite(Rational::zero())
    }

    /// Returns the finite value, if any.
    pub fn as_finite(&self) -> Option<&Rational> {
        match self {
            Capacity::Finite(r) => Some(r),
            Capacity::Infinite => None,
        }
    }

    /// Capacity addition (`∞ + x = ∞`).
    pub fn add(&self, other: &Capacity) -> Capacity {
        match (self, other) {
            (Capacity::Finite(a), Capacity::Finite(b)) => Capacity::Finite(a + b),
            _ => Capacity::Infinite,
        }
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capacity::Finite(r) => write!(f, "{r}"),
            Capacity::Infinite => write!(f, "inf"),
        }
    }
}

/// A directed flow network with a single source and sink.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    nodes: usize,
    /// `(from, to, capacity)`.
    arcs: Vec<(usize, usize, Capacity)>,
    source: usize,
    sink: usize,
}

/// Result of a max-flow computation.
#[derive(Debug, Clone)]
pub struct MaxFlow {
    /// Value of the maximum flow (= the minimum cut).
    pub value: Rational,
    /// Flow on each arc, in insertion order.
    pub arc_flow: Vec<Rational>,
    /// `true` for nodes on the source side of the minimum cut (reachable
    /// in the residual graph).
    pub source_side: Vec<bool>,
}

/// Error returned when the maximum flow is unbounded (an all-infinite
/// augmenting path exists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnboundedFlow;

impl fmt::Display for UnboundedFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "maximum flow is unbounded (an all-infinite s-t path exists)")
    }
}
impl std::error::Error for UnboundedFlow {}

impl FlowNetwork {
    /// Creates a network with `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn new(nodes: usize, source: usize, sink: usize) -> Self {
        assert!(source < nodes && sink < nodes && source != sink);
        FlowNetwork { nodes, arcs: Vec::new(), source, sink }
    }

    /// Adds an arc; returns its index.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or a negative finite capacity.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: Capacity) -> usize {
        assert!(from < self.nodes && to < self.nodes);
        if let Capacity::Finite(c) = &cap {
            assert!(!c.is_negative(), "negative capacity");
        }
        self.arcs.push((from, to, cap));
        self.arcs.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The arcs, in insertion order.
    pub fn arcs(&self) -> &[(usize, usize, Capacity)] {
        &self.arcs
    }

    /// The source node.
    pub fn source(&self) -> usize {
        self.source
    }

    /// The sink node.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Computes the maximum flow and the canonical minimum cut.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundedFlow`] if an all-infinite source-to-sink path
    /// exists.
    pub fn max_flow(&self) -> Result<MaxFlow, UnboundedFlow> {
        // Unboundedness check: s-t path using only infinite arcs.
        {
            let mut adj: Vec<Vec<usize>> = vec![Vec::new(); self.nodes];
            for (f, t, c) in &self.arcs {
                if matches!(c, Capacity::Infinite) {
                    adj[*f].push(*t);
                }
            }
            let mut seen = vec![false; self.nodes];
            let mut stack = vec![self.source];
            seen[self.source] = true;
            while let Some(n) = stack.pop() {
                if n == self.sink {
                    return Err(UnboundedFlow);
                }
                for &m in &adj[n] {
                    if !seen[m] {
                        seen[m] = true;
                        stack.push(m);
                    }
                }
            }
        }

        // Residual representation: paired forward/backward edges.
        struct Edge {
            to: usize,
            cap: Option<Rational>, // residual; None = infinite
            paired: usize,
        }
        let mut graph: Vec<Vec<usize>> = vec![Vec::new(); self.nodes];
        let mut edges: Vec<Edge> = Vec::with_capacity(self.arcs.len() * 2);
        let mut fwd_index = Vec::with_capacity(self.arcs.len());
        for (f, t, c) in &self.arcs {
            let fi = edges.len();
            fwd_index.push(fi);
            edges.push(Edge {
                to: *t,
                cap: c.as_finite().cloned().map(Some).unwrap_or(None),
                paired: fi + 1,
            });
            graph[*f].push(fi);
            edges.push(Edge { to: *f, cap: Some(Rational::zero()), paired: fi });
            graph[*t].push(fi + 1);
        }

        let positive = |cap: &Option<Rational>| match cap {
            None => true,
            Some(r) => r.is_positive(),
        };

        let mut total = Rational::zero();
        loop {
            // BFS levels.
            let mut level = vec![usize::MAX; self.nodes];
            level[self.source] = 0;
            let mut queue = std::collections::VecDeque::from([self.source]);
            while let Some(n) = queue.pop_front() {
                for &ei in &graph[n] {
                    let e = &edges[ei];
                    if positive(&e.cap) && level[e.to] == usize::MAX {
                        level[e.to] = level[n] + 1;
                        queue.push_back(e.to);
                    }
                }
            }
            if level[self.sink] == usize::MAX {
                break;
            }
            // Blocking flow via iterative DFS with edge iterators.
            let mut iter = vec![0usize; self.nodes];
            loop {
                // Find one augmenting path.
                let mut path: Vec<usize> = Vec::new(); // edge ids
                let mut node = self.source;
                let found = loop {
                    if node == self.sink {
                        break true;
                    }
                    let mut advanced = false;
                    while iter[node] < graph[node].len() {
                        let ei = graph[node][iter[node]];
                        let e = &edges[ei];
                        if positive(&e.cap) && level[e.to] == level[node] + 1 {
                            path.push(ei);
                            node = e.to;
                            advanced = true;
                            break;
                        }
                        iter[node] += 1;
                    }
                    if advanced {
                        continue;
                    }
                    // Dead end: retreat.
                    match path.pop() {
                        None => break false,
                        Some(ei) => {
                            // The edge we came through is exhausted at its
                            // tail; advance the tail's iterator.
                            let tail = edges[edges[ei].paired].to;
                            iter[tail] += 1;
                            node = tail;
                        }
                    }
                };
                if !found {
                    break;
                }
                // Bottleneck.
                let mut bottleneck: Option<Rational> = None;
                for &ei in &path {
                    if let Some(c) = &edges[ei].cap {
                        bottleneck = Some(match bottleneck {
                            None => c.clone(),
                            Some(b) if c < &b => c.clone(),
                            Some(b) => b,
                        });
                    }
                }
                let b = bottleneck.expect("no all-infinite path (checked upfront)");
                debug_assert!(b.is_positive());
                for &ei in &path {
                    if let Some(c) = &mut edges[ei].cap {
                        *c = &*c - &b;
                    }
                    let pi = edges[ei].paired;
                    if let Some(c) = &mut edges[pi].cap {
                        *c = &*c + &b;
                    }
                }
                total += &b;
            }
        }

        // Min cut: residual reachability from the source.
        let mut source_side = vec![false; self.nodes];
        source_side[self.source] = true;
        let mut stack = vec![self.source];
        while let Some(n) = stack.pop() {
            for &ei in &graph[n] {
                let e = &edges[ei];
                if positive(&e.cap) && !source_side[e.to] {
                    source_side[e.to] = true;
                    stack.push(e.to);
                }
            }
        }

        // Per-arc flow = original cap - residual (for finite); for
        // infinite arcs the reverse edge's residual is the flow.
        let arc_flow = self
            .arcs
            .iter()
            .zip(&fwd_index)
            .map(|((_, _, c), &fi)| match (c.as_finite(), &edges[fi].cap) {
                (Some(orig), Some(resid)) => orig - resid,
                (None, _) => edges[edges[fi].paired]
                    .cap
                    .clone()
                    .expect("reverse residual is finite"),
                (Some(_), None) => unreachable!("finite arc keeps finite residual"),
            })
            .collect();

        Ok(MaxFlow { value: total, arc_flow, source_side })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn fin(n: i64) -> Capacity {
        Capacity::Finite(r(n))
    }

    #[test]
    fn single_arc() {
        let mut n = FlowNetwork::new(2, 0, 1);
        n.add_arc(0, 1, fin(5));
        let mf = n.max_flow().unwrap();
        assert_eq!(mf.value, r(5));
        assert!(mf.source_side[0] && !mf.source_side[1]);
    }

    #[test]
    fn classic_diamond() {
        // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (5)
        let mut n = FlowNetwork::new(4, 0, 3);
        n.add_arc(0, 1, fin(3));
        n.add_arc(0, 2, fin(2));
        n.add_arc(1, 3, fin(2));
        n.add_arc(2, 3, fin(3));
        n.add_arc(1, 2, fin(5));
        let mf = n.max_flow().unwrap();
        assert_eq!(mf.value, r(5));
    }

    #[test]
    fn rational_capacities() {
        let mut n = FlowNetwork::new(3, 0, 2);
        n.add_arc(0, 1, Capacity::Finite(Rational::new(1, 3)));
        n.add_arc(1, 2, Capacity::Finite(Rational::new(1, 2)));
        let mf = n.max_flow().unwrap();
        assert_eq!(mf.value, Rational::new(1, 3));
    }

    #[test]
    fn infinite_arcs_route_around() {
        // s -> a (inf), a -> t (4): flow 4; cut at a -> t.
        let mut n = FlowNetwork::new(3, 0, 2);
        n.add_arc(0, 1, Capacity::Infinite);
        n.add_arc(1, 2, fin(4));
        let mf = n.max_flow().unwrap();
        assert_eq!(mf.value, r(4));
        assert!(mf.source_side[1], "infinite arc is never cut");
    }

    #[test]
    fn unbounded_detected() {
        let mut n = FlowNetwork::new(3, 0, 2);
        n.add_arc(0, 1, Capacity::Infinite);
        n.add_arc(1, 2, Capacity::Infinite);
        assert!(matches!(n.max_flow(), Err(UnboundedFlow)));
    }

    #[test]
    fn min_cut_equals_max_flow() {
        // Random-ish fixed graph; verify cut value equals flow value.
        let mut n = FlowNetwork::new(6, 0, 5);
        let caps = [
            (0, 1, 7),
            (0, 2, 4),
            (1, 3, 5),
            (2, 3, 3),
            (2, 4, 2),
            (3, 5, 8),
            (4, 5, 3),
            (1, 4, 2),
        ];
        for (f, t, c) in caps {
            n.add_arc(f, t, fin(c));
        }
        let mf = n.max_flow().unwrap();
        let cut_value: Rational = n
            .arcs()
            .iter()
            .filter(|(f, t, _)| mf.source_side[*f] && !mf.source_side[*t])
            .map(|(_, _, c)| c.as_finite().unwrap().clone())
            .fold(Rational::zero(), |a, b| &a + &b);
        assert_eq!(mf.value, cut_value);
    }

    #[test]
    fn flow_conservation() {
        let mut n = FlowNetwork::new(5, 0, 4);
        for (f, t, c) in [(0, 1, 4), (0, 2, 3), (1, 3, 3), (2, 3, 5), (3, 4, 6), (1, 2, 1)] {
            n.add_arc(f, t, fin(c));
        }
        let mf = n.max_flow().unwrap();
        for node in 1..4 {
            let inflow: Rational = n
                .arcs()
                .iter()
                .zip(&mf.arc_flow)
                .filter(|((_, t, _), _)| *t == node)
                .map(|(_, fl)| fl.clone())
                .fold(Rational::zero(), |a, b| &a + &b);
            let outflow: Rational = n
                .arcs()
                .iter()
                .zip(&mf.arc_flow)
                .filter(|((f, _, _), _)| *f == node)
                .map(|(_, fl)| fl.clone())
                .fold(Rational::zero(), |a, b| &a + &b);
            assert_eq!(inflow, outflow, "conservation at {node}");
        }
    }

    #[test]
    fn zero_capacity_graph() {
        let mut n = FlowNetwork::new(2, 0, 1);
        n.add_arc(0, 1, Capacity::zero());
        let mf = n.max_flow().unwrap();
        assert_eq!(mf.value, Rational::zero());
    }
}
