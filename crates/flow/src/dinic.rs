//! Exact max-flow / min-cut over rational capacities (Dinic's algorithm).
//!
//! Capacities may be infinite (the paper's encoding of hard constraints:
//! an infinite arc can never be cut). Dinic's bound of `O(V²E)` phases is
//! independent of capacity magnitudes, so exact rationals are safe.
//!
//! Two entry points:
//!
//! * [`FlowNetwork::max_flow`] — one-shot convenience (builds a solver,
//!   solves, discards);
//! * [`DinicSolver`] — a reusable solver that owns its adjacency, edge and
//!   level/iterator scratch buffers. Repeated solves after capacity
//!   updates ([`DinicSolver::set_capacity`]) pay only the residual reset,
//!   never graph reconstruction — the workhorse of the parametric
//!   region-exploration engine, which re-solves the same network at
//!   thousands of parameter points.

use offload_poly::Rational;
use std::fmt;

/// A capacity: a non-negative rational or `+∞`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Capacity {
    /// Finite capacity (non-negative).
    Finite(Rational),
    /// Infinite capacity (uncuttable constraint arc).
    Infinite,
}

impl Capacity {
    /// Finite zero.
    pub fn zero() -> Self {
        Capacity::Finite(Rational::zero())
    }

    /// Returns the finite value, if any.
    pub fn as_finite(&self) -> Option<&Rational> {
        match self {
            Capacity::Finite(r) => Some(r),
            Capacity::Infinite => None,
        }
    }

    /// Capacity addition (`∞ + x = ∞`).
    pub fn add(&self, other: &Capacity) -> Capacity {
        match (self, other) {
            (Capacity::Finite(a), Capacity::Finite(b)) => Capacity::Finite(a + b),
            _ => Capacity::Infinite,
        }
    }
}

impl fmt::Display for Capacity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Capacity::Finite(r) => write!(f, "{r}"),
            Capacity::Infinite => write!(f, "inf"),
        }
    }
}

/// Work counters of a [`DinicSolver`], accumulated across solves.
///
/// These feed the pipeline-wide statistics (`offload-core`'s
/// `PipelineStats`): they measure how much min-cut work a parametric
/// solve performed, independent of wall-clock noise.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FlowStats {
    /// Completed max-flow solves.
    pub solves: u64,
    /// BFS level phases across all solves.
    pub phases: u64,
    /// Augmenting paths pushed across all solves.
    pub augmenting_paths: u64,
}

impl FlowStats {
    /// Field-wise sum (for merging per-worker counters).
    pub fn add(&self, other: &FlowStats) -> FlowStats {
        FlowStats {
            solves: self.solves + other.solves,
            phases: self.phases + other.phases,
            augmenting_paths: self.augmenting_paths + other.augmenting_paths,
        }
    }
}

/// A directed flow network with a single source and sink.
#[derive(Debug, Clone)]
pub struct FlowNetwork {
    nodes: usize,
    /// `(from, to, capacity)`.
    arcs: Vec<(usize, usize, Capacity)>,
    source: usize,
    sink: usize,
}

/// Result of a max-flow computation.
#[derive(Debug, Clone)]
pub struct MaxFlow {
    /// Value of the maximum flow (= the minimum cut).
    pub value: Rational,
    /// Flow on each arc, in insertion order.
    pub arc_flow: Vec<Rational>,
    /// `true` for nodes on the source side of the minimum cut (reachable
    /// in the residual graph).
    pub source_side: Vec<bool>,
}

/// Error returned when the maximum flow is unbounded (an all-infinite
/// augmenting path exists).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnboundedFlow;

impl fmt::Display for UnboundedFlow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "maximum flow is unbounded (an all-infinite s-t path exists)"
        )
    }
}
impl std::error::Error for UnboundedFlow {}

impl FlowNetwork {
    /// Creates a network with `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn new(nodes: usize, source: usize, sink: usize) -> Self {
        assert!(source < nodes && sink < nodes && source != sink);
        FlowNetwork {
            nodes,
            arcs: Vec::new(),
            source,
            sink,
        }
    }

    /// Adds an arc; returns its index.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or a negative finite capacity.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: Capacity) -> usize {
        assert!(from < self.nodes && to < self.nodes);
        if let Capacity::Finite(c) = &cap {
            assert!(!c.is_negative(), "negative capacity");
        }
        self.arcs.push((from, to, cap));
        self.arcs.len() - 1
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The arcs, in insertion order.
    pub fn arcs(&self) -> &[(usize, usize, Capacity)] {
        &self.arcs
    }

    /// The source node.
    pub fn source(&self) -> usize {
        self.source
    }

    /// The sink node.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Builds a reusable solver over this network's structure and current
    /// capacities.
    pub fn solver(&self) -> DinicSolver {
        let mut s = DinicSolver::new(self.nodes, self.source, self.sink);
        for (f, t, c) in &self.arcs {
            s.add_arc(*f, *t, c.clone());
        }
        s
    }

    /// Computes the maximum flow and the canonical minimum cut.
    ///
    /// One-shot convenience over [`FlowNetwork::solver`]; callers that
    /// re-solve with updated capacities should hold a [`DinicSolver`]
    /// instead.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundedFlow`] if an all-infinite source-to-sink path
    /// exists.
    pub fn max_flow(&self) -> Result<MaxFlow, UnboundedFlow> {
        self.solver().solve()
    }
}

/// Residual representation: paired forward/backward edges.
#[derive(Debug, Clone)]
struct Edge {
    to: usize,
    cap: Option<Rational>, // residual; None = infinite
    paired: usize,
}

/// A reusable Dinic max-flow solver.
///
/// Owns the graph structure (adjacency lists, paired residual edges) and
/// all per-solve scratch state (BFS levels, DFS edge iterators, the
/// reachability stack). [`DinicSolver::solve`] resets residuals from the
/// declared capacities and runs — so solving the same structure at a new
/// set of capacities ([`DinicSolver::set_capacity`]) performs **zero**
/// graph construction and no per-solve vector allocation beyond the
/// returned [`MaxFlow`].
#[derive(Debug, Clone)]
pub struct DinicSolver {
    nodes: usize,
    source: usize,
    sink: usize,
    /// Declared capacity per arc (the reset source).
    caps: Vec<Capacity>,
    /// Arc endpoints, in insertion order.
    ends: Vec<(usize, usize)>,
    /// node -> incident residual-edge ids.
    graph: Vec<Vec<usize>>,
    edges: Vec<Edge>,
    /// arc index -> forward residual-edge id.
    fwd_index: Vec<usize>,
    // ---- scratch ----
    level: Vec<usize>,
    iter: Vec<usize>,
    seen: Vec<bool>,
    stack: Vec<usize>,
    stats: FlowStats,
}

impl DinicSolver {
    /// Creates an empty solver with `nodes` nodes.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn new(nodes: usize, source: usize, sink: usize) -> Self {
        assert!(source < nodes && sink < nodes && source != sink);
        DinicSolver {
            nodes,
            source,
            sink,
            caps: Vec::new(),
            ends: Vec::new(),
            graph: vec![Vec::new(); nodes],
            edges: Vec::new(),
            fwd_index: Vec::new(),
            level: vec![usize::MAX; nodes],
            iter: vec![0; nodes],
            seen: vec![false; nodes],
            stack: Vec::new(),
            stats: FlowStats::default(),
        }
    }

    /// Adds an arc; returns its index.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or a negative finite capacity.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: Capacity) -> usize {
        assert!(from < self.nodes && to < self.nodes);
        if let Capacity::Finite(c) = &cap {
            assert!(!c.is_negative(), "negative capacity");
        }
        let fi = self.edges.len();
        self.edges.push(Edge {
            to,
            cap: None,
            paired: fi + 1,
        });
        self.graph[from].push(fi);
        self.edges.push(Edge {
            to: from,
            cap: Some(Rational::zero()),
            paired: fi,
        });
        self.graph[to].push(fi + 1);
        self.fwd_index.push(fi);
        self.ends.push((from, to));
        self.caps.push(cap);
        self.caps.len() - 1
    }

    /// Number of arcs.
    pub fn arc_count(&self) -> usize {
        self.caps.len()
    }

    /// Replaces the declared capacity of arc `arc` (takes effect on the
    /// next [`DinicSolver::solve`]).
    ///
    /// # Panics
    ///
    /// Panics on an out-of-range arc index or a negative finite capacity.
    pub fn set_capacity(&mut self, arc: usize, cap: Capacity) {
        if let Capacity::Finite(c) = &cap {
            assert!(!c.is_negative(), "negative capacity");
        }
        self.caps[arc] = cap;
    }

    /// Work counters accumulated since construction.
    pub fn stats(&self) -> FlowStats {
        self.stats
    }

    /// Unboundedness check: an s-t path using only infinite arcs. Reuses
    /// the `seen`/`stack` scratch buffers.
    fn has_infinite_path(&mut self) -> bool {
        self.seen.iter_mut().for_each(|s| *s = false);
        self.stack.clear();
        self.stack.push(self.source);
        self.seen[self.source] = true;
        while let Some(n) = self.stack.pop() {
            if n == self.sink {
                return true;
            }
            for &ei in &self.graph[n] {
                // Forward edges are even ids; infinite arcs have no
                // residual bound once reset, but here we consult the
                // *declared* capacities so the check is valid pre-reset.
                if ei % 2 != 0 {
                    continue;
                }
                let arc = ei / 2;
                if matches!(self.caps[arc], Capacity::Infinite) {
                    let to = self.edges[ei].to;
                    if !self.seen[to] {
                        self.seen[to] = true;
                        self.stack.push(to);
                    }
                }
            }
        }
        false
    }

    /// Resets residuals from the declared capacities.
    fn reset_residuals(&mut self) {
        for (arc, cap) in self.caps.iter().enumerate() {
            let fi = self.fwd_index[arc];
            self.edges[fi].cap = cap.as_finite().cloned();
            if matches!(cap, Capacity::Infinite) {
                self.edges[fi].cap = None;
            }
            self.edges[fi + 1].cap = Some(Rational::zero());
        }
    }

    /// Computes the maximum flow and the canonical minimum cut under the
    /// current capacities.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundedFlow`] if an all-infinite source-to-sink path
    /// exists.
    pub fn solve(&mut self) -> Result<MaxFlow, UnboundedFlow> {
        let mut span = offload_obs::span!(
            "flow",
            "dinic_solve",
            nodes = self.nodes,
            arcs = self.caps.len(),
        );
        let before = self.stats;
        let result = self.solve_inner();
        if offload_obs::enabled() {
            span.record("phases", self.stats.phases - before.phases);
            span.record(
                "augmenting_paths",
                self.stats.augmenting_paths - before.augmenting_paths,
            );
            span.record("ok", result.is_ok());
        }
        result
    }

    fn solve_inner(&mut self) -> Result<MaxFlow, UnboundedFlow> {
        if self.has_infinite_path() {
            return Err(UnboundedFlow);
        }
        self.reset_residuals();

        let positive = |cap: &Option<Rational>| match cap {
            None => true,
            Some(r) => r.is_positive(),
        };

        let mut total = Rational::zero();
        loop {
            // BFS levels (reuse the level buffer and the stack as a FIFO
            // via an explicit head index).
            self.level.iter_mut().for_each(|l| *l = usize::MAX);
            self.level[self.source] = 0;
            self.stack.clear();
            self.stack.push(self.source);
            let mut head = 0;
            while head < self.stack.len() {
                let n = self.stack[head];
                head += 1;
                for &ei in &self.graph[n] {
                    let e = &self.edges[ei];
                    if positive(&e.cap) && self.level[e.to] == usize::MAX {
                        self.level[e.to] = self.level[n] + 1;
                        self.stack.push(e.to);
                    }
                }
            }
            if self.level[self.sink] == usize::MAX {
                break;
            }
            self.stats.phases += 1;
            // Blocking flow via iterative DFS with edge iterators.
            self.iter.iter_mut().for_each(|i| *i = 0);
            loop {
                // Find one augmenting path.
                let mut path: Vec<usize> = Vec::new(); // edge ids
                let mut node = self.source;
                let found = loop {
                    if node == self.sink {
                        break true;
                    }
                    let mut advanced = false;
                    while self.iter[node] < self.graph[node].len() {
                        let ei = self.graph[node][self.iter[node]];
                        let e = &self.edges[ei];
                        if positive(&e.cap) && self.level[e.to] == self.level[node] + 1 {
                            path.push(ei);
                            node = e.to;
                            advanced = true;
                            break;
                        }
                        self.iter[node] += 1;
                    }
                    if advanced {
                        continue;
                    }
                    // Dead end: retreat.
                    match path.pop() {
                        None => break false,
                        Some(ei) => {
                            // The edge we came through is exhausted at its
                            // tail; advance the tail's iterator.
                            let tail = self.edges[self.edges[ei].paired].to;
                            self.iter[tail] += 1;
                            node = tail;
                        }
                    }
                };
                if !found {
                    break;
                }
                // Bottleneck. A path of only infinite residuals would mean
                // the upfront infinite-path check missed one — report the
                // unboundedness instead of panicking.
                let mut bottleneck: Option<Rational> = None;
                for &ei in &path {
                    if let Some(c) = &self.edges[ei].cap {
                        bottleneck = Some(match bottleneck {
                            None => c.clone(),
                            Some(b) if c < &b => c.clone(),
                            Some(b) => b,
                        });
                    }
                }
                let Some(b) = bottleneck else {
                    return Err(UnboundedFlow);
                };
                debug_assert!(b.is_positive());
                for &ei in &path {
                    if let Some(c) = &mut self.edges[ei].cap {
                        *c = &*c - &b;
                    }
                    let pi = self.edges[ei].paired;
                    if let Some(c) = &mut self.edges[pi].cap {
                        *c = &*c + &b;
                    }
                }
                self.stats.augmenting_paths += 1;
                total += &b;
            }
        }

        // Min cut: residual reachability from the source.
        let mut source_side = vec![false; self.nodes];
        source_side[self.source] = true;
        self.stack.clear();
        self.stack.push(self.source);
        while let Some(n) = self.stack.pop() {
            for &ei in &self.graph[n] {
                let e = &self.edges[ei];
                if positive(&e.cap) && !source_side[e.to] {
                    source_side[e.to] = true;
                    self.stack.push(e.to);
                }
            }
        }

        // Per-arc flow = original cap - residual (for finite); for
        // infinite arcs the reverse edge's residual is the flow (reverse
        // residuals start at zero and only grow by finite bottlenecks, so
        // they are always finite).
        let arc_flow = self
            .caps
            .iter()
            .zip(&self.fwd_index)
            .map(|(c, &fi)| match (c.as_finite(), &self.edges[fi].cap) {
                (Some(orig), Some(resid)) => orig - resid,
                _ => self.edges[self.edges[fi].paired]
                    .cap
                    .clone()
                    .unwrap_or_else(Rational::zero),
            })
            .collect();

        self.stats.solves += 1;
        Ok(MaxFlow {
            value: total,
            arc_flow,
            source_side,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    fn fin(n: i64) -> Capacity {
        Capacity::Finite(r(n))
    }

    #[test]
    fn single_arc() {
        let mut n = FlowNetwork::new(2, 0, 1);
        n.add_arc(0, 1, fin(5));
        let mf = n.max_flow().unwrap();
        assert_eq!(mf.value, r(5));
        assert!(mf.source_side[0] && !mf.source_side[1]);
    }

    #[test]
    fn classic_diamond() {
        // s -> a (3), s -> b (2), a -> t (2), b -> t (3), a -> b (5)
        let mut n = FlowNetwork::new(4, 0, 3);
        n.add_arc(0, 1, fin(3));
        n.add_arc(0, 2, fin(2));
        n.add_arc(1, 3, fin(2));
        n.add_arc(2, 3, fin(3));
        n.add_arc(1, 2, fin(5));
        let mf = n.max_flow().unwrap();
        assert_eq!(mf.value, r(5));
    }

    #[test]
    fn rational_capacities() {
        let mut n = FlowNetwork::new(3, 0, 2);
        n.add_arc(0, 1, Capacity::Finite(Rational::new(1, 3)));
        n.add_arc(1, 2, Capacity::Finite(Rational::new(1, 2)));
        let mf = n.max_flow().unwrap();
        assert_eq!(mf.value, Rational::new(1, 3));
    }

    #[test]
    fn infinite_arcs_route_around() {
        // s -> a (inf), a -> t (4): flow 4; cut at a -> t.
        let mut n = FlowNetwork::new(3, 0, 2);
        n.add_arc(0, 1, Capacity::Infinite);
        n.add_arc(1, 2, fin(4));
        let mf = n.max_flow().unwrap();
        assert_eq!(mf.value, r(4));
        assert!(mf.source_side[1], "infinite arc is never cut");
    }

    #[test]
    fn unbounded_detected() {
        let mut n = FlowNetwork::new(3, 0, 2);
        n.add_arc(0, 1, Capacity::Infinite);
        n.add_arc(1, 2, Capacity::Infinite);
        assert!(matches!(n.max_flow(), Err(UnboundedFlow)));
    }

    #[test]
    fn min_cut_equals_max_flow() {
        // Random-ish fixed graph; verify cut value equals flow value.
        let mut n = FlowNetwork::new(6, 0, 5);
        let caps = [
            (0, 1, 7),
            (0, 2, 4),
            (1, 3, 5),
            (2, 3, 3),
            (2, 4, 2),
            (3, 5, 8),
            (4, 5, 3),
            (1, 4, 2),
        ];
        for (f, t, c) in caps {
            n.add_arc(f, t, fin(c));
        }
        let mf = n.max_flow().unwrap();
        let cut_value: Rational = n
            .arcs()
            .iter()
            .filter(|(f, t, _)| mf.source_side[*f] && !mf.source_side[*t])
            .map(|(_, _, c)| c.as_finite().unwrap().clone())
            .fold(Rational::zero(), |a, b| &a + &b);
        assert_eq!(mf.value, cut_value);
    }

    #[test]
    fn flow_conservation() {
        let mut n = FlowNetwork::new(5, 0, 4);
        for (f, t, c) in [
            (0, 1, 4),
            (0, 2, 3),
            (1, 3, 3),
            (2, 3, 5),
            (3, 4, 6),
            (1, 2, 1),
        ] {
            n.add_arc(f, t, fin(c));
        }
        let mf = n.max_flow().unwrap();
        for node in 1..4 {
            let inflow: Rational = n
                .arcs()
                .iter()
                .zip(&mf.arc_flow)
                .filter(|((_, t, _), _)| *t == node)
                .map(|(_, fl)| fl.clone())
                .fold(Rational::zero(), |a, b| &a + &b);
            let outflow: Rational = n
                .arcs()
                .iter()
                .zip(&mf.arc_flow)
                .filter(|((f, _, _), _)| *f == node)
                .map(|(_, fl)| fl.clone())
                .fold(Rational::zero(), |a, b| &a + &b);
            assert_eq!(inflow, outflow, "conservation at {node}");
        }
    }

    #[test]
    fn zero_capacity_graph() {
        let mut n = FlowNetwork::new(2, 0, 1);
        n.add_arc(0, 1, Capacity::zero());
        let mf = n.max_flow().unwrap();
        assert_eq!(mf.value, Rational::zero());
    }

    #[test]
    fn resolve_after_capacity_update() {
        // The same solver, re-solved at three capacity settings, matches
        // fresh one-shot solves exactly (values and cut sides).
        let mut n = FlowNetwork::new(3, 0, 2);
        n.add_arc(0, 1, fin(2));
        n.add_arc(1, 2, fin(5));
        let mut solver = n.solver();
        for c in [1i64, 4, 9] {
            solver.set_capacity(0, fin(c));
            let reused = solver.solve().unwrap();
            let mut fresh_net = FlowNetwork::new(3, 0, 2);
            fresh_net.add_arc(0, 1, fin(c));
            fresh_net.add_arc(1, 2, fin(5));
            let fresh = fresh_net.max_flow().unwrap();
            assert_eq!(reused.value, fresh.value, "c={c}");
            assert_eq!(reused.source_side, fresh.source_side, "c={c}");
            assert_eq!(reused.arc_flow, fresh.arc_flow, "c={c}");
        }
        let st = solver.stats();
        assert_eq!(st.solves, 3);
        assert!(st.phases >= 3 && st.augmenting_paths >= 3);
    }

    #[test]
    fn capacity_update_to_infinite_and_back() {
        let mut solver = DinicSolver::new(3, 0, 2);
        let a = solver.add_arc(0, 1, fin(2));
        solver.add_arc(1, 2, fin(5));
        assert_eq!(solver.solve().unwrap().value, r(2));
        solver.set_capacity(a, Capacity::Infinite);
        assert_eq!(solver.solve().unwrap().value, r(5));
        solver.set_capacity(a, fin(3));
        assert_eq!(solver.solve().unwrap().value, r(3));
        assert_eq!(solver.arc_count(), 2);
    }

    #[test]
    fn unbounded_after_update_detected() {
        let mut solver = DinicSolver::new(3, 0, 2);
        solver.add_arc(0, 1, Capacity::Infinite);
        let b = solver.add_arc(1, 2, fin(5));
        assert_eq!(solver.solve().unwrap().value, r(5));
        solver.set_capacity(b, Capacity::Infinite);
        assert!(matches!(solver.solve(), Err(UnboundedFlow)));
    }
}
