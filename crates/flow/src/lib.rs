//! # offload-flow
//!
//! Network-flow machinery for the parametric partitioning algorithm of
//! *Wang & Li, PLDI 2004*:
//!
//! * [`FlowNetwork`] — exact max-flow / min-cut (Dinic) over rational
//!   capacities with `+∞` constraint arcs;
//! * [`ParamNetwork`] — networks whose capacities are affine functions of
//!   the (linearized) run-time parameters, with concrete instantiation
//!   ([`ParamNetwork::solve_at`]), Lemma-1 optimality regions
//!   ([`ParamNetwork::optimality_region`]) and the §5.4 simplification
//!   heuristic ([`ParamNetwork::simplify`]).
//!
//! ```
//! use offload_flow::{ParamNetwork, ParamCap};
//! use offload_poly::{LinExpr, Polyhedron, Rational, Constraint};
//!
//! // s --(2+x)--> a --(5)--> t over parameter x >= 0.
//! let mut n = ParamNetwork::new(1, 3, 0, 2);
//! n.add_arc(0, 1, ParamCap::Affine(
//!     LinExpr::constant(1, Rational::from(2)).plus_term(0, Rational::from(1))));
//! n.add_arc(1, 2, ParamCap::constant(1, Rational::from(5)));
//! let space = Polyhedron::from_constraints(1, vec![
//!     Constraint::ge0(LinExpr::var(1, 0)),
//! ]);
//! // The cut {s} is optimal exactly while 2 + x <= 5.
//! let region = n.optimality_region(&[true, false, false], &space);
//! assert!(region.contains(&[Rational::from(3)]));
//! assert!(!region.contains(&[Rational::from(4)]));
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod dinic;
mod network;

pub use dinic::{Capacity, DinicSolver, FlowNetwork, FlowStats, MaxFlow, UnboundedFlow};
pub use network::{ParamArc, ParamCap, ParamNetwork, ParamSolver};
