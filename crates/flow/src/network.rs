//! Parametric flow networks: arc capacities are affine functions of the
//! (linearized) run-time parameters.
//!
//! This module supplies the three operations Algorithm 2 needs:
//!
//! * [`ParamNetwork::solve_at`] — instantiate the capacities at a
//!   parameter point and find a minimum cut (step 4 of Algorithm 2);
//! * [`ParamNetwork::optimality_region`] — the set of parameter values for
//!   which a given cut stays minimal (Lemma 1): existential flow variables
//!   constrained by Theorem 2's conditions, eliminated by polyhedral
//!   projection;
//! * [`ParamNetwork::simplify`] — the §5.4 node-merging heuristic that
//!   strips the redundancy introduced by infinite constraint arcs.

use crate::dinic::{Capacity, DinicSolver, FlowStats, MaxFlow, UnboundedFlow};
use offload_poly::{Constraint, LinExpr, Polyhedron, Rational};

/// A parametric capacity: an affine function of the parameters, or `+∞`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParamCap {
    /// Affine capacity over the parameter space.
    Affine(LinExpr),
    /// Infinite capacity (constraint arc — never cut).
    Infinite,
}

impl ParamCap {
    /// A constant capacity in a `k`-dimensional parameter space.
    pub fn constant(k: usize, c: Rational) -> Self {
        ParamCap::Affine(LinExpr::constant(k, c))
    }

    /// Evaluates at a parameter point.
    pub fn eval(&self, point: &[Rational]) -> Capacity {
        match self {
            ParamCap::Affine(e) => {
                let v = e.eval(point);
                // Clamp tiny negative capacities (outside the declared
                // parameter region) to zero.
                if v.is_negative() {
                    Capacity::Finite(Rational::zero())
                } else {
                    Capacity::Finite(v)
                }
            }
            ParamCap::Infinite => Capacity::Infinite,
        }
    }

    /// Capacity addition.
    pub fn add(&self, other: &ParamCap) -> ParamCap {
        match (self, other) {
            (ParamCap::Affine(a), ParamCap::Affine(b)) => ParamCap::Affine(a.add(b)),
            _ => ParamCap::Infinite,
        }
    }
}

/// An arc of a parametric network.
#[derive(Debug, Clone)]
pub struct ParamArc {
    /// Source node.
    pub from: usize,
    /// Target node.
    pub to: usize,
    /// Capacity as a function of the parameters.
    pub cap: ParamCap,
}

/// A single-source single-sink network whose arc capacities are affine in
/// the parameters.
#[derive(Debug, Clone)]
pub struct ParamNetwork {
    /// Number of parameter dimensions.
    pub params: usize,
    nodes: usize,
    arcs: Vec<ParamArc>,
    source: usize,
    sink: usize,
}

impl ParamNetwork {
    /// Creates a network with `nodes` nodes over `params` parameter
    /// dimensions.
    ///
    /// # Panics
    ///
    /// Panics if `source == sink` or either is out of range.
    pub fn new(params: usize, nodes: usize, source: usize, sink: usize) -> Self {
        assert!(source < nodes && sink < nodes && source != sink);
        ParamNetwork {
            params,
            nodes,
            arcs: Vec::new(),
            source,
            sink,
        }
    }

    /// Adds an arc (parallel arcs are merged by capacity addition).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range endpoints or self-arcs.
    pub fn add_arc(&mut self, from: usize, to: usize, cap: ParamCap) {
        assert!(from < self.nodes && to < self.nodes);
        if from == to {
            return; // self-arcs never affect any cut
        }
        if let Some(a) = self.arcs.iter_mut().find(|a| a.from == from && a.to == to) {
            a.cap = a.cap.add(&cap);
            return;
        }
        self.arcs.push(ParamArc { from, to, cap });
    }

    /// Number of nodes.
    pub fn node_count(&self) -> usize {
        self.nodes
    }

    /// The arcs.
    pub fn arcs(&self) -> &[ParamArc] {
        &self.arcs
    }

    /// The source node.
    pub fn source(&self) -> usize {
        self.source
    }

    /// The sink node.
    pub fn sink(&self) -> usize {
        self.sink
    }

    /// Instantiates the network at a parameter point and computes a
    /// minimum cut.
    ///
    /// One-shot convenience over [`ParamNetwork::solver`]; callers that
    /// solve at many points (the region-exploration loop) should hold a
    /// [`ParamSolver`] instead.
    ///
    /// # Errors
    ///
    /// Returns [`UnboundedFlow`] if every cut is infinite (cannot happen
    /// for well-formed partitioning networks).
    pub fn solve_at(&self, point: &[Rational]) -> Result<MaxFlow, UnboundedFlow> {
        self.solver().solve_at(point)
    }

    /// Builds a reusable concrete solver over this network's structure.
    ///
    /// The returned [`ParamSolver`] constructs the Dinic graph **once**;
    /// each [`ParamSolver::solve_at`] only re-evaluates the affine
    /// capacities and resets residuals.
    pub fn solver(&self) -> ParamSolver {
        let mut solver = DinicSolver::new(self.nodes, self.source, self.sink);
        let caps: Vec<ParamCap> = self.arcs.iter().map(|a| a.cap.clone()).collect();
        for a in &self.arcs {
            solver.add_arc(a.from, a.to, Capacity::zero());
        }
        ParamSolver { caps, solver }
    }

    /// The cut value at a point for a given side assignment.
    pub fn cut_value_at(&self, source_side: &[bool], point: &[Rational]) -> Capacity {
        let mut total = Capacity::zero();
        for a in &self.arcs {
            if source_side[a.from] && !source_side[a.to] {
                total = total.add(&a.cap.eval(point));
            }
        }
        total
    }

    /// Computes the set of parameter values for which `source_side` is a
    /// minimum cut (Lemma 1 / formula (7)): the projection onto parameter
    /// space of the polyhedron of Theorem 2's flow constraints.
    ///
    /// The returned polyhedron is intersected with `param_space`.
    pub fn optimality_region(&self, source_side: &[bool], param_space: &Polyhedron) -> Polyhedron {
        self.optimality_region_threads(source_side, param_space, 1)
    }

    /// [`Self::optimality_region`] with up to `threads` worker threads
    /// available to the polyhedral projection's redundancy-elimination
    /// inner loop. The region — and every poly work counter — is
    /// identical for every thread count.
    pub fn optimality_region_threads(
        &self,
        source_side: &[bool],
        param_space: &Polyhedron,
        threads: usize,
    ) -> Polyhedron {
        assert_eq!(source_side.len(), self.nodes);
        assert_eq!(param_space.nvars(), self.params);
        let _span = offload_obs::span!(
            "flow",
            "optimality_region",
            nodes = self.nodes,
            arcs = self.arcs.len(),
        );
        let k = self.params;

        // Theorem 2 pins cut arcs: forward arcs carry exactly their
        // capacity (Opt 1), backward arcs carry zero (Opt 2). Only the
        // remaining *free* arcs (both endpoints on one side) need flow
        // variables — substituting the pinned arcs up front keeps the
        // Fourier–Motzkin projection small.
        let mut free: Vec<usize> = Vec::new();
        for (i, a) in self.arcs.iter().enumerate() {
            let fwd = source_side[a.from] && !source_side[a.to];
            let bwd = !source_side[a.from] && source_side[a.to];
            if fwd && a.cap == ParamCap::Infinite {
                // Infinite cut value: never minimal (some finite cut
                // exists in well-formed partitioning networks).
                return Polyhedron::empty(k);
            }
            if !fwd && !bwd {
                free.push(i);
            }
        }

        // The flow constraints decompose: two free-arc variables interact
        // only when they share an interior node's conservation equation.
        // Project each connected component separately (for partitioning
        // networks, validity chains of distinct data items are distinct
        // components, so each projection is tiny), then conjoin.

        // Union-find over interior nodes linked by free arcs.
        let mut parent: Vec<usize> = (0..self.nodes).collect();
        fn find(parent: &mut [usize], mut x: usize) -> usize {
            while parent[x] != x {
                parent[x] = parent[parent[x]];
                x = parent[x];
            }
            x
        }
        for &i in &free {
            let a = &self.arcs[i];
            if a.from != self.source
                && a.from != self.sink
                && a.to != self.source
                && a.to != self.sink
            {
                let (rf, rt) = (find(&mut parent, a.from), find(&mut parent, a.to));
                parent[rf] = rt;
            }
        }
        // Assign each free arc to the component of one of its interior
        // endpoints (arcs touching only s/t have no conservation coupling
        // and form singleton components).
        let comp_of_arc = |parent: &mut [usize], i: usize| -> usize {
            let a = &self.arcs[i];
            if a.from != self.source && a.from != self.sink {
                find(parent, a.from)
            } else if a.to != self.source && a.to != self.sink {
                find(parent, a.to)
            } else {
                self.nodes + i // isolated arc: its own component
            }
        };
        let mut components: std::collections::BTreeMap<usize, Vec<usize>> =
            std::collections::BTreeMap::new();
        for &i in &free {
            let c = comp_of_arc(&mut parent, i);
            components.entry(c).or_default().push(i);
        }

        // Conservation contribution of pinned arcs at a node.
        let pinned_balance = |node: usize| -> LinExpr {
            let mut balance = LinExpr::zero(k);
            for a in &self.arcs {
                let fwd = source_side[a.from] && !source_side[a.to];
                let sign = if a.to == node {
                    Rational::one()
                } else if a.from == node {
                    Rational::from(-1)
                } else {
                    continue;
                };
                if fwd {
                    // An infinite forward arc makes the whole region empty
                    // (handled before any balance is taken); skipping here
                    // keeps the closure total instead of panicking.
                    let ParamCap::Affine(c) = &a.cap else {
                        continue;
                    };
                    balance = balance.add(&c.scale(&sign));
                }
            }
            balance
        };

        let mut result = param_space.clone();

        // Interior nodes with no incident free arc: their conservation is
        // a pure parameter constraint.
        let mut has_free: Vec<bool> = vec![false; self.nodes];
        for &i in &free {
            has_free[self.arcs[i].from] = true;
            has_free[self.arcs[i].to] = true;
        }
        for (node, free_here) in has_free.iter().enumerate() {
            if node == self.source || node == self.sink || *free_here {
                continue;
            }
            let touched = self.arcs.iter().any(|a| a.from == node || a.to == node);
            if touched {
                let b = pinned_balance(node);
                for c in Constraint::equalities(&b, &LinExpr::zero(k)) {
                    result.add(c);
                }
            }
        }

        // One projection per component. Opposite arc pairs (u→v, v→u)
        // share one *signed* flow variable `g = f_uv - f_vu ∈ [-c_vu,
        // c_uv]` — an exact transformation (any split of g into
        // non-negative parts within the capacities is feasible) that
        // halves the variable count and removes the 2-cycles that make
        // Fourier–Motzkin blow up.
        for (_, arcs) in components {
            // Pair up opposite arcs.
            let arcset: std::collections::HashMap<(usize, usize), usize> = arcs
                .iter()
                .map(|&i| ((self.arcs[i].from, self.arcs[i].to), i))
                .collect();
            let mut vars: Vec<(usize, Option<usize>)> = Vec::new(); // (fwd arc, paired rev arc)
            let mut seen: std::collections::HashSet<usize> = std::collections::HashSet::new();
            for &i in &arcs {
                if seen.contains(&i) {
                    continue;
                }
                seen.insert(i);
                let a = &self.arcs[i];
                match arcset.get(&(a.to, a.from)) {
                    Some(&j) if !seen.contains(&j) => {
                        seen.insert(j);
                        vars.push((i, Some(j)));
                    }
                    _ => vars.push((i, None)),
                }
            }

            let nv = k + vars.len();
            // Note: the parameter-space constraints are h-only — they
            // cannot affect the existence of a feasible flow, so they are
            // *not* fed into the projection (they would only bloat every
            // Fourier–Motzkin step); the result is intersected with the
            // parameter space at the end.
            let mut cs: Vec<Constraint> = Vec::new();
            let mut var_of: std::collections::HashMap<usize, (usize, Rational)> =
                std::collections::HashMap::new();
            for (j, &(fwd, rev)) in vars.iter().enumerate() {
                let v = k + j;
                var_of.insert(fwd, (v, Rational::one()));
                let g = LinExpr::var(nv, v);
                // Upper bound: g <= cap(fwd).
                if let ParamCap::Affine(c) = &self.arcs[fwd].cap {
                    cs.push(Constraint::ge(&c.extend_vars(nv), &g));
                }
                match rev {
                    None => {
                        // Plain arc: g >= 0.
                        cs.push(Constraint::ge0(g));
                    }
                    Some(r) => {
                        var_of.insert(r, (v, Rational::from(-1)));
                        // Lower bound: g >= -cap(rev).
                        match &self.arcs[r].cap {
                            ParamCap::Affine(c) => {
                                cs.push(Constraint::ge0(g.add(&c.extend_vars(nv))));
                            }
                            ParamCap::Infinite => {}
                        }
                    }
                }
            }
            // Conservation at interior nodes incident to this component.
            let mut nodes_here: std::collections::BTreeSet<usize> =
                std::collections::BTreeSet::new();
            for &i in &arcs {
                for end in [self.arcs[i].from, self.arcs[i].to] {
                    if end != self.source && end != self.sink {
                        nodes_here.insert(end);
                    }
                }
            }
            for node in nodes_here {
                let mut balance = pinned_balance(node).extend_vars(nv);
                for &i in &arcs {
                    let a = &self.arcs[i];
                    let sign = if a.to == node {
                        Rational::one()
                    } else if a.from == node {
                        Rational::from(-1)
                    } else {
                        continue;
                    };
                    let (v, orient) = &var_of[&i];
                    // A paired reverse arc contributes -g with the sign
                    // flipped (it already appears through the forward
                    // arc's variable), so skip its duplicate contribution.
                    if *orient == Rational::from(-1) {
                        continue;
                    }
                    let _ = sign;
                    // Forward orientation: +g into `to`, -g out of `from`.
                    if a.to == node {
                        balance = balance.plus_term(*v, Rational::one());
                    }
                    if a.from == node {
                        balance = balance.plus_term(*v, Rational::from(-1));
                    }
                }
                cs.extend(Constraint::equalities(&balance, &LinExpr::zero(nv)));
            }
            let poly = Polyhedron::from_constraints(nv, cs);
            let shadow = poly.project_to_first_threads(k, threads);
            for c in shadow.constraints() {
                result.add(c.clone());
            }
        }

        result.reduce_redundancy_threads(threads)
    }

    /// Applies the §5.4 simplification heuristic: merges node `nj` into
    /// `ni` whenever `c(ni,nj) ≥ Σ other out-capacities of nj` and
    /// `c(nj,ni) ≥ Σ other in-capacities of nj` hold for every parameter
    /// value in `param_space` (trivially true for infinite arcs).
    ///
    /// Returns the simplified network and, for each original node, its
    /// representative in the simplified one.
    pub fn simplify(&self, param_space: &Polyhedron) -> (ParamNetwork, Vec<usize>) {
        use std::collections::{HashMap, VecDeque};
        let mut span = offload_obs::span!(
            "flow",
            "simplify",
            nodes_in = self.nodes,
            arcs_in = self.arcs.len(),
        );
        let n = self.nodes;
        // Adjacency with combined parallel capacities.
        let mut out: Vec<HashMap<usize, ParamCap>> = vec![HashMap::new(); n];
        let mut inc: Vec<HashMap<usize, ParamCap>> = vec![HashMap::new(); n];
        for a in &self.arcs {
            merge_cap(&mut out[a.from], a.to, &a.cap);
            merge_cap(&mut inc[a.to], a.from, &a.cap);
        }
        let mut rep: Vec<usize> = (0..n).collect();
        let mut alive: Vec<bool> = vec![true; n];
        let mut queue: VecDeque<usize> = (0..n).collect();
        let mut queued: Vec<bool> = vec![true; n];

        let sum_excluding = |m: &HashMap<usize, ParamCap>, exclude: usize| -> Option<ParamCap> {
            let mut acc: Option<ParamCap> = None;
            for (&k, c) in m {
                if k == exclude {
                    continue;
                }
                acc = Some(match acc {
                    None => c.clone(),
                    Some(a) => a.add(c),
                });
            }
            acc
        };

        while let Some(nj) = queue.pop_front() {
            queued[nj] = false;
            if !alive[nj] || nj == self.source || nj == self.sink {
                continue;
            }
            // Sorted: the first qualifying absorber wins, so candidate
            // order must not depend on hash iteration.
            let mut in_neighbors: Vec<usize> = inc[nj].keys().copied().collect();
            in_neighbors.sort_unstable();
            let mut merged_into: Option<usize> = None;
            for ni in in_neighbors {
                if ni == nj || !alive[ni] {
                    continue;
                }
                let cap_ij = inc[nj].get(&ni).cloned();
                let cap_ji = out[nj].get(&ni).cloned();
                let out_sum = sum_excluding(&out[nj], ni);
                let in_sum = sum_excluding(&inc[nj], ni);
                if cap_ge(&cap_ij, &out_sum, param_space) && cap_ge(&cap_ji, &in_sum, param_space) {
                    merged_into = Some(ni);
                    break;
                }
            }
            let Some(ni) = merged_into else { continue };
            // Merge nj into ni: redirect nj's arcs.
            alive[nj] = false;
            rep[nj] = ni;
            let out_nj: Vec<(usize, ParamCap)> = out[nj].drain().collect();
            let inc_nj: Vec<(usize, ParamCap)> = inc[nj].drain().collect();
            for (k, c) in out_nj {
                inc[k].remove(&nj);
                if k != ni {
                    merge_cap(&mut out[ni], k, &c);
                    merge_cap(&mut inc[k], ni, &c);
                }
            }
            for (k, c) in inc_nj {
                out[k].remove(&nj);
                if k != ni {
                    merge_cap(&mut out[k], ni, &c);
                    merge_cap(&mut inc[ni], k, &c);
                }
            }
            // Re-examine the absorber and its neighbourhood (sorted, so
            // the examination order is reproducible).
            let mut requeue: Vec<usize> = vec![ni];
            requeue.extend(out[ni].keys().copied());
            requeue.extend(inc[ni].keys().copied());
            requeue.sort_unstable();
            for r in requeue {
                if alive[r] && !queued[r] {
                    queued[r] = true;
                    queue.push_back(r);
                }
            }
        }

        // Compact.
        let find = |mut x: usize| {
            while rep[x] != x {
                x = rep[x];
            }
            x
        };
        let mut new_id = vec![usize::MAX; n];
        let mut count = 0;
        for node in 0..n {
            let r = find(node);
            if new_id[r] == usize::MAX {
                new_id[r] = count;
                count += 1;
            }
        }
        let src = new_id[find(self.source)];
        let snk = new_id[find(self.sink)];
        let mut result = ParamNetwork::new(self.params, count, src, snk);
        for (f, m) in out.iter().enumerate() {
            if !alive[f] {
                continue;
            }
            // Sorted by target: arc order decides the solver's traversal
            // order, and with it which of several equal-value min-cuts is
            // reported — keep it reproducible.
            let mut targets: Vec<usize> = m.keys().copied().collect();
            targets.sort_unstable();
            for t in targets {
                let (nf, nt) = (new_id[find(f)], new_id[find(t)]);
                if nf != nt {
                    result.add_arc(nf, nt, m[&t].clone());
                }
            }
        }
        let mapping: Vec<usize> = (0..n).map(|node| new_id[find(node)]).collect();
        span.record("nodes_out", result.nodes);
        span.record("arcs_out", result.arcs.len());
        (result, mapping)
    }

    /// Expands a cut on a simplified network back to this network's nodes.
    pub fn expand_cut(&self, mapping: &[usize], simplified_side: &[bool]) -> Vec<bool> {
        (0..self.nodes)
            .map(|n| simplified_side[mapping[n]])
            .collect()
    }
}

/// A reusable concrete min-cut solver for one [`ParamNetwork`].
///
/// Built once per network ([`ParamNetwork::solver`]), then driven at many
/// parameter points: each [`ParamSolver::solve_at`] evaluates the affine
/// capacities into the held [`DinicSolver`] and re-solves on the already
/// constructed graph — no adjacency rebuilding, no per-point vector
/// allocation beyond the returned [`MaxFlow`]. This is the per-worker
/// state of the parallel region-exploration engine.
#[derive(Debug, Clone)]
pub struct ParamSolver {
    caps: Vec<ParamCap>,
    solver: DinicSolver,
}

impl ParamSolver {
    /// Computes a minimum cut at `point`.
    ///
    /// Results are identical to [`ParamNetwork::solve_at`] on the owning
    /// network (same flow value, same canonical cut, same arc flows).
    ///
    /// # Errors
    ///
    /// Returns [`UnboundedFlow`] if every cut is infinite.
    pub fn solve_at(&mut self, point: &[Rational]) -> Result<MaxFlow, UnboundedFlow> {
        for (i, c) in self.caps.iter().enumerate() {
            self.solver.set_capacity(i, c.eval(point));
        }
        self.solver.solve()
    }

    /// Work counters accumulated across all solves on this solver.
    pub fn stats(&self) -> FlowStats {
        self.solver.stats()
    }
}

/// Adds a capacity into an adjacency map entry.
fn merge_cap(m: &mut std::collections::HashMap<usize, ParamCap>, key: usize, cap: &ParamCap) {
    match m.get_mut(&key) {
        Some(existing) => *existing = existing.add(cap),
        None => {
            m.insert(key, cap.clone());
        }
    }
}

/// Is `a >= b` provable over the whole parameter region? (`None` means a
/// zero-capacity absent arc.)
///
/// Tries a fast *syntactic* sufficient condition — `a - b` has only
/// non-negative coefficients and constant, sound whenever the parameter
/// region lies in the non-negative orthant (always true for partitioning
/// networks: every linearized dimension is a product of non-negative
/// quantities) — then falls back to an exact LP over the parameter
/// region. A `false` answer merely skips an optional merge, so any
/// conservatism is safe.
fn cap_ge(a: &Option<ParamCap>, b: &Option<ParamCap>, param_space: &Polyhedron) -> bool {
    fn syntactically_nonneg(e: &LinExpr) -> bool {
        !e.constant_term().is_negative() && e.support().all(|v| !e.coeff(v).is_negative())
    }
    fn nonneg_on(e: &LinExpr, space: &Polyhedron) -> bool {
        if syntactically_nonneg(e) {
            return true;
        }
        matches!(
            offload_poly::lp_minimize(e, space.constraints()),
            offload_poly::LpResult::Optimal(v) if !v.is_negative()
        ) || matches!(
            offload_poly::lp_minimize(e, space.constraints()),
            offload_poly::LpResult::Infeasible
        )
    }
    match (a, b) {
        (_, None) => true,
        (Some(ParamCap::Infinite), _) => true,
        (None, Some(ParamCap::Affine(e))) => nonneg_on(&e.scale(&Rational::from(-1)), param_space),
        (None, Some(ParamCap::Infinite)) => false,
        (Some(ParamCap::Affine(_)), Some(ParamCap::Infinite)) => false,
        (Some(ParamCap::Affine(ea)), Some(ParamCap::Affine(eb))) => {
            nonneg_on(&ea.sub(eb), param_space)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64) -> Rational {
        Rational::from(n)
    }

    /// Affine capacity `c0 + c1*x0` in a 1-parameter space.
    fn affine(c0: i64, c1: i64) -> ParamCap {
        ParamCap::Affine(LinExpr::constant(1, r(c0)).plus_term(0, r(c1)))
    }

    fn x_ge(c: i64) -> Constraint {
        Constraint::ge0(LinExpr::var(1, 0).plus_constant(r(-c)))
    }

    #[test]
    fn solve_at_instantiates() {
        // s -> a: 2 + x, a -> t: 5. At x=1 min cut = 3 (cut s->a); at
        // x=10 min cut = 5 (cut a->t).
        let mut n = ParamNetwork::new(1, 3, 0, 2);
        n.add_arc(0, 1, affine(2, 1));
        n.add_arc(1, 2, affine(5, 0));
        let mf = n.solve_at(&[r(1)]).unwrap();
        assert_eq!(mf.value, r(3));
        assert!(!mf.source_side[1]);
        let mf = n.solve_at(&[r(10)]).unwrap();
        assert_eq!(mf.value, r(5));
        assert!(mf.source_side[1]);
    }

    #[test]
    fn optimality_region_two_cuts() {
        // Same network: cut {s} optimal iff 2 + x <= 5, i.e. x <= 3.
        let mut n = ParamNetwork::new(1, 3, 0, 2);
        n.add_arc(0, 1, affine(2, 1));
        n.add_arc(1, 2, affine(5, 0));
        let space = Polyhedron::from_constraints(1, vec![x_ge(0)]);
        let region_a = n.optimality_region(&[true, false, false], &space);
        assert!(region_a.contains(&[r(0)]));
        assert!(region_a.contains(&[r(3)]));
        assert!(!region_a.contains(&[r(4)]));
        let region_b = n.optimality_region(&[true, true, false], &space);
        assert!(
            region_b.contains(&[r(3)]),
            "tie at x = 3: both cuts minimal"
        );
        assert!(region_b.contains(&[r(10)]));
        assert!(!region_b.contains(&[r(1)]));
    }

    #[test]
    fn optimality_region_infinite_forward_arc_is_empty() {
        let mut n = ParamNetwork::new(1, 3, 0, 2);
        n.add_arc(0, 1, ParamCap::Infinite);
        n.add_arc(1, 2, affine(5, 0));
        let space = Polyhedron::universe(1);
        let region = n.optimality_region(&[true, false, false], &space);
        assert!(region.is_empty());
    }

    #[test]
    fn simplify_merges_infinite_chains() {
        // s -> a (inf), a's only other arcs are small: a merges into s.
        let mut n = ParamNetwork::new(1, 4, 0, 3);
        n.add_arc(0, 1, ParamCap::Infinite);
        n.add_arc(1, 2, affine(1, 0));
        n.add_arc(2, 3, affine(7, 0));
        let space = Polyhedron::from_constraints(1, vec![x_ge(0)]);
        let (simplified, mapping) = n.simplify(&space);
        assert!(simplified.node_count() < 4, "at least one merge happened");
        // Semantics preserved: same min-cut value at sample points.
        for x in [0i64, 5, 100] {
            let v1 = n.solve_at(&[r(x)]).unwrap().value;
            let v2 = simplified.solve_at(&[r(x)]).unwrap().value;
            assert_eq!(v1, v2, "at x={x}");
        }
        assert_eq!(mapping.len(), 4);
    }

    #[test]
    fn simplify_preserves_parametric_cuts() {
        // Figure 6-like mini network with parameter-dependent optimum.
        let mut n = ParamNetwork::new(1, 4, 0, 3);
        n.add_arc(0, 1, affine(0, 2)); // 2x
        n.add_arc(1, 2, affine(3, 0));
        n.add_arc(2, 3, affine(0, 1)); // x
        n.add_arc(0, 2, affine(1, 0));
        let space = Polyhedron::from_constraints(1, vec![x_ge(0)]);
        let (simplified, _) = n.simplify(&space);
        for x in [0i64, 1, 2, 3, 10] {
            assert_eq!(
                n.solve_at(&[r(x)]).unwrap().value,
                simplified.solve_at(&[r(x)]).unwrap().value,
                "at x={x}"
            );
        }
    }

    #[test]
    fn parallel_arcs_merge() {
        let mut n = ParamNetwork::new(1, 2, 0, 1);
        n.add_arc(0, 1, affine(1, 0));
        n.add_arc(0, 1, affine(2, 1));
        assert_eq!(n.arcs().len(), 1);
        assert_eq!(n.solve_at(&[r(2)]).unwrap().value, r(5));
    }

    #[test]
    fn sampled_region_points_are_really_optimal() {
        // Cross-check optimality_region against direct solving on a grid.
        let mut n = ParamNetwork::new(1, 4, 0, 3);
        n.add_arc(0, 1, affine(4, 0));
        n.add_arc(0, 2, affine(0, 1));
        n.add_arc(1, 3, affine(0, 2));
        n.add_arc(2, 3, affine(6, 0));
        n.add_arc(1, 2, affine(1, 0));
        let space = Polyhedron::from_constraints(1, vec![x_ge(0)]);
        for x in 0..12i64 {
            let point = [r(x)];
            let mf = n.solve_at(&point).unwrap();
            let region = n.optimality_region(&mf.source_side, &space);
            assert!(
                region.contains(&point),
                "cut found at x={x} must be optimal at x={x}"
            );
            // And the region only contains points where this cut's value
            // matches the true minimum.
            for y in 0..12i64 {
                let q = [r(y)];
                if region.contains(&q) {
                    let best = n.solve_at(&q).unwrap().value;
                    let this = match n.cut_value_at(&mf.source_side, &q) {
                        Capacity::Finite(v) => v,
                        Capacity::Infinite => panic!("finite cut"),
                    };
                    assert_eq!(this, best, "x={x} region claims y={y}");
                }
            }
        }
    }
}
