//! Figure 12: susan under six representative parameter settings —
//! smoothing / edges / corners modes on photos of different sizes.

use offload_bench::{average_improvement, print_normalized_table, run_setting};
use offload_benchmarks::susan;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = susan();
    eprintln!("analyzing {} ...", bench.name);
    let analysis = bench.analyze()?;
    eprintln!(
        "{} choices found in {:?}",
        analysis.partition.choices.len(),
        analysis.analysis_time
    );

    // (mode flags, dims, label) — the six representative settings.
    let settings: [(&str, [i64; 12]); 6] = [
        ("-s 24x24", [1, 0, 0, 24, 24, 20, 2, 1, 1, 1200, 16, 10]),
        ("-e 24x24", [0, 1, 0, 24, 24, 20, 2, 1, 1, 1200, 16, 10]),
        ("-c 24x24", [0, 0, 1, 24, 24, 20, 2, 1, 1, 1200, 16, 10]),
        ("-s 56x56", [1, 0, 0, 56, 56, 20, 2, 1, 1, 1200, 16, 10]),
        ("-e 56x56", [0, 1, 0, 56, 56, 20, 2, 1, 1, 1200, 16, 10]),
        ("-c 56x56", [0, 0, 1, 56, 56, 20, 2, 1, 1, 1200, 16, 10]),
    ];
    let mut rows = Vec::new();
    for (label, params) in settings {
        rows.push(run_setting(&bench, &analysis, label, &params)?);
    }
    print_normalized_table(
        "Figure 12: susan under 6 representative settings",
        analysis.partition.choices.len(),
        &rows,
    );
    if let Some(gain) = average_improvement(&rows, &analysis) {
        println!(
            "average improvement over local (offloaded settings): {:.1}%",
            gain * 100.0
        );
    }
    Ok(())
}
