//! Figure 10: G.721 encode under different I/O buffer sizes — the
//! parameter the paper added to the benchmark precisely because it
//! "greatly affects the partitioning decision": any fixed choice loses
//! badly somewhere in the sweep.

use offload_bench::{print_normalized_table, run_setting};
use offload_benchmarks::encode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = encode();
    eprintln!("analyzing {} ...", bench.name);
    let analysis = bench.analyze()?;

    // One coding method and format (-4 -l), like the paper; sweep bufsz
    // with the total sample count held fixed.
    let total = 2048i64;
    let mut rows = Vec::new();
    for bufsz in [16i64, 64, 256, 1024, 2048] {
        let nbuf = (total / bufsz).max(1);
        let params = [4, 0, bufsz, nbuf];
        rows.push(run_setting(
            &bench,
            &analysis,
            format!("bufsz={bufsz}"),
            &params,
        )?);
    }
    print_normalized_table(
        "Figure 10: G.721 encode with different buffer sizes (-4 -l)",
        analysis.partition.choices.len(),
        &rows,
    );

    // The paper: "Any fixed choice of partitioning may lead up to 60%
    // performance decrease from the optimal choice."
    let mut worst_fixed_penalty: f64 = 0.0;
    for fixed in 0..analysis.partition.choices.len() {
        for row in &rows {
            let best = row.choice_times[row.best_choice()];
            let penalty = row.choice_times[fixed] / best - 1.0;
            worst_fixed_penalty = worst_fixed_penalty.max(penalty);
        }
    }
    println!(
        "worst penalty of any fixed partitioning vs per-setting optimum: {:.0}%",
        worst_fixed_penalty * 100.0
    );
    Ok(())
}
