//! Ablation (§2.2 / Figure 3): the paper's validity-state transfer model
//! vs the traditional per-DU-chain charging. With several consumer tasks
//! reading one producer's data, DU-chain charging exaggerates the
//! communication cost and can scare the partitioner away from profitable
//! offloading.

use offload_core::{Analysis, AnalysisOptions, ValidityModel};
use offload_poly::Rational;

const PROGRAM: &str = "
    int data[256];
    void produce(int n) {
        int i; int acc;
        acc = 7;
        for (i = 0; i < n; i++) {
            acc = acc + acc % 13 + 1;
            data[i % 256] = acc % 97;
        }
    }
    void consume_a(int k) {
        int i; int acc;
        acc = 0;
        for (i = 0; i < k; i++) { acc = acc + data[i % 256]; }
        output(acc);
    }
    void consume_b(int k) {
        int i; int acc;
        acc = 0;
        for (i = 0; i < k; i++) { acc = acc + data[i % 256] * 2; }
        output(acc);
    }
    void main(int n) {
        produce(n);
        consume_a(64);
        consume_b(64);
    }";

fn predicted_offload_cost(a: &Analysis, n: i64) -> Option<(usize, f64)> {
    let params = [Rational::from(n)];
    let point = a.dispatcher.dim_point(&a.network, &params).ok()?;
    let idx = a.decide(&[n]).ok()?.region_id;
    let cost = offload_core::cut_cost_at(&a.network, &a.partition.choices[idx], &point)?;
    Some((idx, cost.to_f64()))
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let states = Analysis::from_source(PROGRAM, AnalysisOptions::default())?;
    let duchain = Analysis::from_source(
        PROGRAM,
        AnalysisOptions {
            validity_model: ValidityModel::DuChains,
            ..Default::default()
        },
    )?;
    println!("== Ablation: validity states vs DU-chain charging ==");
    println!("(one producer feeding two consumer tasks; Figure 3's scenario)");
    println!(
        "{:>10} {:>22} {:>22}",
        "n", "states: choice/cost", "du-chains: choice/cost"
    );
    for n in [64i64, 512, 4096, 32768, 262144] {
        let s = predicted_offload_cost(&states, n);
        let d = predicted_offload_cost(&duchain, n);
        let fmt = |v: Option<(usize, f64)>| match v {
            Some((i, c)) => format!("{i} / {c:.0}"),
            None => "-".into(),
        };
        println!("{n:>10} {:>22} {:>22}", fmt(s), fmt(d));
    }
    println!();
    println!(
        "states model: {} choices; du-chain model: {} choices",
        states.partition.choices.len(),
        duchain.partition.choices.len()
    );
    // The crossover: first n at which each model leaves all-local.
    let crossover = |a: &Analysis| -> Option<i64> {
        (0..24).map(|p| 1i64 << p).find(|&n| {
            a.decide(&[n])
                .map(|d| !d.plan.is_all_local())
                .unwrap_or(false)
        })
    };
    println!(
        "offloading crossover: states at n ≈ {:?}, du-chains at n ≈ {:?}",
        crossover(&states),
        crossover(&duchain)
    );
    // Communication cost the two models charge for the *same* cut that
    // separates the producer from the two consumers: the DU-chain model
    // charges the shared data once per consumer.
    let probe = [Rational::from(4096)];
    for (name, a) in [("states", &states), ("du-chains", &duchain)] {
        let point = a.dispatcher.dim_point(&a.network, &probe).unwrap();
        let costs: Vec<String> = a
            .partition
            .choices
            .iter()
            .map(|c| match offload_core::cut_cost_at(&a.network, c, &point) {
                Some(v) => format!("{:.0}", v.to_f64()),
                None => "inf".into(),
            })
            .collect();
        println!("{name:>10}: choice costs at n=4096: {costs:?}");
    }
    println!("the du-chain model double-charges the shared producer data, so its");
    println!("offloading threshold is later (or offloading never wins) — exactly");
    println!("the exaggeration the paper's validity states remove.");
    Ok(())
}
