//! Figure 11: FFT under different sample numbers — again no fixed
//! partitioning stays optimal across the sweep; the sample number drives
//! the decision (the sinusoid count and inverse flag do not, per the
//! paper's analysis).

use offload_bench::{print_normalized_table, run_setting};
use offload_benchmarks::fft;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = fft();
    eprintln!("analyzing {} ...", bench.name);
    let analysis = bench.analyze()?;
    eprintln!(
        "{} choices, {} dummies ({} need user annotations)",
        analysis.partition.choices.len(),
        analysis.symbolic.dict.dummies().len(),
        analysis.symbolic.annotations_required().len(),
    );

    let mut rows = Vec::new();
    for samples in [16i64, 64, 256, 1024, 4096] {
        let params = [4, samples, 0];
        rows.push(run_setting(
            &bench,
            &analysis,
            format!("n={samples}"),
            &params,
        )?);
    }
    print_normalized_table(
        "Figure 11: FFT with different sample numbers",
        analysis.partition.choices.len(),
        &rows,
    );

    // Sinusoid count and inverse flag shouldn't change the pick.
    let picks: std::collections::BTreeSet<usize> = [(1i64, 0i64), (16, 0), (4, 1)]
        .iter()
        .map(|&(nsin, inv)| analysis.decide(&[nsin, 512, inv]).unwrap().region_id)
        .collect();
    println!(
        "distinct dispatched choices across (nsin, inv) at n=512: {} (paper: 1)",
        picks.len()
    );
    Ok(())
}
