//! Figures 6–7: the parametric algorithm on the worked example — the
//! three sample points, the three minimum cuts (P1, P2, P3) and their
//! parameter ranges (R1, R2, R3).

use offload_flow::{ParamCap, ParamNetwork};
use offload_poly::{Constraint, LinExpr, Polyhedron, Rational, Region};

fn r(n: i64) -> Rational {
    Rational::from(n)
}

fn main() {
    // Linearized dimensions d0 = x, d1 = x·y, d2 = x·y·z (§5.1).
    let k = 3;
    let aff = |x: i64, xy: i64, xyz: i64| {
        ParamCap::Affine(
            LinExpr::zero(k)
                .plus_term(0, r(x))
                .plus_term(1, r(xy))
                .plus_term(2, r(xyz)),
        )
    };
    // Nodes: 0 = s, 1 = t, 2 = M(f), 3 = M(g) — the Table 1 network.
    let mut net = ParamNetwork::new(k, 4, 0, 1);
    net.add_arc(0, 2, aff(0, 2, 0));
    net.add_arc(0, 3, aff(0, 0, 1));
    net.add_arc(2, 3, aff(12, 2, 0));
    net.add_arc(3, 2, aff(12, 2, 0));
    net.add_arc(2, 1, aff(0, 14, 0));
    let space = Polyhedron::from_constraints(
        k,
        vec![
            Constraint::ge0(LinExpr::var(k, 0).plus_constant(r(-1))),
            Constraint::ge0(LinExpr::var(k, 1).sub(&LinExpr::var(k, 0))),
            Constraint::ge0(LinExpr::var(k, 2).sub(&LinExpr::var(k, 1))),
        ],
    );

    println!("== Figures 6-7: Algorithm 2 on the worked example ==\n");
    let names = |i: usize| ["x", "x*y", "x*y*z"][i].to_string();
    let mut x = Region::from(space.clone());
    let mut round = 0;
    while let Some(p) = x.sample() {
        round += 1;
        let mf = net.solve_at(&p).unwrap();
        let region = net.optimality_region(&mf.source_side, &space);
        let label = match (mf.source_side[2], mf.source_side[3]) {
            (false, false) => "P: run f and g locally",
            (false, true) => "P: offload g",
            (true, true) => "P: offload f and g",
            (true, false) => "P: offload f only",
        };
        println!(
            "iteration {round}: sample (x, xy, xyz) = ({}, {}, {})",
            p[0], p[1], p[2]
        );
        println!("  minimum cut {label}, value {}", mf.value);
        println!("  region R{round}: {}", region.display_with(&names));
        x = x.subtract(&region);
        if round > 6 {
            break;
        }
    }
    println!("\npaper's ranges (divide by x; y = xy/x, z = xyz/xy):");
    println!("  R1: z <= 12 && yz <= 12 + 2y        (all local)");
    println!("  R2: 6 <= 5y && 12 + 2y <= yz        (offload g)");
    println!("  R3: 5y <= 6 && 12 <= z              (offload f and g)");
}
