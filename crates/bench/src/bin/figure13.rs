//! Figure 13: prediction error — the ratio between the analysis'
//! predicted cost and the measured execution time for G.721 encode under
//! different command options and partitionings. The paper reports all
//! ratios within 10%; our simulator deliberately models cache effects
//! the analysis ignores, so the ratios deviate from 1 but stay bounded.

use offload_benchmarks::encode;
use offload_core::cut_cost_at;
use offload_poly::Rational;
use offload_runtime::{DeviceModel, Simulator};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = encode();
    eprintln!("analyzing {} ...", bench.name);
    let analysis = bench.analyze()?;
    let sim = Simulator::new(&analysis, DeviceModel::ipaq_testbed());

    println!("== Figure 13: predicted / measured cost ratios (G.721 encode) ==");
    print!("{:<12}", "setting");
    for i in 0..analysis.partition.choices.len() {
        print!("  partition{i:<2}");
    }
    println!();
    let mut worst: f64 = 1.0;
    for (mname, method) in [("-3", 3i64), ("-4", 4), ("-5", 5)] {
        for (lname, law) in [("-l", 0i64), ("-a", 1), ("-u", 2)] {
            let params = [method, law, 128, 4];
            let input = (bench.make_input)(&params);
            let rparams: Vec<Rational> = params.iter().map(|&p| Rational::from(p)).collect();
            let point = analysis.dispatcher.dim_point(&analysis.network, &rparams)?;
            print!("{:<12}", format!("{mname} {lname}"));
            for (i, choice) in analysis.partition.choices.iter().enumerate() {
                let predicted = match cut_cost_at(&analysis.network, choice, &point) {
                    Some(v) => v.to_f64(),
                    None => {
                        print!("  {:>10}", "inf");
                        continue;
                    }
                };
                let measured = sim
                    .run_choice(i, &params, &input)?
                    .stats
                    .total_time
                    .to_f64();
                let ratio = predicted / measured;
                worst = worst.max(ratio.max(1.0 / ratio));
                print!("  {ratio:>10.3}");
            }
            println!();
        }
    }
    println!(
        "\nworst |ratio - 1| across all settings and partitionings: {:.1}%",
        (worst - 1.0) * 100.0
    );
    println!("(paper: all prediction errors within 10%)");
    Ok(())
}
