//! Table 1: computation workload and communication cost of the running
//! example under the three offloading choices, as symbolic functions of
//! the parameters x, y, z — and numerically checked against the paper's
//! closed forms.

use offload_symbolic::{Atom, ParamDict, SymExpr};

fn main() {
    let mut dict = ParamDict::new(vec!["x".into(), "y".into(), "z".into()]);
    let x = SymExpr::atom(&mut dict, Atom::Param(0));
    let y = SymExpr::atom(&mut dict, Atom::Param(1));
    let z = SymExpr::atom(&mut dict, Atom::Param(2));
    let xy = x.mul(&y, &mut dict);
    let xyz = xy.mul(&z, &mut dict);

    // §1.1: unit computation per innermost statement, startup 6, unit
    // transfer 1.
    let comp_local = xyz.add(&xy.scale(&2.into()));
    let comp_g = xy.scale(&2.into());
    let comp_fg = SymExpr::zero();
    let comm_local = SymExpr::zero();
    let comm_g = x.scale(&12.into()).add(&xy.scale(&2.into()));
    let comm_fg = xy.scale(&14.into());

    println!("== Table 1: Cost for Different Computation Offloading ==");
    println!("{:<24}{:<18}{:<18}{:<12}", "offload", "-", "g", "f,g");
    println!(
        "{:<24}{:<18}{:<18}{:<12}",
        "computation workload",
        comp_local.display(&dict),
        comp_g.display(&dict),
        comp_fg.display(&dict)
    );
    println!(
        "{:<24}{:<18}{:<18}{:<12}",
        "communication cost",
        comm_local.display(&dict),
        comm_g.display(&dict),
        comm_fg.display(&dict)
    );
    let total_local = comp_local.add(&comm_local);
    let total_g = comp_g.add(&comm_g);
    let total_fg = comp_fg.add(&comm_fg);
    println!(
        "{:<24}{:<18}{:<18}{:<12}",
        "total cost",
        total_local.display(&dict),
        total_g.display(&dict),
        total_fg.display(&dict)
    );

    // Numeric spot checks against the paper's closed forms.
    let eval = |e: &SymExpr, xv: i64, yv: i64, zv: i64| {
        e.eval(&dict, &|a| match a {
            Atom::Param(0) => xv.into(),
            Atom::Param(1) => yv.into(),
            Atom::Param(2) => zv.into(),
            _ => 0.into(),
        })
    };
    for (xv, yv, zv) in [(1i64, 6, 3), (1, 6, 6), (1, 1, 18)] {
        let l = eval(&total_local, xv, yv, zv);
        let g = eval(&total_g, xv, yv, zv);
        let fg = eval(&total_fg, xv, yv, zv);
        assert_eq!(l, offload_poly::Rational::from(xv * yv * zv + 2 * xv * yv));
        assert_eq!(g, offload_poly::Rational::from(12 * xv + 4 * xv * yv));
        assert_eq!(fg, offload_poly::Rational::from(14 * xv * yv));
        println!("  at (x={xv}, y={yv}, z={zv}): local={l} g={g} f,g={fg}");
    }
    println!("\nconditions (paper §1.1):");
    println!("  offload f,g iff 12 < z && 5y < 6");
    println!("  offload g   iff 12 + 2y < yz (otherwise local)");
}
