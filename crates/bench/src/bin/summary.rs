//! §6.2 headline numbers across the benchmark suite: average improvement
//! of adaptive offloading over local execution (the paper reports ≈37%,
//! excluding instances where the optimum is to stay local), and the
//! energy/time proportionality observation.
//!
//! Optional argument: a benchmark name to restrict to (default: the
//! lighter half of the suite; run each figure binary for the full
//! sweeps).

use offload_bench::{average_improvement, run_setting, SettingRow};
use offload_benchmarks::{all, Benchmark};
use offload_core::Analysis;

fn settings_for(b: &Benchmark) -> Vec<(String, Vec<i64>)> {
    match b.name {
        "rawcaudio" | "rawdaudio" => [256i64, 1024, 4096]
            .iter()
            .map(|&n| (format!("n={n}"), vec![n]))
            .collect(),
        "encode" | "decode" => vec![
            ("-4 -l small".into(), vec![4, 0, 64, 4]),
            ("-4 -l large".into(), vec![4, 0, 512, 4]),
            ("-5 -u large".into(), vec![5, 2, 512, 4]),
        ],
        "fft" => vec![
            ("n=64".into(), vec![4, 64, 0]),
            ("n=1024".into(), vec![4, 1024, 0]),
        ],
        "susan" => vec![
            (
                "-e 24x24".into(),
                vec![0, 1, 0, 24, 24, 20, 2, 1, 1, 1200, 16, 10],
            ),
            (
                "-e 56x56".into(),
                vec![0, 1, 0, 56, 56, 20, 2, 1, 1, 1200, 16, 10],
            ),
        ],
        _ => vec![],
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let filter = std::env::args().nth(1);
    let mut all_gains: Vec<f64> = Vec::new();
    for b in all() {
        match &filter {
            Some(f) if b.name != *f => continue,
            None if matches!(b.name, "encode" | "decode" | "susan") => {
                // Heavy analyses; run explicitly via the figure binaries
                // or `summary <name>`.
                println!(
                    "{:<10} (skipped by default — run `summary {}`)",
                    b.name, b.name
                );
                continue;
            }
            _ => {}
        }
        eprintln!("analyzing {} ...", b.name);
        let analysis: Analysis = b.analyze()?;
        let mut rows: Vec<SettingRow> = Vec::new();
        for (label, params) in settings_for(&b) {
            rows.push(run_setting(&b, &analysis, label, &params)?);
        }
        let p = analysis.pipeline_stats();
        println!(
            "{:<10} choices={} settings={} (solve: {} regions, {} flow solves, {} LP solves, {:.1} ms)",
            b.name,
            analysis.partition.choices.len(),
            rows.len(),
            p.regions_explored,
            p.flow_solves,
            p.lp_solves,
            (p.simplify_micros + p.solve_micros) as f64 / 1e3,
        );
        for row in &rows {
            let best = row.best_choice();
            let speedup = row.local_time / row.choice_times[best];
            let energy_ratio = row.choice_energy[best] / row.local_energy;
            let time_ratio = row.choice_times[best] / row.local_time;
            println!(
                "    {:<14} best=partition{} speedup={:.2}x  energy/time ratio {:.2}/{:.2}",
                row.label, best, speedup, energy_ratio, time_ratio
            );
        }
        if let Some(g) = average_improvement(&rows, &analysis) {
            println!("    average improvement over local: {:.1}%", g * 100.0);
            all_gains.push(g);
        } else {
            println!("    local execution is optimal everywhere (as the paper found for ADPCM)");
        }
    }
    if !all_gains.is_empty() {
        let avg = all_gains.iter().sum::<f64>() / all_gains.len() as f64;
        println!(
            "\noverall average improvement (offloaded instances): {:.1}%",
            avg * 100.0
        );
        println!("(paper §6.2: about 37%, energy roughly proportional to time)");
    }
    Ok(())
}
