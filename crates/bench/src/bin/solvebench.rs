//! Sequential-vs-parallel benchmark of the region-exploration engine.
//!
//! Runs the full parametric analysis of each selected benchmark twice —
//! once with `threads = 1` (the sequential engine) and once with the
//! requested worker count — asserts that both produce bit-identical
//! partitioning choices (the engine's determinism contract), prints a
//! comparison table with the unified [`PipelineStats`] counters, and
//! writes a machine-readable `BENCH_solve.json`.
//!
//! ```text
//! cargo run --release -p offload-bench --bin solvebench [flags] [names...]
//! ```
//!
//! Flags:
//!
//! * `--json` — print the machine-readable report (the same document
//!   written to `BENCH_solve.json`) to stdout and nothing else, so
//!   scripts can consume stdout directly instead of scraping tables;
//! * `--trace <path>` — enable the `offload-obs` recorder for the
//!   parallel runs and write a Chrome trace-event JSON file to `path`
//!   (open it in `chrome://tracing` or <https://ui.perfetto.dev>).
//!
//! Defaults to the lighter benchmarks (`rawcaudio`, `rawdaudio`, `fft`);
//! pass names to override. Environment:
//!
//! * `SOLVEBENCH_THREADS` — parallel worker count (default: available
//!   parallelism);
//! * `SOLVEBENCH_OUT` — output path (default `BENCH_solve.json`).

use offload_benchmarks::all;
use offload_core::{Analysis, PipelineStats, SolveOptions};
use offload_runtime::{DeviceModel, Simulator};
use std::time::Instant;

struct Row {
    name: &'static str,
    strategy: &'static str,
    seq_ms: f64,
    par_ms: f64,
    choices: usize,
    identical: bool,
    /// Sequential time of the checked-in `BENCH_baseline.json` divided by
    /// this run's sequential time; `None` when the baseline file is
    /// missing or does not cover this benchmark.
    speedup_vs_baseline: Option<f64>,
    seq_pipeline: PipelineStats,
    par_pipeline: PipelineStats,
}

fn analyze_timed(
    bench: &offload_benchmarks::Benchmark,
    threads: usize,
) -> Result<(Analysis, f64), Box<dyn std::error::Error>> {
    let opts = SolveOptions {
        threads,
        ..SolveOptions::default()
    };
    let start = Instant::now();
    let analysis = bench.analyze_with(opts)?;
    Ok((analysis, start.elapsed().as_secs_f64() * 1e3))
}

fn json_pipeline(p: &PipelineStats) -> String {
    format!(
        concat!(
            "{{\"flow_solves\":{},\"flow_phases\":{},\"flow_augmenting_paths\":{},",
            "\"lp_solves\":{},\"lp_pivots\":{},\"fm_vars_eliminated\":{},",
            "\"fm_constraints\":{},\"lp_cache_hits\":{},\"small_int_promotions\":{},",
            "\"prefilter_hits\":{},\"lp_warm_starts\":{},\"dual_pivots\":{},",
            "\"regions_explored\":{},\"rounds\":{},",
            "\"cache_hits\":{},\"cache_misses\":{},\"threads_used\":{},",
            "\"simplify_micros\":{},\"solve_micros\":{},",
            "\"prune_micros\":{},\"region_lp_micros\":{},\"sequential_strategy\":{}}}"
        ),
        p.flow_solves,
        p.flow_phases,
        p.flow_augmenting_paths,
        p.lp_solves,
        p.lp_pivots,
        p.fm_vars_eliminated,
        p.fm_constraints,
        p.lp_cache_hits,
        p.small_int_promotions,
        p.prefilter_hits,
        p.lp_warm_starts,
        p.dual_pivots,
        p.regions_explored,
        p.rounds,
        p.cache_hits,
        p.cache_misses,
        p.threads_used,
        p.simplify_micros,
        p.solve_micros,
        p.prune_micros,
        p.region_lp_micros,
        p.sequential_strategy,
    )
}

/// Reads one benchmark's sequential time out of the checked-in baseline
/// report without a JSON dependency: locates `"name":"<name>"` and takes
/// the first `"seq_ms":` value after it.
fn baseline_seq_ms(baseline: &str, name: &str) -> Option<f64> {
    let at = baseline.find(&format!("\"name\":\"{name}\""))?;
    let rest = &baseline[at..];
    let at = rest.find("\"seq_ms\":")?;
    let rest = &rest[at + "\"seq_ms\":".len()..];
    let end = rest
        .find(|c: char| c != '.' && c != '-' && !c.is_ascii_digit())
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// Measures the cost of one *disabled* span site: the price every
/// instrumented call pays when tracing is off. This is the recorder's
/// overhead budget — a handful of nanoseconds (one relaxed atomic load)
/// per site, far below 3% of any solve.
fn disabled_span_ns() -> f64 {
    assert!(!offload_obs::enabled(), "probe must run with tracing off");
    const N: u64 = 1_000_000;
    let start = Instant::now();
    for _ in 0..N {
        let g = offload_obs::span!("bench", "disabled_probe");
        std::hint::black_box(&g);
    }
    start.elapsed().as_nanos() as f64 / N as f64
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut json_mode = false;
    let mut trace_path: Option<String> = None;
    let mut selected: Vec<String> = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_mode = true,
            "--trace" => {
                trace_path = Some(args.next().ok_or("--trace requires a path")?);
            }
            other if other.starts_with("--") => {
                return Err(format!("unknown flag {other}").into());
            }
            name => selected.push(name.to_string()),
        }
    }
    let default_set = ["rawcaudio", "rawdaudio", "fft"];
    let threads: usize = std::env::var("SOLVEBENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
        })
        .max(2);
    let out_path = std::env::var("SOLVEBENCH_OUT").unwrap_or_else(|_| "BENCH_solve.json".into());
    let baseline_path =
        std::env::var("SOLVEBENCH_BASELINE").unwrap_or_else(|_| "BENCH_baseline.json".into());
    let baseline = std::fs::read_to_string(&baseline_path).ok();
    if baseline.is_none() {
        eprintln!("note: no baseline at {baseline_path}; speedup_vs_baseline will be null");
    }

    // Calibrate the disabled-site cost before any tracing turns on.
    let disabled_ns = disabled_span_ns();
    if trace_path.is_some() {
        offload_obs::set_enabled(true);
    }

    let mut rows: Vec<Row> = Vec::new();
    for b in all() {
        let wanted = if selected.is_empty() {
            default_set.contains(&b.name)
        } else {
            selected.iter().any(|s| s == b.name)
        };
        if !wanted {
            continue;
        }
        eprintln!("solving {} sequentially (threads=1) ...", b.name);
        let (seq, seq_ms) = analyze_timed(&b, 1)?;
        eprintln!("solving {} in parallel (threads={threads}) ...", b.name);
        let (par, par_ms) = analyze_timed(&b, threads)?;
        // The determinism contract: the partitioning output is
        // bit-identical for every thread count.
        let identical = seq.partition.choices == par.partition.choices;
        assert!(
            identical,
            "{}: parallel output diverged from sequential",
            b.name
        );
        if trace_path.is_some() {
            // Exercise the dispatcher and executor too, so the trace
            // carries the runtime category next to flow/poly/parametric.
            let idx = par.decide(&b.default_params)?.region_id;
            let input = (b.make_input)(&b.default_params);
            let sim = Simulator::new(&par, DeviceModel::ipaq_testbed());
            sim.run_choice(idx, &b.default_params, &input)
                .map_err(|e| format!("{}: traced run failed: {e}", b.name))?;
        }
        let strategy = if seq.pipeline_stats().sequential_strategy {
            "dominance"
        } else {
            "exact"
        };
        rows.push(Row {
            name: b.name,
            strategy,
            seq_ms,
            par_ms,
            choices: seq.partition.choices.len(),
            identical,
            speedup_vs_baseline: baseline
                .as_deref()
                .and_then(|base| baseline_seq_ms(base, b.name))
                .map(|base_ms| base_ms / seq_ms),
            seq_pipeline: seq.pipeline_stats(),
            par_pipeline: par.pipeline_stats(),
        });
    }

    // Recorder accounting: how many span sites actually fired, and what
    // the same sites would have cost with tracing disabled.
    let mut spans_recorded = 0u64;
    if trace_path.is_some() {
        for t in offload_obs::snapshot() {
            spans_recorded += t
                .events
                .iter()
                .filter(|e| matches!(e.kind, offload_obs::EventKind::Begin))
                .count() as u64;
        }
    }
    let solve_wall_ms: f64 = rows.iter().map(|r| r.seq_ms + r.par_ms).sum();
    let disabled_overhead_pct = if solve_wall_ms > 0.0 {
        (spans_recorded as f64 * disabled_ns) / (solve_wall_ms * 1e6) * 100.0
    } else {
        0.0
    };

    if !json_mode {
        println!(
            "{:<10} {:<9} {:>8} {:>10} {:>10} {:>8} {:>8} {:>9}",
            "benchmark",
            "strategy",
            "choices",
            "seq (ms)",
            "par (ms)",
            "speedup",
            "vs-base",
            "identical"
        );
        for r in &rows {
            println!(
                "{:<10} {:<9} {:>8} {:>10.1} {:>10.1} {:>7.2}x {:>8} {:>9}",
                r.name,
                r.strategy,
                r.choices,
                r.seq_ms,
                r.par_ms,
                r.seq_ms / r.par_ms,
                r.speedup_vs_baseline
                    .map(|s| format!("{s:.2}x"))
                    .unwrap_or_else(|| "-".into()),
                r.identical,
            );
        }
        for r in &rows {
            println!("\n{} pipeline (parallel run):\n{}", r.name, r.par_pipeline);
        }
    }

    let mut json = String::from("{\n  \"threads\": ");
    json.push_str(&threads.to_string());
    json.push_str(",\n  \"recorder\": ");
    json.push_str(&format!(
        concat!(
            "{{\"disabled_ns_per_span\":{:.2},\"spans_recorded\":{},",
            "\"disabled_overhead_pct\":{:.4}}}"
        ),
        disabled_ns, spans_recorded, disabled_overhead_pct,
    ));
    json.push_str(",\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"name\":\"{}\",\"strategy\":\"{}\",\"choices\":{},",
                "\"seq_ms\":{:.3},\"par_ms\":{:.3},\"identical\":{},",
                "\"speedup_vs_baseline\":{},",
                "\"seq_pipeline\":{},\"par_pipeline\":{}}}{}\n"
            ),
            r.name,
            r.strategy,
            r.choices,
            r.seq_ms,
            r.par_ms,
            r.identical,
            r.speedup_vs_baseline
                .map(|s| format!("{s:.3}"))
                .unwrap_or_else(|| "null".into()),
            json_pipeline(&r.seq_pipeline),
            json_pipeline(&r.par_pipeline),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json)?;

    if let Some(path) = &trace_path {
        let snapshot = offload_obs::snapshot();
        offload_obs::export::write_chrome_trace(path, &snapshot)?;
        eprintln!(
            "wrote {path} ({spans_recorded} spans; open in chrome://tracing or ui.perfetto.dev)"
        );
        eprint!("{}", offload_obs::export::summary_tree(&snapshot));
    }
    if json_mode {
        print!("{json}");
        eprintln!("wrote {out_path}");
    } else {
        println!("\nwrote {out_path}");
    }
    Ok(())
}
