//! Sequential-vs-parallel benchmark of the region-exploration engine.
//!
//! Runs the full parametric analysis of each selected benchmark twice —
//! once with `threads = 1` (the sequential engine) and once with the
//! requested worker count — asserts that both produce bit-identical
//! partitioning choices (the engine's determinism contract), prints a
//! comparison table with the unified [`PipelineStats`] counters, and
//! writes a machine-readable `BENCH_solve.json`.
//!
//! ```text
//! cargo run --release -p offload-bench --bin solvebench [names...]
//! ```
//!
//! Defaults to the lighter benchmarks (`rawcaudio`, `rawdaudio`, `fft`);
//! pass names to override. Environment:
//!
//! * `SOLVEBENCH_THREADS` — parallel worker count (default: available
//!   parallelism);
//! * `SOLVEBENCH_OUT` — output path (default `BENCH_solve.json`).

use offload_benchmarks::all;
use offload_core::{Analysis, PipelineStats, SolveOptions};
use std::time::Instant;

struct Row {
    name: &'static str,
    strategy: &'static str,
    seq_ms: f64,
    par_ms: f64,
    choices: usize,
    identical: bool,
    seq_pipeline: PipelineStats,
    par_pipeline: PipelineStats,
}

fn analyze_timed(
    bench: &offload_benchmarks::Benchmark,
    threads: usize,
) -> Result<(Analysis, f64), Box<dyn std::error::Error>> {
    let opts = SolveOptions { threads, ..SolveOptions::default() };
    let start = Instant::now();
    let analysis = bench.analyze_with(opts)?;
    Ok((analysis, start.elapsed().as_secs_f64() * 1e3))
}

fn json_pipeline(p: &PipelineStats) -> String {
    format!(
        concat!(
            "{{\"flow_solves\":{},\"flow_phases\":{},\"flow_augmenting_paths\":{},",
            "\"lp_solves\":{},\"lp_pivots\":{},\"fm_vars_eliminated\":{},",
            "\"fm_constraints\":{},\"regions_explored\":{},\"rounds\":{},",
            "\"cache_hits\":{},\"cache_misses\":{},\"threads_used\":{},",
            "\"simplify_micros\":{},\"solve_micros\":{}}}"
        ),
        p.flow_solves,
        p.flow_phases,
        p.flow_augmenting_paths,
        p.lp_solves,
        p.lp_pivots,
        p.fm_vars_eliminated,
        p.fm_constraints,
        p.regions_explored,
        p.rounds,
        p.cache_hits,
        p.cache_misses,
        p.threads_used,
        p.simplify_micros,
        p.solve_micros,
    )
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let selected: Vec<String> = std::env::args().skip(1).collect();
    let default_set = ["rawcaudio", "rawdaudio", "fft"];
    let threads: usize = std::env::var("SOLVEBENCH_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or_else(|| {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
        })
        .max(2);
    let out_path =
        std::env::var("SOLVEBENCH_OUT").unwrap_or_else(|_| "BENCH_solve.json".into());

    let mut rows: Vec<Row> = Vec::new();
    for b in all() {
        let wanted = if selected.is_empty() {
            default_set.contains(&b.name)
        } else {
            selected.iter().any(|s| s == b.name)
        };
        if !wanted {
            continue;
        }
        eprintln!("solving {} sequentially (threads=1) ...", b.name);
        let (seq, seq_ms) = analyze_timed(&b, 1)?;
        eprintln!("solving {} in parallel (threads={threads}) ...", b.name);
        let (par, par_ms) = analyze_timed(&b, threads)?;
        // The determinism contract: the partitioning output is
        // bit-identical for every thread count.
        let identical = seq.partition.choices == par.partition.choices;
        assert!(identical, "{}: parallel output diverged from sequential", b.name);
        let strategy = if seq.pipeline_stats().rounds > 0 { "exact" } else { "dominance" };
        rows.push(Row {
            name: b.name,
            strategy,
            seq_ms,
            par_ms,
            choices: seq.partition.choices.len(),
            identical,
            seq_pipeline: seq.pipeline_stats(),
            par_pipeline: par.pipeline_stats(),
        });
    }

    println!(
        "{:<10} {:<9} {:>8} {:>10} {:>10} {:>8} {:>9}",
        "benchmark", "strategy", "choices", "seq (ms)", "par (ms)", "speedup", "identical"
    );
    for r in &rows {
        println!(
            "{:<10} {:<9} {:>8} {:>10.1} {:>10.1} {:>7.2}x {:>9}",
            r.name,
            r.strategy,
            r.choices,
            r.seq_ms,
            r.par_ms,
            r.seq_ms / r.par_ms,
            r.identical,
        );
    }
    for r in &rows {
        println!("\n{} pipeline (parallel run):\n{}", r.name, r.par_pipeline);
    }

    let mut json = String::from("{\n  \"threads\": ");
    json.push_str(&threads.to_string());
    json.push_str(",\n  \"benchmarks\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"name\":\"{}\",\"strategy\":\"{}\",\"choices\":{},",
                "\"seq_ms\":{:.3},\"par_ms\":{:.3},\"identical\":{},",
                "\"seq_pipeline\":{},\"par_pipeline\":{}}}{}\n"
            ),
            r.name,
            r.strategy,
            r.choices,
            r.seq_ms,
            r.par_ms,
            r.identical,
            json_pipeline(&r.seq_pipeline),
            json_pipeline(&r.par_pipeline),
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, json)?;
    println!("\nwrote {out_path}");
    Ok(())
}
