//! `offloadc` — the offloading compiler as a command-line tool: analyze a
//! mini-C source file and print the task graph, the tracked data items,
//! the partitioning choices with their dispatch guards, and (optionally)
//! simulate a run.
//!
//! ```text
//! offloadc <file.mc> [--params v1,v2,...] [--input a,b,c] [--run]
//! ```

use offload_core::{Analysis, AnalysisOptions};
use offload_runtime::{DeviceModel, Simulator};

fn parse_list(s: &str) -> Vec<i64> {
    s.split(',')
        .filter(|p| !p.is_empty())
        .map(|p| p.trim().parse().expect("integer"))
        .collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(path) = args.first() else {
        eprintln!("usage: offloadc <file.mc> [--params v1,v2,...] [--input a,b,c] [--run]");
        std::process::exit(2);
    };
    let mut params: Vec<i64> = Vec::new();
    let mut input: Vec<i64> = Vec::new();
    let mut run = false;
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--params" => {
                params = parse_list(&args[i + 1]);
                i += 2;
            }
            "--input" => {
                input = parse_list(&args[i + 1]);
                i += 2;
            }
            "--run" => {
                run = true;
                i += 1;
            }
            other => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
        }
    }

    let src = std::fs::read_to_string(path)?;
    let analysis = Analysis::from_source(&src, AnalysisOptions::default())?;

    println!("== {path} ==");
    println!(
        "functions: {}   tasks: {}   tracked items: {}   network: {} -> {} nodes",
        analysis.module.functions.len(),
        analysis.tcfg.tasks().len(),
        analysis.items.items.len(),
        analysis.partition.stats.nodes_before,
        analysis.partition.stats.nodes_after,
    );
    let missing = analysis.missing_annotations();
    if !missing.is_empty() {
        println!("NOTE: dummies needing annotations before dispatch: {missing:?}");
        for d in &missing {
            if let Some(o) = analysis.symbolic.dict.dummies().get(*d as usize) {
                println!("  d{d}: {o:?}");
            }
        }
    }
    println!("\npartitioning choices:\n{}", analysis.describe_choices());
    println!("analysis time: {:?}", analysis.analysis_time);

    if !params.is_empty() {
        let idx = analysis.decide(&params)?.region_id;
        println!("dispatch at {params:?}: choice {idx}");
        if run {
            let sim = Simulator::new(&analysis, DeviceModel::ipaq_testbed());
            let local = sim.run_local(&params, &input)?;
            let chosen = sim.run_choice(idx, &params, &input)?;
            println!("local      time {:>12} ", local.stats.total_time.to_f64());
            println!(
                "dispatched time {:>12}  ({} messages, {} slots moved)",
                chosen.stats.total_time.to_f64(),
                chosen.stats.messages,
                chosen.stats.slots_transferred,
            );
            println!("outputs: {:?}", chosen.outputs);
            assert_eq!(chosen.outputs, local.outputs, "behaviour preserved");
        }
    }
    Ok(())
}
