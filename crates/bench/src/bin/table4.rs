//! Table 4: parametric partitioning analysis results — task count,
//! annotations required, number of partitioning choices, analysis time.
//!
//! Run with `--release`; the exact polyhedral algebra is the dominant
//! cost (the paper's own analysis times were 164–3482 seconds on 2004
//! hardware).
//!
//! Optional argument: a benchmark name to restrict to.

use offload_benchmarks::all;

fn main() {
    let filter = std::env::args().nth(1);
    println!("== Table 4: Parametric Analysis Results ==");
    println!(
        "{:<12} {:>9} {:>15} {:>22} {:>16}",
        "Program", "No. Tasks", "No. Annotations", "No. Partition Choices", "Analysis Time"
    );
    for b in all() {
        if let Some(f) = &filter {
            if b.name != *f {
                continue;
            }
        }
        match b.analyze() {
            Ok(a) => {
                // Annotations: the dummy parameters the analysis names
                // (§3.4) — auto-resolvable conditions plus user-supplied
                // rules.
                let annotations = a.symbolic.dict.dummies().len();
                println!(
                    "{:<12} {:>9} {:>15} {:>22} {:>13.1?}",
                    b.name,
                    a.tcfg.tasks().len(),
                    annotations,
                    a.partition.choices.len(),
                    a.analysis_time,
                );
            }
            Err(e) => println!("{:<12} analysis failed: {e}", b.name),
        }
    }
    println!("\n(paper: rawcaudio 10/2/1/164s, rawdaudio 10/2/1/185s,");
    println!(" encode 107/4/4/2247s, decode 87/4/4/2159s, fft 26/3/2/748s,");
    println!(" susan 95/13/3/3482s)");
}
