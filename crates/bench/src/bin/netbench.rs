//! End-to-end loopback benchmark of the TCP offload engine.
//!
//! Starts a real [`OffloadServer`] on an OS-assigned loopback port, runs
//! the adaptive engine against it across parameter settings (small ones
//! dispatch all-local, large ones offload over the socket), prints the
//! chosen partition and wall-clock timing for each, then demonstrates
//! graceful degradation by running against an address with no server.
//!
//! ```text
//! cargo run -p offload-bench --bin netbench [--json] [--trace <path>]
//! ```
//!
//! * `--json` — print a machine-readable report to stdout and nothing
//!   else (human-readable progress goes to stderr);
//! * `--trace <path>` — record the whole session with the `offload-obs`
//!   recorder and write a Chrome trace-event JSON file to `path`.

use offload_core::{Analysis, AnalysisOptions};
use offload_net::{ClientConfig, OffloadEngine, OffloadServer, RetryPolicy, ServerConfig};
use offload_runtime::DeviceModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PROGRAM: &str = "
    int work(int k) {
        int j;
        int acc;
        acc = 0;
        for (j = 0; j < k; j++) {
            acc = acc + j * j % 1000;
        }
        return acc;
    }

    void main(int n) {
        output(work(n));
    }";

struct RunRow {
    n: i64,
    choice: usize,
    offloaded: bool,
    virt_time: f64,
    wall_ms: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut json_mode = false;
    let mut trace_path: Option<String> = None;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_mode = true,
            "--trace" => {
                trace_path = Some(args.next().ok_or("--trace requires a path")?);
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    if trace_path.is_some() {
        offload_obs::set_enabled(true);
    }
    macro_rules! say {
        ($($arg:tt)*) => {
            if json_mode { eprintln!($($arg)*) } else { println!($($arg)*) }
        };
    }

    let analysis = Arc::new(Analysis::from_source(PROGRAM, AnalysisOptions::default())?);
    let device = DeviceModel::ipaq_testbed();
    say!("partitioning choices:\n{}", analysis.describe_choices());

    let server = OffloadServer::bind(
        "127.0.0.1:0",
        analysis.clone(),
        device.clone(),
        ServerConfig::default(),
    )?;
    say!("server listening on {}", server.addr());

    // The interpreter is slow in debug builds; give each request a
    // generous deadline so the demo never times out spuriously.
    let mut config = ClientConfig::new(server.addr().to_string());
    config.request_timeout = Duration::from_secs(300);
    let engine = OffloadEngine::new(&analysis, device.clone(), config);
    say!(
        "{:<10} {:>7} {:>10} {:>11} {:>12}  output",
        "n",
        "choice",
        "where",
        "virt time",
        "wall"
    );
    let mut server_stats = None;
    let mut rows: Vec<RunRow> = Vec::new();
    for n in [4i64, 1_000, 100_000] {
        let wall = Instant::now();
        let report = engine.run(&[n], &[])?;
        assert!(!report.fell_back, "loopback server should be reachable");
        say!(
            "{n:<10} {:>7} {:>10} {:>11.3} {:>10.1?}  {:?}",
            report.choice,
            if report.offloaded {
                "offloaded"
            } else {
                "local"
            },
            report.result.stats.total_time.to_f64(),
            wall.elapsed(),
            report.result.outputs,
        );
        rows.push(RunRow {
            n,
            choice: report.choice,
            offloaded: report.offloaded,
            virt_time: report.result.stats.total_time.to_f64(),
            wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        });
        if let Some(s) = report.server_pipeline {
            server_stats = Some((s, report.local_pipeline));
        }
    }
    let mut analyses_match = false;
    if let Some((server, local)) = &server_stats {
        say!("\nanalysis pipeline stats (from the handshake):\n{server}");
        analyses_match = server == local;
        say!(
            "server analysis matches the client's: {}",
            if analyses_match {
                "yes"
            } else {
                "no (independent analyses)"
            }
        );
    }

    // Graceful degradation: same engine, but nobody is listening. The
    // dead address is the server's port after shutdown, so a connect is
    // refused immediately.
    let mut server = server;
    let dead = server.addr().to_string();
    server.shutdown();
    drop(server);
    let mut config = ClientConfig::new(dead);
    config.retry = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    config.connect_timeout = Duration::from_millis(500);
    let engine = OffloadEngine::new(&analysis, device, config);
    let report = engine.run(&[1_000], &[])?;
    assert!(report.fell_back, "no server: the engine must degrade");
    say!(
        "\nserver absent: fell back after {} connect attempts — {}",
        report.connect_attempts,
        report
            .fallback_reason
            .as_deref()
            .unwrap_or("(no reason recorded)"),
    );
    say!(
        "fallback output {:?} (all-local, correct)",
        report.result.outputs
    );

    if let Some(path) = &trace_path {
        let snapshot = offload_obs::snapshot();
        offload_obs::export::write_chrome_trace(path, &snapshot)?;
        eprintln!("wrote {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if json_mode {
        let mut json = String::from("{\n  \"runs\": [\n");
        for (i, r) in rows.iter().enumerate() {
            json.push_str(&format!(
                concat!(
                    "    {{\"n\":{},\"choice\":{},\"offloaded\":{},",
                    "\"virt_time\":{:.6},\"wall_ms\":{:.3}}}{}\n"
                ),
                r.n,
                r.choice,
                r.offloaded,
                r.virt_time,
                r.wall_ms,
                if i + 1 == rows.len() { "" } else { "," },
            ));
        }
        json.push_str("  ],\n");
        json.push_str(&format!("  \"analyses_match\": {analyses_match},\n"));
        json.push_str(&format!(
            "  \"fallback\": {{\"fell_back\":{},\"connect_attempts\":{}}}\n",
            report.fell_back, report.connect_attempts,
        ));
        json.push_str("}\n");
        print!("{json}");
    }
    Ok(())
}
