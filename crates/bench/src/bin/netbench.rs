//! End-to-end loopback benchmark of the TCP offload engine.
//!
//! Starts a real [`OffloadServer`] on an OS-assigned loopback port, runs
//! the adaptive engine against it across parameter settings (small ones
//! dispatch all-local, large ones offload over the socket), prints the
//! chosen partition and wall-clock timing for each, then demonstrates
//! graceful degradation by running against an address with no server.
//!
//! ```text
//! cargo run -p offload-bench --bin netbench
//! ```

use offload_core::{Analysis, AnalysisOptions};
use offload_net::{ClientConfig, OffloadEngine, OffloadServer, RetryPolicy, ServerConfig};
use offload_runtime::DeviceModel;
use std::sync::Arc;
use std::time::{Duration, Instant};

const PROGRAM: &str = "
    int work(int k) {
        int j;
        int acc;
        acc = 0;
        for (j = 0; j < k; j++) {
            acc = acc + j * j % 1000;
        }
        return acc;
    }

    void main(int n) {
        output(work(n));
    }";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis =
        Arc::new(Analysis::from_source(PROGRAM, AnalysisOptions::default())?);
    let device = DeviceModel::ipaq_testbed();
    println!("partitioning choices:\n{}", analysis.describe_choices());

    let server = OffloadServer::bind(
        "127.0.0.1:0",
        analysis.clone(),
        device.clone(),
        ServerConfig::default(),
    )?;
    println!("server listening on {}", server.addr());

    // The interpreter is slow in debug builds; give each request a
    // generous deadline so the demo never times out spuriously.
    let mut config = ClientConfig::new(server.addr().to_string());
    config.request_timeout = Duration::from_secs(300);
    let engine = OffloadEngine::new(&analysis, device.clone(), config);
    println!(
        "{:<10} {:>7} {:>10} {:>11} {:>12}  output",
        "n", "choice", "where", "virt time", "wall"
    );
    let mut server_stats = None;
    for n in [4i64, 1_000, 100_000] {
        let wall = Instant::now();
        let report = engine.run(&[n], &[])?;
        assert!(!report.fell_back, "loopback server should be reachable");
        println!(
            "{n:<10} {:>7} {:>10} {:>11.3} {:>10.1?}  {:?}",
            report.choice,
            if report.offloaded { "offloaded" } else { "local" },
            report.result.stats.total_time.to_f64(),
            wall.elapsed(),
            report.result.outputs,
        );
        if let Some(s) = report.server_pipeline {
            server_stats = Some((s, report.local_pipeline));
        }
    }
    if let Some((server, local)) = server_stats {
        println!("\nanalysis pipeline stats (from the v2 handshake):\n{server}");
        println!(
            "server analysis matches the client's: {}",
            if server == local { "yes" } else { "no (independent analyses)" }
        );
    }

    // Graceful degradation: same engine, but nobody is listening. The
    // dead address is the server's port after shutdown, so a connect is
    // refused immediately.
    let mut server = server;
    let dead = server.addr().to_string();
    server.shutdown();
    drop(server);
    let mut config = ClientConfig::new(dead);
    config.retry = RetryPolicy { max_attempts: 2, ..RetryPolicy::default() };
    config.connect_timeout = Duration::from_millis(500);
    let engine = OffloadEngine::new(&analysis, device, config);
    let report = engine.run(&[1_000], &[])?;
    assert!(report.fell_back, "no server: the engine must degrade");
    println!(
        "\nserver absent: fell back after {} connect attempts — {}",
        report.connect_attempts,
        report.fallback_reason.as_deref().unwrap_or("(no reason recorded)"),
    );
    println!("fallback output {:?} (all-local, correct)", report.result.outputs);
    Ok(())
}
