//! End-to-end loopback benchmark of the TCP offload engine.
//!
//! Starts a real [`OffloadServer`] on an OS-assigned loopback port, runs
//! the adaptive engine against it across parameter settings (small ones
//! dispatch all-local, large ones offload over the socket), prints the
//! chosen partition and wall-clock timing for each, then demonstrates
//! graceful degradation by running against an address with no server.
//!
//! ```text
//! cargo run -p offload-bench --bin netbench [--json] [--trace <path>]
//! cargo run -p offload-bench --bin netbench -- --clients N --duration S \
//!     [--out BENCH_net.json] [--json]
//! ```
//!
//! * `--json` — print a machine-readable report to stdout and nothing
//!   else (human-readable progress goes to stderr);
//! * `--trace <path>` — record the whole session with the `offload-obs`
//!   recorder and write a Chrome trace-event JSON file to `path`;
//! * `--clients N --duration S` — **load-generator mode**: N concurrent
//!   loopback [`offload_net::DispatchClient`]s hammer the server's
//!   dispatch path for S seconds, then the sustained QPS and the
//!   client-observed p50/p90/p99 dispatch latency (plus the server's
//!   own [`offload_net::DispatchStats`]) are written to `--out`
//!   (default `BENCH_net.json`).

use offload_core::{Analysis, AnalysisOptions};
use offload_net::{
    fingerprint, ClientConfig, DispatchClient, OffloadEngine, OffloadServer, RetryPolicy,
    ServerConfig,
};
use offload_runtime::DeviceModel;
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

const PROGRAM: &str = "
    int work(int k) {
        int j;
        int acc;
        acc = 0;
        for (j = 0; j < k; j++) {
            acc = acc + j * j % 1000;
        }
        return acc;
    }

    void main(int n) {
        output(work(n));
    }";

struct RunRow {
    n: i64,
    choice: usize,
    offloaded: bool,
    virt_time: f64,
    wall_ms: f64,
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut json_mode = false;
    let mut trace_path: Option<String> = None;
    let mut clients = 0usize;
    let mut duration = Duration::from_secs(5);
    let mut out = String::from("BENCH_net.json");
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--json" => json_mode = true,
            "--trace" => {
                trace_path = Some(args.next().ok_or("--trace requires a path")?);
            }
            "--clients" => {
                clients = args
                    .next()
                    .ok_or("--clients requires a count")?
                    .parse()
                    .map_err(|_| "--clients requires an integer")?;
            }
            "--duration" => {
                let s: f64 = args
                    .next()
                    .ok_or("--duration requires seconds")?
                    .parse()
                    .map_err(|_| "--duration requires a number of seconds")?;
                duration = Duration::from_secs_f64(s);
            }
            "--out" => {
                out = args.next().ok_or("--out requires a path")?;
            }
            other => return Err(format!("unknown flag {other}").into()),
        }
    }
    if clients > 0 {
        return run_load(clients, duration, &out, json_mode);
    }
    if trace_path.is_some() {
        offload_obs::set_enabled(true);
    }
    macro_rules! say {
        ($($arg:tt)*) => {
            if json_mode { eprintln!($($arg)*) } else { println!($($arg)*) }
        };
    }

    let analysis = Arc::new(Analysis::from_source(PROGRAM, AnalysisOptions::default())?);
    let device = DeviceModel::ipaq_testbed();
    say!("partitioning choices:\n{}", analysis.describe_choices());

    let server = OffloadServer::bind(
        "127.0.0.1:0",
        analysis.clone(),
        device.clone(),
        ServerConfig::default(),
    )?;
    say!("server listening on {}", server.addr());

    // The interpreter is slow in debug builds; give each request a
    // generous deadline so the demo never times out spuriously.
    let mut config = ClientConfig::new(server.addr().to_string());
    config.request_timeout = Duration::from_secs(300);
    let engine = OffloadEngine::new(&analysis, device.clone(), config);
    say!(
        "{:<10} {:>7} {:>10} {:>11} {:>12}  output",
        "n",
        "choice",
        "where",
        "virt time",
        "wall"
    );
    let mut server_stats = None;
    let mut rows: Vec<RunRow> = Vec::new();
    for n in [4i64, 1_000, 100_000] {
        let wall = Instant::now();
        let report = engine.run(&[n], &[])?;
        assert!(!report.fell_back, "loopback server should be reachable");
        say!(
            "{n:<10} {:>7} {:>10} {:>11.3} {:>10.1?}  {:?}",
            report.choice,
            if report.offloaded {
                "offloaded"
            } else {
                "local"
            },
            report.result.stats.total_time.to_f64(),
            wall.elapsed(),
            report.result.outputs,
        );
        rows.push(RunRow {
            n,
            choice: report.choice,
            offloaded: report.offloaded,
            virt_time: report.result.stats.total_time.to_f64(),
            wall_ms: wall.elapsed().as_secs_f64() * 1e3,
        });
        if let Some(s) = report.server_pipeline {
            server_stats = Some((s, report.local_pipeline));
        }
    }
    let mut analyses_match = false;
    if let Some((server, local)) = &server_stats {
        say!("\nanalysis pipeline stats (from the handshake):\n{server}");
        analyses_match = server == local;
        say!(
            "server analysis matches the client's: {}",
            if analyses_match {
                "yes"
            } else {
                "no (independent analyses)"
            }
        );
    }

    // Graceful degradation: same engine, but nobody is listening. The
    // dead address is the server's port after shutdown, so a connect is
    // refused immediately.
    let mut server = server;
    let dead = server.addr().to_string();
    let drained = server.shutdown();
    say!(
        "server drained: {} session(s) and {} worker(s) joined",
        drained.sessions_joined,
        drained.workers_joined,
    );
    drop(server);
    let mut config = ClientConfig::new(dead);
    config.retry = RetryPolicy {
        max_attempts: 2,
        ..RetryPolicy::default()
    };
    config.connect_timeout = Duration::from_millis(500);
    let engine = OffloadEngine::new(&analysis, device, config);
    let report = engine.run(&[1_000], &[])?;
    assert!(report.fell_back, "no server: the engine must degrade");
    say!(
        "\nserver absent: fell back after {} connect attempts — {}",
        report.connect_attempts,
        report
            .fallback_reason
            .as_deref()
            .unwrap_or("(no reason recorded)"),
    );
    say!(
        "fallback output {:?} (all-local, correct)",
        report.result.outputs
    );

    if let Some(path) = &trace_path {
        let snapshot = offload_obs::snapshot();
        offload_obs::export::write_chrome_trace(path, &snapshot)?;
        eprintln!("wrote {path} (open in chrome://tracing or ui.perfetto.dev)");
    }
    if json_mode {
        let mut json = String::from("{\n  \"runs\": [\n");
        emit_runs(&mut json, &rows, analyses_match, &report);
        print!("{json}");
    }
    Ok(())
}

fn emit_runs(
    json: &mut String,
    rows: &[RunRow],
    analyses_match: bool,
    report: &offload_net::RunReport,
) {
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            concat!(
                "    {{\"n\":{},\"choice\":{},\"offloaded\":{},",
                "\"virt_time\":{:.6},\"wall_ms\":{:.3}}}{}\n"
            ),
            r.n,
            r.choice,
            r.offloaded,
            r.virt_time,
            r.wall_ms,
            if i + 1 == rows.len() { "" } else { "," },
        ));
    }
    json.push_str("  ],\n");
    json.push_str(&format!("  \"analyses_match\": {analyses_match},\n"));
    json.push_str(&format!(
        "  \"fallback\": {{\"fell_back\":{},\"connect_attempts\":{}}}\n",
        report.fell_back, report.connect_attempts,
    ));
    json.push_str("}\n");
}

/// The load-generator mode: `clients` concurrent [`DispatchClient`]s
/// issue dispatch queries against one loopback server for `duration`,
/// then sustained QPS and latency percentiles go to `out`.
fn run_load(
    clients: usize,
    duration: Duration,
    out: &str,
    json_mode: bool,
) -> Result<(), Box<dyn std::error::Error>> {
    macro_rules! say {
        ($($arg:tt)*) => {
            if json_mode { eprintln!($($arg)*) } else { println!($($arg)*) }
        };
    }
    let analysis = Arc::new(Analysis::from_source(PROGRAM, AnalysisOptions::default())?);
    let device = DeviceModel::ipaq_testbed();
    let workers = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(4);
    let config = ServerConfig::builder()
        .workers(workers)
        .max_inflight(clients + 64)
        .request_timeout(Some(Duration::from_secs(30)))
        .build();
    let mut server = OffloadServer::bind("127.0.0.1:0", analysis.clone(), device, config)?;
    let addr = server.addr();
    let fp = fingerprint(&analysis);
    say!(
        "load mode: {clients} clients x {:.1}s against {addr} ({workers} dispatch workers)",
        duration.as_secs_f64()
    );

    // One shared latency histogram (atomic buckets), recorded client-side
    // so it includes the full loopback round trip.
    let latency = Arc::new(offload_obs::Histogram::default());
    let barrier = Arc::new(Barrier::new(clients + 1));
    let mut handles = Vec::with_capacity(clients);
    for c in 0..clients {
        let latency = latency.clone();
        let barrier = barrier.clone();
        handles.push(
            std::thread::Builder::new()
                .name(format!("loadgen-{c}"))
                .stack_size(128 * 1024)
                .spawn(move || -> Result<(u64, u64), String> {
                    let mut client =
                        DispatchClient::connect_fingerprinted(addr, fp, Duration::from_secs(10))
                            .map_err(|e| e.to_string())?;
                    // Cycle through settings that exercise every region
                    // (and, offset per client, keep the mix steady).
                    let settings: [i64; 4] = [4, 1_000, 100_000, 1 << 20];
                    barrier.wait();
                    let deadline = Instant::now() + duration;
                    let mut sent = 0u64;
                    let mut errors = 0u64;
                    while Instant::now() < deadline {
                        let n = settings[(sent as usize + c) % settings.len()];
                        let t0 = Instant::now();
                        match client.dispatch(&[n]) {
                            Ok(_) => {
                                latency.record(
                                    u64::try_from(t0.elapsed().as_micros()).unwrap_or(u64::MAX),
                                );
                                sent += 1;
                            }
                            Err(_) => {
                                errors += 1;
                                break;
                            }
                        }
                    }
                    client.close();
                    Ok((sent, errors))
                })?,
        );
    }

    barrier.wait();
    let t0 = Instant::now();
    let mut requests = 0u64;
    let mut errors = 0u64;
    let mut failed_clients = 0usize;
    for h in handles {
        match h.join() {
            Ok(Ok((s, e))) => {
                requests += s;
                errors += e;
            }
            _ => failed_clients += 1,
        }
    }
    let elapsed = t0.elapsed();
    let server_stats = server.stats();
    let summary = server.shutdown();

    let qps = requests as f64 / elapsed.as_secs_f64();
    let lat = latency.summary();
    say!(
        "{requests} requests in {:.2}s = {qps:.0} QPS  \
         (p50 {}us, p90 {}us, p99 {}us, max {}us)",
        elapsed.as_secs_f64(),
        lat.p50,
        lat.p90,
        lat.p99,
        lat.max
    );
    say!(
        "server: {} requests in {} batches ({:.1} per batch), \
         cache {} hits / {} misses, pointloc {} nodes depth {}",
        server_stats.requests,
        server_stats.batches,
        server_stats.requests as f64 / server_stats.batches.max(1) as f64,
        server_stats.plan_cache_hits,
        server_stats.plan_cache_misses,
        server_stats.pointloc_nodes,
        server_stats.pointloc_depth,
    );
    say!(
        "drained: {} session(s), {} worker(s) joined; \
         {errors} request errors, {failed_clients} clients failed",
        summary.sessions_joined,
        summary.workers_joined,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"clients\": {},\n",
            "  \"duration_s\": {:.3},\n",
            "  \"requests\": {},\n",
            "  \"errors\": {},\n",
            "  \"failed_clients\": {},\n",
            "  \"qps\": {:.1},\n",
            "  \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}, \"max\": {}}},\n",
            "  \"server\": {{\n",
            "    \"requests\": {},\n",
            "    \"batches\": {},\n",
            "    \"plan_cache_hits\": {},\n",
            "    \"plan_cache_misses\": {},\n",
            "    \"pointloc_nodes\": {},\n",
            "    \"pointloc_depth\": {},\n",
            "    \"latency_us\": {{\"p50\": {}, \"p90\": {}, \"p99\": {}}}\n",
            "  }},\n",
            "  \"join\": {{\"sessions\": {}, \"workers\": {}}}\n",
            "}}\n"
        ),
        clients,
        elapsed.as_secs_f64(),
        requests,
        errors,
        failed_clients,
        qps,
        lat.p50,
        lat.p90,
        lat.p99,
        lat.max,
        server_stats.requests,
        server_stats.batches,
        server_stats.plan_cache_hits,
        server_stats.plan_cache_misses,
        server_stats.pointloc_nodes,
        server_stats.pointloc_depth,
        server_stats.latency_p50_us,
        server_stats.latency_p90_us,
        server_stats.latency_p99_us,
        summary.sessions_joined,
        summary.workers_joined,
    );
    std::fs::write(out, &json)?;
    say!("wrote {out}");
    if json_mode {
        print!("{json}");
    }
    Ok(())
}
