//! Figure 2: the program transformation — the dispatch guards the
//! compiler generates for the running example, in the paper's
//! `if (cond) call server_X() else call client_X()` style.

use offload_core::{Analysis, AnalysisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let analysis = Analysis::from_source(
        offload_lang::examples_src::FIGURE1,
        AnalysisOptions::default(),
    )?;
    println!("== Figure 2: transformed program (dispatch guards) ==\n");
    for (i, choice) in analysis.partition.choices.iter().enumerate() {
        let guard = analysis.dispatcher.guard_text(&analysis.network, choice);
        println!("if ({guard}) {{");
        if choice.is_all_local() {
            println!("    // run every task on the client");
            for (t, _) in analysis.tcfg.tasks().iter().enumerate() {
                println!("    schedule client_task{t}();");
            }
        } else {
            for (t, task) in analysis.tcfg.tasks().iter().enumerate() {
                let host = if choice.server_tasks[t] {
                    "server"
                } else {
                    "client"
                };
                let f = &analysis.module.function(task.func).name;
                println!("    schedule {host}_task{t}();   // in {f}");
            }
        }
        println!("}}  // choice {i}\n");
    }
    println!("paper (§1.1) guards for comparison:");
    println!("  f offloaded:  (12 < z) && (5*y < 6)");
    println!("  g offloaded:  (12 + 2*y < y*z) || (12 < z)");
    Ok(())
}
