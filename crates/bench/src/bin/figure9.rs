//! Figure 9: G.721 encode under different coding methods (-3/-4/-5) and
//! audio formats (-l/-a/-u) — execution time of every partitioning,
//! normalized to local execution.
//!
//! The paper's takeaway, which must hold here too: *no single
//! partitioning decision is best under all command options.*

use offload_bench::{average_improvement, print_normalized_table, run_setting};
use offload_benchmarks::encode;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let bench = encode();
    eprintln!("analyzing {} ...", bench.name);
    let analysis = bench.analyze()?;
    eprintln!(
        "{} choices found in {:?}",
        analysis.partition.choices.len(),
        analysis.analysis_time
    );

    // Buffer size near the offloading crossover (see Figure 10), where
    // the per-option work differences decide the winner — the regime the
    // paper's unbuffered G.721 effectively operated in.
    let mut rows = Vec::new();
    for (mname, method) in [("-3", 3i64), ("-4", 4), ("-5", 5)] {
        for (lname, law) in [("-l", 0i64), ("-a", 1), ("-u", 2)] {
            let params = [method, law, 32, 8];
            rows.push(run_setting(
                &bench,
                &analysis,
                format!("{mname} {lname}"),
                &params,
            )?);
        }
    }
    print_normalized_table(
        "Figure 9: G.721 encode with different options",
        analysis.partition.choices.len(),
        &rows,
    );

    // The paper's claim: different options favor different partitionings.
    let bests: std::collections::BTreeSet<usize> = rows.iter().map(|r| r.best_choice()).collect();
    println!(
        "distinct best partitionings across options: {}",
        bests.len()
    );
    if let Some(gain) = average_improvement(&rows, &analysis) {
        println!(
            "average improvement over local (offloaded settings): {:.1}%",
            gain * 100.0
        );
    }
    Ok(())
}
