//! Table 3: the benchmark programs — description, number of run-time
//! parameters, and source size.

use offload_benchmarks::all;

fn main() {
    println!("== Table 3: Test programs ==");
    println!(
        "{:<12} {:<48} {:>14} {:>18}",
        "Program", "Description", "No. of Params", "No. of Source Lines"
    );
    for b in all() {
        println!(
            "{:<12} {:<48} {:>14} {:>18}",
            b.name,
            b.description,
            b.param_names.len(),
            b.source_lines()
        );
    }
    println!("\n(paper: rawcaudio 1/205, rawdaudio 1/178, encode 4/1118,");
    println!(" decode 4/1248, fft 3/332, susan 12/2122 — our mini-C");
    println!(" re-implementations are necessarily shorter than the C originals)");
}
