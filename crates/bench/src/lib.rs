//! # offload-bench
//!
//! The experiment harness: one binary per table and figure of the paper's
//! evaluation section (see `DESIGN.md`'s experiment index), plus shared
//! helpers for running a benchmark under every discovered partitioning
//! and printing normalized results the way the paper's figures do.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use offload_benchmarks::Benchmark;
use offload_core::{Analysis, Plan};
use offload_runtime::{DeviceModel, SimError, Simulator};

/// Result of running one parameter setting under local execution and
/// every partitioning choice.
#[derive(Debug, Clone)]
pub struct SettingRow {
    /// Human-readable label of the setting (e.g. `-4 -l`).
    pub label: String,
    /// Virtual time of the all-local run.
    pub local_time: f64,
    /// Virtual time under each partitioning choice, in choice order.
    pub choice_times: Vec<f64>,
    /// The choice the dispatcher picks for this setting.
    pub dispatched: usize,
    /// Client energy of the all-local run.
    pub local_energy: f64,
    /// Client energy per choice.
    pub choice_energy: Vec<f64>,
}

impl SettingRow {
    /// Times normalized so the local run is 1.0 (the paper's Figures
    /// 9–12 normalization).
    pub fn normalized(&self) -> Vec<f64> {
        self.choice_times
            .iter()
            .map(|t| t / self.local_time)
            .collect()
    }

    /// The fastest choice for this setting.
    pub fn best_choice(&self) -> usize {
        self.choice_times
            .iter()
            .enumerate()
            .min_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty")
    }
}

/// Runs `params` under local execution and every partitioning choice.
///
/// # Errors
///
/// Propagates simulator failures.
pub fn run_setting(
    bench: &Benchmark,
    analysis: &Analysis,
    label: impl Into<String>,
    params: &[i64],
) -> Result<SettingRow, SimError> {
    let sim = Simulator::new(analysis, DeviceModel::ipaq_testbed());
    let input = (bench.make_input)(params);
    let local = sim.run(Plan::AllLocal, params, &input)?;
    let mut choice_times = Vec::new();
    let mut choice_energy = Vec::new();
    for i in 0..analysis.partition.choices.len() {
        let r = sim.run(Plan::Remote(i), params, &input)?;
        assert_eq!(
            r.outputs, local.outputs,
            "behaviour preserved under choice {i}"
        );
        choice_times.push(r.stats.total_time.to_f64());
        choice_energy.push(r.stats.energy.to_f64());
    }
    let dispatched = analysis.decide(params)?.region_id;
    Ok(SettingRow {
        label: label.into(),
        local_time: local.stats.total_time.to_f64(),
        choice_times,
        dispatched,
        local_energy: local.stats.energy.to_f64(),
        choice_energy,
    })
}

/// Prints a figure as a normalized-time table: one row per setting, one
/// column per partitioning (local execution = 1.0), with the dispatcher's
/// pick starred.
pub fn print_normalized_table(title: &str, nchoices: usize, rows: &[SettingRow]) {
    println!("== {title} ==");
    print!("{:<18}", "setting");
    for i in 0..nchoices {
        print!("  partition{i:<2}");
    }
    println!("  (local = 1.0; * = dispatched)");
    for row in rows {
        print!("{:<18}", row.label);
        for (i, t) in row.normalized().iter().enumerate() {
            let star = if i == row.dispatched { "*" } else { " " };
            print!("  {t:>9.3}{star} ");
        }
        println!();
    }
    println!();
}

/// The paper's §6.2 headline statistic: average improvement of the best
/// partitioning over local execution, excluding settings where the best
/// choice is to run everything locally.
pub fn average_improvement(rows: &[SettingRow], analysis: &Analysis) -> Option<f64> {
    let mut gains = Vec::new();
    for row in rows {
        let best = row.best_choice();
        if analysis.partition.choices[best].is_all_local() {
            continue;
        }
        gains.push(1.0 - row.choice_times[best] / row.local_time);
    }
    if gains.is_empty() {
        None
    } else {
        Some(gains.iter().sum::<f64>() / gains.len() as f64)
    }
}
