//! Criterion bench: front-end + analysis pipeline stages on the Figure 1
//! program (everything up to, but excluding, the parametric solve).

use criterion::{criterion_group, criterion_main, Criterion};
use offload_ir::lower;
use offload_lang::frontend;
use offload_pta::{ModRef, PointsTo};
use offload_symbolic::Symbolic;
use offload_tcfg::Tcfg;

fn bench_stages(c: &mut Criterion) {
    let src = offload_lang::examples_src::FIGURE1;
    c.bench_function("frontend", |b| b.iter(|| frontend(src).unwrap()));
    let checked = frontend(src).unwrap();
    c.bench_function("lower", |b| b.iter(|| lower(&checked)));
    let module = lower(&checked);
    c.bench_function("points_to", |b| b.iter(|| PointsTo::analyze(&module)));
    let pta = PointsTo::analyze(&module);
    c.bench_function("tcfg", |b| {
        b.iter(|| Tcfg::build(&module, pta.indirect_targets()))
    });
    let tcfg = Tcfg::build(&module, pta.indirect_targets());
    c.bench_function("modref", |b| {
        b.iter(|| ModRef::compute(&module, &tcfg, &pta))
    });
    c.bench_function("symbolic", |b| {
        b.iter(|| Symbolic::analyze(&module, pta.indirect_targets()))
    });
}

criterion_group!(benches, bench_stages);
criterion_main!(benches);
