//! Criterion bench: the Lemma 1 optimality-region computation
//! (Fourier–Motzkin with Imbert/Chernikov/LP pruning), with and without
//! the §5.4 network simplification — the ablation DESIGN.md calls out.

use criterion::{criterion_group, criterion_main, Criterion};
use offload_core::{Analysis, AnalysisOptions, SolveOptions};

fn bench_projection(c: &mut Criterion) {
    let src = offload_lang::examples_src::FIGURE1;
    let mut group = c.benchmark_group("figure1_analysis");
    group.sample_size(10);
    group.bench_function("with_simplification", |b| {
        b.iter(|| {
            Analysis::from_source(src, AnalysisOptions::default())
                .unwrap()
                .partition
                .choices
                .len()
        })
    });
    group.bench_function("without_simplification", |b| {
        b.iter(|| {
            let opts = AnalysisOptions {
                solve: SolveOptions {
                    simplify: false,
                    ..Default::default()
                },
                ..Default::default()
            };
            Analysis::from_source(src, opts)
                .unwrap()
                .partition
                .choices
                .len()
        })
    });
    group.bench_function("without_degeneracy_reduction", |b| {
        b.iter(|| {
            let opts = AnalysisOptions {
                solve: SolveOptions {
                    reduce_degeneracy: false,
                    ..Default::default()
                },
                ..Default::default()
            };
            Analysis::from_source(src, opts)
                .unwrap()
                .partition
                .choices
                .len()
        })
    });
    group.finish();
}

criterion_group!(benches, bench_projection);
criterion_main!(benches);
