//! Criterion bench: exact rational max-flow (Dinic) scaling with graph
//! size — the kernel of step 4 of Algorithm 2.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use offload_flow::{Capacity, FlowNetwork};
use offload_poly::Rational;

fn random_network(nodes: usize, arcs: usize, seed: u64) -> FlowNetwork {
    let mut state = seed | 1;
    let mut next = || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut net = FlowNetwork::new(nodes, 0, nodes - 1);
    for _ in 0..arcs {
        let f = (next() % nodes as u64) as usize;
        let t = (next() % nodes as u64) as usize;
        if f == t {
            continue;
        }
        let c = (next() % 50) as i64;
        net.add_arc(f, t, Capacity::Finite(Rational::from(c)));
    }
    net
}

fn bench_maxflow(c: &mut Criterion) {
    let mut group = c.benchmark_group("dinic");
    for &(nodes, arcs) in &[(16usize, 64usize), (64, 256), (256, 1024)] {
        let net = random_network(nodes, arcs, 0xBEEF);
        group.bench_with_input(
            BenchmarkId::from_parameter(format!("{nodes}n_{arcs}a")),
            &net,
            |b, net| b.iter(|| net.max_flow().unwrap().value),
        );
    }
    group.finish();
}

criterion_group!(benches, bench_maxflow);
criterion_main!(benches);
