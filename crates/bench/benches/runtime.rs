//! Criterion bench: distributed-simulator throughput on the Figure 1
//! audio pipeline, local vs offloaded execution.

use criterion::{criterion_group, criterion_main, Criterion};
use offload_core::{Analysis, AnalysisOptions};
use offload_runtime::{DeviceModel, Simulator};

fn bench_runtime(c: &mut Criterion) {
    // Analyze once, outside the timing loops.
    let analysis = Analysis::from_source(
        offload_lang::examples_src::FIGURE1,
        AnalysisOptions::default(),
    )
    .unwrap();
    let sim = Simulator::new(&analysis, DeviceModel::ipaq_testbed());
    let params = [8i64, 64, 16]; // x frames, y samples, z work
    let input: Vec<i64> = (0..(params[0] * params[1])).map(|v| v % 100).collect();
    let offloaded = analysis
        .partition
        .choices
        .iter()
        .position(|p| !p.is_all_local());

    let mut group = c.benchmark_group("simulator");
    group.sample_size(20);
    group.bench_function("figure1_local", |b| {
        b.iter(|| sim.run_local(&params, &input).unwrap().stats.instructions)
    });
    if let Some(idx) = offloaded {
        group.bench_function("figure1_offloaded", |b| {
            b.iter(|| {
                sim.run_choice(idx, &params, &input)
                    .unwrap()
                    .stats
                    .instructions
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_runtime);
criterion_main!(benches);
