//! Control-flow-graph analyses over a lowered function: predecessors,
//! reverse postorder, dominator tree, and natural loops.
//!
//! The symbolic cost analysis uses natural loops to recover trip counts,
//! and the task-control-flow-graph construction uses reachability.

use crate::ir::{BlockId, FuncDef};
use std::collections::{HashMap, HashSet};

/// Predecessor lists for every block.
#[derive(Debug, Clone)]
pub struct Preds {
    preds: Vec<Vec<BlockId>>,
}

impl Preds {
    /// Computes predecessors for `f`.
    pub fn compute(f: &FuncDef) -> Self {
        let mut preds = vec![Vec::new(); f.blocks.len()];
        for (id, b) in f.iter_blocks() {
            for s in b.term.successors() {
                preds[s.index()].push(id);
            }
        }
        Preds { preds }
    }

    /// Predecessors of `b`.
    pub fn of(&self, b: BlockId) -> &[BlockId] {
        &self.preds[b.index()]
    }
}

/// Blocks reachable from the entry, in reverse postorder.
pub fn reverse_postorder(f: &FuncDef) -> Vec<BlockId> {
    let mut visited = vec![false; f.blocks.len()];
    let mut post = Vec::new();
    // Iterative DFS with an explicit stack of (block, next-successor).
    let mut stack: Vec<(BlockId, Vec<BlockId>, usize)> = Vec::new();
    visited[f.entry.index()] = true;
    stack.push((f.entry, f.block(f.entry).term.successors(), 0));
    while let Some((b, succs, idx)) = stack.last_mut() {
        if *idx < succs.len() {
            let next = succs[*idx];
            *idx += 1;
            if !visited[next.index()] {
                visited[next.index()] = true;
                stack.push((next, f.block(next).term.successors(), 0));
            }
        } else {
            post.push(*b);
            stack.pop();
        }
    }
    post.reverse();
    post
}

/// Immediate-dominator tree (entry dominates everything reachable).
#[derive(Debug, Clone)]
pub struct Dominators {
    /// `idom[b]` is the immediate dominator of `b`; the entry maps to
    /// itself; unreachable blocks map to `None`.
    idom: Vec<Option<BlockId>>,
    rpo_index: Vec<usize>,
}

impl Dominators {
    /// Computes dominators with the Cooper–Harvey–Kennedy iterative
    /// algorithm.
    pub fn compute(f: &FuncDef, preds: &Preds) -> Self {
        let rpo = reverse_postorder(f);
        let mut rpo_index = vec![usize::MAX; f.blocks.len()];
        for (i, b) in rpo.iter().enumerate() {
            rpo_index[b.index()] = i;
        }
        let mut idom: Vec<Option<BlockId>> = vec![None; f.blocks.len()];
        idom[f.entry.index()] = Some(f.entry);
        let mut changed = true;
        while changed {
            changed = false;
            for &b in rpo.iter().skip(1) {
                let mut new_idom: Option<BlockId> = None;
                for &p in preds.of(b) {
                    if idom[p.index()].is_none() {
                        continue; // unprocessed or unreachable
                    }
                    new_idom = Some(match new_idom {
                        None => p,
                        Some(cur) => Self::intersect(&idom, &rpo_index, p, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[b.index()] != Some(ni) {
                        idom[b.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        Dominators { idom, rpo_index }
    }

    fn intersect(
        idom: &[Option<BlockId>],
        rpo_index: &[usize],
        mut a: BlockId,
        mut b: BlockId,
    ) -> BlockId {
        while a != b {
            while rpo_index[a.index()] > rpo_index[b.index()] {
                a = idom[a.index()].expect("processed");
            }
            while rpo_index[b.index()] > rpo_index[a.index()] {
                b = idom[b.index()].expect("processed");
            }
        }
        a
    }

    /// Immediate dominator of `b` (`None` for the entry and unreachable
    /// blocks).
    pub fn idom(&self, b: BlockId) -> Option<BlockId> {
        match self.idom[b.index()] {
            Some(d) if d != b => Some(d),
            _ => None,
        }
    }

    /// Returns `true` if `a` dominates `b` (reflexive).
    pub fn dominates(&self, a: BlockId, b: BlockId) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(d) if d != cur => cur = d,
                _ => return false,
            }
        }
    }

    /// Returns `true` if `b` is reachable from the entry.
    pub fn reachable(&self, b: BlockId) -> bool {
        self.idom[b.index()].is_some()
    }

    /// Position of `b` in reverse postorder (`usize::MAX` if unreachable).
    pub fn rpo_index(&self, b: BlockId) -> usize {
        self.rpo_index[b.index()]
    }
}

/// A natural loop.
#[derive(Debug, Clone)]
pub struct NaturalLoop {
    /// Loop header (target of the back edge).
    pub header: BlockId,
    /// All blocks in the loop body, including the header.
    pub body: HashSet<BlockId>,
    /// Sources of back edges into the header (latches).
    pub latches: Vec<BlockId>,
}

impl NaturalLoop {
    /// Returns `true` if the block belongs to this loop.
    pub fn contains(&self, b: BlockId) -> bool {
        self.body.contains(&b)
    }
}

/// Finds all natural loops of `f` (one per header; back edges sharing a
/// header are merged, as usual).
pub fn natural_loops(f: &FuncDef, preds: &Preds, doms: &Dominators) -> Vec<NaturalLoop> {
    let mut by_header: HashMap<BlockId, NaturalLoop> = HashMap::new();
    for (id, b) in f.iter_blocks() {
        if !doms.reachable(id) {
            continue;
        }
        for s in b.term.successors() {
            if doms.dominates(s, id) {
                // Back edge id -> s.
                let entry = by_header.entry(s).or_insert_with(|| NaturalLoop {
                    header: s,
                    body: HashSet::from([s]),
                    latches: Vec::new(),
                });
                entry.latches.push(id);
                // Walk predecessors from the latch up to the header.
                let mut stack = vec![id];
                while let Some(n) = stack.pop() {
                    if entry.body.insert(n) {
                        for &p in preds.of(n) {
                            stack.push(p);
                        }
                    }
                }
            }
        }
    }
    let mut loops: Vec<NaturalLoop> = by_header.into_values().collect();
    // Stable order: by header id, inner loops after outer ones when nested
    // (larger body first for equal ancestry is not needed; header order is
    // deterministic and sufficient for consumers).
    loops.sort_by_key(|l| l.header);
    loops
}

/// The innermost loop containing each block, as indices into the result of
/// [`natural_loops`].
pub fn innermost_loop_map(f: &FuncDef, loops: &[NaturalLoop]) -> Vec<Option<usize>> {
    let mut map: Vec<Option<usize>> = vec![None; f.blocks.len()];
    for (i, l) in loops.iter().enumerate() {
        for &b in &l.body {
            match map[b.index()] {
                // A smaller body strictly nested inside means more inner.
                Some(j) if loops[j].body.len() <= l.body.len() => {}
                _ => map[b.index()] = Some(i),
            }
        }
    }
    map
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use offload_lang::frontend;

    fn func(src: &str) -> FuncDef {
        let m = lower(&frontend(src).unwrap());
        m.function(m.main).clone()
    }

    #[test]
    fn straight_line_has_no_loops() {
        let f = func("void main() { output(1); output(2); }");
        let preds = Preds::compute(&f);
        let doms = Dominators::compute(&f, &preds);
        assert!(natural_loops(&f, &preds, &doms).is_empty());
    }

    #[test]
    fn single_loop_detected() {
        let f = func("void main(int n) { int i; for (i = 0; i < n; i++) { output(i); } }");
        let preds = Preds::compute(&f);
        let doms = Dominators::compute(&f, &preds);
        let loops = natural_loops(&f, &preds, &doms);
        assert_eq!(loops.len(), 1);
        let l = &loops[0];
        assert!(l.body.len() >= 3, "header, body, step");
        assert_eq!(l.latches.len(), 1);
    }

    #[test]
    fn nested_loops_detected() {
        let f = func(
            "void main(int n) {
                 int i; int j;
                 for (i = 0; i < n; i++) {
                     for (j = 0; j < n; j++) { output(j); }
                 }
             }",
        );
        let preds = Preds::compute(&f);
        let doms = Dominators::compute(&f, &preds);
        let loops = natural_loops(&f, &preds, &doms);
        assert_eq!(loops.len(), 2);
        let (outer, inner) = if loops[0].body.len() > loops[1].body.len() {
            (&loops[0], &loops[1])
        } else {
            (&loops[1], &loops[0])
        };
        for b in &inner.body {
            assert!(outer.contains(*b), "inner loop nested in outer");
        }
        let map = innermost_loop_map(&f, &loops);
        // The inner header's innermost loop is the inner loop.
        let inner_idx = loops.iter().position(|l| l.header == inner.header).unwrap();
        assert_eq!(map[inner.header.index()], Some(inner_idx));
    }

    #[test]
    fn dominators_basic_properties() {
        let f = func(
            "void main(int a) {
                 if (a) { output(1); } else { output(2); }
                 output(3);
             }",
        );
        let preds = Preds::compute(&f);
        let doms = Dominators::compute(&f, &preds);
        for (id, _) in f.iter_blocks() {
            if doms.reachable(id) {
                assert!(doms.dominates(f.entry, id), "entry dominates everything");
                assert!(doms.dominates(id, id), "reflexive");
            }
        }
        // The two branch arms do not dominate the join block.
        let rpo = reverse_postorder(&f);
        let join = *rpo.last().unwrap();
        let arms: Vec<BlockId> = preds.of(join).to_vec();
        if arms.len() == 2 {
            assert!(!doms.dominates(arms[0], join) || !doms.dominates(arms[1], join));
        }
    }

    #[test]
    fn while_loop_header_dominates_body() {
        let f = func("void main(int n) { while (n > 0) { n = n - 1; } output(n); }");
        let preds = Preds::compute(&f);
        let doms = Dominators::compute(&f, &preds);
        let loops = natural_loops(&f, &preds, &doms);
        assert_eq!(loops.len(), 1);
        for &b in &loops[0].body {
            assert!(doms.dominates(loops[0].header, b));
        }
    }

    #[test]
    fn rpo_starts_at_entry() {
        let f = func("void main(int n) { if (n) { output(1); } output(2); }");
        let rpo = reverse_postorder(&f);
        assert_eq!(rpo[0], f.entry);
        // RPO visits each reachable block exactly once.
        let set: HashSet<_> = rpo.iter().collect();
        assert_eq!(set.len(), rpo.len());
    }
}
