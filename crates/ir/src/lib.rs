//! # offload-ir
//!
//! Three-address intermediate representation plus control-flow analyses
//! (predecessors, dominators, natural loops) for the computation
//! offloading compiler.
//!
//! The [`lower`] function turns a type-checked mini-C program
//! ([`offload_lang::CheckedProgram`]) into a [`Module`] of functions made
//! of basic blocks. Aggregates live in memory objects addressed in
//! *slots*; scalars live in virtual registers (see [`ir`] module docs).
//!
//! ```
//! use offload_lang::frontend;
//! use offload_ir::{lower, Preds, Dominators, natural_loops};
//!
//! let checked = frontend(
//!     "void main(int n) { int i; for (i = 0; i < n; i++) { output(i); } }",
//! )?;
//! let module = lower(&checked);
//! let main = module.function(module.main);
//! let preds = Preds::compute(main);
//! let doms = Dominators::compute(main, &preds);
//! assert_eq!(natural_loops(main, &preds, &doms).len(), 1);
//! # Ok::<(), offload_lang::LangError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cfg;
pub mod display;
pub mod ir;
mod lower;

pub use cfg::{
    innermost_loop_map, natural_loops, reverse_postorder, Dominators, NaturalLoop, Preds,
};
pub use display::{dump_function, dump_inst, dump_module, dump_term};
pub use ir::{
    AllocSiteId, Block, BlockId, Callee, FuncDef, FuncId, GlobalDef, GlobalId, Inst, IrBinOp,
    LocalDef, LocalId, LocalKind, Module, Operand, StructLayout, Terminator,
};
pub use lower::lower;
