//! Human-readable dumps of the IR (for debugging and golden tests).

use crate::ir::*;
use std::fmt::Write;

/// Renders a module as text.
pub fn dump_module(m: &Module) -> String {
    let mut out = String::new();
    for g in &m.globals {
        let _ = writeln!(out, "global {} : {} ({} slots)", g.name, g.ty, g.slots);
    }
    for (i, f) in m.functions.iter().enumerate() {
        let _ = writeln!(out, "\n{}:", FuncId(i as u32));
        out.push_str(&dump_function(f));
    }
    out
}

/// Renders one function as text.
pub fn dump_function(f: &FuncDef) -> String {
    let mut out = String::new();
    let params: Vec<String> = f.params.iter().map(|p| format!("{p}")).collect();
    let _ = writeln!(
        out,
        "func {}({}) -> {} {{",
        f.name,
        params.join(", "),
        f.ret
    );
    for (i, l) in f.locals.iter().enumerate() {
        let kind = match &l.kind {
            LocalKind::Register => "reg".to_string(),
            LocalKind::Memory { slots } => format!("mem[{slots}]"),
        };
        let _ = writeln!(
            out,
            "  local {} = {} : {} ({kind})",
            LocalId(i as u32),
            l.name,
            l.ty
        );
    }
    for (id, b) in f.iter_blocks() {
        let _ = writeln!(out, "{id}:");
        for inst in &b.insts {
            let _ = writeln!(out, "    {}", dump_inst(inst));
        }
        let _ = writeln!(out, "    {}", dump_term(&b.term));
    }
    out.push_str("}\n");
    out
}

/// Renders one instruction.
pub fn dump_inst(i: &Inst) -> String {
    use offload_lang::UnOp;
    match i {
        Inst::Copy { dst, src } => format!("{dst} = {src}"),
        Inst::Un {
            dst,
            op: UnOp::Neg,
            src,
        } => format!("{dst} = -{src}"),
        Inst::Un {
            dst,
            op: UnOp::Not,
            src,
        } => format!("{dst} = !{src}"),
        Inst::Bin { dst, op, lhs, rhs } => format!("{dst} = {lhs} {op} {rhs}"),
        Inst::AddrGlobal { dst, global } => format!("{dst} = &{global}"),
        Inst::AddrLocal { dst, local } => format!("{dst} = &{local}"),
        Inst::AddrIndex {
            dst,
            base,
            index,
            stride,
        } => {
            format!("{dst} = {base} + {index} * {stride}")
        }
        Inst::AddrField { dst, base, offset } => format!("{dst} = {base} + {offset}"),
        Inst::Load { dst, addr } => format!("{dst} = *{addr}"),
        Inst::Store { addr, src } => format!("*{addr} = {src}"),
        Inst::Alloc {
            dst,
            elem_slots,
            count,
            site,
        } => {
            format!("{dst} = alloc {count} x {elem_slots} ({site})")
        }
        Inst::LoadFunc { dst, func } => format!("{dst} = &{func}"),
        Inst::Call {
            dst: Some(d),
            callee,
            args,
        } => {
            format!("{d} = call {}({})", dump_callee(callee), dump_args(args))
        }
        Inst::Call {
            dst: None,
            callee,
            args,
        } => {
            format!("call {}({})", dump_callee(callee), dump_args(args))
        }
        Inst::Input { dst } => format!("{dst} = input()"),
        Inst::Output { src } => format!("output({src})"),
    }
}

fn dump_callee(c: &Callee) -> String {
    match c {
        Callee::Direct(f) => format!("{f}"),
        Callee::Indirect(o) => format!("*{o}"),
    }
}

fn dump_args(args: &[Operand]) -> String {
    args.iter()
        .map(|a| format!("{a}"))
        .collect::<Vec<_>>()
        .join(", ")
}

/// Renders one terminator.
pub fn dump_term(t: &Terminator) -> String {
    match t {
        Terminator::Goto(b) => format!("goto {b}"),
        Terminator::Branch {
            cond,
            then,
            otherwise,
        } => {
            format!("br {cond} ? {then} : {otherwise}")
        }
        Terminator::Return(Some(v)) => format!("ret {v}"),
        Terminator::Return(None) => "ret".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lower::lower;
    use offload_lang::frontend;

    #[test]
    fn dump_contains_structure() {
        let m = lower(&frontend("void main(int n) { output(n); }").unwrap());
        let text = dump_module(&m);
        assert!(text.contains("func main"));
        assert!(text.contains("output("));
        assert!(text.contains("ret"));
    }
}
