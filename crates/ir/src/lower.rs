//! Lowering from the type-checked AST to the three-address IR.

use crate::ir::*;
use offload_lang::{
    BinOp, Block as AstBlock, CallTarget, CheckedProgram, Expr, ExprKind, Function, NodeId, Stmt,
    Type, UnOp,
};
use std::collections::{HashMap, HashSet};

/// Lowers a type-checked program to an IR [`Module`].
///
/// # Panics
///
/// Panics only on violations of invariants guaranteed by the type checker
/// (the function is total on `check`-accepted programs).
///
/// # Examples
///
/// ```
/// use offload_lang::frontend;
/// use offload_ir::lower;
///
/// let checked = frontend("void main(int n) { output(n + 1); }")?;
/// let module = lower(&checked);
/// assert_eq!(module.functions.len(), 1);
/// assert_eq!(module.function(module.main).name, "main");
/// # Ok::<(), offload_lang::LangError>(())
/// ```
pub fn lower(checked: &CheckedProgram) -> Module {
    let program = &checked.program;

    // Struct layouts, in declaration order (definitions may only reference
    // earlier structs by value, so one pass suffices).
    let mut structs: Vec<StructLayout> = Vec::new();
    for s in &program.structs {
        let mut offset = 0u32;
        let mut fields = Vec::new();
        for (name, ty) in &s.fields {
            fields.push((name.clone(), ty.clone(), offset));
            offset += slots_of(ty, &structs);
        }
        structs.push(StructLayout {
            name: s.name.clone(),
            fields,
            slots: offset,
        });
    }

    let globals: Vec<GlobalDef> = program
        .globals
        .iter()
        .map(|g| GlobalDef {
            name: g.name.clone(),
            ty: g.ty.clone(),
            slots: slots_of(&g.ty, &structs),
        })
        .collect();

    let func_ids: HashMap<String, FuncId> = program
        .functions
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), FuncId(i as u32)))
        .collect();

    let mut alloc_sites = 0u32;
    let functions: Vec<FuncDef> = program
        .functions
        .iter()
        .map(|f| FuncLowerer::new(checked, &structs, &globals, &func_ids, &mut alloc_sites).run(f))
        .collect();

    let main = func_ids["main"];
    Module {
        structs,
        globals,
        functions,
        main,
        alloc_sites,
    }
}

fn slots_of(ty: &Type, structs: &[StructLayout]) -> u32 {
    match ty {
        Type::Int | Type::Ptr(_) | Type::Fn => 1,
        Type::Void => 0,
        Type::Array(t, n) => slots_of(t, structs) * (*n as u32),
        Type::Struct(name) => {
            structs
                .iter()
                .find(|s| &s.name == name)
                .expect("earlier struct")
                .slots
        }
    }
}

/// Where an l-value lives.
enum Place {
    /// A register local.
    Reg(LocalId),
    /// Memory at a computed address.
    Mem(Operand),
}

struct LoopCtx {
    break_to: BlockId,
    continue_to: BlockId,
}

struct FuncLowerer<'a> {
    checked: &'a CheckedProgram,
    structs: &'a [StructLayout],
    globals: &'a [GlobalDef],
    func_ids: &'a HashMap<String, FuncId>,
    alloc_sites: &'a mut u32,

    locals: Vec<LocalDef>,
    blocks: Vec<Block>,
    current: BlockId,
    /// `true` when `current` already received its terminator.
    terminated: bool,
    scopes: Vec<HashMap<String, LocalId>>,
    loops: Vec<LoopCtx>,
    /// Names that are the direct target of `&name` anywhere in the
    /// function; declarations of these names become memory locals. (This
    /// is name-based and thus conservatively spills every same-named
    /// declaration — harmless over-approximation.)
    addr_taken: HashSet<String>,
    temp_count: u32,
}

impl<'a> FuncLowerer<'a> {
    fn new(
        checked: &'a CheckedProgram,
        structs: &'a [StructLayout],
        globals: &'a [GlobalDef],
        func_ids: &'a HashMap<String, FuncId>,
        alloc_sites: &'a mut u32,
    ) -> Self {
        FuncLowerer {
            checked,
            structs,
            globals,
            func_ids,
            alloc_sites,
            locals: Vec::new(),
            blocks: Vec::new(),
            current: BlockId(0),
            terminated: false,
            scopes: Vec::new(),
            loops: Vec::new(),
            addr_taken: HashSet::new(),
            temp_count: 0,
        }
    }

    fn run(mut self, f: &Function) -> FuncDef {
        collect_addr_taken(&f.body, &mut self.addr_taken);
        let entry = self.new_block();
        self.current = entry;
        self.scopes.push(HashMap::new());
        let mut params = Vec::new();
        for p in &f.params {
            let id = self.add_local(&p.name, p.ty.clone(), LocalKind::Register);
            self.scopes
                .last_mut()
                .expect("scope")
                .insert(p.name.clone(), id);
            params.push(id);
        }
        self.lower_block(&f.body);
        if !self.terminated {
            let value = match f.ret {
                Type::Void => None,
                _ => Some(Operand::Const(0)),
            };
            self.terminate(Terminator::Return(value));
        }
        FuncDef {
            name: f.name.clone(),
            params,
            ret: f.ret.clone(),
            locals: self.locals,
            blocks: self.blocks,
            entry,
        }
    }

    // ---- block plumbing ----

    fn new_block(&mut self) -> BlockId {
        let id = BlockId(self.blocks.len() as u32);
        self.blocks.push(Block {
            insts: Vec::new(),
            term: Terminator::Return(None),
        });
        id
    }

    fn emit(&mut self, inst: Inst) {
        if self.terminated {
            // Dead code after return/break/continue: park it in a fresh
            // unreachable block so the builder invariants hold.
            let b = self.new_block();
            self.current = b;
            self.terminated = false;
        }
        self.blocks[self.current.index()].insts.push(inst);
    }

    fn terminate(&mut self, term: Terminator) {
        if self.terminated {
            let b = self.new_block();
            self.current = b;
            self.terminated = false;
        }
        self.blocks[self.current.index()].term = term;
        self.terminated = true;
    }

    /// Switches to a new, already-created block.
    fn switch_to(&mut self, b: BlockId) {
        debug_assert!(self.terminated, "switching away from an open block");
        self.current = b;
        self.terminated = false;
    }

    // ---- locals ----

    fn add_local(&mut self, name: &str, ty: Type, kind: LocalKind) -> LocalId {
        let id = LocalId(self.locals.len() as u32);
        self.locals.push(LocalDef {
            name: name.to_string(),
            ty,
            kind,
        });
        id
    }

    fn fresh_temp(&mut self, ty: Type) -> LocalId {
        let name = format!("$t{}", self.temp_count);
        self.temp_count += 1;
        self.add_local(&name, ty, LocalKind::Register)
    }

    fn lookup_local(&self, name: &str) -> Option<LocalId> {
        self.scopes.iter().rev().find_map(|s| s.get(name)).copied()
    }

    fn lookup_global(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    fn ty(&self, id: NodeId) -> &Type {
        self.checked.type_of(id)
    }

    fn slots(&self, ty: &Type) -> u32 {
        slots_of(ty, self.structs)
    }

    // ---- statements ----

    fn lower_block(&mut self, b: &AstBlock) {
        self.scopes.push(HashMap::new());
        for s in &b.stmts {
            self.lower_stmt(s);
        }
        self.scopes.pop();
    }

    fn lower_stmt(&mut self, s: &Stmt) {
        match s {
            Stmt::Decl { name, ty, init, .. } => {
                let needs_memory = !ty.is_scalar() || self.addr_taken.contains(name);
                let kind = if needs_memory {
                    LocalKind::Memory {
                        slots: self.slots(ty),
                    }
                } else {
                    LocalKind::Register
                };
                let id = self.add_local(name, ty.clone(), kind);
                self.scopes
                    .last_mut()
                    .expect("scope")
                    .insert(name.clone(), id);
                if let Some(e) = init {
                    let v = self.rvalue(e);
                    if needs_memory {
                        let addr = self.fresh_temp(ty.clone().ptr_to());
                        self.emit(Inst::AddrLocal {
                            dst: addr,
                            local: id,
                        });
                        self.emit(Inst::Store {
                            addr: Operand::Local(addr),
                            src: v,
                        });
                    } else {
                        self.emit(Inst::Copy { dst: id, src: v });
                    }
                }
            }
            Stmt::Expr(e) => {
                self.lower_expr_for_effect(e);
            }
            Stmt::If {
                cond,
                then,
                otherwise,
                ..
            } => {
                let then_bb = self.new_block();
                let exit_bb = self.new_block();
                let else_bb = match otherwise {
                    Some(_) => self.new_block(),
                    None => exit_bb,
                };
                self.lower_cond(cond, then_bb, else_bb);
                self.switch_to(then_bb);
                self.lower_block(then);
                if !self.terminated {
                    self.terminate(Terminator::Goto(exit_bb));
                }
                if let Some(b) = otherwise {
                    self.switch_to(else_bb);
                    self.lower_block(b);
                    if !self.terminated {
                        self.terminate(Terminator::Goto(exit_bb));
                    }
                }
                self.switch_to(exit_bb);
            }
            Stmt::While { cond, body, .. } => {
                let header = self.new_block();
                let body_bb = self.new_block();
                let exit_bb = self.new_block();
                self.terminate(Terminator::Goto(header));
                self.switch_to(header);
                self.lower_cond(cond, body_bb, exit_bb);
                self.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    break_to: exit_bb,
                    continue_to: header,
                });
                self.lower_block(body);
                self.loops.pop();
                if !self.terminated {
                    self.terminate(Terminator::Goto(header));
                }
                self.switch_to(exit_bb);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                self.scopes.push(HashMap::new());
                if let Some(i) = init {
                    self.lower_stmt(i);
                }
                let header = self.new_block();
                let body_bb = self.new_block();
                let step_bb = self.new_block();
                let exit_bb = self.new_block();
                self.terminate(Terminator::Goto(header));
                self.switch_to(header);
                match cond {
                    Some(c) => self.lower_cond(c, body_bb, exit_bb),
                    None => self.terminate(Terminator::Goto(body_bb)),
                }
                self.switch_to(body_bb);
                self.loops.push(LoopCtx {
                    break_to: exit_bb,
                    continue_to: step_bb,
                });
                self.lower_block(body);
                self.loops.pop();
                if !self.terminated {
                    self.terminate(Terminator::Goto(step_bb));
                }
                self.switch_to(step_bb);
                if let Some(st) = step {
                    self.lower_expr_for_effect(st);
                }
                self.terminate(Terminator::Goto(header));
                self.switch_to(exit_bb);
                self.scopes.pop();
            }
            Stmt::Return { value, .. } => {
                let v = value.as_ref().map(|e| self.rvalue(e));
                self.terminate(Terminator::Return(v));
            }
            Stmt::Break(_) => {
                let target = self.loops.last().expect("checked: inside loop").break_to;
                self.terminate(Terminator::Goto(target));
            }
            Stmt::Continue(_) => {
                let target = self.loops.last().expect("checked: inside loop").continue_to;
                self.terminate(Terminator::Goto(target));
            }
            Stmt::Block(b) => self.lower_block(b),
        }
    }

    /// Lowers an expression whose value is discarded (avoids materializing
    /// call results).
    fn lower_expr_for_effect(&mut self, e: &Expr) {
        match &e.kind {
            ExprKind::Call(..) | ExprKind::CallPtr(..) => {
                self.lower_call(e, /* want_value= */ false);
            }
            _ => {
                self.rvalue(e);
            }
        }
    }

    // ---- conditions with short-circuit ----

    fn lower_cond(&mut self, e: &Expr, then_bb: BlockId, else_bb: BlockId) {
        match &e.kind {
            ExprKind::Binary(BinOp::And, a, b) => {
                let mid = self.new_block();
                self.lower_cond(a, mid, else_bb);
                self.switch_to(mid);
                self.lower_cond(b, then_bb, else_bb);
            }
            ExprKind::Binary(BinOp::Or, a, b) => {
                let mid = self.new_block();
                self.lower_cond(a, then_bb, mid);
                self.switch_to(mid);
                self.lower_cond(b, then_bb, else_bb);
            }
            ExprKind::Unary(UnOp::Not, a) => self.lower_cond(a, else_bb, then_bb),
            _ => {
                let v = self.rvalue(e);
                self.terminate(Terminator::Branch {
                    cond: v,
                    then: then_bb,
                    otherwise: else_bb,
                });
            }
        }
    }

    // ---- expressions ----

    fn rvalue(&mut self, e: &Expr) -> Operand {
        match &e.kind {
            ExprKind::Int(v) => Operand::Const(*v),
            ExprKind::Var(name) => {
                if let Some(id) = self.lookup_local(name) {
                    if self.locals[id.index()].is_memory() {
                        // Scalar spilled to memory (address-taken): load it.
                        let addr = self.fresh_temp(self.locals[id.index()].ty.clone().ptr_to());
                        self.emit(Inst::AddrLocal {
                            dst: addr,
                            local: id,
                        });
                        let dst = self.fresh_temp(self.ty(e.id).clone());
                        self.emit(Inst::Load {
                            dst,
                            addr: Operand::Local(addr),
                        });
                        Operand::Local(dst)
                    } else {
                        Operand::Local(id)
                    }
                } else if let Some(g) = self.lookup_global(name) {
                    let addr = self.fresh_temp(self.ty(e.id).clone().ptr_to());
                    self.emit(Inst::AddrGlobal {
                        dst: addr,
                        global: g,
                    });
                    let dst = self.fresh_temp(self.ty(e.id).clone());
                    self.emit(Inst::Load {
                        dst,
                        addr: Operand::Local(addr),
                    });
                    Operand::Local(dst)
                } else {
                    unreachable!("checked: variable `{name}` resolves")
                }
            }
            ExprKind::Unary(op, a) => {
                let v = self.rvalue(a);
                let dst = self.fresh_temp(Type::Int);
                self.emit(Inst::Un {
                    dst,
                    op: *op,
                    src: v,
                });
                Operand::Local(dst)
            }
            ExprKind::Binary(op @ (BinOp::And | BinOp::Or), ..) => {
                // Value use of a short-circuit operator: lower through
                // control flow into a 0/1 temporary.
                let _ = op;
                let dst = self.fresh_temp(Type::Int);
                let then_bb = self.new_block();
                let else_bb = self.new_block();
                let exit_bb = self.new_block();
                self.lower_cond(e, then_bb, else_bb);
                self.switch_to(then_bb);
                self.emit(Inst::Copy {
                    dst,
                    src: Operand::Const(1),
                });
                self.terminate(Terminator::Goto(exit_bb));
                self.switch_to(else_bb);
                self.emit(Inst::Copy {
                    dst,
                    src: Operand::Const(0),
                });
                self.terminate(Terminator::Goto(exit_bb));
                self.switch_to(exit_bb);
                Operand::Local(dst)
            }
            ExprKind::Binary(op, a, b) => {
                let lhs = self.rvalue(a);
                let rhs = self.rvalue(b);
                let ir_op = IrBinOp::from_ast(*op).expect("short-circuit handled above");
                let dst = self.fresh_temp(self.ty(e.id).clone());
                self.emit(Inst::Bin {
                    dst,
                    op: ir_op,
                    lhs,
                    rhs,
                });
                Operand::Local(dst)
            }
            ExprKind::Assign(lhs, rhs) => {
                let v = self.rvalue(rhs);
                match self.lvalue(lhs) {
                    Place::Reg(dst) => {
                        self.emit(Inst::Copy { dst, src: v });
                    }
                    Place::Mem(addr) => {
                        self.emit(Inst::Store { addr, src: v });
                    }
                }
                v
            }
            ExprKind::Index(..)
            | ExprKind::Field(..)
            | ExprKind::ArrowField(..)
            | ExprKind::Deref(_) => {
                // Read through memory.
                let ty = self.ty(e.id).clone();
                if !ty.is_scalar() {
                    // Aggregate rvalue only appears as the base of a
                    // further index/field, which goes through lvalue().
                    match self.lvalue(e) {
                        Place::Mem(addr) => return addr,
                        Place::Reg(_) => unreachable!("aggregates live in memory"),
                    }
                }
                match self.lvalue(e) {
                    Place::Mem(addr) => {
                        let dst = self.fresh_temp(ty);
                        self.emit(Inst::Load { dst, addr });
                        Operand::Local(dst)
                    }
                    Place::Reg(r) => Operand::Local(r),
                }
            }
            ExprKind::Call(..) | ExprKind::CallPtr(..) => {
                self.lower_call(e, true).expect("value requested")
            }
            ExprKind::AddrOf(inner) => {
                // &function?
                if let ExprKind::Var(name) = &inner.kind {
                    if self.lookup_local(name).is_none() && self.lookup_global(name).is_none() {
                        let func = self.func_ids[name];
                        let dst = self.fresh_temp(Type::Fn);
                        self.emit(Inst::LoadFunc { dst, func });
                        return Operand::Local(dst);
                    }
                }
                match self.lvalue(inner) {
                    Place::Mem(addr) => addr,
                    Place::Reg(_) => unreachable!("addr-taken locals are spilled to memory"),
                }
            }
            ExprKind::Alloc(ty, count) => {
                let c = self.rvalue(count);
                let site = AllocSiteId(*self.alloc_sites);
                *self.alloc_sites += 1;
                let dst = self.fresh_temp(ty.clone().ptr_to());
                let elem_slots = self.slots(ty);
                self.emit(Inst::Alloc {
                    dst,
                    elem_slots,
                    count: c,
                    site,
                });
                Operand::Local(dst)
            }
        }
    }

    fn lvalue(&mut self, e: &Expr) -> Place {
        match &e.kind {
            ExprKind::Var(name) => {
                if let Some(id) = self.lookup_local(name) {
                    if self.locals[id.index()].is_memory() {
                        let addr = self.fresh_temp(self.locals[id.index()].ty.clone().ptr_to());
                        self.emit(Inst::AddrLocal {
                            dst: addr,
                            local: id,
                        });
                        Place::Mem(Operand::Local(addr))
                    } else {
                        Place::Reg(id)
                    }
                } else if let Some(g) = self.lookup_global(name) {
                    let gty = self.globals[g.index()].ty.clone();
                    let addr = self.fresh_temp(gty.ptr_to());
                    self.emit(Inst::AddrGlobal {
                        dst: addr,
                        global: g,
                    });
                    Place::Mem(Operand::Local(addr))
                } else {
                    unreachable!("checked: variable `{name}` resolves")
                }
            }
            ExprKind::Deref(inner) => {
                let addr = self.rvalue(inner);
                Place::Mem(addr)
            }
            ExprKind::Index(base, idx) => {
                let base_ty = self.ty(base.id).clone();
                let base_addr = match &base_ty {
                    Type::Array(..) => match self.lvalue(base) {
                        Place::Mem(a) => a,
                        Place::Reg(_) => unreachable!("arrays live in memory"),
                    },
                    Type::Ptr(_) => self.rvalue(base),
                    other => unreachable!("checked: cannot index `{other}`"),
                };
                let elem_ty = match &base_ty {
                    Type::Array(t, _) => t.as_ref().clone(),
                    Type::Ptr(t) => t.as_ref().clone(),
                    _ => unreachable!(),
                };
                let i = self.rvalue(idx);
                let stride = self.slots(&elem_ty);
                let dst = self.fresh_temp(elem_ty.ptr_to());
                self.emit(Inst::AddrIndex {
                    dst,
                    base: base_addr,
                    index: i,
                    stride,
                });
                Place::Mem(Operand::Local(dst))
            }
            ExprKind::Field(base, fname) => {
                let Type::Struct(sname) = self.ty(base.id).clone() else {
                    unreachable!("checked: `.` on struct")
                };
                let base_addr = match self.lvalue(base) {
                    Place::Mem(a) => a,
                    Place::Reg(_) => unreachable!("structs live in memory"),
                };
                self.field_place(&sname, fname, base_addr)
            }
            ExprKind::ArrowField(base, fname) => {
                let Type::Ptr(inner) = self.ty(base.id).clone() else {
                    unreachable!("checked: `->` on struct pointer")
                };
                let Type::Struct(sname) = *inner else {
                    unreachable!()
                };
                let base_addr = self.rvalue(base);
                self.field_place(&sname, fname, base_addr)
            }
            other => unreachable!("checked: not an l-value: {other:?}"),
        }
    }

    fn field_place(&mut self, sname: &str, fname: &str, base_addr: Operand) -> Place {
        let layout = self
            .structs
            .iter()
            .find(|s| s.name == sname)
            .expect("checked: struct exists");
        let (fty, offset) = layout
            .fields
            .iter()
            .find(|(n, _, _)| n == fname)
            .map(|(_, t, o)| (t.clone(), *o))
            .expect("checked: field exists");
        let dst = self.fresh_temp(fty.ptr_to());
        self.emit(Inst::AddrField {
            dst,
            base: base_addr,
            offset,
        });
        Place::Mem(Operand::Local(dst))
    }

    fn lower_call(&mut self, e: &Expr, want_value: bool) -> Option<Operand> {
        let (target, args): (&CallTarget, &[Expr]) = match &e.kind {
            ExprKind::Call(_, args) => (
                self.checked.call_targets.get(&e.id).expect("resolved call"),
                args,
            ),
            ExprKind::CallPtr(_, args) => (
                self.checked.call_targets.get(&e.id).expect("resolved call"),
                args,
            ),
            _ => unreachable!("lower_call on a call expression"),
        };
        let target = target.clone();
        match target {
            CallTarget::Input => {
                let dst = self.fresh_temp(Type::Int);
                self.emit(Inst::Input { dst });
                Some(Operand::Local(dst))
            }
            CallTarget::Output => {
                let v = self.rvalue(&args[0]);
                self.emit(Inst::Output { src: v });
                None
            }
            CallTarget::Direct(name) => {
                let func = self.func_ids[&name];
                let arg_ops: Vec<Operand> = args.iter().map(|a| self.rvalue(a)).collect();
                let ret_ty = self.ty(e.id).clone();
                let dst = if want_value && ret_ty != Type::Void {
                    Some(self.fresh_temp(ret_ty))
                } else {
                    None
                };
                self.emit(Inst::Call {
                    dst,
                    callee: Callee::Direct(func),
                    args: arg_ops,
                });
                dst.map(Operand::Local)
            }
            CallTarget::Indirect => {
                let callee_op = match &e.kind {
                    ExprKind::Call(name, _) => {
                        // `g(x)` where g is a fn-typed variable.
                        let id = e.id;
                        let span = e.span;
                        let var = Expr {
                            id,
                            kind: ExprKind::Var(name.clone()),
                            span,
                        };
                        // Reuse the call node's id for the variable read:
                        // its type map entry is the call result (int), but
                        // rvalue(Var) only consults it for temps, and a
                        // fn-typed register needs no temp. Look up directly
                        // instead to stay safe:
                        match self.lookup_local(name) {
                            Some(l) if !self.locals[l.index()].is_memory() => Operand::Local(l),
                            _ => self.rvalue(&var),
                        }
                    }
                    ExprKind::CallPtr(callee, _) => self.callee_value(callee),
                    _ => unreachable!(),
                };
                let arg_ops: Vec<Operand> = args.iter().map(|a| self.rvalue(a)).collect();
                let dst = if want_value {
                    Some(self.fresh_temp(Type::Int))
                } else {
                    None
                };
                self.emit(Inst::Call {
                    dst,
                    callee: Callee::Indirect(callee_op),
                    args: arg_ops,
                });
                dst.map(Operand::Local)
            }
        }
    }

    /// Evaluates a `fn`-typed callee expression; `*g` on a function
    /// pointer is the function pointer itself.
    fn callee_value(&mut self, e: &Expr) -> Operand {
        match &e.kind {
            ExprKind::Deref(inner) if self.ty(inner.id) == &Type::Fn => self.callee_value(inner),
            _ => self.rvalue(e),
        }
    }
}

fn collect_addr_taken(b: &AstBlock, out: &mut HashSet<String>) {
    fn expr(e: &Expr, out: &mut HashSet<String>) {
        if let ExprKind::AddrOf(inner) = &e.kind {
            if let ExprKind::Var(name) = &inner.kind {
                out.insert(name.clone());
            }
        }
        match &e.kind {
            ExprKind::Unary(_, a)
            | ExprKind::AddrOf(a)
            | ExprKind::Deref(a)
            | ExprKind::Alloc(_, a)
            | ExprKind::Field(a, _)
            | ExprKind::ArrowField(a, _) => expr(a, out),
            ExprKind::Binary(_, a, b) | ExprKind::Assign(a, b) | ExprKind::Index(a, b) => {
                expr(a, out);
                expr(b, out);
            }
            ExprKind::Call(_, args) => args.iter().for_each(|a| expr(a, out)),
            ExprKind::CallPtr(c, args) => {
                expr(c, out);
                args.iter().for_each(|a| expr(a, out));
            }
            ExprKind::Int(_) | ExprKind::Var(_) => {}
        }
    }
    fn stmt(s: &Stmt, out: &mut HashSet<String>) {
        match s {
            Stmt::Decl { init, .. } => {
                if let Some(e) = init {
                    expr(e, out);
                }
            }
            Stmt::Expr(e) => expr(e, out),
            Stmt::If {
                cond,
                then,
                otherwise,
                ..
            } => {
                expr(cond, out);
                collect_addr_taken(then, out);
                if let Some(b) = otherwise {
                    collect_addr_taken(b, out);
                }
            }
            Stmt::While { cond, body, .. } => {
                expr(cond, out);
                collect_addr_taken(body, out);
            }
            Stmt::For {
                init,
                cond,
                step,
                body,
                ..
            } => {
                if let Some(i) = init {
                    stmt(i, out);
                }
                if let Some(c) = cond {
                    expr(c, out);
                }
                if let Some(st) = step {
                    expr(st, out);
                }
                collect_addr_taken(body, out);
            }
            Stmt::Return { value, .. } => {
                if let Some(e) = value {
                    expr(e, out);
                }
            }
            Stmt::Break(_) | Stmt::Continue(_) => {}
            Stmt::Block(b) => collect_addr_taken(b, out),
        }
    }
    for s in &b.stmts {
        stmt(s, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use offload_lang::frontend;

    fn module(src: &str) -> Module {
        lower(&frontend(src).unwrap())
    }

    #[test]
    fn lowers_minimal_main() {
        let m = module("void main() { output(1); }");
        let main = m.function(m.main);
        assert_eq!(main.name, "main");
        assert!(main.blocks[main.entry.index()]
            .insts
            .iter()
            .any(|i| matches!(i, Inst::Output { .. })));
    }

    #[test]
    fn loop_structure() {
        let m = module("void main(int n) { int i; for (i = 0; i < n; i++) { output(i); } }");
        let main = m.function(m.main);
        // init block -> header -> body -> step -> header, plus exit.
        assert!(main.blocks.len() >= 4);
        let branches = main
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Branch { .. }))
            .count();
        assert_eq!(branches, 1, "one conditional branch for the loop header");
    }

    #[test]
    fn short_circuit_lowered_to_cfg() {
        let m = module("void main(int a, int b) { if (a && b) { output(1); } }");
        let main = m.function(m.main);
        let branches = main
            .blocks
            .iter()
            .filter(|b| matches!(b.term, Terminator::Branch { .. }))
            .count();
        assert_eq!(branches, 2, "&& becomes two branches");
        // No IR instruction computes && directly.
        for b in &main.blocks {
            for i in &b.insts {
                if let Inst::Bin { op, .. } = i {
                    assert!(!matches!(op, IrBinOp::Mul), "no bogus ops");
                }
            }
        }
    }

    #[test]
    fn arrays_are_memory_locals() {
        let m = module("void main() { int a[4]; a[0] = 1; output(a[0]); }");
        let main = m.function(m.main);
        let arr = main.locals.iter().find(|l| l.name == "a").unwrap();
        assert_eq!(arr.kind, LocalKind::Memory { slots: 4 });
    }

    #[test]
    fn address_taken_scalar_spilled() {
        let m = module("void main() { int x; int *p; p = &x; *p = 3; output(x); }");
        let main = m.function(m.main);
        let x = main.locals.iter().find(|l| l.name == "x").unwrap();
        assert!(x.is_memory());
        let p = main.locals.iter().find(|l| l.name == "p").unwrap();
        assert!(!p.is_memory());
    }

    #[test]
    fn struct_field_offsets() {
        let m = module(
            "struct pair { int a; int b; };
             struct holder { struct pair p; int tail; };
             void main() { struct holder h; h.p.b = 1; h.tail = 2; output(h.p.b); }",
        );
        let holder = m.struct_layout("holder").unwrap();
        assert_eq!(holder.slots, 3);
        assert_eq!(holder.fields[1].2, 2, "tail sits after the embedded pair");
        let main = m.function(m.main);
        let offsets: Vec<u32> = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .filter_map(|i| match i {
                Inst::AddrField { offset, .. } => Some(*offset),
                _ => None,
            })
            .collect();
        assert!(offsets.contains(&1), "field b of embedded pair");
        assert!(offsets.contains(&2), "field tail");
    }

    #[test]
    fn alloc_sites_numbered() {
        let m = module(
            "void main(int n) {
                 int *a; int *b;
                 a = alloc(int, n);
                 b = alloc(int, 2 * n);
                 a[0] = 1; b[0] = 2;
                 output(a[0] + b[0]);
             }",
        );
        assert_eq!(m.alloc_sites, 2);
    }

    #[test]
    fn function_pointer_call() {
        let m = module(
            "int id(int x) { return x; }
             void main() { fn g; g = &id; output(g(7)); }",
        );
        let main = m.function(m.main);
        let has_loadfunc = main
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::LoadFunc { .. }));
        assert!(has_loadfunc);
        let has_indirect = main.blocks.iter().flat_map(|b| &b.insts).any(|i| {
            matches!(
                i,
                Inst::Call {
                    callee: Callee::Indirect(_),
                    ..
                }
            )
        });
        assert!(has_indirect);
    }

    #[test]
    fn figure1_lowers() {
        let m = module(offload_lang::examples_src::FIGURE1);
        assert_eq!(m.functions.len(), 3);
        assert!(m.func_by_name("g_fast").is_some());
        assert!(m.global_by_name("inbuf").is_some());
    }

    #[test]
    fn figure4_lowers() {
        let m = module(offload_lang::examples_src::FIGURE4);
        assert_eq!(m.alloc_sites, 1);
        let build = m.function(m.func_by_name("build").unwrap());
        assert!(build
            .blocks
            .iter()
            .flat_map(|b| &b.insts)
            .any(|i| matches!(i, Inst::Alloc { .. })));
    }

    #[test]
    fn break_continue_targets() {
        let m = module(
            "void main(int n) {
                 int i;
                 for (i = 0; i < n; i++) {
                     if (i == 2) { continue; }
                     if (i == 5) { break; }
                     output(i);
                 }
             }",
        );
        let main = m.function(m.main);
        // All gotos must point to existing blocks.
        for b in &main.blocks {
            for s in b.term.successors() {
                assert!(s.index() < main.blocks.len());
            }
        }
    }
}
