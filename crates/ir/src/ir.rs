//! The three-address intermediate representation.
//!
//! All analyses of the offloading compiler (task formation, points-to,
//! symbolic cost analysis) and the distributed interpreter operate on this
//! IR, lowered from the type-checked AST by [`crate::lower`].
//!
//! ## Memory model
//!
//! Scalars live in *register locals*. Aggregates (arrays, structs) and
//! address-taken scalars live in *memory objects* addressed by
//! `(object, slot)` pairs at run time; the IR manipulates addresses as
//! first-class scalar values produced by the `Addr*` instructions. Every
//! type has a fixed *slot* footprint: scalars take one slot, aggregates the
//! sum of their parts — mirroring the paper's typed abstract memory
//! locations (§2.3).

use offload_lang::{BinOp, Type, UnOp};
use std::fmt;

macro_rules! id_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
        pub struct $name(pub u32);

        impl $name {
            /// The id as a usable index.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

id_type!(
    /// A function in a [`Module`].
    FuncId,
    "fn"
);
id_type!(
    /// A basic block within a function.
    BlockId,
    "bb"
);
id_type!(
    /// A local slot (register or memory object) within a function.
    LocalId,
    "%"
);
id_type!(
    /// A global memory object.
    GlobalId,
    "@g"
);
id_type!(
    /// A dynamic allocation site (one `alloc` instruction).
    AllocSiteId,
    "site"
);

/// An operand: a constant or the value of a register local.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Operand {
    /// Integer constant.
    Const(i64),
    /// Value of a register local.
    Local(LocalId),
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Operand::Const(c) => write!(f, "{c}"),
            Operand::Local(l) => write!(f, "{l}"),
        }
    }
}

/// Binary operators available in the IR (short-circuit `&&`/`||` are
/// lowered to control flow, so they never appear here).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IrBinOp {
    /// `+`
    Add,
    /// `-`
    Sub,
    /// `*`
    Mul,
    /// `/` (truncating; division by zero traps)
    Div,
    /// `%`
    Rem,
    /// `==`
    Eq,
    /// `!=`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
}

impl IrBinOp {
    /// Lowers an AST operator; `&&`/`||` have no IR counterpart.
    pub fn from_ast(op: BinOp) -> Option<IrBinOp> {
        Some(match op {
            BinOp::Add => IrBinOp::Add,
            BinOp::Sub => IrBinOp::Sub,
            BinOp::Mul => IrBinOp::Mul,
            BinOp::Div => IrBinOp::Div,
            BinOp::Rem => IrBinOp::Rem,
            BinOp::Eq => IrBinOp::Eq,
            BinOp::Ne => IrBinOp::Ne,
            BinOp::Lt => IrBinOp::Lt,
            BinOp::Le => IrBinOp::Le,
            BinOp::Gt => IrBinOp::Gt,
            BinOp::Ge => IrBinOp::Ge,
            BinOp::And | BinOp::Or => return None,
        })
    }
}

impl fmt::Display for IrBinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            IrBinOp::Add => "+",
            IrBinOp::Sub => "-",
            IrBinOp::Mul => "*",
            IrBinOp::Div => "/",
            IrBinOp::Rem => "%",
            IrBinOp::Eq => "==",
            IrBinOp::Ne => "!=",
            IrBinOp::Lt => "<",
            IrBinOp::Le => "<=",
            IrBinOp::Gt => ">",
            IrBinOp::Ge => ">=",
        };
        write!(f, "{s}")
    }
}

/// Callee of a [`Inst::Call`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Callee {
    /// Direct call to a known function.
    Direct(FuncId),
    /// Indirect call through a `fn` value.
    Indirect(Operand),
}

/// An IR instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Inst {
    /// `dst = src`.
    Copy {
        /// Destination register.
        dst: LocalId,
        /// Source operand.
        src: Operand,
    },
    /// `dst = op src`.
    Un {
        /// Destination register.
        dst: LocalId,
        /// Operator.
        op: UnOp,
        /// Operand.
        src: Operand,
    },
    /// `dst = lhs op rhs`.
    Bin {
        /// Destination register.
        dst: LocalId,
        /// Operator.
        op: IrBinOp,
        /// Left operand.
        lhs: Operand,
        /// Right operand.
        rhs: Operand,
    },
    /// `dst = &global`.
    AddrGlobal {
        /// Destination register (holds an address).
        dst: LocalId,
        /// The global object.
        global: GlobalId,
    },
    /// `dst = &local` (the local must be a memory local).
    AddrLocal {
        /// Destination register (holds an address).
        dst: LocalId,
        /// The memory local.
        local: LocalId,
    },
    /// `dst = base + index * stride` (address arithmetic in slots).
    AddrIndex {
        /// Destination register (holds an address).
        dst: LocalId,
        /// Base address.
        base: Operand,
        /// Element index.
        index: Operand,
        /// Element footprint in slots.
        stride: u32,
    },
    /// `dst = base + offset` (field address, offset in slots).
    AddrField {
        /// Destination register (holds an address).
        dst: LocalId,
        /// Base address of the struct.
        base: Operand,
        /// Field offset in slots.
        offset: u32,
    },
    /// `dst = *addr`.
    Load {
        /// Destination register.
        dst: LocalId,
        /// Address to read.
        addr: Operand,
    },
    /// `*addr = src`.
    Store {
        /// Address to write.
        addr: Operand,
        /// Value to store.
        src: Operand,
    },
    /// `dst = alloc(elem_slots * count)` — dynamic allocation.
    Alloc {
        /// Destination register (receives the new object's address).
        dst: LocalId,
        /// Element footprint in slots.
        elem_slots: u32,
        /// Number of elements.
        count: Operand,
        /// The allocation site (one per `alloc` expression).
        site: AllocSiteId,
    },
    /// `dst = &func` — materialize a function pointer.
    LoadFunc {
        /// Destination register.
        dst: LocalId,
        /// Referenced function.
        func: FuncId,
    },
    /// `[dst =] callee(args)`.
    Call {
        /// Register receiving the return value, if used.
        dst: Option<LocalId>,
        /// Target.
        callee: Callee,
        /// Scalar arguments.
        args: Vec<Operand>,
    },
    /// `dst = input()` — client I/O.
    Input {
        /// Destination register.
        dst: LocalId,
    },
    /// `output(src)` — client I/O.
    Output {
        /// Value to emit.
        src: Operand,
    },
}

impl Inst {
    /// The register this instruction defines, if any.
    pub fn def(&self) -> Option<LocalId> {
        match self {
            Inst::Copy { dst, .. }
            | Inst::Un { dst, .. }
            | Inst::Bin { dst, .. }
            | Inst::AddrGlobal { dst, .. }
            | Inst::AddrLocal { dst, .. }
            | Inst::AddrIndex { dst, .. }
            | Inst::AddrField { dst, .. }
            | Inst::Load { dst, .. }
            | Inst::Alloc { dst, .. }
            | Inst::LoadFunc { dst, .. }
            | Inst::Input { dst } => Some(*dst),
            Inst::Call { dst, .. } => *dst,
            Inst::Store { .. } | Inst::Output { .. } => None,
        }
    }

    /// The register operands this instruction reads.
    pub fn uses(&self) -> Vec<LocalId> {
        fn op(o: &Operand, out: &mut Vec<LocalId>) {
            if let Operand::Local(l) = o {
                out.push(*l);
            }
        }
        let mut out = Vec::new();
        match self {
            Inst::Copy { src, .. } | Inst::Un { src, .. } => op(src, &mut out),
            Inst::Bin { lhs, rhs, .. } => {
                op(lhs, &mut out);
                op(rhs, &mut out);
            }
            Inst::AddrIndex { base, index, .. } => {
                op(base, &mut out);
                op(index, &mut out);
            }
            Inst::AddrField { base, .. } => op(base, &mut out),
            Inst::Load { addr, .. } => op(addr, &mut out),
            Inst::Store { addr, src } => {
                op(addr, &mut out);
                op(src, &mut out);
            }
            Inst::Alloc { count, .. } => op(count, &mut out),
            Inst::Call { callee, args, .. } => {
                if let Callee::Indirect(c) = callee {
                    op(c, &mut out);
                }
                for a in args {
                    op(a, &mut out);
                }
            }
            Inst::Output { src } => op(src, &mut out),
            Inst::AddrGlobal { .. }
            | Inst::AddrLocal { .. }
            | Inst::LoadFunc { .. }
            | Inst::Input { .. } => {}
        }
        out
    }

    /// Returns `true` for the I/O instructions that pin a task to the
    /// client under the paper's semantic constraint.
    pub fn is_io(&self) -> bool {
        matches!(self, Inst::Input { .. } | Inst::Output { .. })
    }
}

/// A basic-block terminator.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Terminator {
    /// Unconditional jump.
    Goto(BlockId),
    /// Two-way branch on a scalar condition (non-zero = taken).
    Branch {
        /// Condition operand.
        cond: Operand,
        /// Successor when the condition is non-zero.
        then: BlockId,
        /// Successor when the condition is zero.
        otherwise: BlockId,
    },
    /// Function return.
    Return(Option<Operand>),
}

impl Terminator {
    /// Successor blocks, in order.
    pub fn successors(&self) -> Vec<BlockId> {
        match self {
            Terminator::Goto(b) => vec![*b],
            Terminator::Branch {
                then, otherwise, ..
            } => vec![*then, *otherwise],
            Terminator::Return(_) => vec![],
        }
    }
}

/// A basic block.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Block {
    /// Straight-line instructions.
    pub insts: Vec<Inst>,
    /// Closing control transfer.
    pub term: Terminator,
}

/// Storage class of a local.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalKind {
    /// Scalar value in a virtual register.
    Register,
    /// Stack memory object of the given slot size (aggregates and
    /// address-taken scalars).
    Memory {
        /// Footprint in slots.
        slots: u32,
    },
}

/// A local definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LocalDef {
    /// Source name (synthetic temporaries are named `$tN`).
    pub name: String,
    /// Source-level type.
    pub ty: Type,
    /// Register or memory object.
    pub kind: LocalKind,
}

impl LocalDef {
    /// Returns `true` if the local is a memory object.
    pub fn is_memory(&self) -> bool {
        matches!(self.kind, LocalKind::Memory { .. })
    }
}

/// A lowered function.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FuncDef {
    /// Source name.
    pub name: String,
    /// Parameter locals (always registers), in order.
    pub params: Vec<LocalId>,
    /// Return type.
    pub ret: Type,
    /// All locals (parameters first).
    pub locals: Vec<LocalDef>,
    /// Basic blocks; `blocks[entry.index()]` is the entry.
    pub blocks: Vec<Block>,
    /// Entry block.
    pub entry: BlockId,
}

impl FuncDef {
    /// The block with the given id.
    pub fn block(&self, id: BlockId) -> &Block {
        &self.blocks[id.index()]
    }

    /// The local definition with the given id.
    pub fn local(&self, id: LocalId) -> &LocalDef {
        &self.locals[id.index()]
    }

    /// Iterates over `(BlockId, &Block)`.
    pub fn iter_blocks(&self) -> impl Iterator<Item = (BlockId, &Block)> {
        self.blocks
            .iter()
            .enumerate()
            .map(|(i, b)| (BlockId(i as u32), b))
    }
}

/// A global memory object definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GlobalDef {
    /// Source name.
    pub name: String,
    /// Source-level type.
    pub ty: Type,
    /// Footprint in slots.
    pub slots: u32,
}

/// Layout of a struct: field offsets in slots.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StructLayout {
    /// Struct name.
    pub name: String,
    /// `(field name, type, offset in slots)`.
    pub fields: Vec<(String, Type, u32)>,
    /// Total footprint in slots.
    pub slots: u32,
}

/// A whole lowered program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Module {
    /// Struct layouts (indexed by original declaration order).
    pub structs: Vec<StructLayout>,
    /// Global objects.
    pub globals: Vec<GlobalDef>,
    /// Functions; `functions[main.index()]` is the entry point.
    pub functions: Vec<FuncDef>,
    /// The entry function (`main`).
    pub main: FuncId,
    /// Number of allocation sites in the whole module.
    pub alloc_sites: u32,
}

impl Module {
    /// The function with the given id.
    pub fn function(&self, id: FuncId) -> &FuncDef {
        &self.functions[id.index()]
    }

    /// Finds a function id by name.
    pub fn func_by_name(&self, name: &str) -> Option<FuncId> {
        self.functions
            .iter()
            .position(|f| f.name == name)
            .map(|i| FuncId(i as u32))
    }

    /// Finds a global id by name.
    pub fn global_by_name(&self, name: &str) -> Option<GlobalId> {
        self.globals
            .iter()
            .position(|g| g.name == name)
            .map(|i| GlobalId(i as u32))
    }

    /// Slot footprint of a type under this module's struct layouts.
    ///
    /// # Panics
    ///
    /// Panics if the type mentions an unknown struct (impossible for
    /// type-checked input).
    pub fn slots_of(&self, ty: &Type) -> u32 {
        match ty {
            Type::Int | Type::Ptr(_) | Type::Fn => 1,
            Type::Void => 0,
            Type::Array(t, n) => self.slots_of(t) * (*n as u32),
            Type::Struct(name) => {
                self.structs
                    .iter()
                    .find(|s| &s.name == name)
                    .expect("struct exists in checked program")
                    .slots
            }
        }
    }

    /// The struct layout for `name`.
    pub fn struct_layout(&self, name: &str) -> Option<&StructLayout> {
        self.structs.iter().find(|s| s.name == name)
    }
}
